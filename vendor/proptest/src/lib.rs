//! Offline vendored stand-in for the `proptest` crate.
//!
//! The build environment has no access to crates.io, so this crate
//! re-implements the narrow proptest API surface the workspace uses:
//! `proptest!`, `prop_assert!`/`prop_assert_eq!`, `any::<T>()`, integer
//! range strategies, and `proptest::collection::vec`.
//!
//! Semantics differ from upstream proptest in two deliberate ways:
//!
//! * **Deterministic**: every test derives its RNG seed from the test
//!   function's name, so runs replay bit-for-bit (matching the
//!   workspace-wide determinism invariant — see SL002 in the lint
//!   catalog). There is no `PROPTEST_SEED` environment escape hatch.
//! * **No shrinking**: a failing case reports the case index and message
//!   but is not minimised.

use std::fmt;
use std::marker::PhantomData;
use std::ops::{Range, RangeInclusive};

/// Test-runner plumbing used by the macro expansions.
pub mod test_runner {
    use super::fmt;

    /// Number of cases each `proptest!` test executes.
    pub const CASES: u32 = 64;

    /// Deterministic SplitMix64 stream seeded from the test name.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from an arbitrary string (FNV-1a), typically the test name.
        pub fn from_name(name: &str) -> Self {
            let mut h: u64 = 0xcbf2_9ce4_8422_2325;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64-bit value (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }

        /// Uniform in `[0, n)`; `n` must be non-zero.
        pub fn below(&mut self, n: u64) -> u64 {
            debug_assert!(n > 0);
            ((self.next_u64() as u128 * n as u128) >> 64) as u64
        }
    }

    /// A failed `prop_assert!` / `prop_assert_eq!`.
    #[derive(Clone, Debug)]
    pub struct TestCaseError(pub String);

    impl fmt::Display for TestCaseError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str(&self.0)
        }
    }
}

use test_runner::TestRng;

/// A source of values for one generated test argument.
pub trait Strategy {
    /// The value type this strategy produces.
    type Value;
    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;
}

/// Integers that can be drawn uniformly from a range.
pub trait UniformInt: Copy {
    /// Widen to u64 for sampling arithmetic.
    fn to_u64(self) -> u64;
    /// Narrow from u64 (value is always in range by construction).
    fn from_u64(v: u64) -> Self;
}

macro_rules! impl_uniform_int {
    ($($t:ty),+) => {
        $(impl UniformInt for $t {
            fn to_u64(self) -> u64 {
                self as u64
            }
            fn from_u64(v: u64) -> Self {
                v as $t
            }
        })+
    };
}
impl_uniform_int!(u8, u16, u32, u64, usize);

impl<T: UniformInt> Strategy for Range<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start.to_u64();
        let hi = self.end.to_u64();
        assert!(hi > lo, "empty range strategy");
        T::from_u64(lo + rng.below(hi - lo))
    }
}

impl<T: UniformInt> Strategy for RangeInclusive<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let lo = self.start().to_u64();
        let hi = self.end().to_u64();
        assert!(hi >= lo, "empty range strategy");
        if lo == 0 && hi == u64::MAX {
            return T::from_u64(rng.next_u64());
        }
        T::from_u64(lo + rng.below(hi - lo + 1))
    }
}

/// Types with a full-domain default strategy (`any::<T>()`).
pub trait Arbitrary {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),+) => {
        $(impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.next_u64() as $t
            }
        })+
    };
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> Self {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// The `any::<T>()` strategy.
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// Collection strategies (`proptest::collection::vec`).
pub mod collection {
    use super::{Strategy, TestRng};
    use std::ops::{Range, RangeInclusive};

    /// Length bounds for a generated collection (half-open).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        lo: usize,
        hi: usize,
    }

    impl From<Range<usize>> for SizeRange {
        fn from(r: Range<usize>) -> Self {
            SizeRange {
                lo: r.start,
                hi: r.end,
            }
        }
    }

    impl From<RangeInclusive<usize>> for SizeRange {
        fn from(r: RangeInclusive<usize>) -> Self {
            SizeRange {
                lo: *r.start(),
                hi: *r.end() + 1,
            }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { lo: n, hi: n + 1 }
        }
    }

    /// Strategy producing `Vec`s of values drawn from `element`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy with a length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            assert!(self.size.hi > self.size.lo, "empty size range");
            let n = self.size.lo + rng.below((self.size.hi - self.size.lo) as u64) as usize;
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Everything a property test file needs in scope.
pub mod prelude {
    pub use crate::test_runner::TestCaseError;
    pub use crate::{any, Arbitrary, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, proptest};
}

/// Declare deterministic property tests.
///
/// Mirrors upstream proptest's surface: each `fn` inside the block takes
/// `name in strategy` arguments and is wrapped in a runner that draws
/// [`test_runner::CASES`] samples.
#[macro_export]
macro_rules! proptest {
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strategy:expr),+ $(,)?) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                let mut rng =
                    $crate::test_runner::TestRng::from_name(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..$crate::test_runner::CASES {
                    $(let $arg = $crate::Strategy::generate(&($strategy), &mut rng);)+
                    let outcome: ::std::result::Result<(), $crate::test_runner::TestCaseError> =
                        (|| {
                            $body
                            ::std::result::Result::Ok(())
                        })();
                    if let ::std::result::Result::Err(e) = outcome {
                        panic!("property failed at case {case}: {e}");
                    }
                }
            }
        )+
    };
}

/// Property-test assertion; fails the current case without panicking.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}",
                stringify!($cond)
            )));
        }
    };
    ($cond:expr, $($fmt:tt)+) => {
        if !$cond {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: {}: {}",
                stringify!($cond),
                format!($($fmt)+)
            )));
        }
    };
}

/// Property-test equality assertion.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        let (lhs, rhs) = (&$a, &$b);
        if lhs != rhs {
            return ::std::result::Result::Err($crate::test_runner::TestCaseError(format!(
                "assertion failed: `{} == {}` ({lhs:?} != {rhs:?})",
                stringify!($a),
                stringify!($b)
            )));
        }
    }};
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn deterministic_streams() {
        let mut a = crate::test_runner::TestRng::from_name("x");
        let mut b = crate::test_runner::TestRng::from_name("x");
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn range_strategies_respect_bounds() {
        let mut rng = crate::test_runner::TestRng::from_name("bounds");
        for _ in 0..1000 {
            let v = (3u16..9).generate(&mut rng);
            assert!((3..9).contains(&v));
            let w = (5u64..=6).generate(&mut rng);
            assert!((5..=6).contains(&w));
        }
    }

    #[test]
    fn vec_strategy_sizes() {
        let mut rng = crate::test_runner::TestRng::from_name("vecs");
        for _ in 0..200 {
            let v = crate::collection::vec(any::<bool>(), 2..5).generate(&mut rng);
            assert!((2..5).contains(&v.len()));
        }
    }

    proptest! {
        #[test]
        fn macro_machinery_works(a in 0u32..10, b in any::<bool>()) {
            prop_assert!(a < 10);
            prop_assert!(a < 10, "a={a} b={b}");
            prop_assert_eq!(a < 10, true);
        }
    }
}
