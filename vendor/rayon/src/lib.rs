//! Offline vendored stand-in for the `rayon` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the `par_iter()` / `into_par_iter()` entry points the benchmark harness
//! uses, executing sequentially on the calling thread. Results are
//! identical to rayon's (the workspace only uses order-preserving
//! `map`/`collect` pipelines); only wall-clock parallel speedup is lost,
//! which is acceptable for an offline build.

/// Sequential equivalents of rayon's parallel-iterator entry points.
pub mod prelude {
    /// `into_par_iter()` for owned collections and ranges.
    pub trait IntoParallelIterator {
        /// The underlying (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type.
        type Item;
        /// Convert into an iterator. Sequential in this vendored build.
        fn into_par_iter(self) -> Self::Iter;
    }

    impl<I: IntoIterator> IntoParallelIterator for I {
        type Iter = I::IntoIter;
        type Item = I::Item;
        fn into_par_iter(self) -> I::IntoIter {
            self.into_iter()
        }
    }

    /// `par_iter()` for borrowed collections.
    pub trait IntoParallelRefIterator<'a> {
        /// The underlying (sequential) iterator type.
        type Iter: Iterator<Item = Self::Item>;
        /// Item type (a reference).
        type Item: 'a;
        /// Iterate by reference. Sequential in this vendored build.
        fn par_iter(&'a self) -> Self::Iter;
    }

    impl<'a, C: 'a> IntoParallelRefIterator<'a> for C
    where
        &'a C: IntoIterator,
    {
        type Iter = <&'a C as IntoIterator>::IntoIter;
        type Item = <&'a C as IntoIterator>::Item;
        fn par_iter(&'a self) -> Self::Iter {
            self.into_iter()
        }
    }
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[test]
    fn into_par_iter_matches_sequential() {
        let doubled: Vec<u32> = (0u32..8).into_par_iter().map(|x| x * 2).collect();
        assert_eq!(doubled, vec![0, 2, 4, 6, 8, 10, 12, 14]);
    }

    #[test]
    fn par_iter_borrows() {
        let xs = vec![1u64, 2, 3];
        let sum: u64 = xs.par_iter().map(|x| x * x).sum();
        assert_eq!(sum, 14);
        assert_eq!(xs.len(), 3);
    }
}
