//! Offline vendored stand-in for the `serde_json` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the subset the workspace uses: a [`Value`] tree, a strict JSON parser
//! ([`from_str`]), and compact / pretty printers ([`to_string`],
//! [`to_string_pretty`]). There is no serde data model or derive support —
//! callers build [`Value`]s explicitly, which keeps output key order
//! deterministic (objects preserve insertion order).

use std::collections::BTreeMap;
use std::fmt;

/// A JSON document node.
#[derive(Clone, Debug, PartialEq)]
pub enum Value {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A number (stored exactly for integers).
    Number(Number),
    /// A string.
    String(String),
    /// An array.
    Array(Vec<Value>),
    /// An object. Keys iterate in insertion order.
    Object(Map),
}

/// A JSON number: integer when possible, float otherwise.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum Number {
    /// Unsigned integer.
    U64(u64),
    /// Negative integer.
    I64(i64),
    /// Floating point.
    F64(f64),
}

/// An insertion-ordered string → [`Value`] map.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Map {
    keys: Vec<String>,
    vals: BTreeMap<String, Value>,
}

impl Map {
    /// An empty map.
    pub fn new() -> Self {
        Map::default()
    }

    /// Insert (or replace) a key.
    pub fn insert(&mut self, key: impl Into<String>, value: Value) {
        let key = key.into();
        if self.vals.insert(key.clone(), value).is_none() {
            self.keys.push(key);
        }
    }

    /// Look up a key.
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.vals.get(key)
    }

    /// Number of entries.
    pub fn len(&self) -> usize {
        self.keys.len()
    }

    /// True when no entries are present.
    pub fn is_empty(&self) -> bool {
        self.keys.is_empty()
    }

    /// Iterate entries in insertion order.
    pub fn iter(&self) -> impl Iterator<Item = (&String, &Value)> {
        self.keys.iter().map(move |k| {
            let v = self.vals.get(k).expect("key tracked in insertion order");
            (k, v)
        })
    }
}

impl Value {
    /// As a string slice, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::String(s) => Some(s),
            _ => None,
        }
    }

    /// As a u64, if this is an unsigned integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As an f64, for any numeric value.
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::Number(Number::U64(v)) => Some(*v as f64),
            Value::Number(Number::I64(v)) => Some(*v as f64),
            Value::Number(Number::F64(v)) => Some(*v),
            _ => None,
        }
    }

    /// As a bool, if boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// As an array, if this is an array.
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Array(a) => Some(a),
            _ => None,
        }
    }

    /// As an object, if this is an object.
    pub fn as_object(&self) -> Option<&Map> {
        match self {
            Value::Object(m) => Some(m),
            _ => None,
        }
    }

    /// Object field access (`None` for non-objects / missing keys).
    pub fn get(&self, key: &str) -> Option<&Value> {
        self.as_object().and_then(|m| m.get(key))
    }
}

impl From<&str> for Value {
    fn from(s: &str) -> Value {
        Value::String(s.to_string())
    }
}
impl From<String> for Value {
    fn from(s: String) -> Value {
        Value::String(s)
    }
}
impl From<u64> for Value {
    fn from(v: u64) -> Value {
        Value::Number(Number::U64(v))
    }
}
impl From<usize> for Value {
    fn from(v: usize) -> Value {
        Value::Number(Number::U64(v as u64))
    }
}
impl From<f64> for Value {
    fn from(v: f64) -> Value {
        Value::Number(Number::F64(v))
    }
}
impl From<bool> for Value {
    fn from(v: bool) -> Value {
        Value::Bool(v)
    }
}
impl From<Vec<Value>> for Value {
    fn from(v: Vec<Value>) -> Value {
        Value::Array(v)
    }
}

/// A parse error with byte offset.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Error {
    /// Human-readable description.
    pub message: String,
    /// Byte offset of the error.
    pub offset: usize,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} at byte {}", self.message, self.offset)
    }
}

impl std::error::Error for Error {}

/// Parse a JSON document. Trailing non-whitespace is an error.
pub fn from_str(input: &str) -> Result<Value, Error> {
    let mut p = Parser {
        bytes: input.as_bytes(),
        pos: 0,
    };
    p.skip_ws();
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(p.err("trailing characters"));
    }
    Ok(v)
}

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

impl<'a> Parser<'a> {
    fn err(&self, message: &str) -> Error {
        Error {
            message: message.to_string(),
            offset: self.pos,
        }
    }

    fn peek(&self) -> Option<u8> {
        self.bytes.get(self.pos).copied()
    }

    fn skip_ws(&mut self) {
        while matches!(self.peek(), Some(b' ' | b'\t' | b'\n' | b'\r')) {
            self.pos += 1;
        }
    }

    fn expect(&mut self, b: u8) -> Result<(), Error> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            Err(self.err(&format!("expected '{}'", b as char)))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value, Error> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            Err(self.err("invalid literal"))
        }
    }

    fn value(&mut self) -> Result<Value, Error> {
        match self.peek() {
            Some(b'{') => self.object(),
            Some(b'[') => self.array(),
            Some(b'"') => Ok(Value::String(self.string()?)),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'n') => self.literal("null", Value::Null),
            Some(b'-' | b'0'..=b'9') => self.number(),
            _ => Err(self.err("expected a JSON value")),
        }
    }

    fn object(&mut self) -> Result<Value, Error> {
        self.expect(b'{')?;
        let mut map = Map::new();
        self.skip_ws();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Object(map));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.skip_ws();
            self.expect(b':')?;
            self.skip_ws();
            let val = self.value()?;
            map.insert(key, val);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Object(map));
                }
                _ => return Err(self.err("expected ',' or '}'")),
            }
        }
    }

    fn array(&mut self) -> Result<Value, Error> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        self.skip_ws();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Array(items));
        }
        loop {
            self.skip_ws();
            items.push(self.value()?);
            self.skip_ws();
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Array(items));
                }
                _ => return Err(self.err("expected ',' or ']'")),
            }
        }
    }

    fn string(&mut self) -> Result<String, Error> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.peek() {
                None => return Err(self.err("unterminated string")),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    let esc = self.peek().ok_or_else(|| self.err("bad escape"))?;
                    self.pos += 1;
                    match esc {
                        b'"' => out.push('"'),
                        b'\\' => out.push('\\'),
                        b'/' => out.push('/'),
                        b'b' => out.push('\u{0008}'),
                        b'f' => out.push('\u{000C}'),
                        b'n' => out.push('\n'),
                        b'r' => out.push('\r'),
                        b't' => out.push('\t'),
                        b'u' => {
                            let hex = self
                                .bytes
                                .get(self.pos..self.pos + 4)
                                .ok_or_else(|| self.err("short \\u escape"))?;
                            let hex =
                                std::str::from_utf8(hex).map_err(|_| self.err("bad \\u escape"))?;
                            let code = u32::from_str_radix(hex, 16)
                                .map_err(|_| self.err("bad \\u escape"))?;
                            self.pos += 4;
                            // Surrogate pairs are not needed for our data;
                            // map unpaired surrogates to the replacement char.
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                        }
                        _ => return Err(self.err("unknown escape")),
                    }
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so the
                    // byte stream is valid UTF-8).
                    let rest = &self.bytes[self.pos..];
                    let s = std::str::from_utf8(rest).map_err(|_| self.err("invalid utf-8"))?;
                    let ch = s.chars().next().ok_or_else(|| self.err("empty"))?;
                    out.push(ch);
                    self.pos += ch.len_utf8();
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value, Error> {
        let start = self.pos;
        if self.peek() == Some(b'-') {
            self.pos += 1;
        }
        while matches!(self.peek(), Some(b'0'..=b'9')) {
            self.pos += 1;
        }
        let mut float = false;
        if self.peek() == Some(b'.') {
            float = true;
            self.pos += 1;
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        if matches!(self.peek(), Some(b'e' | b'E')) {
            float = true;
            self.pos += 1;
            if matches!(self.peek(), Some(b'+' | b'-')) {
                self.pos += 1;
            }
            while matches!(self.peek(), Some(b'0'..=b'9')) {
                self.pos += 1;
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos])
            .map_err(|_| self.err("invalid number"))?;
        if !float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::Number(Number::U64(u)));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::Number(Number::I64(i)));
            }
        }
        text.parse::<f64>()
            .map(|f| Value::Number(Number::F64(f)))
            .map_err(|_| self.err("invalid number"))
    }
}

fn escape_into(out: &mut String, s: &str) {
    out.push('"');
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

fn write_number(out: &mut String, n: Number) {
    match n {
        Number::U64(v) => out.push_str(&v.to_string()),
        Number::I64(v) => out.push_str(&v.to_string()),
        Number::F64(v) => {
            if v.is_finite() {
                // Keep integral floats distinguishable from integers.
                if v.fract() == 0.0 && v.abs() < 1e15 {
                    out.push_str(&format!("{v:.1}"));
                } else {
                    out.push_str(&format!("{v}"));
                }
            } else {
                // JSON has no inf/nan; emit null like serde_json does.
                out.push_str("null");
            }
        }
    }
}

fn write_value(out: &mut String, v: &Value, indent: Option<usize>, level: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(true) => out.push_str("true"),
        Value::Bool(false) => out.push_str("false"),
        Value::Number(n) => write_number(out, *n),
        Value::String(s) => escape_into(out, s),
        Value::Array(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                write_value(out, item, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push(']');
        }
        Value::Object(map) => {
            if map.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in map.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                if let Some(width) = indent {
                    out.push('\n');
                    out.push_str(&" ".repeat(width * (level + 1)));
                }
                escape_into(out, k);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                write_value(out, val, indent, level + 1);
            }
            if let Some(width) = indent {
                out.push('\n');
                out.push_str(&" ".repeat(width * level));
            }
            out.push('}');
        }
    }
}

/// Serialize compactly.
pub fn to_string(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, None, 0);
    out
}

/// Serialize with two-space indentation.
pub fn to_string_pretty(v: &Value) -> String {
    let mut out = String::new();
    write_value(&mut out, v, Some(2), 0);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_document() {
        let text = r#"{"a": [1, -2, 3.5, true, null], "b": {"nested": "va\"lue"}, "c": 18446744073709551615}"#;
        let v = from_str(text).expect("parses");
        assert_eq!(v.get("c").and_then(Value::as_u64), Some(u64::MAX));
        assert_eq!(
            v.get("a").and_then(Value::as_array).map(|a| a.len()),
            Some(5)
        );
        let printed = to_string(&v);
        assert_eq!(from_str(&printed).expect("reparses"), v);
        let pretty = to_string_pretty(&v);
        assert_eq!(from_str(&pretty).expect("reparses pretty"), v);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str("{").is_err());
        assert!(from_str("[1,]").is_err());
        assert!(from_str("12 34").is_err());
        assert!(from_str("\"unterminated").is_err());
    }

    #[test]
    fn object_preserves_insertion_order() {
        let mut m = Map::new();
        m.insert("z", Value::from(1u64));
        m.insert("a", Value::from(2u64));
        assert_eq!(to_string(&Value::Object(m)), r#"{"z":1,"a":2}"#);
    }

    #[test]
    fn escapes_control_chars() {
        let v = Value::from("line\nbreak\u{0001}");
        let s = to_string(&v);
        assert_eq!(s, "\"line\\nbreak\\u0001\"");
        assert_eq!(from_str(&s).expect("parses"), v);
    }
}
