//! Offline vendored stand-in for the `criterion` crate.
//!
//! The build environment has no crates.io access, so this crate provides
//! the minimal harness API the benchmark suite uses: [`Criterion`],
//! [`BenchmarkGroup`], [`Bencher`], [`black_box`], and the
//! `criterion_group!` / `criterion_main!` macros. Each benchmark runs a
//! short warmup plus `sample_size` timed samples and prints the mean
//! per-iteration wall time. There is no statistical analysis, plotting,
//! or baseline comparison.
//!
//! This is a benchmark *harness*, not part of the simulation: wall-clock
//! timing here is intentional and exempt from the SL001 determinism lint
//! (which scopes to simulation crates only).

use std::time::Instant;

/// Top-level harness handle passed to each `criterion_group!` target.
#[derive(Default)]
pub struct Criterion {}

impl Criterion {
    /// Start a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        let name = name.into();
        eprintln!("benchmark group: {name}");
        BenchmarkGroup {
            _parent: self,
            name,
            sample_size: 10,
        }
    }
}

/// A named group of benchmarks sharing configuration.
pub struct BenchmarkGroup<'a> {
    _parent: &'a mut Criterion,
    name: String,
    sample_size: usize,
}

impl BenchmarkGroup<'_> {
    /// Set the number of timed samples per benchmark.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.sample_size = n.max(1);
        self
    }

    /// Run one benchmark and print its mean per-iteration time.
    pub fn bench_function<F>(&mut self, id: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let id = id.into();
        let mut b = Bencher {
            total_ns: 0,
            iters: 0,
        };
        // One untimed warmup pass.
        f(&mut b);
        b.total_ns = 0;
        b.iters = 0;
        for _ in 0..self.sample_size {
            f(&mut b);
        }
        let mean_ns = if b.iters == 0 {
            0
        } else {
            b.total_ns / b.iters as u128
        };
        eprintln!(
            "  {}/{id}: {:.3} ms/iter over {} iters",
            self.name,
            mean_ns as f64 / 1e6,
            b.iters
        );
        self
    }

    /// End the group (reporting is per-benchmark; nothing extra to flush).
    pub fn finish(&mut self) {}
}

/// Passed to each benchmark closure; times the provided routine.
pub struct Bencher {
    total_ns: u128,
    iters: u64,
}

impl Bencher {
    /// Time one execution of `routine`, accumulating into the sample.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        let out = routine();
        self.total_ns += start.elapsed().as_nanos();
        self.iters += 1;
        black_box(out);
    }
}

/// Opaque value barrier preventing the optimizer from deleting work.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Bundle benchmark functions into a named group runner.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $crate::Criterion::default();
            $($target(&mut c);)+
        }
    };
    ($group:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        fn $group() {
            let mut c = $cfg;
            $($target(&mut c);)+
        }
    };
}

/// Entry point running every group (used with `harness = false`).
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn harness_runs_and_counts_iters() {
        let mut c = Criterion::default();
        let mut g = c.benchmark_group("smoke");
        let mut calls = 0u64;
        g.sample_size(3);
        g.bench_function("count", |b| b.iter(|| calls += 1));
        g.finish();
        // 1 warmup + 3 samples.
        assert_eq!(calls, 4);
    }
}
