//! Key-value store snapshotting: a third scenario on the public API.
//! An in-fabric KV table periodically snapshots itself to the SSD through
//! the streamer, then restores and verifies — exercising both write and
//! read directions plus the paper's Sec 7 out-of-order extension for the
//! scattered read-back.
//!
//! Run with: `cargo run --release --example kv_snapshot`

use snacc::nvme::NvmeProfile;
use snacc::prelude::*;
use snacc::sim::SimRng;
use std::collections::HashMap;

const SLOT: u64 = 4096; // one bucket per 4 KiB page

fn bucket_bytes(k: u64, v: &[u8]) -> Vec<u8> {
    let mut b = vec![0u8; SLOT as usize];
    b[0..8].copy_from_slice(&k.to_le_bytes());
    b[8..16].copy_from_slice(&(v.len() as u64).to_le_bytes());
    b[16..16 + v.len()].copy_from_slice(v);
    b
}

fn main() {
    // Out-of-order issue (Sec 7) helps the scattered restore path.
    let cfg = SystemConfig {
        streamer: StreamerConfig::snacc_ooo(StreamerVariant::Uram),
        nvme: NvmeProfile::samsung_990pro(),
        enforce_iommu: true,
        seed: 0x6b76,
    };
    let mut sys = SnaccSystem::bring_up(cfg);
    let ports = sys.streamer.ports();

    // Build a KV table with 4096 buckets.
    let mut rng = SimRng::new(99);
    let mut table: HashMap<u64, Vec<u8>> = HashMap::new();
    for i in 0..4096u64 {
        let mut v = vec![0u8; 64 + (rng.gen_range(1024) as usize)];
        rng.fill_bytes(&mut v);
        table.insert(i, v);
    }

    // Snapshot: write each bucket to its slot (bucketed layout).
    let t0 = sys.en.now();
    let mut written = 0u64;
    for (&k, v) in &table {
        let addr = k * SLOT;
        let hdr = StreamBeat::mid(addr.to_le_bytes().to_vec());
        while !axis::push(&ports.wr_in, &mut sys.en, hdr.clone()) {
            assert!(sys.en.step());
        }
        let beat = StreamBeat::last(bucket_bytes(k, v));
        while !axis::push(&ports.wr_in, &mut sys.en, beat.clone()) {
            assert!(sys.en.step());
        }
        written += 1;
        while axis::pop(&ports.wr_resp, &mut sys.en).is_some() {}
    }
    sys.en.run();
    while axis::pop(&ports.wr_resp, &mut sys.en).is_some() {}
    let snap_dt = sys.en.now().since(t0).as_secs_f64();
    println!(
        "snapshot: {written} buckets ({} MiB) in {:.2} ms simulated ({:.2} GB/s)",
        (written * SLOT) >> 20,
        snap_dt * 1e3,
        (written * SLOT) as f64 / 1e9 / snap_dt
    );

    // Restore: scattered reads of 512 random buckets, verify contents.
    let t1 = sys.en.now();
    let mut checked = 0;
    for _ in 0..512 {
        let k = rng.gen_range(4096);
        axis::push(&ports.rd_cmd, &mut sys.en, encode_read_cmd(k * SLOT, SLOT));
        let mut page = Vec::new();
        loop {
            match axis::pop(&ports.rd_data, &mut sys.en) {
                Some(beat) => {
                    let done = beat.last;
                    page.extend_from_slice(&beat.data);
                    if done {
                        break;
                    }
                }
                None => assert!(sys.en.step()),
            }
        }
        let rk = u64::from_le_bytes(page[0..8].try_into().unwrap());
        let rlen = u64::from_le_bytes(page[8..16].try_into().unwrap()) as usize;
        assert_eq!(rk, k);
        assert_eq!(&page[16..16 + rlen], &table[&k][..], "bucket {k} corrupt");
        checked += 1;
    }
    let rest_dt = sys.en.now().since(t1).as_secs_f64();
    println!(
        "restore: verified {checked} random buckets in {:.2} ms simulated ({:.2} GB/s scattered)",
        rest_dt * 1e3,
        (checked as u64 * SLOT) as f64 / 1e9 / rest_dt
    );
}
