//! Quickstart: bring up the full simulated node, write data to the SSD
//! through the streamer's AXI4-Stream interfaces, read it back, and
//! verify integrity — the minimal "hello, SNAcc" flow.
//!
//! Run with: `cargo run --release --example quickstart`

use snacc::prelude::*;

fn main() {
    // One call builds the whole testbed: host memory + IOMMU, TaPaSCo
    // shell with the SNAcc NVMe plugin, a 990 PRO-class SSD, and runs the
    // paper's host-side bring-up (admin queue, identify, I/O queues into
    // the FPGA BAR, doorbell programming, IOMMU grants).
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
    println!("bring-up complete: variant = {:?}", sys.streamer.variant());

    let ports = sys.streamer.ports();

    // Write 1 MiB at byte address 0: header beat carries the address,
    // data beats follow, TLAST closes the transfer (paper Sec 4.1, ①b).
    let payload: Vec<u8> = (0..1 << 20).map(|i| (i * 31 % 251) as u8).collect();
    axis::push(
        &ports.wr_in,
        &mut sys.en,
        StreamBeat::mid(0u64.to_le_bytes().to_vec()),
    );
    for chunk in payload.chunks(64 << 10) {
        let last =
            chunk.as_ptr() as usize + chunk.len() == payload.as_ptr() as usize + payload.len();
        while !axis::push(
            &ports.wr_in,
            &mut sys.en,
            StreamBeat {
                data: chunk.into(),
                last,
            },
        ) {
            assert!(sys.en.step());
        }
    }
    sys.en.run();
    let token = axis::pop(&ports.wr_resp, &mut sys.en).expect("write response (⑥b)");
    let written = u64::from_le_bytes(token.data[..8].try_into().unwrap());
    println!(
        "write response: {written} bytes persisted at t = {}",
        sys.en.now()
    );

    // Read it back (①a → ⑥a).
    axis::push(&ports.rd_cmd, &mut sys.en, encode_read_cmd(0, 1 << 20));
    let mut back = Vec::new();
    loop {
        match axis::pop(&ports.rd_data, &mut sys.en) {
            Some(beat) => {
                let done = beat.last;
                back.extend_from_slice(&beat.data);
                if done {
                    break;
                }
            }
            None => assert!(sys.en.step(), "read stalled"),
        }
    }
    assert_eq!(back, payload, "readback must match");
    println!(
        "readback verified: {} bytes, simulated time {}",
        back.len(),
        sys.en.now()
    );

    // No host involvement after bring-up: that's the paper's headline.
    let m = sys.streamer.metrics();
    println!(
        "streamer: {} commands ({} writes, {} reads), {} doorbells, {} errors",
        m.cmds_issued.get(),
        m.write_cmds.get(),
        m.read_cmds.get(),
        m.doorbells.get(),
        m.errors.get()
    );
}
