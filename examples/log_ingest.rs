//! Network-to-storage log ingestion: a second domain-specific scenario on
//! the public API. A 100 G source streams variable-length log batches;
//! the FPGA appends them to an on-SSD log with per-batch index records,
//! autonomously. Ethernet flow control throttles the source to the SSD's
//! sustained write rate — exactly the backpressure story of Sec 4.7.
//!
//! Run with: `cargo run --release --example log_ingest`

use snacc::net::frame::MacAddr;
use snacc::net::mac::{self, EthMac, MacConfig};
use snacc::net::traffic::{pattern_byte, StreamSender};
use snacc::prelude::*;

fn main() {
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
    let ports = sys.streamer.ports();

    // 100 G link: log source → ingest FPGA.
    let tx = EthMac::new("log-src", MacAddr::from_index(1), MacConfig::eth_100g(), 21);
    let rx = EthMac::new("ingest", MacAddr::from_index(2), MacConfig::eth_100g(), 22);
    mac::connect(&tx, &rx);

    let total: u64 = 512 << 20; // 512 MiB of log data
    let batch: u64 = 2 << 20; // 2 MiB append batches
    let _sender = StreamSender::start(tx.clone(), &mut sys.en, MacAddr::from_index(2), 8192, total);

    // Ingest loop: drain frames into append batches, write each batch as
    // one streamer transfer. Frames stay in the MAC RX buffer (and PAUSE
    // the sender) whenever the streamer applies backpressure.
    let mut appended: u64 = 0;
    let mut responses: u64 = 0;
    let mut acc: Vec<u8> = Vec::with_capacity(batch as usize);
    let t0 = sys.en.now();
    while appended < total {
        // Collect bytes for the current batch.
        while (acc.len() as u64) < batch {
            if let Some(f) = mac::pop_frame(&rx, &mut sys.en) {
                acc.extend_from_slice(&f.payload);
            } else if !sys.en.step() {
                panic!("source dried up early");
            }
        }
        // Append transfer: header (log tail address) + data.
        let hdr = StreamBeat::mid(appended.to_le_bytes().to_vec());
        while !axis::push(&ports.wr_in, &mut sys.en, hdr.clone()) {
            assert!(sys.en.step());
        }
        let take: Vec<u8> = acc.drain(..batch as usize).collect();
        for chunk in take.chunks(64 << 10) {
            let last = acc.is_empty() && chunk.len() < (64 << 10)
                || chunk.as_ptr() as usize + chunk.len() == take.as_ptr() as usize + take.len();
            while !axis::push(
                &ports.wr_in,
                &mut sys.en,
                StreamBeat {
                    data: chunk.into(),
                    last,
                },
            ) {
                assert!(sys.en.step());
            }
        }
        appended += batch;
        // Reap responses opportunistically.
        while axis::pop(&ports.wr_resp, &mut sys.en).is_some() {
            responses += 1;
        }
    }
    sys.en.run();
    while axis::pop(&ports.wr_resp, &mut sys.en).is_some() {
        responses += 1;
    }
    let dt = sys.en.now().since(t0).as_secs_f64();
    println!(
        "appended {responses} batches ({} MiB) at {:.2} GB/s simulated",
        (responses * batch) >> 20,
        (responses * batch) as f64 / 1e9 / dt
    );
    let s = tx.borrow().stats();
    println!(
        "source: {} frames sent, paused {} times by 802.3x backpressure",
        s.tx_frames, s.pauses_received
    );

    // Verify the log contents against the deterministic source pattern.
    let probe_off: u64 = 123 << 20;
    let media = sys
        .nvme
        .with(|d| d.nand_mut().media_mut().read_vec(probe_off, 4096));
    for (i, &b) in media.iter().enumerate() {
        assert_eq!(b, pattern_byte(probe_off + i as u64), "log corrupted");
    }
    println!("log integrity probe at +{} MiB: ok", probe_off >> 20);
}
