//! The paper's Sec 6 case study, end to end: images stream in over
//! 100 G Ethernet, are classified on the FPGA, and land — together with
//! their classification records — in a database on the SSD, all without
//! host involvement.
//!
//! Run with: `cargo run --release --example image_pipeline [-- <images>]`

use snacc::apps::images::{generate_image, ImageFormat};
use snacc::apps::pipeline::{image_slot_bytes, ClassRecord};
use snacc::prelude::*;

fn main() {
    let images: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(64);

    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::HostDram));
    let cfg = CaseStudyConfig {
        images,
        ..Default::default()
    };
    println!(
        "streaming {images} × {} B frames over simulated 100 G Ethernet...",
        ImageFormat::capture().bytes()
    );
    let report = run_snacc_case_study(&mut sys, cfg.clone());

    println!(
        "stored {} images ({:.2} GB) in {:.1} ms simulated time",
        report.images,
        report.image_bytes as f64 / 1e9,
        report.elapsed.as_secs_f64() * 1e3,
    );
    println!(
        "bandwidth {:.2} GB/s ({:.0} frames/s), classification accuracy {}/{}",
        report.bandwidth_gbps, report.fps, report.correct, report.classified
    );
    println!(
        "PCIe traffic: {:.2} bytes on the bus per stored byte",
        report.pcie_bytes as f64 / report.image_bytes as f64
    );

    // Verify database contents directly on the simulated media: one image
    // and its classification record.
    let probe = images / 2;
    let slot = image_slot_bytes(ImageFormat::capture());
    let (_, expect) = generate_image(ImageFormat::capture(), probe);
    let media = sys.nvme.with(|d| {
        d.nand_mut()
            .media_mut()
            .read_vec(cfg.image_table + probe * slot, 4096)
    });
    assert_eq!(&media[..], &expect[..4096], "image table verified");
    // Records flush in 4 KiB pages of 256; only flushed pages are on media.
    let flushed_records = (images / 256) * 256;
    if probe < flushed_records {
        let rec_raw = sys.nvme.with(|d| {
            d.nand_mut()
                .media_mut()
                .read_vec(cfg.record_table + probe * 16, 16)
        });
        let rec = ClassRecord::decode(&rec_raw);
        assert_eq!(rec.id, probe);
        println!(
            "db probe: image {probe} ok; record = id {} class {} (truth {})",
            rec.id, rec.class, rec.truth
        );
    } else {
        println!("db probe: image {probe} ok (its record page is still buffering on-FPGA)");
    }
}
