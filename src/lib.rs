//! # SNAcc — streaming-based network-to-storage accelerators (simulated)
//!
//! A full-system Rust reproduction of *"SNAcc: An Open-Source Framework
//! for Streaming-based Network-to-Storage Accelerators"* (Volz, Kalkhof,
//! Koch — SC Workshops '25). The paper's artifact is an FPGA design; this
//! crate substitutes the hardware with a functional + timing
//! discrete-event simulation and re-implements the entire stack on top:
//!
//! * [`sim`] — deterministic picosecond event engine and bandwidth links,
//! * [`mem`] — URAM / on-board DRAM / host-DRAM memory models,
//! * [`pcie`] — TLP-level fabric with peer-to-peer routing and an IOMMU,
//! * [`nvme`] — spec-faithful NVMe queues/PRPs on a calibrated
//!   990 PRO-class SSD model,
//! * [`net`] — 100 G Ethernet with IEEE 802.3x PAUSE flow control,
//! * [`fpga`] — AXI4-Stream, PEs and a TaPaSCo-style platform shell,
//! * [`core`] — **the paper's contribution**: the NVMe Streamer with
//!   on-the-fly PRP synthesis and in-order retirement,
//! * [`spdk`] — the host-CPU polling baseline,
//! * [`apps`] — the Sec 6 image-classification case study,
//! * [`trace`] — deterministic tracing, metrics and Perfetto export,
//! * [`faults`] — seed-driven fault campaigns across the net/PCIe/NVMe
//!   layers, with streamer retry/recovery accounting.
//!
//! ## Quickstart
//!
//! ```
//! use snacc::apps::system::{SnaccSystem, SystemConfig};
//! use snacc::core::config::StreamerVariant;
//! use snacc::fpga::axis::{self, StreamBeat};
//!
//! // Bring up host + TaPaSCo shell + SNAcc plugin + SSD.
//! let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
//!
//! // A user PE writes 8 KiB at byte address 4096: address beat, data
//! // beat with TLAST, then a response token arrives.
//! let ports = sys.streamer.ports();
//! axis::push(&ports.wr_in, &mut sys.en, StreamBeat::mid(4096u64.to_le_bytes().to_vec()));
//! axis::push(&ports.wr_in, &mut sys.en, StreamBeat::last(vec![7u8; 8192]));
//! sys.en.run();
//! assert!(axis::pop(&ports.wr_resp, &mut sys.en).is_some());
//!
//! // The bytes really are on the simulated SSD's media.
//! let media = sys.nvme.with(|d| d.nand_mut().media_mut().read_vec(4096, 8192));
//! assert_eq!(media, vec![7u8; 8192]);
//! ```

pub use snacc_apps as apps;
pub use snacc_core as core;
pub use snacc_faults as faults;
pub use snacc_fpga as fpga;
pub use snacc_mem as mem;
pub use snacc_net as net;
pub use snacc_nvme as nvme;
pub use snacc_pcie as pcie;
pub use snacc_sim as sim;
pub use snacc_spdk as spdk;
pub use snacc_trace as trace;

/// Convenience prelude for examples and downstream users.
pub mod prelude {
    pub use snacc_apps::pipeline::{run_snacc_case_study, CaseStudyConfig};
    pub use snacc_apps::system::{SnaccSystem, SystemConfig};
    pub use snacc_core::config::{RetirementMode, RetryPolicy, StreamerConfig, StreamerVariant};
    pub use snacc_core::streamer::{encode_read_cmd, StreamerHandle, UserPorts};
    pub use snacc_faults::FaultPlan;
    pub use snacc_fpga::axis::{self, StreamBeat};
    pub use snacc_sim::{Engine, SimDuration, SimTime};
}
