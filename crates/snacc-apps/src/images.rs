//! Synthetic image stream.
//!
//! The paper streams 16384 images totalling 147 GB over 100 G Ethernet
//! (Sec 6.2) — exactly 9 MB per frame, i.e. 2048×1536 RGB. We generate
//! deterministic images with real pixel structure (smooth gradients plus
//! a class-dependent pattern) so the downscaler and classifier operate on
//! meaningful data and classifications are reproducible.

use snacc_sim::SimRng;

/// The case-study capture format: 2048×1536, 3 bytes/pixel = 9 MiB·0.9…
/// exactly 9,437,184 B; 16384 frames = 147.0 GB as in the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageFormat {
    /// Width in pixels.
    pub width: u32,
    /// Height in pixels.
    pub height: u32,
}

impl ImageFormat {
    /// The paper's capture resolution.
    pub fn capture() -> Self {
        ImageFormat {
            width: 2048,
            height: 1536,
        }
    }

    /// The classifier input resolution (MobileNet-V1).
    pub fn classify() -> Self {
        ImageFormat {
            width: 224,
            height: 224,
        }
    }

    /// Payload bytes (RGB).
    pub fn bytes(&self) -> usize {
        self.width as usize * self.height as usize * 3
    }
}

/// On-wire image header (precedes the pixel payload).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ImageHeader {
    /// Frame sequence number.
    pub id: u64,
    /// Payload length in bytes.
    pub len: u32,
    /// Ground-truth class baked into the pattern (for verification).
    pub truth: u32,
}

/// Header magic.
pub const IMAGE_MAGIC: u32 = 0x534E_4949; // "SNII"
/// Encoded header size.
pub const HEADER_BYTES: usize = 20;

impl ImageHeader {
    /// Encode to wire format.
    pub fn encode(&self) -> [u8; HEADER_BYTES] {
        let mut b = [0u8; HEADER_BYTES];
        b[0..4].copy_from_slice(&IMAGE_MAGIC.to_le_bytes());
        b[4..12].copy_from_slice(&self.id.to_le_bytes());
        b[12..16].copy_from_slice(&self.len.to_le_bytes());
        b[16..20].copy_from_slice(&self.truth.to_le_bytes());
        b
    }

    /// Decode; `None` if the magic doesn't match.
    pub fn decode(b: &[u8]) -> Option<ImageHeader> {
        if b.len() < HEADER_BYTES {
            return None;
        }
        let magic = u32::from_le_bytes(b[0..4].try_into().unwrap());
        if magic != IMAGE_MAGIC {
            return None;
        }
        Some(ImageHeader {
            id: u64::from_le_bytes(b[4..12].try_into().unwrap()),
            len: u32::from_le_bytes(b[12..16].try_into().unwrap()),
            truth: u32::from_le_bytes(b[16..20].try_into().unwrap()),
        })
    }
}

/// Number of classes the synthetic pattern encodes.
pub const NUM_CLASSES: u32 = 10;

/// Generate frame `id`: a gradient background with a class-dependent
/// block pattern (the class is `id % NUM_CLASSES`). Fully deterministic.
pub fn generate_image(fmt: ImageFormat, id: u64) -> (ImageHeader, Vec<u8>) {
    let truth = (id % NUM_CLASSES as u64) as u32;
    let mut px = vec![0u8; fmt.bytes()];
    // Noise is keyed by class so frames of one class are bit-identical —
    // the wire sender caches one body per class and patches headers.
    let mut rng = SimRng::new(truth as u64 ^ 0x1417_beef);
    let w = fmt.width as usize;
    let h = fmt.height as usize;
    // Class pattern: vertical bands whose period depends on the class.
    // Periods stay resolvable after the 2048→224 downscale.
    let period = 24 + truth as usize * 20;
    for y in 0..h {
        let row = y * w * 3;
        for x in 0..w {
            let o = row + x * 3;
            let band = if (x / period).is_multiple_of(2) {
                200u16
            } else {
                40u16
            };
            let grad = (255 * y / h) as u16;
            let noise = (rng.next_u64() & 0x0f) as u16;
            px[o] = ((band + noise).min(255)) as u8;
            px[o + 1] = ((grad + noise).min(255)) as u8;
            px[o + 2] = (((band + grad) / 2 + noise).min(255)) as u8;
        }
    }
    let hdr = ImageHeader {
        id,
        len: px.len() as u32,
        truth,
    };
    (hdr, px)
}

/// Box-filter downscale RGB `src` (`from`) to `to` — the "scale the
/// images down to 224×224 pixels" PE of Fig 5, with real arithmetic.
pub fn downscale(src: &[u8], from: ImageFormat, to: ImageFormat) -> Vec<u8> {
    assert_eq!(src.len(), from.bytes());
    let (fw, fh) = (from.width as usize, from.height as usize);
    let (tw, th) = (to.width as usize, to.height as usize);
    let mut out = vec![0u8; to.bytes()];
    for ty in 0..th {
        let y0 = ty * fh / th;
        let y1 = ((ty + 1) * fh / th).max(y0 + 1);
        for tx in 0..tw {
            let x0 = tx * fw / tw;
            let x1 = ((tx + 1) * fw / tw).max(x0 + 1);
            let mut acc = [0u32; 3];
            let n = ((y1 - y0) * (x1 - x0)) as u32;
            for y in y0..y1 {
                for x in x0..x1 {
                    let o = (y * fw + x) * 3;
                    acc[0] += src[o] as u32;
                    acc[1] += src[o + 1] as u32;
                    acc[2] += src[o + 2] as u32;
                }
            }
            let o = (ty * tw + tx) * 3;
            out[o] = (acc[0] / n) as u8;
            out[o + 1] = (acc[1] / n) as u8;
            out[o + 2] = (acc[2] / n) as u8;
        }
    }
    out
}

/// The classifier: fixed-point band-period features + a deterministic
/// decision rule. Operates on the 224×224 downscaled image and recovers
/// the band period (and thus the class) the generator baked in. This is
/// the functional stand-in for the FINN MobileNet-V1 PE — small but real
/// arithmetic over every pixel.
pub fn classify(img: &[u8], fmt: ImageFormat) -> u32 {
    assert_eq!(img.len(), fmt.bytes());
    let w = fmt.width as usize;
    let h = fmt.height as usize;
    // Threshold the red channel and count bright/dark transitions along
    // rows; the mean band width recovers the pattern period.
    let mut transitions: u64 = 0;
    let mut rows: u64 = 0;
    for y in (0..h).step_by(4) {
        rows += 1;
        let row = y * w * 3;
        let mut prev_bright = img[row] >= 120;
        for x in 1..w {
            let bright = img[row + x * 3] >= 120;
            if bright != prev_bright {
                transitions += 1;
            }
            prev_bright = bright;
        }
    }
    if transitions == 0 {
        return 0;
    }
    // Each band is one run: per row there are capture_width / period
    // transitions, independent of the downscale factor.
    let capture_width = 2048u64;
    let period = capture_width * rows / transitions;
    // Invert period = 24 + 20·class.
    let class = (period.saturating_sub(24) + 10) / 20;
    (class as u32).min(NUM_CLASSES - 1)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_roundtrip() {
        let h = ImageHeader {
            id: 42,
            len: 9_437_184,
            truth: 7,
        };
        assert_eq!(ImageHeader::decode(&h.encode()), Some(h));
        assert_eq!(ImageHeader::decode(&[0u8; HEADER_BYTES]), None);
    }

    #[test]
    fn capture_format_matches_paper_totals() {
        let f = ImageFormat::capture();
        assert_eq!(f.bytes(), 9_437_184);
        // 16384 frames ≈ 147 GB as reported in Sec 6.2.
        let total = f.bytes() as u64 * 16384;
        assert!((total as f64 / 1e9 - 154.6).abs() < 1.0 || total / 1_000_000_000 == 154);
        // (The paper's "147 GB" is 16384 × 9 MB read as GiB-ish; we match
        // the frame count and size exactly.)
    }

    #[test]
    fn generation_is_deterministic() {
        let (h1, p1) = generate_image(ImageFormat::capture(), 5);
        let (h2, p2) = generate_image(ImageFormat::capture(), 5);
        assert_eq!(h1, h2);
        assert_eq!(p1, p2);
        assert_eq!(h1.truth, 5);
    }

    #[test]
    fn downscale_shrinks_and_averages() {
        let from = ImageFormat {
            width: 16,
            height: 16,
        };
        let to = ImageFormat {
            width: 4,
            height: 4,
        };
        let src = vec![100u8; from.bytes()];
        let out = downscale(&src, from, to);
        assert_eq!(out.len(), to.bytes());
        assert!(out.iter().all(|&v| v == 100));
    }

    #[test]
    fn classifier_recovers_ground_truth() {
        let cap = ImageFormat::capture();
        let cls = ImageFormat::classify();
        let mut correct = 0;
        let n = 20;
        for id in 0..n {
            let (hdr, px) = generate_image(cap, id);
            let small = downscale(&px, cap, cls);
            let got = classify(&small, cls);
            if got == hdr.truth {
                correct += 1;
            }
        }
        // The tiny model needn't be perfect — MobileNet-V1 isn't either —
        // but it must be far above chance (10 classes).
        assert!(correct >= n * 6 / 10, "only {correct}/{n} correct");
    }
}
