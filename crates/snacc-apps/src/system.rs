//! Full-system builders.
//!
//! Everything the paper's testbed contains, assembled in one call:
//! EPYC-class host (memory + IOMMU), Alveo U280 shell with the SNAcc
//! plugin, a 990 PRO-class SSD, and optionally a second FPGA acting as the
//! 100 G traffic source plus an A100-class GPU.

use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_core::hostinit::SnaccHostDriver;
use snacc_core::plugin::NvmeSubsystem;
use snacc_core::streamer::StreamerHandle;
use snacc_faults::FaultPlan;
use snacc_fpga::tapasco::TapascoShell;
use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::{NvmeDeviceHandle, NvmeProfile};
use snacc_pcie::target::HostMemTarget;
use snacc_pcie::{Iommu, PcieFabric, HOST_NODE};
use snacc_sim::Engine;
use std::cell::RefCell;
use std::rc::Rc;

/// Canonical fabric addresses used by all experiments.
pub mod layout {
    /// TaPaSCo BAR0 base.
    pub const SHELL_BAR: u64 = 0x4_0000_0000;
    /// NVMe controller BAR0 base.
    pub const NVME_BAR: u64 = 0x8_0000_0000;
    /// Host physical memory window.
    pub const HOST_SPAN: u64 = 8 << 30;
    /// Dedicated notifying host range for an SPDK completion queue.
    pub const SPDK_CQ: u64 = 0x9_0000_0000;
}

/// System construction parameters.
#[derive(Clone, Debug)]
pub struct SystemConfig {
    /// Streamer configuration (variant, depth, retirement policy).
    pub streamer: StreamerConfig,
    /// SSD profile.
    pub nvme: NvmeProfile,
    /// Enforcing IOMMU (the paper's setup) or passthrough.
    pub enforce_iommu: bool,
    /// Simulation seed (tR jitter, workload addresses).
    pub seed: u64,
}

impl SystemConfig {
    /// The paper's setup for a given streamer variant.
    pub fn snacc(variant: StreamerVariant) -> Self {
        SystemConfig {
            streamer: StreamerConfig::snacc(variant),
            nvme: NvmeProfile::samsung_990pro(),
            enforce_iommu: true,
            seed: 0x5aacc,
        }
    }

    /// The paper's setup with a fault campaign's retry policy wired into
    /// the streamer. The policy must be set *before* bring-up (it is
    /// consumed when the streamer is constructed); the plan's injectors
    /// are installed afterwards with [`SnaccSystem::inject_faults`].
    pub fn snacc_faulted(variant: StreamerVariant, plan: &FaultPlan) -> Self {
        let mut cfg = Self::snacc(variant);
        cfg.streamer.retry = plan.retry;
        cfg
    }
}

/// A fully brought-up node with a SNAcc streamer.
pub struct SnaccSystem {
    /// The event engine.
    pub en: Engine,
    /// The PCIe fabric.
    pub fabric: Rc<RefCell<PcieFabric>>,
    /// Host DRAM.
    pub hostmem: Rc<RefCell<HostMemory>>,
    /// The TaPaSCo shell.
    pub shell: TapascoShell,
    /// The SNAcc streamer.
    pub streamer: StreamerHandle,
    /// The SSD.
    pub nvme: NvmeDeviceHandle,
}

impl SnaccSystem {
    /// Build and bring up the complete system.
    pub fn bring_up(cfg: SystemConfig) -> SnaccSystem {
        let mut en = Engine::new();
        let mut fabric = PcieFabric::new();
        if cfg.enforce_iommu {
            fabric.set_iommu(Iommu::new());
        }
        let hostmem = Rc::new(RefCell::new(HostMemory::default()));
        let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
        fabric.map_region(HOST_NODE, AddrRange::new(0, layout::HOST_SPAN), t);
        let fabric = Rc::new(RefCell::new(fabric));

        let mut shell = TapascoShell::new(fabric.clone(), layout::SHELL_BAR);
        let mut plugin = NvmeSubsystem::new(cfg.streamer.clone());
        shell.apply_plugin(&mut en, &mut plugin);
        let streamer = plugin.streamer();

        let nvme = NvmeDeviceHandle::attach(fabric.clone(), layout::NVME_BAR, cfg.nvme, cfg.seed);

        if cfg.enforce_iommu {
            // Admin structures live at the start of the pinned pool.
            fabric
                .borrow_mut()
                .iommu_mut()
                .grant(nvme.node(), AddrRange::new(0x1_0000_0000, 1 << 20));
        }
        let mut driver = SnaccHostDriver::new(fabric.clone(), hostmem.clone(), nvme.clone());
        driver
            .bring_up(&mut en, &streamer, 1)
            .expect("SNAcc bring-up");

        SnaccSystem {
            en,
            fabric,
            hostmem,
            shell,
            streamer,
            nvme,
        }
    }

    /// Payload bytes transferred over PCIe so far (Fig 7 metric: one
    /// count per transaction, so P2P = 1×, host staging = 2×).
    pub fn pcie_bytes(&self) -> u64 {
        self.fabric.borrow().total_payload_bytes()
    }

    /// Reset PCIe traffic meters (e.g. after bring-up, before the
    /// measured phase).
    pub fn reset_pcie_meters(&mut self) {
        self.fabric.borrow_mut().reset_meters();
    }

    /// Install a fault plan's NVMe and PCIe injectors. Call after
    /// bring-up so admin commands and queue setup never see faults;
    /// Ethernet faults apply to pipeline MACs separately (see
    /// [`FaultPlan::apply_mac`]).
    pub fn inject_faults(&mut self, plan: &FaultPlan) {
        plan.apply_nvme(&self.nvme);
        plan.apply_fabric(&mut self.fabric.borrow_mut());
    }
}

/// Build a host-only system (no shell/streamer) for SPDK baselines.
pub struct HostSystem {
    /// The event engine.
    pub en: Engine,
    /// The PCIe fabric (passthrough IOMMU: SPDK uses VFIO with full
    /// mappings of its pinned pool).
    pub fabric: Rc<RefCell<PcieFabric>>,
    /// Host DRAM.
    pub hostmem: Rc<RefCell<HostMemory>>,
    /// The SSD.
    pub nvme: NvmeDeviceHandle,
}

impl HostSystem {
    /// Build the host + SSD node.
    pub fn bring_up(nvme_profile: NvmeProfile, seed: u64) -> HostSystem {
        let en = Engine::new();
        let mut fabric = PcieFabric::new();
        let hostmem = Rc::new(RefCell::new(HostMemory::default()));
        let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
        fabric.map_region(HOST_NODE, AddrRange::new(0, layout::HOST_SPAN), t);
        let fabric = Rc::new(RefCell::new(fabric));
        let nvme = NvmeDeviceHandle::attach(fabric.clone(), layout::NVME_BAR, nvme_profile, seed);
        HostSystem {
            en,
            fabric,
            hostmem,
            nvme,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_variants_bring_up() {
        for v in StreamerVariant::all() {
            let sys = SnaccSystem::bring_up(SystemConfig::snacc(v));
            assert_eq!(sys.streamer.variant(), v);
            assert!(sys.pcie_bytes() > 0, "bring-up used the bus");
        }
    }

    #[test]
    fn meters_reset() {
        let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
        assert!(sys.pcie_bytes() > 0);
        sys.reset_pcie_meters();
        assert_eq!(sys.pcie_bytes(), 0);
    }

    #[test]
    fn host_system_brings_up() {
        let h = HostSystem::bring_up(NvmeProfile::samsung_990pro(), 1);
        assert_eq!(h.nvme.bar0_base(), layout::NVME_BAR);
        let _ = (h.en, h.fabric, h.hostmem);
    }
}
