//! The GPU reference configuration (paper Sec 6.1, "GPU").
//!
//! "We perform image classification on an NVIDIA A100 GPU ... other CPU
//! threads manage data transfers between the NIC, for which we use our
//! FPGA, host DRAM, GPU, and NVMe SSD ... This solution incurs more PCIe
//! traffic since the downscaled images must be transferred to the GPU,
//! and the classifications must be retrieved from it." GPUDirect Storage
//! was not usable with PyTorch, so storage writes go through SPDK from
//! host memory — exactly the structure modelled here.
//!
//! Data path: Ethernet → NIC-FPGA → host staging (1×) → [CPU downscale]
//! → GPU (H2D of 224×224 batches) → host (D2H records) → SSD (fetches
//! from host, 1×) — the most PCIe traffic of all configurations (Fig 7).

use crate::pipeline::{run_case_study_front, CaseStudyConfig, CaseStudyReport};
use crate::spdk_ref::{finalize, GpuStage, SpdkSink};
use crate::system::{layout, HostSystem};
use snacc_mem::AddrRange;
use snacc_pcie::target::ScratchTarget;
use snacc_pcie::{PcieGen, PcieLinkConfig};
use snacc_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// GPU model parameters (A100 + PyTorch batch pipeline).
#[derive(Clone, Debug)]
pub struct GpuModel {
    /// Host CPU cost to downscale one 9 MB frame (vectorised).
    pub downscale_cost: SimDuration,
    /// Batched MobileNet-V1 inference time per image on the A100.
    pub kernel_per_image: SimDuration,
    /// Per-batch framework synchronisation overhead (launch, Python/C++
    /// boundary, stream sync).
    pub batch_overhead: SimDuration,
}

impl Default for GpuModel {
    fn default() -> Self {
        GpuModel {
            downscale_cost: SimDuration::from_us(300),
            kernel_per_image: SimDuration::from_us(100),
            batch_overhead: SimDuration::from_us(3000),
        }
    }
}

/// GPU BAR window base on the fabric.
const GPU_BAR: u64 = 0xA_0000_0000;

/// Run the GPU configuration of the case study.
pub fn run_gpu_case_study(cfg: CaseStudyConfig, model: GpuModel, seed: u64) -> CaseStudyReport {
    let mut host = HostSystem::bring_up(snacc_nvme::NvmeProfile::samsung_990pro(), seed);
    // The FPGA acts purely as a NIC; the A100 hangs off a Gen4 ×16 link.
    let (nic, gpu_node) = {
        let mut fab = host.fabric.borrow_mut();
        let nic = fab.add_device("alveo-nic", PcieLinkConfig::alveo_u280());
        let gpu = fab.add_device("a100", PcieLinkConfig::new(PcieGen::Gen4, 16));
        let bar = Rc::new(RefCell::new(ScratchTarget::new(
            "a100-hbm-window",
            SimDuration::from_ns(250),
        )));
        fab.map_region(gpu, AddrRange::new(GPU_BAR, 256 << 20), bar);
        (nic, gpu)
    };
    let spdk = snacc_spdk::SpdkNvme::new(
        host.fabric.clone(),
        host.hostmem.clone(),
        host.nvme.clone(),
        snacc_spdk::SpdkConfig::default(),
    );
    spdk.init(&mut host.en, layout::SPDK_CQ).expect("spdk init");
    host.en.run();
    host.fabric.borrow_mut().reset_meters();
    let start = host.en.now();

    let stage = GpuStage {
        gpu_node,
        gpu_bar: GPU_BAR,
        downscale_cost: model.downscale_cost,
        kernel_per_image: model.kernel_per_image,
        batch_overhead: model.batch_overhead,
        h2d_bytes_per_image: crate::images::ImageFormat::classify().bytes() as u64,
        d2h_bytes_per_image: 16,
        cpu: snacc_spdk::CpuCore::new("gpu-pipeline"),
    };
    let sink = SpdkSink::with_gpu(
        &mut host.en,
        host.fabric.clone(),
        host.hostmem.clone(),
        nic,
        spdk.clone(),
        stage,
    );
    let sink_handle = sink.clone();
    // In this configuration the FPGA does not classify — the record
    // stream is produced host-side after D2H. Functionally the records
    // are identical (same classifier); the FPGA-front classifier stage is
    // configured as a zero-cost pass-through.
    let mut front_cfg = cfg.clone();
    front_cfg.classifier_fps = 1e12;
    front_cfg.classifier_fifo = usize::MAX / 2;
    let (ctl, _sender) = run_case_study_front(&mut host.en, front_cfg, sink);
    host.en.run();
    finalize(&sink_handle, &mut host.en);

    let end = host.en.now();
    let c = ctl.borrow();
    assert_eq!(c.images_stored, cfg.images);
    assert_eq!(c.sink_completed(), c.transfers_begun());
    let image_bytes = cfg.images * crate::images::ImageFormat::capture().bytes() as u64;
    let elapsed = end.since(start);
    let correct = c.records.iter().filter(|r| r.class == r.truth).count() as u64;
    let occupancy = spdk.cpu_occupancy(SimTime::ZERO, end);
    assert!(occupancy > 0.99, "GPU config also pegs a host core");
    let pcie_bytes = host.fabric.borrow().total_payload_bytes();
    // Release functional stores (Rc cycles outlive `host`).
    host.nvme.with(|d| d.nand_mut().media_mut().clear());
    host.hostmem.borrow_mut().store_mut().clear();
    let _ = &mut host.en as &mut Engine;
    CaseStudyReport {
        images: c.images_stored,
        image_bytes,
        elapsed,
        bandwidth_gbps: image_bytes as f64 / 1e9 / elapsed.as_secs_f64(),
        fps: c.images_stored as f64 / elapsed.as_secs_f64(),
        correct,
        classified: c.records.len() as u64,
        pcie_bytes,
        resyncs: c.resyncs(),
        bytes_skipped: c.bytes_skipped(),
    }
}
