//! # snacc-apps — the image-classification case study (paper Sec 6)
//!
//! "We receive image data over Ethernet, perform image classification on
//! the FPGA, and directly write both the original image and classification
//! data to an NVMe SSD. After initialization, the entire application
//! operates autonomously on the FPGA without any host interaction."
//!
//! * [`system`] — one-stop builders for the full simulated node (fabric,
//!   host memory, TaPaSCo shell + SNAcc plugin, SSD, bring-up), shared by
//!   examples, integration tests and the benchmark harness.
//! * [`images`] — the synthetic 2048×1536 RGB image stream (9 MB/frame —
//!   16384 frames ≈ 147 GB, matching Sec 6.2), with real pixel data and a
//!   tiny wire header, sent over the simulated 100 G link.
//! * [`pipeline`] — the FPGA dataflow of Fig 5: Ethernet RX bridge, tee,
//!   downscaler PE (real box-filter resampling to 224×224), MobileNet-
//!   style classifier PE (real fixed-point features + linear head at a
//!   FINN-calibrated rate), and the database controller feeding SNAcc.
//! * [`spdk_ref`] — the SPDK reference configuration (Sec 6.1): the FPGA
//!   classifies, but the host moves the results to storage, batched with
//!   double buffering.
//! * [`gpu`] — the GPU reference (Sec 6.1): the FPGA acts as a NIC; the
//!   host shuttles data between NIC, DRAM, GPU and SSD.

pub mod gpu;
pub mod images;
pub mod pipeline;
pub mod spdk_ref;
pub mod system;

pub use images::{ImageFormat, ImageHeader};
pub use system::{SnaccSystem, SystemConfig};
