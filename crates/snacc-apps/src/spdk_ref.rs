//! The SPDK reference configuration (paper Sec 6.1, "SPDK").
//!
//! "We maintain the image classification accelerator on the FPGA but
//! transfer the image and classification data to host memory, allowing
//! the host software to handle writing to the NVMe SSD ... we process the
//! incoming data in batches — e.g., 32 images. Using double buffering,
//! this approach enables us to overlap image classification with data
//! transfers from FPGA to host memory and from the host to the NVMe
//! device."
//!
//! [`SpdkSink`] implements the storage backend: the FPGA DMAs transfer
//! data into one of two pinned staging buffers; when a buffer fills, the
//! host reactor flushes it to the SSD through the SPDK driver while the
//! other buffer fills.

use crate::pipeline::{run_case_study_front, CaseSink, CaseStudyConfig, CaseStudyReport, WakeHook};
use crate::system::{layout, HostSystem};
use snacc_mem::hostmem::PinnedBuffer;
use snacc_mem::HostMemory;
use snacc_pcie::{NodeId, PcieFabric, PcieLinkConfig};
use snacc_sim::{Engine, SimTime};
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// Staging buffer size (≈ 3.5 batches of 9 MB images).
const STAGE_BYTES: u64 = 32 << 20;

struct StagedTransfer {
    ssd_addr: u64,
    stage_off: u64,
    len: u64,
}

struct Buffer {
    pinned: PinnedBuffer,
    fill: u64,
    staged: Vec<StagedTransfer>,
    flushing: bool,
}

/// Optional GPU stage applied to each sealed buffer before the SPDK
/// flush (the Sec 6.1 "GPU" configuration): CPU downscale, H2D transfer,
/// kernel execution, D2H of classifications, per-batch sync overhead.
pub struct GpuStage {
    /// The GPU's fabric node.
    pub gpu_node: NodeId,
    /// Scratch window in the GPU's BAR for input batches.
    pub gpu_bar: u64,
    /// Host CPU cost to downscale one image.
    pub downscale_cost: snacc_sim::SimDuration,
    /// Kernel time per image (batched inference).
    pub kernel_per_image: snacc_sim::SimDuration,
    /// Per-batch synchronisation overhead (framework + launch).
    pub batch_overhead: snacc_sim::SimDuration,
    /// Downscaled image size moved host → GPU.
    pub h2d_bytes_per_image: u64,
    /// Classification bytes moved GPU → host.
    pub d2h_bytes_per_image: u64,
    /// Host pipeline core (separate from the SPDK reactor).
    pub cpu: snacc_spdk::CpuCore,
}

struct Inner {
    fabric: Rc<RefCell<PcieFabric>>,
    hostmem: Rc<RefCell<HostMemory>>,
    fpga: NodeId,
    spdk: snacc_spdk::SpdkNvme,
    buffers: [Buffer; 2],
    filling: usize,
    /// Optional GPU stage; buffers may only flush once their batch has
    /// been through it.
    gpu: Option<GpuStage>,
    gpu_ready: [bool; 2],
    /// Current open transfer: (ssd_addr, buffer idx, bytes so far).
    current: Option<(u64, usize, u64)>,
    /// Commands in flight per buffer flush.
    flush_cmds: [u64; 2],
    /// Flush queue of commands not yet submitted: (buf, ssd_addr, off, len).
    submit_queue: VecDeque<(usize, u64, u64, u64)>,
    completed_transfers: u64,
    /// Transfers whose last command hasn't completed yet per buffer.
    pending_transfer_counts: [u64; 2],
    wake: Option<WakeHook>,
}

/// [`CaseSink`] that routes through host memory + SPDK. Cloning yields a
/// second handle to the same sink (used to finalise flushes after the
/// controller took ownership).
#[derive(Clone)]
pub struct SpdkSink {
    inner: Rc<RefCell<Inner>>,
}

impl SpdkSink {
    /// Build the sink on a host system; `fpga` is the accelerator's
    /// fabric node (source of the staging DMA writes).
    pub fn new(
        en: &mut Engine,
        fabric: Rc<RefCell<PcieFabric>>,
        hostmem: Rc<RefCell<HostMemory>>,
        fpga: NodeId,
        spdk: snacc_spdk::SpdkNvme,
    ) -> SpdkSink {
        let buffers = {
            let mk_buf = || {
                let pinned = hostmem.borrow_mut().alloc_pinned(STAGE_BYTES);
                Buffer {
                    pinned,
                    fill: 0,
                    staged: Vec::new(),
                    flushing: false,
                }
            };
            [mk_buf(), mk_buf()]
        };
        let inner = Rc::new(RefCell::new(Inner {
            fabric,
            hostmem,
            fpga,
            spdk: spdk.clone(),
            buffers,
            filling: 0,
            gpu: None,
            gpu_ready: [true, true],
            current: None,
            flush_cmds: [0, 0],
            submit_queue: VecDeque::new(),
            completed_transfers: 0,
            pending_transfer_counts: [0, 0],
            wake: None,
        }));
        let i2 = inner.clone();
        spdk.set_completion_hook(move |en, _info| {
            Inner::on_spdk_complete(&i2, en);
        });
        let _ = en;
        SpdkSink { inner }
    }

    /// Same sink with a GPU stage in front of each batch flush.
    pub fn with_gpu(
        en: &mut Engine,
        fabric: Rc<RefCell<PcieFabric>>,
        hostmem: Rc<RefCell<HostMemory>>,
        fpga: NodeId,
        spdk: snacc_spdk::SpdkNvme,
        gpu: GpuStage,
    ) -> SpdkSink {
        let s = Self::new(en, fabric, hostmem, fpga, spdk);
        {
            let mut i = s.inner.borrow_mut();
            i.gpu = Some(gpu);
            i.gpu_ready = [true, true];
        }
        s
    }
}

impl Inner {
    /// Seal the filling buffer and start flushing it.
    fn seal_and_flush(rc: &Rc<RefCell<Inner>>, en: &mut Engine) {
        {
            let mut i = rc.borrow_mut();
            let idx = i.filling;
            if i.buffers[idx].fill == 0 || i.buffers[idx].flushing {
                return;
            }
            i.buffers[idx].flushing = true;
            i.pending_transfer_counts[idx] = i.buffers[idx].staged.len() as u64;
            // Queue the commands: split transfers at 1 MB.
            let staged = std::mem::take(&mut i.buffers[idx].staged);
            for t in &staged {
                let mut off = 0;
                while off < t.len {
                    let n = (1u64 << 20).min(t.len - off);
                    i.submit_queue
                        .push_back((idx, t.ssd_addr + off, t.stage_off + off, n));
                    off += n;
                }
            }
            i.buffers[idx].staged = staged;
            // Switch filling to the other buffer (double buffering).
            i.filling = 1 - idx;
            if i.gpu.is_some() {
                i.gpu_ready[idx] = false;
            }
        }
        let (needs_gpu, sealed_idx) = {
            let i = rc.borrow();
            (i.gpu.is_some(), i.filling ^ 1)
        };
        if needs_gpu {
            Self::run_gpu_stage(rc, en, sealed_idx);
        }
        Self::drain_submit_queue(rc, en);
    }

    /// The GPU batch pipeline for buffer `idx`: CPU downscale → H2D →
    /// kernel → D2H → sync overhead, then the SPDK flush may proceed.
    fn run_gpu_stage(rc: &Rc<RefCell<Inner>>, en: &mut Engine, idx: usize) {
        let (t_cpu, gpu_node, gpu_bar, h2d, d2h, kernel, overhead, imgs) = {
            let mut i = rc.borrow_mut();
            let imgs = i.buffers[idx]
                .staged
                .iter()
                .filter(|t| t.len > 4096)
                .count() as u64;
            let g = i.gpu.as_mut().expect("gpu stage configured");
            let now = en.now();
            let t_cpu = g.cpu.book(now, g.downscale_cost * imgs.max(1));
            (
                t_cpu,
                g.gpu_node,
                g.gpu_bar,
                g.h2d_bytes_per_image * imgs,
                g.d2h_bytes_per_image * imgs,
                g.kernel_per_image * imgs,
                g.batch_overhead,
                imgs,
            )
        };
        let _ = imgs;
        let rc2 = rc.clone();
        en.schedule_at(t_cpu, move |en| {
            // H2D: downscaled batch to the GPU (host-initiated write).
            let fabric = rc2.borrow().fabric.clone();
            let zeros = vec![0u8; h2d.max(1) as usize];
            let t_h2d = fabric
                .borrow_mut()
                .write(en, snacc_pcie::HOST_NODE, gpu_bar, &zeros)
                .expect("gpu BAR mapped");
            let rc3 = rc2.clone();
            en.schedule_at(t_h2d.max(en.now()) + kernel, move |en| {
                // D2H: classifications back, then the sync overhead.
                let fabric = rc3.borrow().fabric.clone();
                let mut back = vec![0u8; d2h.max(1) as usize];
                let t_d2h = fabric
                    .borrow_mut()
                    .read(en, snacc_pcie::HOST_NODE, gpu_bar, &mut back)
                    .expect("gpu BAR mapped");
                let _ = gpu_node;
                let rc4 = rc3.clone();
                en.schedule_at(t_d2h.max(en.now()) + overhead, move |en| {
                    rc4.borrow_mut().gpu_ready[idx] = true;
                    Inner::drain_submit_queue(&rc4, en);
                });
            });
        });
    }

    fn drain_submit_queue(rc: &Rc<RefCell<Inner>>, en: &mut Engine) {
        loop {
            let item = {
                let i = rc.borrow();
                if !i.spdk.can_submit() {
                    return;
                }
                match i.submit_queue.front() {
                    Some(&x) if i.gpu_ready[x.0] => x,
                    _ => return,
                }
            };
            let (buf, ssd_addr, stage_off, len) = item;
            let data = {
                let i = rc.borrow();
                let base = i.buffers[buf].pinned.phys_addr(stage_off);
                let out = i
                    .hostmem
                    .borrow_mut()
                    .store_mut()
                    .read_vec(base, len as usize);
                out
            };
            let submit = {
                let i = rc.borrow();
                i.spdk.submit_write(en, ssd_addr, &data)
            };
            match submit {
                Ok(_) => {
                    let mut i = rc.borrow_mut();
                    i.submit_queue.pop_front();
                    i.flush_cmds[buf] += 1;
                }
                Err(_) => return,
            }
        }
    }

    fn on_spdk_complete(rc: &Rc<RefCell<Inner>>, en: &mut Engine) {
        // Figure out which buffer this belonged to: commands complete in
        // rough order; we decrement the oldest flushing buffer.
        let wake = {
            let mut i = rc.borrow_mut();
            let idx = (0..2).find(|&b| i.buffers[b].flushing && i.flush_cmds[b] > 0);
            if let Some(b) = idx {
                i.flush_cmds[b] -= 1;
                if i.flush_cmds[b] == 0 && i.submit_queue.iter().all(|&(q, ..)| q != b) {
                    // Buffer fully persisted.
                    i.completed_transfers += i.pending_transfer_counts[b];
                    i.pending_transfer_counts[b] = 0;
                    i.buffers[b].fill = 0;
                    i.buffers[b].staged.clear();
                    i.buffers[b].flushing = false;
                }
            }
            i.wake.clone()
        };
        Self::drain_submit_queue(rc, en);
        if let Some(w) = wake {
            (w.borrow_mut())(en);
        }
    }
}

impl CaseSink for SpdkSink {
    fn begin(&mut self, en: &mut Engine, addr: u64, len: u64) -> bool {
        let mut i = self.inner.borrow_mut();
        assert!(i.current.is_none(), "previous transfer still open");
        let idx = i.filling;
        if i.buffers[idx].flushing || i.buffers[idx].fill + len > STAGE_BYTES {
            // Need to rotate; if the other buffer is still flushing we
            // must wait (double buffering limit).
            if i.buffers[idx].fill + len > STAGE_BYTES && !i.buffers[idx].flushing {
                drop(i);
                Inner::seal_and_flush(&self.inner, en);
                i = self.inner.borrow_mut();
                let idx = i.filling;
                if i.buffers[idx].flushing || i.buffers[idx].fill + len > STAGE_BYTES {
                    return false;
                }
            } else {
                return false;
            }
        }
        let idx = i.filling;
        let off = i.buffers[idx].fill;
        i.buffers[idx].staged.push(StagedTransfer {
            ssd_addr: addr,
            stage_off: off,
            len,
        });
        i.current = Some((addr, idx, 0));
        let _ = off;
        true
    }

    fn push(&mut self, en: &mut Engine, data: snacc_sim::Payload, last: bool) -> bool {
        let (idx, stage_off, fabric, fpga, phys_chunks) = {
            let i = self.inner.borrow();
            let (_, idx, written) = i.current.expect("begin first");
            let t = i.buffers[idx].staged.last().expect("staged");
            let stage_off = t.stage_off + written;
            // Resolve physical pieces for the DMA (may cross segments).
            let mut chunks = Vec::new();
            let mut off = 0u64;
            while off < data.len() as u64 {
                let logical = stage_off + off;
                let phys = i.buffers[idx].pinned.phys_addr(logical);
                let seg_end = i.buffers[idx]
                    .pinned
                    .segments()
                    .iter()
                    .find(|s| s.contains(phys))
                    .expect("in segment")
                    .end();
                let n = (seg_end - phys).min(data.len() as u64 - off);
                chunks.push((phys, off as usize, n as usize));
                off += n;
            }
            (idx, stage_off, i.fabric.clone(), i.fpga, chunks)
        };
        let _ = stage_off;
        // FPGA → host staging DMA (timed + functional).
        for (phys, off, n) in phys_chunks {
            fabric
                .borrow_mut()
                .write(en, fpga, phys, &data[off..off + n])
                .expect("staging reachable");
        }
        let mut i = self.inner.borrow_mut();
        let (_, _, written) = i.current.as_mut().expect("open");
        *written += data.len() as u64;
        let add = data.len() as u64;
        i.buffers[idx].fill += add;
        if last {
            i.current = None;
        }
        drop(i);
        if last {
            // Opportunistic flush when the buffer is reasonably full.
            let should = {
                let i = self.inner.borrow();
                let idx = i.filling;
                i.buffers[idx].fill + (10 << 20) > STAGE_BYTES
            };
            if should {
                Inner::seal_and_flush(&self.inner, en);
            }
        }
        true
    }

    fn completed(&self) -> u64 {
        self.inner.borrow().completed_transfers
    }

    fn set_wake(&mut self, wake: WakeHook) {
        self.inner.borrow_mut().wake = Some(wake);
    }
}

/// Flush any remaining staged data (end of run).
pub fn finalize(sink_inner: &SpdkSink, en: &mut Engine) {
    Inner::seal_and_flush(&sink_inner.inner, en);
    en.run();
    // The other buffer may still hold data.
    Inner::seal_and_flush(&sink_inner.inner, en);
    en.run();
}

/// Run the SPDK configuration of the case study.
pub fn run_spdk_case_study(cfg: CaseStudyConfig, seed: u64) -> CaseStudyReport {
    let mut host = HostSystem::bring_up(snacc_nvme::NvmeProfile::samsung_990pro(), seed);
    // The accelerator FPGA is on the fabric as a NIC/compute card.
    let fpga = host
        .fabric
        .borrow_mut()
        .add_device("alveo-u280", PcieLinkConfig::alveo_u280());
    let spdk = snacc_spdk::SpdkNvme::new(
        host.fabric.clone(),
        host.hostmem.clone(),
        host.nvme.clone(),
        snacc_spdk::SpdkConfig::default(),
    );
    spdk.init(&mut host.en, layout::SPDK_CQ).expect("spdk init");
    host.en.run();
    host.fabric.borrow_mut().reset_meters();
    let start = host.en.now();

    let sink = SpdkSink::new(
        &mut host.en,
        host.fabric.clone(),
        host.hostmem.clone(),
        fpga,
        spdk.clone(),
    );
    let sink_handle = sink.clone();
    let (ctl, _sender) = run_case_study_front(&mut host.en, cfg.clone(), sink);
    host.en.run();
    // Drive remaining staged data to the SSD.
    finalize(&sink_handle, &mut host.en);
    let end = host.en.now();
    let c = ctl.borrow();
    assert_eq!(c.images_stored, cfg.images);
    assert_eq!(c.sink_completed(), c.transfers_begun());
    let image_bytes = cfg.images * crate::images::ImageFormat::capture().bytes() as u64;
    let elapsed = end.since(start);
    let correct = c.records.iter().filter(|r| r.class == r.truth).count() as u64;
    let occupancy = spdk.cpu_occupancy(SimTime::ZERO, end);
    assert!(occupancy > 0.99, "SPDK core must be pegged: {occupancy}");
    let pcie_bytes = host.fabric.borrow().total_payload_bytes();
    // Release functional stores (Rc cycles outlive `host`).
    host.nvme.with(|d| d.nand_mut().media_mut().clear());
    host.hostmem.borrow_mut().store_mut().clear();
    CaseStudyReport {
        images: c.images_stored,
        image_bytes,
        elapsed,
        bandwidth_gbps: image_bytes as f64 / 1e9 / elapsed.as_secs_f64(),
        fps: c.images_stored as f64 / elapsed.as_secs_f64(),
        correct,
        classified: c.records.len() as u64,
        pcie_bytes,
        resyncs: c.resyncs(),
        bytes_skipped: c.bytes_skipped(),
    }
}
