//! The FPGA case-study pipeline (paper Fig 5).
//!
//! Dataflow: 100 G Ethernet RX → RX bridge → database controller, which
//! tees the stream: original image bytes go to the storage sink, while
//! the classification path (downscaler PE → FINN-style classifier PE)
//! produces one record per image; records are packed into 4 KiB pages
//! and stored alongside the images. Backpressure propagates from the
//! storage sink all the way to the Ethernet sender via 802.3x PAUSE.
//!
//! The same pipeline front drives three storage backends through
//! [`CaseSink`]: the SNAcc streamer (autonomous, Sec 6.1 "FPGA"), the
//! SPDK host path ([`crate::spdk_ref`]), and — with a different front —
//! the GPU reference ([`crate::gpu`]).

use crate::images::{
    classify, downscale, generate_image, ImageFormat, ImageHeader, HEADER_BYTES, IMAGE_MAGIC,
};
use snacc_core::streamer::UserPorts;
use snacc_faults::FaultPlan;
use snacc_fpga::axis::{self, AxisChannel, StreamBeat};
use snacc_net::frame::{EthFrame, MacAddr};
use snacc_net::mac::{self, EthMac, MacConfig};
use snacc_sim::{Engine, Payload, PayloadQueue, SimDuration, SimTime};
use snacc_trace as trace;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// Case-study parameters.
#[derive(Clone, Debug)]
pub struct CaseStudyConfig {
    /// Number of frames to stream (the paper uses 16384).
    pub images: u64,
    /// Classifier throughput in frames/s (FINN MobileNet-V1 class).
    pub classifier_fps: f64,
    /// Classifier input FIFO depth in images.
    pub classifier_fifo: usize,
    /// SSD byte address of the image table.
    pub image_table: u64,
    /// SSD byte address of the classification-record table.
    pub record_table: u64,
    /// Ethernet frame payload (jumbo frames on the capture link).
    pub frame_payload: usize,
    /// Tolerate frame loss: instead of panicking on a header desync the
    /// controller scans forward to the next image magic, counting
    /// resyncs and skipped bytes (lossy-link fault campaigns). Off by
    /// default — a lossless link that desyncs is a model bug.
    pub tolerate_loss: bool,
}

impl Default for CaseStudyConfig {
    fn default() -> Self {
        CaseStudyConfig {
            images: 16384,
            classifier_fps: 3000.0,
            classifier_fifo: 4,
            image_table: 0,
            record_table: 1 << 40, // 1 TB mark: far from the image table
            frame_payload: 8192,
            tolerate_loss: false,
        }
    }
}

/// Bytes reserved per image in the image table (page-aligned slot).
pub fn image_slot_bytes(fmt: ImageFormat) -> u64 {
    (fmt.bytes() as u64).div_ceil(4096) * 4096
}

/// A classification record (16 B, 256 per table page).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClassRecord {
    /// Frame id.
    pub id: u64,
    /// Predicted class.
    pub class: u32,
    /// Ground truth (carried for verification).
    pub truth: u32,
}

impl ClassRecord {
    /// Encode to the 16-byte table format.
    pub fn encode(&self) -> [u8; 16] {
        let mut b = [0u8; 16];
        b[0..8].copy_from_slice(&self.id.to_le_bytes());
        b[8..12].copy_from_slice(&self.class.to_le_bytes());
        b[12..16].copy_from_slice(&self.truth.to_le_bytes());
        b
    }

    /// Decode from the table format.
    pub fn decode(b: &[u8]) -> ClassRecord {
        ClassRecord {
            id: u64::from_le_bytes(b[0..8].try_into().unwrap()),
            class: u32::from_le_bytes(b[8..12].try_into().unwrap()),
            truth: u32::from_le_bytes(b[12..16].try_into().unwrap()),
        }
    }
}

/// Shared wake callback installed into a [`CaseSink`].
pub type WakeHook = Rc<RefCell<dyn FnMut(&mut Engine)>>;

/// Storage backend abstraction for the database controller.
pub trait CaseSink {
    /// Begin a write transfer of `len` bytes at SSD address `addr`.
    /// Returns `false` when the sink cannot accept a new transfer yet.
    fn begin(&mut self, en: &mut Engine, addr: u64, len: u64) -> bool;
    /// Push payload bytes of the current transfer (`last` closes it).
    /// Returns `false` on backpressure — retry after a wake.
    fn push(&mut self, en: &mut Engine, data: Payload, last: bool) -> bool;
    /// Transfers fully persisted.
    fn completed(&self) -> u64;
    /// Install the wake callback (sink has space again / made progress).
    fn set_wake(&mut self, wake: WakeHook);
}

/// [`CaseSink`] over the SNAcc streamer's user ports.
pub struct StreamerSink {
    ports: UserPorts,
    responses: Rc<RefCell<u64>>,
}

impl StreamerSink {
    /// Wrap the streamer's write interfaces.
    pub fn new(en: &mut Engine, ports: UserPorts) -> Self {
        let responses = Rc::new(RefCell::new(0u64));
        let r2 = responses.clone();
        let resp_ch = ports.wr_resp.clone();
        // Popping responses can re-arm the streamer's retirement (its
        // space hook), which may push more responses — defer through the
        // event queue so the hook never re-enters itself.
        ports.wr_resp.borrow_mut().set_data_hook(move |en| {
            let ch = resp_ch.clone();
            let r = r2.clone();
            en.schedule_now(move |en| {
                while axis::pop(&ch, en).is_some() {
                    *r.borrow_mut() += 1;
                }
            });
        });
        let _ = en;
        StreamerSink { ports, responses }
    }
}

impl CaseSink for StreamerSink {
    fn begin(&mut self, en: &mut Engine, addr: u64, _len: u64) -> bool {
        let beat = StreamBeat::mid(addr.to_le_bytes().to_vec());
        axis::push(&self.ports.wr_in, en, beat)
    }

    fn push(&mut self, en: &mut Engine, data: Payload, last: bool) -> bool {
        axis::push(&self.ports.wr_in, en, StreamBeat { data, last })
    }

    fn completed(&self) -> u64 {
        *self.responses.borrow()
    }

    fn set_wake(&mut self, wake: WakeHook) {
        let w = wake.clone();
        self.ports
            .wr_in
            .borrow_mut()
            .set_space_hook(move |en| (w.borrow_mut())(en));
    }
}

/// The database controller + classification path, driving a [`CaseSink`].
pub struct DbController<S: CaseSink> {
    cfg: CaseStudyConfig,
    rx: Rc<RefCell<AxisChannel>>,
    sink: S,
    inbuf: PayloadQueue,
    state: DbState,
    /// Image segments accumulated for the classification tee — shared
    /// windows of the stream payloads, not copies.
    tee: Vec<Payload>,
    /// Total bytes across `tee`.
    tee_len: usize,
    /// Images queued at the classifier (bounded FIFO).
    classifier_queue: usize,
    classifier_free_at: SimTime,
    /// Memoised classification by image-content key.
    memo: HashMap<u64, u32>,
    /// Packed records awaiting a page flush.
    record_page: Vec<u8>,
    record_pages_written: u64,
    /// Total bytes consumed from the RX stream (diagnostic).
    taken_total: u64,
    /// Header resynchronisations performed (lossy campaigns).
    resyncs: u64,
    /// Bytes discarded while hunting for the next header magic.
    bytes_skipped: u64,
    /// Totals.
    pub images_stored: u64,
    pub records: Vec<ClassRecord>,
    transfers_begun: u64,
    busy: bool,
}

enum DbState {
    Header,
    /// (header, remaining payload bytes, transfer begun?)
    Image(ImageHeader, u64, bool),
    /// Pending record-page flush of this many bytes.
    FlushRecords(Option<Vec<u8>>),
    /// Frame loss desynced the stream: scan for the next header magic.
    Resync,
}

impl<S: CaseSink + 'static> DbController<S> {
    /// Build the controller and arm its hooks.
    pub fn start(
        _en: &mut Engine,
        cfg: CaseStudyConfig,
        rx: Rc<RefCell<AxisChannel>>,
        sink: S,
    ) -> Rc<RefCell<DbController<S>>> {
        let ctl = Rc::new(RefCell::new(DbController {
            cfg,
            rx: rx.clone(),
            inbuf: PayloadQueue::new(),
            state: DbState::Header,
            tee: Vec::new(),
            tee_len: 0,
            classifier_queue: 0,
            classifier_free_at: SimTime::ZERO,
            memo: HashMap::new(),
            record_page: Vec::new(),
            record_pages_written: 0,
            taken_total: 0,
            resyncs: 0,
            bytes_skipped: 0,
            images_stored: 0,
            records: Vec::new(),
            transfers_begun: 0,
            busy: false,
            sink,
        }));
        // Hooks: new RX data and sink space both re-pump. Both hooks can
        // fire while the controller is mid-step (its own pops/pushes
        // trigger them), so they defer through the event queue instead of
        // re-entering synchronously.
        let c1 = ctl.clone();
        rx.borrow_mut().set_data_hook(move |en| {
            let c = c1.clone();
            en.schedule_now(move |en| Self::pump(&c, en));
        });
        let c2 = ctl.clone();
        let wake: WakeHook = Rc::new(RefCell::new(move |en: &mut Engine| {
            let c = c2.clone();
            en.schedule_now(move |en| Self::pump(&c, en));
        }));
        ctl.borrow_mut().sink.set_wake(wake);
        ctl
    }

    /// Record pages flushed to the record table.
    pub fn record_pages_written(&self) -> u64 {
        self.record_pages_written
    }

    /// Transfers handed to the sink.
    pub fn transfers_begun(&self) -> u64 {
        self.transfers_begun
    }

    /// Header resynchronisations performed (lossy campaigns).
    pub fn resyncs(&self) -> u64 {
        self.resyncs
    }

    /// Bytes discarded while resynchronising.
    pub fn bytes_skipped(&self) -> u64 {
        self.bytes_skipped
    }

    /// Completed transfers at the sink.
    pub fn sink_completed(&self) -> u64 {
        self.sink.completed()
    }

    fn refill(&mut self, en: &mut Engine, want: usize) {
        while self.inbuf.len() < want {
            let beat = {
                let rx = self.rx.clone();
                axis::pop(&rx, en)
            };
            match beat {
                Some(b) => self.inbuf.push_back(b.data),
                None => break,
            }
        }
    }

    fn take(&mut self, n: usize) -> Payload {
        self.taken_total += n as u64;
        self.inbuf.take(n)
    }

    /// Drive the state machine as far as currently possible.
    pub fn pump(rc: &Rc<RefCell<DbController<S>>>, en: &mut Engine) {
        if rc.borrow().busy {
            return;
        }
        rc.borrow_mut().busy = true;
        loop {
            let progressed = Self::step(rc, en);
            if !progressed {
                break;
            }
        }
        rc.borrow_mut().busy = false;
    }

    /// One state-machine step; returns whether progress was made.
    fn step(rc: &Rc<RefCell<DbController<S>>>, en: &mut Engine) -> bool {
        // Classifier completion is scheduled only after the controller
        // borrow is released (SL006): the scheduled closure re-borrows.
        let mut classify_done: Option<SimTime> = None;
        let mut c = rc.borrow_mut();
        let progressed = match &mut c.state {
            DbState::Header => {
                // Backpressure point: do not start a new image while the
                // classifier FIFO is full.
                if c.classifier_queue >= c.cfg.classifier_fifo {
                    return false;
                }
                c.refill(en, HEADER_BYTES);
                if c.inbuf.len() < HEADER_BYTES {
                    return false;
                }
                let hdr_bytes = c.take(HEADER_BYTES);
                let fmt = ImageFormat::capture();
                let decoded = ImageHeader::decode(&hdr_bytes);
                // A bad magic — or a magic-shaped run of pixels with an
                // impossible length — means the byte stream lost frames.
                let valid = decoded.is_some_and(|h| h.len as usize == fmt.bytes());
                if !valid {
                    if !c.cfg.tolerate_loss {
                        panic!(
                            "header desync after {} images ({} record pages): taken={} expect={} bytes {:02x?}",
                            c.images_stored,
                            c.record_pages_written,
                            c.taken_total,
                            c.images_stored * (fmt.bytes() as u64 + HEADER_BYTES as u64)
                                + HEADER_BYTES as u64,
                            &hdr_bytes[..]
                        );
                    }
                    // Skip one byte and hunt for the next real header.
                    c.resyncs += 1;
                    trace::metric_counter("faults.pipeline.resyncs").inc();
                    c.bytes_skipped += 1;
                    let rest = hdr_bytes.slice(1..HEADER_BYTES);
                    c.inbuf.push_front(rest);
                    c.state = DbState::Resync;
                    return true;
                }
                let hdr = decoded.expect("validated above");
                c.tee.clear();
                c.tee_len = 0;
                c.state = DbState::Image(hdr, hdr.len as u64, false);
                true
            }
            DbState::Image(hdr, remaining, begun) => {
                let hdr = *hdr;
                if !*begun {
                    let slot = image_slot_bytes(ImageFormat::capture());
                    let addr = c.cfg.image_table + hdr.id * slot;
                    let len = hdr.len as u64;
                    if !c.sink.begin(en, addr, len) {
                        return false;
                    }
                    let DbState::Image(_, _, begun) = &mut c.state else {
                        unreachable!()
                    };
                    *begun = true;
                    c.transfers_begun += 1;
                    return true;
                }
                // Forward up to 16 KiB of payload.
                let rem = *remaining;
                c.refill(en, 16384.min(rem as usize));
                let n = (c.inbuf.len() as u64).min(rem).min(16384);
                if n == 0 {
                    return false;
                }
                let chunk = c.take(n as usize);
                let last = n == rem;
                if !c.sink.push(en, chunk.clone(), last) {
                    // Refused: put the segment back (front) and retry later.
                    c.inbuf.push_front(chunk);
                    return false;
                }
                // Tee: share the segment with the classification path.
                c.tee_len += chunk.len();
                c.tee.push(chunk);
                let DbState::Image(_, remaining, _) = &mut c.state else {
                    unreachable!()
                };
                *remaining -= n;
                if *remaining > 0 {
                    return true;
                }
                // Image complete: classify (tee path) and store the record.
                c.images_stored += 1;
                c.classifier_queue += 1;
                let tee = std::mem::take(&mut c.tee);
                let tee_len = std::mem::take(&mut c.tee_len);
                let key = content_key(&tee, tee_len);
                let class = match c.memo.get(&key) {
                    Some(&cl) => cl,
                    None => {
                        // Memo miss (once per distinct image content): the
                        // downscaler needs contiguous bytes, so materialise
                        // here — adjacent segments merge zero-copy.
                        let img = Payload::concat(&tee);
                        let small =
                            downscale(&img, ImageFormat::capture(), ImageFormat::classify());
                        let cl = classify(&small, ImageFormat::classify());
                        c.memo.insert(key, cl);
                        cl
                    }
                };
                drop(tee);
                // The classifier PE finishes one image per 1/fps.
                let svc = SimDuration::from_us_f64(1e6 / c.cfg.classifier_fps);
                let start = c.classifier_free_at.max(en.now());
                c.classifier_free_at = start + svc;
                classify_done = Some(c.classifier_free_at);
                let rec = ClassRecord {
                    id: hdr.id,
                    class,
                    truth: hdr.truth,
                };
                c.records.push(rec);
                c.record_page.extend_from_slice(&rec.encode());
                if c.record_page.len() >= 4096 {
                    let page = std::mem::take(&mut c.record_page);
                    c.state = DbState::FlushRecords(Some(page));
                } else {
                    c.state = DbState::Header;
                }
                true
            }
            DbState::FlushRecords(page) => {
                let data = page.take().expect("flush pending");
                let addr = c.cfg.record_table + c.record_pages_written * 4096;
                if !c.sink.begin(en, addr, data.len() as u64) {
                    let DbState::FlushRecords(p) = &mut c.state else {
                        unreachable!()
                    };
                    *p = Some(data);
                    return false;
                }
                c.transfers_begun += 1;
                let ok = c.sink.push(en, Payload::from_vec(data), true);
                assert!(ok, "record page push after begin must fit");
                c.record_pages_written += 1;
                c.state = DbState::Header;
                true
            }
            DbState::Resync => {
                // Discard bytes until the next header magic. Scans the
                // staging buffer in bulk; this is a fault-recovery path,
                // not the streaming hot path.
                c.refill(en, 64 << 10);
                let avail = c.inbuf.len();
                if avail < 4 {
                    return false;
                }
                let chunk = c.take(avail);
                let magic = IMAGE_MAGIC.to_le_bytes();
                match chunk.windows(4).position(|w| w == magic) {
                    Some(p) => {
                        c.bytes_skipped += p as u64;
                        c.inbuf.push_front(chunk.slice(p..avail));
                        c.state = DbState::Header;
                    }
                    None => {
                        // Keep the last 3 bytes: a magic may straddle
                        // this chunk and the next refill.
                        c.bytes_skipped += (avail - 3) as u64;
                        c.inbuf.push_front(chunk.slice(avail - 3..avail));
                    }
                }
                true
            }
        };
        drop(c);
        if let Some(at) = classify_done {
            let rc2 = rc.clone();
            en.schedule_at(at, move |en| {
                rc2.borrow_mut().classifier_queue -= 1;
                Self::pump(&rc2, en);
            });
        }
        progressed
    }
}

/// Cheap content key for classification memoisation (samples the image).
/// Walks the tee's segments in place — hashing never concatenates them.
/// The sample points and hash are identical to running FNV over every
/// `step`-th byte of the flat image.
fn content_key(segs: &[Payload], total: usize) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    let step = (total / 512).max(1);
    let mut next = 0usize; // next flat index to sample
    let mut base = 0usize; // flat index of the current segment's start
    for seg in segs {
        let end = base + seg.len();
        let s = seg.as_slice();
        while next < end {
            h ^= s[next - base] as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01b3);
            next += step;
        }
        base = end;
    }
    h ^ total as u64
}

/// The Ethernet image source: a second FPGA streaming frames at line rate
/// (paper Sec 6.1: "sent by another FPGA as transmitter in our setup").
pub struct ImageSender {
    mac: Rc<RefCell<EthMac>>,
    dst: MacAddr,
    cfg: CaseStudyConfig,
    next_id: u64,
    /// (header bytes, body bytes, position) of the current image. The
    /// header is per-image; the body is the shared per-class pattern, so
    /// frames after the first are zero-copy windows of the cache.
    current: Option<(Payload, Payload, usize)>,
    /// Per-class cached image bodies.
    cache: HashMap<u64, Payload>,
    pub finished_at: Option<SimTime>,
}

impl ImageSender {
    /// Create and start the sender.
    pub fn start(
        en: &mut Engine,
        mac_rc: Rc<RefCell<EthMac>>,
        dst: MacAddr,
        cfg: CaseStudyConfig,
    ) -> Rc<RefCell<ImageSender>> {
        let s = Rc::new(RefCell::new(ImageSender {
            mac: mac_rc.clone(),
            dst,
            cfg,
            next_id: 0,
            current: None,
            cache: HashMap::new(),
            finished_at: None,
        }));
        let s2 = s.clone();
        mac_rc
            .borrow_mut()
            .set_tx_space_hook(move |en| ImageSender::kick(&s2, en));
        ImageSender::kick(&s, en);
        s
    }

    fn wire_image(&mut self, id: u64) -> (Payload, Payload) {
        let class = id % crate::images::NUM_CLASSES as u64;
        let body = self.cache.entry(class).or_insert_with(|| {
            let (_, px) = generate_image(ImageFormat::capture(), class);
            Payload::from_vec(px)
        });
        // Header is per-image; body is the cached class pattern. The
        // generator keys its pattern (and truth) on id % classes, so the
        // cached body is bit-identical to generate_image(id).
        let hdr = ImageHeader {
            id,
            len: body.len() as u32,
            truth: class as u32,
        };
        (Payload::from(hdr.encode()), body.clone())
    }

    /// Push frames while the MAC accepts them.
    pub fn kick(rc: &Rc<RefCell<ImageSender>>, en: &mut Engine) {
        loop {
            let frame = {
                let mut s = rc.borrow_mut();
                if s.current.is_none() {
                    if s.next_id >= s.cfg.images {
                        if s.finished_at.is_none() {
                            s.finished_at = Some(en.now());
                        }
                        return;
                    }
                    let id = s.next_id;
                    s.next_id += 1;
                    let (hdr, body) = s.wire_image(id);
                    s.current = Some((hdr, body, 0));
                }
                let (hdr, body, pos) = s.current.clone().expect("current set");
                let total = hdr.len() + body.len();
                let n = s.cfg.frame_payload.min(total - pos);
                let hb = hdr.len();
                // Slice the frame payload out of (header · body) without
                // materialising the concatenation; only the frame that
                // straddles the header/body seam copies (n bytes, once per
                // image).
                let payload = if pos >= hb {
                    body.slice(pos - hb..pos - hb + n)
                } else if pos + n <= hb {
                    hdr.slice(pos..pos + n)
                } else {
                    Payload::concat(&[hdr.slice(pos..hb), body.slice(0..pos + n - hb)])
                };
                let src = s.mac.borrow().addr();
                let f = EthFrame::data(s.dst, src, payload);
                // Advance tentatively.
                if pos + n == total {
                    s.current = None;
                } else {
                    s.current = Some((hdr.clone(), body.clone(), pos + n));
                }
                (f, hdr, body, pos)
            };
            let (f, hdr, body, pos) = frame;
            let mac_rc = rc.borrow().mac.clone();
            if !mac::send(&mac_rc, en, f) {
                // Refused: roll back.
                let mut s = rc.borrow_mut();
                s.current = Some((hdr, body, pos));
                return;
            }
        }
    }
}

/// RX bridge: MAC frames → AXIS byte stream, with backpressure (frames
/// stay in the MAC RX buffer — and eventually PAUSE the sender — when the
/// pipeline stalls).
pub struct RxBridge;

impl RxBridge {
    /// Install the bridge between `mac` and `out`.
    pub fn install(en: &mut Engine, mac_rc: Rc<RefCell<EthMac>>, out: Rc<RefCell<AxisChannel>>) {
        let m2 = mac_rc.clone();
        let o2 = out.clone();
        let pump = Rc::new(RefCell::new(move |en: &mut Engine| loop {
            let len = match m2.borrow().rx_peek_bytes() {
                Some(l) => l as usize,
                None => return,
            };
            if !o2.borrow().has_space(len) {
                return;
            }
            let Some(frame) = mac::pop_frame(&m2, en) else {
                return;
            };
            let ok = axis::push(&o2, en, StreamBeat::mid(frame.payload));
            debug_assert!(ok);
        }));
        let p1 = pump.clone();
        mac_rc
            .borrow_mut()
            .set_rx_hook(move |en| (p1.borrow_mut())(en));
        let p2 = pump.clone();
        out.borrow_mut()
            .set_space_hook(move |en| (p2.borrow_mut())(en));
        let _ = en;
    }
}

/// Results of a case-study run.
#[derive(Clone, Debug)]
pub struct CaseStudyReport {
    /// Images persisted.
    pub images: u64,
    /// Payload bytes persisted (images only).
    pub image_bytes: u64,
    /// Wall simulated time from first frame to last persisted transfer.
    pub elapsed: SimDuration,
    /// Storage bandwidth (image payload / elapsed) in GB/s.
    pub bandwidth_gbps: f64,
    /// Frames per second.
    pub fps: f64,
    /// Classifications matching ground truth.
    pub correct: u64,
    /// Total classifications.
    pub classified: u64,
    /// PCIe bytes moved during the run (Fig 7 metric; caller resets
    /// meters before the run).
    pub pcie_bytes: u64,
    /// Header resynchronisations under frame loss (0 when lossless).
    pub resyncs: u64,
    /// Bytes discarded while resynchronising (0 when lossless).
    pub bytes_skipped: u64,
}

/// Wire the common pipeline front (100 G link, RX bridge, database
/// controller + classification path, image sender) over an arbitrary
/// storage sink. The caller runs the engine and builds the report.
pub fn run_case_study_front<S: CaseSink + 'static>(
    en: &mut Engine,
    cfg: CaseStudyConfig,
    sink: S,
) -> (Rc<RefCell<DbController<S>>>, Rc<RefCell<ImageSender>>) {
    run_case_study_front_with(en, cfg, sink, None)
}

/// [`run_case_study_front`] with an optional fault plan: the plan's
/// Ethernet faults (loss, corruption, PAUSE storms) are installed on the
/// receive MAC of the capture link before traffic starts.
pub fn run_case_study_front_with<S: CaseSink + 'static>(
    en: &mut Engine,
    cfg: CaseStudyConfig,
    sink: S,
    plan: Option<&FaultPlan>,
) -> (Rc<RefCell<DbController<S>>>, Rc<RefCell<ImageSender>>) {
    let tx = EthMac::new(
        "tx-fpga",
        MacAddr::from_index(1),
        MacConfig::eth_100g(),
        101,
    );
    let rx = EthMac::new(
        "rx-fpga",
        MacAddr::from_index(2),
        MacConfig::eth_100g(),
        102,
    );
    mac::connect(&tx, &rx);
    if let Some(p) = plan {
        p.apply_mac(en, &rx);
    }
    let rx_ch = AxisChannel::new("rx-stream", 256 << 10);
    RxBridge::install(en, rx.clone(), rx_ch.clone());
    let ctl = DbController::start(en, cfg.clone(), rx_ch, sink);
    let sender = ImageSender::start(en, tx, MacAddr::from_index(2), cfg);
    (ctl, sender)
}

/// Run the SNAcc (FPGA) configuration of the case study on a brought-up
/// system. Returns the report; the SSD contents can be verified by the
/// caller.
pub fn run_snacc_case_study(
    sys: &mut crate::system::SnaccSystem,
    cfg: CaseStudyConfig,
) -> CaseStudyReport {
    run_snacc_case_study_with(sys, cfg, None)
}

/// [`run_snacc_case_study`] under a fault plan. The plan's NVMe and PCIe
/// injectors go into the brought-up system, its Ethernet faults onto the
/// capture link. Under loss (`cfg.tolerate_loss`) the lossless-delivery
/// assertions are relaxed: the report then counts what actually landed.
pub fn run_snacc_case_study_with(
    sys: &mut crate::system::SnaccSystem,
    cfg: CaseStudyConfig,
    plan: Option<&FaultPlan>,
) -> CaseStudyReport {
    sys.reset_pcie_meters();
    let start = sys.en.now();
    if let Some(p) = plan {
        sys.inject_faults(p);
    }

    let sink = StreamerSink::new(&mut sys.en, sys.streamer.ports());
    let (ctl, _sender) = run_case_study_front_with(&mut sys.en, cfg.clone(), sink, plan);
    sys.en.run();

    let end = sys.en.now();
    let c = ctl.borrow();
    if !cfg.tolerate_loss {
        let expected_transfers = c.transfers_begun();
        assert_eq!(
            c.sink_completed(),
            expected_transfers,
            "all transfers must persist"
        );
        assert_eq!(c.images_stored, cfg.images);
    }
    let image_bytes = c.images_stored * ImageFormat::capture().bytes() as u64;
    let elapsed = end.since(start);
    let correct = c.records.iter().filter(|r| r.class == r.truth).count() as u64;
    CaseStudyReport {
        images: c.images_stored,
        image_bytes,
        elapsed,
        bandwidth_gbps: image_bytes as f64 / 1e9 / elapsed.as_secs_f64(),
        fps: c.images_stored as f64 / elapsed.as_secs_f64(),
        correct,
        classified: c.records.len() as u64,
        pcie_bytes: sys.pcie_bytes(),
        resyncs: c.resyncs(),
        bytes_skipped: c.bytes_skipped(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::system::{SnaccSystem, SystemConfig};
    use snacc_core::config::StreamerVariant;

    #[test]
    fn record_roundtrip() {
        let r = ClassRecord {
            id: 7,
            class: 3,
            truth: 3,
        };
        assert_eq!(ClassRecord::decode(&r.encode()), r);
    }

    #[test]
    fn lossy_case_study_degrades_gracefully() {
        // 0.2% frame loss on the capture link; the controller resyncs on
        // the image magic instead of panicking, and the report counts
        // what actually landed.
        let plan = FaultPlan::parse("seed = 9\n[net]\ndrop_rate = 0.002").unwrap();
        let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
        let cfg = CaseStudyConfig {
            images: 4,
            tolerate_loss: true,
            ..Default::default()
        };
        let report = run_snacc_case_study_with(&mut sys, cfg, Some(&plan));
        assert!(
            report.resyncs > 0,
            "seeded plan must drop frames: {report:?}"
        );
        assert!(report.bytes_skipped > 0);
        assert!(report.images < 4, "loss must cost images: {report:?}");
    }

    #[test]
    fn flaky_ssd_case_study_recovers() {
        // The shipped flaky-SSD plan: transient NVMe errors under a
        // 3-attempt retry policy. Every injected error is either retried
        // or given up — and with 5% error over a short run, recovery
        // should be total.
        let plan = FaultPlan::flaky_ssd();
        let mut sys =
            SnaccSystem::bring_up(SystemConfig::snacc_faulted(StreamerVariant::Uram, &plan));
        let cfg = CaseStudyConfig {
            images: 4,
            ..Default::default()
        };
        let report = run_snacc_case_study_with(&mut sys, cfg, Some(&plan));
        assert_eq!(report.images, 4);
        let faults = sys.nvme.fault_stats().errors;
        let m = sys.streamer.metrics();
        assert!(faults > 0, "plan must inject");
        assert_eq!(
            faults,
            m.retries.get() + m.gave_up.get(),
            "every injected fault is retried or given up"
        );
        assert!(m.recovered.get() > 0, "retries must recover commands");
    }

    #[test]
    fn small_case_study_end_to_end() {
        let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
        let cfg = CaseStudyConfig {
            images: 8,
            ..Default::default()
        };
        let report = run_snacc_case_study(&mut sys, cfg.clone());
        assert_eq!(report.images, 8);
        assert_eq!(report.classified, 8);
        assert!(report.correct >= 5, "classifier accuracy {report:?}");
        assert!(report.bandwidth_gbps > 1.0, "{report:?}");
        // Verify an image really landed in the database.
        let slot = image_slot_bytes(ImageFormat::capture());
        let (_, px) = generate_image(ImageFormat::capture(), 3);
        let got = sys.nvme.with(|d| {
            d.nand_mut()
                .media_mut()
                .read_vec(cfg.image_table + 3 * slot, 64)
        });
        assert_eq!(&got[..], &px[..64]);
    }
}
