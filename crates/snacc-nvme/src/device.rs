//! The NVMe controller model.
//!
//! This is a *behavioural* controller: it exposes the spec register file
//! on BAR0, fetches real 64-byte SQEs out of queue memory over the PCIe
//! fabric (wherever that memory lives — host DRAM for SPDK, the streamer's
//! on-FPGA FIFO for SNAcc), resolves PRPs (fetching list pages over the
//! fabric, which is what drives SNAcc's on-the-fly PRP synthesis), moves
//! payload data with a credit-windowed fetch engine, accesses the NAND
//! backend, and writes back real 16-byte CQEs.
//!
//! The two fetch-credit pools (host vs peer-to-peer) model the controller
//! behaviour the paper inferred with an ILA: "the read accesses employed
//! by the NVMe controller to retrieve the data to be written do not occur
//! frequently enough to sustain a higher bandwidth" (Sec 5.2).

use crate::nand::NandBackend;
use crate::profile::NvmeProfile;
use crate::prp::{walk_prps, PrpError, PrpSeg};
use crate::queue::CqWriter;
use crate::spec::{self, Cqe, IoOpcode, Sqe, Status, LBA_BYTES, NVME_PAGE, SQE_BYTES};
use snacc_mem::AddrRange;
use snacc_pcie::{MmioTarget, NodeId, PcieFabric, HOST_NODE};
use snacc_sim::stats::Counter;
use snacc_sim::{Engine, Payload, SimDuration, SimRng, SimTime};
use snacc_trace as trace;
use std::cell::{OnceCell, RefCell};
use std::collections::{BTreeMap, VecDeque};
use std::rc::Rc;

/// BAR0 window size (register file + doorbells).
pub const BAR0_SIZE: u64 = 0x4000;

/// Aggregate device statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct NvmeStats {
    /// Completed admin commands.
    pub admin_cmds: u64,
    /// Completed read commands.
    pub read_cmds: u64,
    /// Completed write commands.
    pub write_cmds: u64,
    /// Bytes delivered by reads.
    pub read_bytes: u64,
    /// Bytes accepted by writes.
    pub write_bytes: u64,
    /// Commands completed with error status.
    pub errors: u64,
}

/// Deterministic I/O fault injection knobs (installed by a fault plan —
/// see the `snacc-faults` crate). All randomness comes from the seeded
/// [`SimRng`], drawn in event order, so same-seed runs inject identical
/// faults at identical simulated times.
#[derive(Clone, Debug)]
pub struct IoFaultConfig {
    /// Probability an I/O command completes immediately with
    /// [`IoFaultConfig::error_status`] instead of executing.
    pub error_rate: f64,
    /// Status injected command errors complete with (default:
    /// `DataTransferError`, the transient status retry policies act on).
    pub error_status: Status,
    /// Probability an I/O command is delayed by
    /// [`IoFaultConfig::latency_spike`] before executing.
    pub latency_spike_rate: f64,
    /// Extra latency added by a spike.
    pub latency_spike: SimDuration,
    /// Only inject inside this simulated-time window (`None` = always).
    pub window: Option<(SimTime, SimTime)>,
    /// Seed for the injector's private RNG stream.
    pub seed: u64,
}

impl IoFaultConfig {
    /// A flaky-SSD preset: `rate` command errors, no latency spikes.
    pub fn error_only(rate: f64, seed: u64) -> Self {
        IoFaultConfig {
            error_rate: rate,
            error_status: Status::DataTransferError,
            latency_spike_rate: 0.0,
            latency_spike: SimDuration::from_us(0),
            window: None,
            seed,
        }
    }
}

/// Injected-fault tallies for one device.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct IoFaultStats {
    /// Commands forced to complete with the configured error status.
    pub errors: u64,
    /// Commands delayed by a latency spike.
    pub spikes: u64,
}

struct IoFaultState {
    cfg: IoFaultConfig,
    rng: SimRng,
    stats: IoFaultStats,
    /// Registry counters (`faults.nvme.*`), so `--metrics-json` snapshots
    /// carry the injected-fault tallies.
    reg_errors: trace::CounterHandle,
    reg_spikes: trace::CounterHandle,
}

impl IoFaultState {
    fn in_window(&self, now: SimTime) -> bool {
        match self.cfg.window {
            Some((a, b)) => now >= a && now < b,
            None => true,
        }
    }
}

struct QueuePair {
    sq_base: u64,
    sq_entries: u16,
    sq_head: u16,
    sq_tail: u16,
    cq_base: u64,
    cq_entries: u16,
    cq: CqWriter,
    /// CQEs written but not yet acknowledged via the CQ head doorbell.
    cq_outstanding: u16,
    /// Last CQ head value the consumer reported.
    cq_head_shadow: u16,
    /// Completions deferred because the CQ ring is full (consumer
    /// overrun protection — a real controller must not overwrite
    /// unacknowledged CQEs).
    pending_cqes: VecDeque<CqeOut>,
    pumping: bool,
}

/// A completion in flight towards the CQ: the CQE payload fields plus the
/// command's trace span, which closes when the CQE write lands.
#[derive(Clone, Copy)]
struct CqeOut {
    cid: u16,
    status: Status,
    result: u32,
    span: trace::SpanId,
}

impl QueuePair {
    fn new(sq_base: u64, sq_entries: u16, cq_base: u64, cq_entries: u16) -> Self {
        QueuePair {
            sq_base,
            sq_entries,
            sq_head: 0,
            sq_tail: 0,
            cq_base,
            cq_entries,
            cq: CqWriter::new(cq_entries),
            cq_outstanding: 0,
            cq_head_shadow: 0,
            pending_cqes: VecDeque::new(),
            pumping: false,
        }
    }

    fn cq_full(&self) -> bool {
        self.cq_outstanding >= self.cq_entries
    }
}

/// The controller state. Use through [`NvmeDeviceHandle`].
pub struct NvmeDevice {
    node: NodeId,
    fabric: Rc<RefCell<PcieFabric>>,
    profile: NvmeProfile,
    nand: NandBackend,
    // Registers.
    cc: u32,
    csts: u32,
    aqa: u32,
    asq: u64,
    acq: u64,
    /// qid → queue pair; 0 is the admin queue.
    queues: BTreeMap<u16, QueuePair>,
    /// Pending CQ creations awaiting their SQ (qid → (base, entries)).
    pending_cqs: BTreeMap<u16, (u64, u16)>,
    // Shared fetch-credit rings (completion times of outstanding reads).
    fetch_host: VecDeque<SimTime>,
    fetch_p2p: VecDeque<SimTime>,
    stats: NvmeStats,
    doorbell_writes: Counter,
    /// Optional fault injector (None = pristine device).
    faults: Option<IoFaultState>,
    /// Cached Identify pages (built once; the contents depend only on the
    /// profile and NAND capacity, both fixed after construction).
    ident_ctrl: OnceCell<Payload>,
    ident_ns: OnceCell<Payload>,
}

impl NvmeDevice {
    /// Device statistics snapshot.
    pub fn stats(&self) -> NvmeStats {
        self.stats
    }

    /// The device's fabric node.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// The active profile.
    pub fn profile(&self) -> &NvmeProfile {
        &self.profile
    }

    /// Direct access to the storage backend (pre-population, verification).
    pub fn nand_mut(&mut self) -> &mut NandBackend {
        &mut self.nand
    }

    /// Is the controller ready (CSTS.RDY)?
    pub fn is_ready(&self) -> bool {
        self.csts & spec::csts::RDY != 0
    }

    fn identify_controller(&self) -> Payload {
        self.ident_ctrl
            .get_or_init(|| {
                let mut d = vec![0u8; NVME_PAGE as usize];
                d[0..2].copy_from_slice(&0x144du16.to_le_bytes()); // VID (Samsung)
                let sn = b"SNACCSIM0001        ";
                d[4..4 + sn.len()].copy_from_slice(sn);
                let mn = self.profile.model.as_bytes();
                let n = mn.len().min(40);
                d[24..24 + n].copy_from_slice(&mn[..n]);
                d[64..72].copy_from_slice(b"1.0     "); // FR
                d[77] = 0; // MDTS: unlimited (the streamer self-limits at 1 MiB)
                d[512] = 0x66; // SQES: 64 B
                d[513] = 0x44; // CQES: 16 B
                d[516..520].copy_from_slice(&1u32.to_le_bytes()); // NN = 1 namespace
                Payload::from_vec(d)
            })
            .clone()
    }

    fn identify_namespace(&self) -> Payload {
        self.ident_ns
            .get_or_init(|| {
                let mut d = vec![0u8; NVME_PAGE as usize];
                let nsze = self.nand.capacity_bytes() / LBA_BYTES;
                d[0..8].copy_from_slice(&nsze.to_le_bytes()); // NSZE
                d[8..16].copy_from_slice(&nsze.to_le_bytes()); // NCAP
                d[16..24].copy_from_slice(&nsze.to_le_bytes()); // NUSE
                d[26] = 0; // FLBAS: format 0
                           // LBAF0: LBADS = 9 (512 B blocks).
                let lbaf0: u32 = 9 << 16;
                d[128..132].copy_from_slice(&lbaf0.to_le_bytes());
                Payload::from_vec(d)
            })
            .clone()
    }
}

/// Shared handle to an attached NVMe device.
#[derive(Clone)]
pub struct NvmeDeviceHandle {
    inner: Rc<RefCell<NvmeDevice>>,
    bar0_base: u64,
    node: NodeId,
}

struct NvmeBar0 {
    dev: Rc<RefCell<NvmeDevice>>,
}

impl MmioTarget for NvmeBar0 {
    fn name(&self) -> &str {
        "nvme-bar0"
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        let d = self.dev.borrow();
        let value: u64 = match offset {
            spec::regs::CAP => {
                // MQES (15:0) = max entries - 1; TO (31:24); DSTRD (35:32)=0;
                // CSS bit 37 (NVM command set); MPSMIN 0 (4 KiB pages).
                let mqes = (d.profile.max_queue_entries - 1) as u64;
                mqes | (0x20 << 24) | (1 << 37)
            }
            spec::regs::VS => 0x0001_0400, // 1.4
            spec::regs::CC => d.cc as u64,
            spec::regs::CSTS => d.csts as u64,
            spec::regs::AQA => d.aqa as u64,
            spec::regs::ASQ => d.asq,
            spec::regs::ACQ => d.acq,
            _ => 0,
        };
        let bytes = value.to_le_bytes();
        let n = out.len().min(8);
        out[..n].copy_from_slice(&bytes[..n]);

        d.profile.reg_latency
    }

    fn write(
        &mut self,
        en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: &[u8],
    ) -> SimDuration {
        let mut buf = [0u8; 8];
        let n = data.len().min(8);
        buf[..n].copy_from_slice(&data[..n]);
        let v64 = u64::from_le_bytes(buf);
        let v32 = v64 as u32;
        // Doorbell side effects are scheduled only after the device borrow
        // is released (SL006): the scheduled closures re-borrow `self.dev`.
        let mut pump_q: Option<u16> = None;
        let mut flush_q: Option<u16> = None;
        let mut d = self.dev.borrow_mut();
        let lat = d.profile.reg_latency;
        match offset {
            spec::regs::CC => {
                let was_enabled = d.cc & spec::cc::EN != 0;
                d.cc = v32;
                if !was_enabled && v32 & spec::cc::EN != 0 {
                    // Controller enable: materialise the admin queue pair.
                    let asqs = (d.aqa & 0xFFF) as u16 + 1;
                    let acqs = ((d.aqa >> 16) & 0xFFF) as u16 + 1;
                    let qp = QueuePair::new(d.asq, asqs, d.acq, acqs);
                    d.queues.insert(0, qp);
                    d.csts |= spec::csts::RDY;
                } else if was_enabled && v32 & spec::cc::EN == 0 {
                    // Controller reset.
                    d.queues.clear();
                    d.pending_cqs.clear();
                    d.csts &= !spec::csts::RDY;
                }
            }
            spec::regs::AQA => d.aqa = v32,
            spec::regs::ASQ => d.asq = v64,
            spec::regs::ACQ => d.acq = v64,
            o if o >= spec::regs::DOORBELL_BASE => {
                d.doorbell_writes.inc();
                let idx = (o - spec::regs::DOORBELL_BASE) / spec::regs::DOORBELL_STRIDE;
                let qid = (idx / 2) as u16;
                if idx.is_multiple_of(2) {
                    // SQ tail doorbell: takes effect when the posted write
                    // reaches the controller.
                    if let Some(q) = d.queues.get_mut(&qid) {
                        q.sq_tail = (v32 as u16) % q.sq_entries;
                        pump_q = Some(qid);
                    }
                } else {
                    // CQ head doorbell: consumer progress frees CQ slots;
                    // flush any deferred completions.
                    if let Some(q) = d.queues.get_mut(&qid) {
                        // The consumer reports its new head; everything up
                        // to it is acknowledged.
                        let delta_capable = q.cq_outstanding;
                        let acked = delta_capable.min(q.cq_outstanding);
                        let _ = acked;
                        // We don't track the device-side head separately;
                        // the consumer acks monotonically, so derive the
                        // delta from the reported value.
                        let new_head = (v32 as u16) % q.cq_entries;
                        let old = q.cq_head_shadow;
                        let delta = (new_head + q.cq_entries - old) % q.cq_entries;
                        q.cq_head_shadow = new_head;
                        q.cq_outstanding = q.cq_outstanding.saturating_sub(delta);
                        if !q.pending_cqes.is_empty() {
                            flush_q = Some(qid);
                        }
                    }
                }
            }
            _ => {}
        }
        drop(d);
        if let Some(qid) = pump_q {
            let rc = self.dev.clone();
            en.schedule_at(arrival.max(en.now()), move |en| pump_queue(rc, en, qid));
        }
        if let Some(qid) = flush_q {
            let rc = self.dev.clone();
            en.schedule_at(arrival.max(en.now()), move |en| {
                flush_pending_cqes(&rc, en, qid);
            });
        }
        lat
    }
}

impl NvmeDeviceHandle {
    /// Attach a new device to the fabric, mapping BAR0 at `bar0_base`.
    pub fn attach(
        fabric: Rc<RefCell<PcieFabric>>,
        bar0_base: u64,
        profile: NvmeProfile,
        seed: u64,
    ) -> Self {
        let node = fabric.borrow_mut().add_device("nvme-ssd", profile.link);
        let nand = NandBackend::new(profile.nand.clone(), seed);
        let dev = Rc::new(RefCell::new(NvmeDevice {
            node,
            fabric: fabric.clone(),
            profile,
            nand,
            cc: 0,
            csts: 0,
            aqa: 0,
            asq: 0,
            acq: 0,
            queues: BTreeMap::new(),
            pending_cqs: BTreeMap::new(),
            fetch_host: VecDeque::new(),
            fetch_p2p: VecDeque::new(),
            stats: NvmeStats::default(),
            doorbell_writes: Counter::new(),
            faults: None,
            ident_ctrl: OnceCell::new(),
            ident_ns: OnceCell::new(),
        }));
        let bar = Rc::new(RefCell::new(NvmeBar0 { dev: dev.clone() }));
        fabric
            .borrow_mut()
            .map_region(node, AddrRange::new(bar0_base, BAR0_SIZE), bar);
        NvmeDeviceHandle {
            inner: dev,
            bar0_base,
            node,
        }
    }

    /// The device's fabric node id.
    pub fn node(&self) -> NodeId {
        self.node
    }

    /// BAR0 base address on the fabric.
    pub fn bar0_base(&self) -> u64 {
        self.bar0_base
    }

    /// Fabric address of the SQ tail doorbell for `qid`.
    pub fn sq_doorbell_addr(&self, qid: u16) -> u64 {
        self.bar0_base + spec::regs::sq_tail_doorbell(qid)
    }

    /// Fabric address of the CQ head doorbell for `qid`.
    pub fn cq_doorbell_addr(&self, qid: u16) -> u64 {
        self.bar0_base + spec::regs::cq_head_doorbell(qid)
    }

    /// Run a closure over the device state.
    pub fn with<R>(&self, f: impl FnOnce(&mut NvmeDevice) -> R) -> R {
        f(&mut self.inner.borrow_mut())
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> NvmeStats {
        self.inner.borrow().stats
    }

    /// Install (or replace) the I/O fault injector. The injector forks a
    /// private RNG stream from `cfg.seed`; nothing else in the model
    /// consumes it, so enabling faults perturbs only faulted commands.
    pub fn install_faults(&self, cfg: IoFaultConfig) {
        let rng = SimRng::new(cfg.seed);
        self.inner.borrow_mut().faults = Some(IoFaultState {
            cfg,
            rng,
            stats: IoFaultStats::default(),
            reg_errors: trace::metric_counter("faults.nvme.cmd_errors"),
            reg_spikes: trace::metric_counter("faults.nvme.latency_spikes"),
        });
    }

    /// Remove the fault injector (subsequent commands run pristine).
    pub fn clear_faults(&self) {
        self.inner.borrow_mut().faults = None;
    }

    /// Tallies of injected faults (zeros when no injector is installed).
    pub fn fault_stats(&self) -> IoFaultStats {
        self.inner
            .borrow()
            .faults
            .as_ref()
            .map(|f| f.stats)
            .unwrap_or_default()
    }

    /// Diagnostic snapshot of queue state (for debugging stalls).
    pub fn debug_state(&self) -> String {
        let d = self.inner.borrow();
        let mut s = format!(
            "stats={:?} fetch_host={} fetch_p2p={}",
            d.stats,
            d.fetch_host.len(),
            d.fetch_p2p.len()
        );
        for (qid, q) in &d.queues {
            s.push_str(&format!(
                " | q{qid}: head={} tail={} pumping={}",
                q.sq_head, q.sq_tail, q.pumping
            ));
        }
        s
    }
}

/// Fetch a burst of SQEs and dispatch them; reschedules itself while
/// entries remain.
fn pump_queue(rc: Rc<RefCell<NvmeDevice>>, en: &mut Engine, qid: u16) {
    let (fabric, node, addr, count, entries, base);
    {
        let mut d = rc.borrow_mut();
        let burst = d.profile.sqe_fetch_burst;
        let Some(q) = d.queues.get_mut(&qid) else {
            return;
        };
        if q.pumping || q.sq_head == q.sq_tail {
            return;
        }
        q.pumping = true;
        let avail = (q.sq_tail + q.sq_entries - q.sq_head) % q.sq_entries;
        let till_wrap = q.sq_entries - q.sq_head;
        count = avail.min(till_wrap).min(burst);
        addr = q.sq_base + q.sq_head as u64 * SQE_BYTES;
        entries = q.sq_entries;
        base = q.sq_head;
        q.sq_head = (q.sq_head + count) % q.sq_entries;
        fabric = d.fabric.clone();
        node = d.node;
        let _ = (entries, base);
    }
    let mut buf = vec![0u8; (count as u64 * SQE_BYTES) as usize];
    let fetched_at = {
        let mut fab = fabric.borrow_mut();
        fab.read(en, node, addr, &mut buf)
    };
    match fetched_at {
        Ok(t) => {
            let rc2 = rc.clone();
            en.schedule_at(t, move |en| {
                for i in 0..count as usize {
                    // Slices are exactly 64 bytes, so decode cannot fail;
                    // a malformed fetch is dropped, never a panic.
                    if let Ok(sqe) = Sqe::decode(&buf[i * 64..(i + 1) * 64]) {
                        exec_command(&rc2, en, qid, sqe);
                    }
                }
                {
                    let mut d = rc2.borrow_mut();
                    if let Some(q) = d.queues.get_mut(&qid) {
                        q.pumping = false;
                    }
                }
                pump_queue(rc2, en, qid);
            });
        }
        Err(_) => {
            // SQ memory unreachable: controller would assert CFS; we just
            // stop pumping this queue.
            let mut d = rc.borrow_mut();
            if let Some(q) = d.queues.get_mut(&qid) {
                q.pumping = false;
            }
        }
    }
}

/// Write a completion for `(qid, out.cid)` no earlier than `t`. The CQE
/// write is deferred to an event at `t` so completions book the wire in
/// true time order — a command that finishes earlier gets its CQE out
/// earlier, regardless of submission order.
fn complete(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, t: SimTime, qid: u16, out: CqeOut) {
    let rc2 = rc.clone();
    en.schedule_at(t.max(en.now()), move |en| {
        complete_now(&rc2, en, qid, out);
    });
}

/// Perform the CQE write at the current time, deferring when the CQ ring
/// has no acknowledged space.
fn complete_now(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, qid: u16, out: CqeOut) {
    let (fabric, node, addr, cqe);
    {
        let mut d = rc.borrow_mut();
        let Some(q) = d.queues.get_mut(&qid) else {
            return;
        };
        if q.cq_full() {
            q.pending_cqes.push_back(out);
            return;
        }
        q.cq_outstanding += 1;
        let is_err = out.status != Status::Success;
        let (slot, phase) = q.cq.next_slot();
        debug_assert!(slot < q.cq_entries);
        cqe = Cqe {
            result: out.result,
            sq_head: q.sq_head,
            sq_id: qid,
            cid: out.cid,
            phase,
            status: out.status,
        };
        addr = q.cq_base + slot as u64 * spec::CQE_BYTES;
        if is_err {
            d.stats.errors += 1;
        }
        fabric = d.fabric.clone();
        node = d.node;
    }
    let bytes = cqe.encode();
    let arrival = {
        let mut fab = fabric.borrow_mut();
        // Completion writes are small posted writes; failure here means the
        // CQ was unmapped (a fatal host bug) — drop it, consumers will time
        // out.
        fab.write(en, node, addr, &bytes)
    };
    if let Ok(arrival) = arrival {
        // The command's SQE→CQE span closes when the CQE lands.
        trace::end_at(arrival, out.span);
        // Pin the event clock to the completion so `Engine::run` covers the
        // full command lifetime even when nobody is hooked on the CQ.
        en.schedule_at(arrival, |_| {});
    }
}

/// Write deferred completions now that the consumer freed CQ slots.
fn flush_pending_cqes(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, qid: u16) {
    loop {
        let next = {
            let mut d = rc.borrow_mut();
            let Some(q) = d.queues.get_mut(&qid) else {
                return;
            };
            if q.cq_full() {
                return;
            }
            q.pending_cqes.pop_front()
        };
        match next {
            Some(out) => {
                complete_now(rc, en, qid, out);
            }
            None => return,
        }
    }
}

fn exec_command(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, qid: u16, sqe: Sqe) {
    if qid == 0 {
        exec_admin(rc, en, sqe);
    } else {
        exec_io(rc, en, qid, sqe);
    }
}

fn exec_admin(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, sqe: Sqe) {
    use crate::spec::AdminOpcode as A;
    let now = en.now();
    let span = if trace::enabled() {
        let node = rc.borrow().node;
        trace::begin(
            en,
            &format!("nvme.n{}", node.0),
            "nvme.admin",
            &[("cid", sqe.cid as u64), ("opc", sqe.opcode as u64)],
        )
    } else {
        trace::SpanId::NONE
    };
    let mut status = Status::Success;
    let mut result: u32 = 0;
    let mut t_done = now + SimDuration::from_us(1); // admin processing time

    if sqe.opcode == A::Identify as u8 {
        let cns = sqe.cdw[0] & 0xFF;
        let (data, ok) = {
            let d = rc.borrow();
            match cns {
                0x01 => (d.identify_controller(), true),
                0x00 => (d.identify_namespace(), true),
                _ => (Payload::empty(), false),
            }
        };
        if ok {
            let (fabric, node) = {
                let d = rc.borrow();
                (d.fabric.clone(), d.node)
            };
            let w = fabric.borrow_mut().write(en, node, sqe.prp1, &data);
            match w {
                Ok(t) => t_done = t,
                Err(_) => status = Status::DataTransferError,
            }
        } else {
            status = Status::InvalidField;
        }
    } else if sqe.opcode == A::CreateIoCq as u8 {
        let qid = (sqe.cdw[0] & 0xFFFF) as u16;
        let entries = ((sqe.cdw[0] >> 16) & 0xFFFF) as u16 + 1;
        let mut d = rc.borrow_mut();
        if qid == 0 || entries < 2 || sqe.prp1 == 0 {
            status = Status::InvalidField;
        } else {
            d.pending_cqs.insert(qid, (sqe.prp1, entries));
        }
    } else if sqe.opcode == A::CreateIoSq as u8 {
        let qid = (sqe.cdw[0] & 0xFFFF) as u16;
        let entries = ((sqe.cdw[0] >> 16) & 0xFFFF) as u16 + 1;
        let cqid = ((sqe.cdw[1] >> 16) & 0xFFFF) as u16;
        let mut d = rc.borrow_mut();
        match d.pending_cqs.get(&cqid).copied() {
            Some((cq_base, cq_entries)) if qid != 0 && entries >= 2 && sqe.prp1 != 0 => {
                let qp = QueuePair::new(sqe.prp1, entries, cq_base, cq_entries);
                d.queues.insert(qid, qp);
            }
            _ => status = Status::InvalidField,
        }
    } else if sqe.opcode == A::DeleteIoSq as u8 {
        let qid = (sqe.cdw[0] & 0xFFFF) as u16;
        rc.borrow_mut().queues.remove(&qid);
    } else if sqe.opcode == A::DeleteIoCq as u8 {
        let qid = (sqe.cdw[0] & 0xFFFF) as u16;
        rc.borrow_mut().pending_cqs.remove(&qid);
    } else if sqe.opcode == A::SetFeatures as u8 || sqe.opcode == A::GetFeatures as u8 {
        let fid = sqe.cdw[0] & 0xFF;
        if fid == 0x07 {
            // Number of queues: grant what the profile allows.
            let d = rc.borrow();
            let n = (d.profile.max_io_queues - 1) as u32;
            result = n | (n << 16);
        }
    } else {
        status = Status::InvalidOpcode;
    }

    rc.borrow_mut().stats.admin_cmds += 1;
    complete(
        rc,
        en,
        t_done,
        0,
        CqeOut {
            cid: sqe.cid,
            status,
            result,
            span,
        },
    );
}

/// Resolve a command's PRPs, fetching list pages over the fabric.
/// Returns `(segments, time PRP resolution finished)` or an error status.
fn resolve_prps(
    rc: &Rc<RefCell<NvmeDevice>>,
    en: &mut Engine,
    sqe: &Sqe,
    byte_len: u64,
) -> Result<(Vec<PrpSeg>, SimTime), Status> {
    let (fabric, node) = {
        let d = rc.borrow();
        (d.fabric.clone(), d.node)
    };
    let mut t_prp = en.now();
    let walk = walk_prps(sqe.prp1, sqe.prp2, byte_len, |list_addr| {
        let mut page = [0u8; NVME_PAGE as usize];
        match fabric.borrow_mut().read(en, node, list_addr, &mut page) {
            Ok(t) => t_prp = t_prp.max(t),
            // Abort the walk at the failed fetch — parsing the stale
            // page would issue further bogus reads.
            Err(_) => return Err(PrpError::FetchFailed(list_addr)),
        }
        Ok(page)
    });
    match walk {
        Ok(segs) => Ok((segs, t_prp)),
        // Transport failure is transient (retryable); a malformed PRP
        // chain is a host bug and stays fatal.
        Err(PrpError::FetchFailed(_)) => Err(Status::DataTransferError),
        Err(_) => Err(Status::InvalidField),
    }
}

/// I/O dispatch with the fault injector in front: a seeded draw decides
/// whether this command errors out immediately, is delayed by a latency
/// spike, or proceeds untouched into [`exec_io_inner`].
fn exec_io(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, qid: u16, sqe: Sqe) {
    enum Draw {
        Clean,
        Error(Status),
        Spike(SimDuration),
    }
    let draw = {
        let mut d = rc.borrow_mut();
        let now = en.now();
        // Flushes and malformed opcodes are never faulted — only real I/O.
        let is_io = IoOpcode::from_u8(sqe.opcode).is_some_and(|o| o != IoOpcode::Flush);
        match &mut d.faults {
            Some(f) if is_io && f.in_window(now) => {
                if f.cfg.error_rate > 0.0 && f.rng.gen_bool(f.cfg.error_rate) {
                    f.stats.errors += 1;
                    f.reg_errors.inc();
                    Draw::Error(f.cfg.error_status)
                } else if f.cfg.latency_spike_rate > 0.0 && f.rng.gen_bool(f.cfg.latency_spike_rate)
                {
                    f.stats.spikes += 1;
                    f.reg_spikes.inc();
                    Draw::Spike(f.cfg.latency_spike)
                } else {
                    Draw::Clean
                }
            }
            _ => Draw::Clean,
        }
    };
    match draw {
        Draw::Clean => exec_io_inner(rc, en, qid, sqe),
        Draw::Error(status) => {
            if trace::enabled() {
                let node = rc.borrow().node;
                trace::instant(
                    en,
                    &format!("nvme.n{}", node.0),
                    "fault.cmd_error",
                    &[("qid", qid as u64), ("cid", sqe.cid as u64)],
                );
            }
            let out = CqeOut {
                cid: sqe.cid,
                status,
                result: 0,
                span: trace::SpanId::NONE,
            };
            // A rejected command still takes a controller turnaround.
            let t = en.now() + SimDuration::from_us(1);
            complete(rc, en, t, qid, out);
        }
        Draw::Spike(extra) => {
            if trace::enabled() {
                let node = rc.borrow().node;
                trace::instant(
                    en,
                    &format!("nvme.n{}", node.0),
                    "fault.latency_spike",
                    &[("qid", qid as u64), ("cid", sqe.cid as u64)],
                );
            }
            let rc2 = rc.clone();
            en.schedule_in(extra, move |en| exec_io_inner(&rc2, en, qid, sqe));
        }
    }
}

fn exec_io_inner(rc: &Rc<RefCell<NvmeDevice>>, en: &mut Engine, qid: u16, sqe: Sqe) {
    let now = en.now();
    let Some(op) = IoOpcode::from_u8(sqe.opcode) else {
        let out = CqeOut {
            cid: sqe.cid,
            status: Status::InvalidOpcode,
            result: 0,
            span: trace::SpanId::NONE,
        };
        complete(rc, en, now, qid, out);
        return;
    };

    // SQE→CQE lifetime span: opens when execution starts, closes in
    // `complete_now` when the CQE write lands.
    let span = if trace::enabled() {
        let node = rc.borrow().node;
        let name = match op {
            IoOpcode::Read => "nvme.read",
            IoOpcode::Write => "nvme.write",
            IoOpcode::Flush => "nvme.flush",
        };
        trace::begin(
            en,
            &format!("nvme.n{}", node.0),
            name,
            &[
                ("qid", qid as u64),
                ("cid", sqe.cid as u64),
                ("slba", sqe.slba()),
                ("len", sqe.byte_len()),
            ],
        )
    } else {
        trace::SpanId::NONE
    };

    if op == IoOpcode::Flush {
        let t = {
            let mut d = rc.borrow_mut();
            d.nand.flush(now)
        };
        let out = CqeOut {
            cid: sqe.cid,
            status: Status::Success,
            result: 0,
            span,
        };
        complete(rc, en, t, qid, out);
        return;
    }

    let byte_addr = sqe.slba() * LBA_BYTES;
    let byte_len = sqe.byte_len();
    let in_bounds = rc.borrow().nand.in_bounds(byte_addr, byte_len);
    if !in_bounds {
        let out = CqeOut {
            cid: sqe.cid,
            status: Status::LbaOutOfRange,
            result: 0,
            span,
        };
        complete(rc, en, now, qid, out);
        return;
    }

    let (segs, t_prp) = match resolve_prps(rc, en, &sqe, byte_len) {
        Ok(x) => x,
        Err(status) => {
            let out = CqeOut {
                cid: sqe.cid,
                status,
                result: 0,
                span,
            };
            complete(rc, en, now, qid, out);
            return;
        }
    };

    let (fabric, node) = {
        let d = rc.borrow();
        (d.fabric.clone(), d.node)
    };

    // PRP list pages were fetched over the fabric (SNAcc's on-the-fly
    // PRP synthesis feeds exactly these fetches) — worth its own span.
    if trace::enabled() && t_prp > now {
        trace::span_between(
            &format!("nvme.n{}", node.0),
            "nvme.prp_fetch",
            now,
            t_prp,
            &[("segs", segs.len() as u64)],
        );
    }

    match op {
        IoOpcode::Read => {
            // Media first; delivery is scheduled at media-ready time so
            // that commands book the return link in *completion* order —
            // this is what lets fast commands overtake slow ones and
            // produces genuinely out-of-order CQEs. The media hands back a
            // zero-copy payload view; lazy fill/pattern segments are never
            // materialised on this path.
            let (data, t_media) = {
                let mut d = rc.borrow_mut();
                d.nand.read_payload(t_prp, byte_addr, byte_len)
            };
            if trace::enabled() {
                trace::span_between(
                    &format!("nvme.n{}", node.0),
                    "nand.read",
                    t_prp,
                    t_media,
                    &[("bytes", byte_len)],
                );
            }
            let rc2 = rc.clone();
            let cid = sqe.cid;
            en.schedule_at(t_media.max(en.now()), move |en| {
                // Aggregate controller read-out cap, booked in completion
                // order (we are at the command's media-ready event).
                let t_ready = {
                    let mut d = rc2.borrow_mut();
                    d.nand.book_readout(en.now(), byte_len)
                };
                // Posted data writes overlap the read-out: segment k is
                // issued when read-out makes it available. Commands book
                // in t_media event order and the read-out serialisation
                // keeps their windows disjoint, so wire bookings stay
                // time-ordered across commands. Spreading (rather than
                // batching at read-out end) keeps target-memory
                // arbitration smooth — critical for the on-board-DRAM
                // variant where the PE drain shares the DDR4 bus.
                let spread = {
                    let d = rc2.borrow();
                    d.nand.config().channel_bandwidth.time_for(byte_len)
                };
                let readout_start = t_ready - spread;
                let now = en.now();
                let mut t = t_ready;
                let mut off = 0usize;
                let mut failed = false;
                let n_segs = segs.len() as u64;
                for (k, seg) in segs.iter().enumerate() {
                    let chunk = data.slice(off..off + seg.len as usize);
                    let issue = readout_start + spread * (k as u64 + 1) / n_segs.max(1);
                    let r = fabric.borrow_mut().write_payload_at(
                        en,
                        issue.max(now),
                        node,
                        seg.addr,
                        chunk,
                    );
                    match r {
                        Ok(done) => t = t.max(done),
                        Err(_) => {
                            failed = true;
                            break;
                        }
                    }
                    off += seg.len as usize;
                }
                let status = if failed {
                    Status::DataTransferError
                } else {
                    let mut d = rc2.borrow_mut();
                    d.stats.read_cmds += 1;
                    d.stats.read_bytes += byte_len;
                    Status::Success
                };
                let out = CqeOut {
                    cid,
                    status,
                    result: 0,
                    span,
                };
                complete(&rc2, en, t, qid, out);
            });
        }
        IoOpcode::Write => {
            // Credit-windowed data fetch, then cache admission. Fetched
            // segments stay zero-copy payload windows end-to-end: the
            // fabric hands back views of the source buffer's segment
            // store and the media retains them as-is.
            let mut parts: Vec<snacc_sim::bytes::Payload> = Vec::with_capacity(segs.len());
            let mut t_issue = t_prp;
            let mut t_data = t_prp;
            let mut failed = false;
            for seg in &segs {
                // Which credit pool does this segment draw from?
                let owner = fabric.borrow().owner_of(seg.addr);
                let is_host = owner == Some(HOST_NODE);
                {
                    let mut d = rc.borrow_mut();
                    let cap = if is_host {
                        d.profile.fetch_window_host
                    } else {
                        d.profile.fetch_window_p2p
                    };
                    let stall = d.profile.fetch_stall_lo;
                    let p2p_overhead = d.profile.fetch_overhead_p2p;
                    let in_lo = d.nand.in_lo_state();
                    let ring = if is_host {
                        &mut d.fetch_host
                    } else {
                        &mut d.fetch_p2p
                    };
                    while ring.len() >= cap {
                        let freed = ring.pop_front().expect("non-empty ring");
                        t_issue = t_issue.max(freed);
                    }
                    if !is_host {
                        t_issue += p2p_overhead;
                    }
                    if in_lo {
                        t_issue += stall;
                    }
                }
                let r = fabric.borrow_mut().read_payload_at(
                    en,
                    t_issue.max(en.now()),
                    node,
                    seg.addr,
                    seg.len,
                );
                match r {
                    Ok((chunk, done)) => {
                        parts.push(chunk);
                        t_data = t_data.max(done);
                        let mut d = rc.borrow_mut();
                        let ring = if is_host {
                            &mut d.fetch_host
                        } else {
                            &mut d.fetch_p2p
                        };
                        ring.push_back(done);
                    }
                    Err(_) => {
                        failed = true;
                        break;
                    }
                }
            }
            if failed {
                let out = CqeOut {
                    cid: sqe.cid,
                    status: Status::DataTransferError,
                    result: 0,
                    span,
                };
                complete(rc, en, t_data, qid, out);
                return;
            }
            // Cache admission happens when the data has arrived; the CQE
            // is posted at admission time (volatile write cache). Both are
            // event-scheduled so completion writes book the link in true
            // time order across commands.
            let random_hint = byte_len <= 16384;
            let rc2 = rc.clone();
            let cid = sqe.cid;
            en.schedule_at(t_data.max(en.now()), move |en| {
                let t_admit = {
                    let mut d = rc2.borrow_mut();
                    let t = d.nand.write_parts(en.now(), byte_addr, parts, random_hint);
                    d.stats.write_cmds += 1;
                    d.stats.write_bytes += byte_len;
                    t
                };
                if trace::enabled() {
                    trace::span_between(
                        &format!("nvme.n{}", node.0),
                        "nand.write",
                        en.now(),
                        t_admit,
                        &[("bytes", byte_len)],
                    );
                }
                let out = CqeOut {
                    cid,
                    status: Status::Success,
                    result: 0,
                    span,
                };
                complete(&rc2, en, t_admit, qid, out);
            });
        }
        IoOpcode::Flush => unreachable!(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::AdminOpcode;
    use snacc_mem::HostMemory;
    use snacc_pcie::target::HostMemTarget;

    /// Minimal inline "driver" used by these unit tests: admin queue in
    /// host memory, raw register pokes, busy-wait via engine draining.
    struct TestRig {
        en: Engine,
        fabric: Rc<RefCell<PcieFabric>>,
        hostmem: Rc<RefCell<HostMemory>>,
        dev: NvmeDeviceHandle,
        asq: u64,
        acq: u64,
        admin_tail: u16,
        admin_seen: u16,
    }

    const BAR0: u64 = 0x8000_0000;
    const ASQ_ADDR: u64 = 0x10_0000;
    const ACQ_ADDR: u64 = 0x11_0000;
    const QD: u16 = 16;

    impl TestRig {
        fn new() -> Self {
            let mut fabric = PcieFabric::new();
            let hostmem = Rc::new(RefCell::new(HostMemory::default()));
            // Map 2 GiB of host physical address space at 0.
            let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
            fabric.map_region(HOST_NODE, AddrRange::new(0, 2 << 30), t);
            let fabric = Rc::new(RefCell::new(fabric));
            let dev =
                NvmeDeviceHandle::attach(fabric.clone(), BAR0, NvmeProfile::samsung_990pro(), 7);
            TestRig {
                en: Engine::new(),
                fabric,
                hostmem,
                dev,
                asq: ASQ_ADDR,
                acq: ACQ_ADDR,
                admin_tail: 0,
                admin_seen: 0,
            }
        }

        fn reg_write32(&mut self, off: u64, v: u32) {
            self.fabric
                .borrow_mut()
                .write_u32(&mut self.en, HOST_NODE, BAR0 + off, v)
                .unwrap();
        }

        fn reg_write64(&mut self, off: u64, v: u64) {
            self.fabric
                .borrow_mut()
                .write(&mut self.en, HOST_NODE, BAR0 + off, &v.to_le_bytes())
                .unwrap();
        }

        fn enable(&mut self) {
            self.reg_write32(spec::regs::AQA, ((QD as u32 - 1) << 16) | (QD as u32 - 1));
            self.reg_write64(spec::regs::ASQ, self.asq);
            self.reg_write64(spec::regs::ACQ, self.acq);
            self.reg_write32(spec::regs::CC, spec::cc::EN);
            self.en.run();
            assert!(self.dev.with(|d| d.is_ready()));
        }

        fn submit_admin(&mut self, sqe: Sqe) -> Cqe {
            let slot = self.admin_tail;
            self.hostmem
                .borrow_mut()
                .store_mut()
                .write(self.asq + slot as u64 * 64, &sqe.encode());
            self.admin_tail = (self.admin_tail + 1) % QD;
            let tail = self.admin_tail as u32;
            self.reg_write32(spec::regs::sq_tail_doorbell(0), tail);
            self.en.run();
            let slot = self.admin_seen;
            self.admin_seen = (self.admin_seen + 1) % QD;
            let raw = self
                .hostmem
                .borrow_mut()
                .store_mut()
                .read_vec(self.acq + slot as u64 * 16, 16);
            Cqe::decode(&raw).expect("CQE decodes")
        }

        fn create_io_queues(&mut self, qid: u16, sq: u64, cq: u64, entries: u16) {
            let mut c = Sqe::new(AdminOpcode::CreateIoCq as u8, 100 + qid);
            c.prp1 = cq;
            c.cdw[0] = (qid as u32) | (((entries - 1) as u32) << 16);
            c.cdw[1] = 1; // contiguous
            assert_eq!(self.submit_admin(c).status, Status::Success);
            let mut s = Sqe::new(AdminOpcode::CreateIoSq as u8, 200 + qid);
            s.prp1 = sq;
            s.cdw[0] = (qid as u32) | (((entries - 1) as u32) << 16);
            s.cdw[1] = 1 | ((qid as u32) << 16);
            assert_eq!(self.submit_admin(s).status, Status::Success);
        }
    }

    #[test]
    fn controller_enable_sets_ready() {
        let mut r = TestRig::new();
        r.enable();
    }

    #[test]
    fn identify_controller_returns_data() {
        let mut r = TestRig::new();
        r.enable();
        let mut s = Sqe::new(AdminOpcode::Identify as u8, 1);
        s.prp1 = 0x20_0000;
        s.cdw[0] = 0x01;
        let cqe = r.submit_admin(s);
        assert_eq!(cqe.status, Status::Success);
        assert_eq!(cqe.cid, 1);
        assert!(cqe.phase);
        let data = r.hostmem.borrow_mut().store_mut().read_vec(0x20_0000, 64);
        assert_eq!(&data[0..2], &0x144du16.to_le_bytes());
        assert!(std::str::from_utf8(&data[24..44])
            .unwrap()
            .contains("990 PRO"));
    }

    #[test]
    fn identify_namespace_capacity() {
        let mut r = TestRig::new();
        r.enable();
        let mut s = Sqe::new(AdminOpcode::Identify as u8, 2);
        s.prp1 = 0x21_0000;
        s.cdw[0] = 0x00;
        assert_eq!(r.submit_admin(s).status, Status::Success);
        let d = r.hostmem.borrow_mut().store_mut().read_vec(0x21_0000, 8);
        let nsze = u64::from_le_bytes(d.try_into().unwrap());
        assert_eq!(nsze, 2_000_000_000_000 / 512);
    }

    #[test]
    fn invalid_admin_opcode_errors() {
        let mut r = TestRig::new();
        r.enable();
        let s = Sqe::new(0x7f, 9);
        let cqe = r.submit_admin(s);
        assert_eq!(cqe.status, Status::InvalidOpcode);
        assert_eq!(r.dev.stats().errors, 1);
    }

    #[test]
    fn io_write_read_roundtrip() {
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);

        // Write 8 KiB at LBA 1000 from a host buffer.
        let payload: Vec<u8> = (0..8192u32).map(|i| (i * 7) as u8).collect();
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x40_0000, &payload);
        let mut w = Sqe::io(IoOpcode::Write, 1, 1000, 15); // 16 blocks
        w.prp1 = 0x40_0000;
        w.prp2 = 0x40_1000;
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000, &w.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                1,
            )
            .unwrap();
        r.en.run();
        let cqe = Cqe::decode(&r.hostmem.borrow_mut().store_mut().read_vec(0x31_0000, 16))
            .expect("CQE decodes");
        assert_eq!(cqe.status, Status::Success);
        assert_eq!(cqe.sq_id, 1);

        // Read it back into a different buffer.
        let mut rd = Sqe::io(IoOpcode::Read, 2, 1000, 15);
        rd.prp1 = 0x50_0000;
        rd.prp2 = 0x50_1000;
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000 + 64, &rd.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                2,
            )
            .unwrap();
        r.en.run();
        let cqe2 = Cqe::decode(
            &r.hostmem
                .borrow_mut()
                .store_mut()
                .read_vec(0x31_0000 + 16, 16),
        )
        .expect("CQE decodes");
        assert_eq!(cqe2.status, Status::Success);
        let got = r.hostmem.borrow_mut().store_mut().read_vec(0x50_0000, 8192);
        assert_eq!(got, payload);
        let st = r.dev.stats();
        assert_eq!(st.read_cmds, 1);
        assert_eq!(st.write_cmds, 1);
        assert_eq!(st.read_bytes, 8192);
    }

    #[test]
    fn lba_out_of_range_rejected() {
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);
        let cap_lbas = 2_000_000_000_000 / 512;
        let mut w = Sqe::io(IoOpcode::Write, 5, cap_lbas, 0);
        w.prp1 = 0x40_0000;
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000, &w.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                1,
            )
            .unwrap();
        r.en.run();
        let cqe = Cqe::decode(&r.hostmem.borrow_mut().store_mut().read_vec(0x31_0000, 16))
            .expect("CQE decodes");
        assert_eq!(cqe.status, Status::LbaOutOfRange);
    }

    #[test]
    fn flush_completes() {
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);
        let f = Sqe::io(IoOpcode::Flush, 7, 0, 0);
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000, &f.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                1,
            )
            .unwrap();
        r.en.run();
        let cqe = Cqe::decode(&r.hostmem.borrow_mut().store_mut().read_vec(0x31_0000, 16))
            .expect("CQE decodes");
        assert_eq!(cqe.status, Status::Success);
    }

    #[test]
    fn write_latency_under_9us() {
        // Fig 4c shape: a single 4 KiB write completes in < 9 µs.
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);
        let start = r.en.now();
        let mut w = Sqe::io(IoOpcode::Write, 1, 0, 7); // 4 KiB
        w.prp1 = 0x40_0000;
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000, &w.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                1,
            )
            .unwrap();
        let end = r.en.run();
        let us = end.since(start).as_us_f64();
        assert!(us < 9.0, "4 KiB write took {us} µs");
    }

    #[test]
    fn cold_read_latency_in_tlc_band() {
        // Never-written LBAs read at cold TLC latency (~51–60 µs).
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);
        let start = r.en.now();
        let mut rd = Sqe::io(IoOpcode::Read, 1, 5000, 7);
        rd.prp1 = 0x40_0000;
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000, &rd.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                1,
            )
            .unwrap();
        let end = r.en.run();
        let us = end.since(start).as_us_f64();
        assert!(us > 50.0 && us < 65.0, "cold 4 KiB read took {us} µs");
    }

    #[test]
    fn warm_read_latency_in_pslc_band() {
        // Freshly written LBAs read at warm pSLC latency (~27–36 µs).
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);
        r.dev.with(|d| {
            let mut buf = vec![7u8; 4096];
            d.nand_mut().write(SimTime::ZERO, 5000 * 512, &buf, true);
            let _ = &mut buf;
        });
        let start = r.en.now();
        let mut rd = Sqe::io(IoOpcode::Read, 1, 5000, 7);
        rd.prp1 = 0x40_0000;
        r.hostmem
            .borrow_mut()
            .store_mut()
            .write(0x30_0000, &rd.encode());
        r.fabric
            .borrow_mut()
            .write_u32(
                &mut r.en,
                HOST_NODE,
                BAR0 + spec::regs::sq_tail_doorbell(1),
                1,
            )
            .unwrap();
        let end = r.en.run();
        let us = end.since(start).as_us_f64();
        assert!(us > 26.0 && us < 42.0, "warm 4 KiB read took {us} µs");
    }

    #[test]
    fn controller_reset_clears_queues() {
        let mut r = TestRig::new();
        r.enable();
        r.create_io_queues(1, 0x30_0000, 0x31_0000, 64);
        r.reg_write32(spec::regs::CC, 0);
        r.en.run();
        assert!(!r.dev.with(|d| d.is_ready()));
        assert!(r.dev.with(|d| d.queues.is_empty()));
    }
}
