//! Submission / completion ring arithmetic.
//!
//! Shared by everything that drives an NVMe controller: the SPDK-style
//! host driver, the SNAcc host initialisation driver, and the NVMe
//! Streamer's hardware queues. Encapsulates the wrap/phase rules so they
//! are tested once.

use crate::spec::{CQE_BYTES, SQE_BYTES};

/// Host-side view of a submission queue ring.
#[derive(Clone, Debug)]
pub struct SqRing {
    base: u64,
    entries: u16,
    tail: u16,
    head: u16,
}

impl SqRing {
    /// A ring of `entries` slots at fabric address `base`.
    pub fn new(base: u64, entries: u16) -> Self {
        assert!(entries >= 2, "NVMe queues need at least 2 entries");
        SqRing {
            base,
            entries,
            tail: 0,
            head: 0,
        }
    }

    /// Fabric base address of the ring.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Ring size in entries.
    pub fn entries(&self) -> u16 {
        self.entries
    }

    /// Current tail index.
    pub fn tail(&self) -> u16 {
        self.tail
    }

    /// Current head index (as last reported by the controller).
    pub fn head(&self) -> u16 {
        self.head
    }

    /// Number of occupied slots.
    pub fn occupancy(&self) -> u16 {
        (self.tail + self.entries - self.head) % self.entries
    }

    /// A ring is full when advancing the tail would collide with the head
    /// (one slot is always kept empty, per spec).
    pub fn is_full(&self) -> bool {
        (self.tail + 1) % self.entries == self.head
    }

    /// Address of the next free SQE slot; call
    /// [`advance_tail`](Self::advance_tail) after writing the entry.
    pub fn tail_addr(&self) -> u64 {
        self.base + self.tail as u64 * SQE_BYTES
    }

    /// Advance the tail after writing one entry; returns the new tail
    /// value to ring the doorbell with. Panics if the ring was full.
    pub fn advance_tail(&mut self) -> u16 {
        assert!(!self.is_full(), "SQ overflow");
        self.tail = (self.tail + 1) % self.entries;
        self.tail
    }

    /// Record the controller-reported head from a CQE.
    pub fn update_head(&mut self, head: u16) {
        assert!(head < self.entries, "bogus SQ head");
        self.head = head;
    }
}

/// Host-side view of a completion queue ring with phase tracking.
#[derive(Clone, Debug)]
pub struct CqRing {
    base: u64,
    entries: u16,
    head: u16,
    phase: bool,
}

impl CqRing {
    /// A ring of `entries` slots at fabric address `base`. The expected
    /// phase starts at `true` (the controller writes phase 1 on the first
    /// pass).
    pub fn new(base: u64, entries: u16) -> Self {
        assert!(entries >= 2, "NVMe queues need at least 2 entries");
        CqRing {
            base,
            entries,
            head: 0,
            phase: true,
        }
    }

    /// Fabric base address of the ring.
    pub fn base(&self) -> u64 {
        self.base
    }

    /// Ring size in entries.
    pub fn entries(&self) -> u16 {
        self.entries
    }

    /// Current head index.
    pub fn head(&self) -> u16 {
        self.head
    }

    /// The phase value a *new* (unconsumed) entry at the head would carry.
    pub fn expected_phase(&self) -> bool {
        self.phase
    }

    /// Address of the entry at the current head.
    pub fn head_addr(&self) -> u64 {
        self.base + self.head as u64 * CQE_BYTES
    }

    /// Consume the entry at the head: advances, flipping expected phase on
    /// wrap. Returns the new head (to write to the CQ head doorbell).
    pub fn consume(&mut self) -> u16 {
        self.head += 1;
        if self.head == self.entries {
            self.head = 0;
            self.phase = !self.phase;
        }
        self.head
    }
}

/// Device-side phase generator for a completion queue: tracks the tail and
/// the phase bit the controller must write.
#[derive(Clone, Debug)]
pub struct CqWriter {
    entries: u16,
    tail: u16,
    phase: bool,
}

impl CqWriter {
    /// Writer for a ring of `entries` slots.
    pub fn new(entries: u16) -> Self {
        assert!(entries >= 2);
        CqWriter {
            entries,
            tail: 0,
            phase: true,
        }
    }

    /// Slot index + phase for the next completion; advances the tail.
    pub fn next_slot(&mut self) -> (u16, bool) {
        let slot = self.tail;
        let phase = self.phase;
        self.tail += 1;
        if self.tail == self.entries {
            self.tail = 0;
            self.phase = !self.phase;
        }
        (slot, phase)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sq_wraps_and_fills() {
        let mut sq = SqRing::new(0x1000, 4);
        assert_eq!(sq.occupancy(), 0);
        assert!(!sq.is_full());
        assert_eq!(sq.tail_addr(), 0x1000);
        sq.advance_tail();
        sq.advance_tail();
        sq.advance_tail(); // 3 of 4 slots used → full (one kept empty)
        assert!(sq.is_full());
        assert_eq!(sq.occupancy(), 3);
        // Controller consumes one.
        sq.update_head(1);
        assert!(!sq.is_full());
        assert_eq!(sq.occupancy(), 2);
        // Tail wraps to 0.
        assert_eq!(sq.advance_tail(), 0);
        assert_eq!(sq.tail_addr(), 0x1000);
    }

    #[test]
    #[should_panic(expected = "SQ overflow")]
    fn sq_overflow_panics() {
        let mut sq = SqRing::new(0, 2);
        sq.advance_tail();
        sq.advance_tail();
    }

    #[test]
    fn cq_phase_flips_on_wrap() {
        let mut cq = CqRing::new(0x2000, 2);
        assert!(cq.expected_phase());
        assert_eq!(cq.head_addr(), 0x2000);
        cq.consume();
        assert!(cq.expected_phase());
        assert_eq!(cq.head_addr(), 0x2000 + CQE_BYTES);
        cq.consume(); // wrap
        assert!(!cq.expected_phase());
        assert_eq!(cq.head_addr(), 0x2000);
    }

    #[test]
    fn writer_matches_reader_phase() {
        // The device-side writer and host-side reader must agree on phase
        // for an arbitrary number of completions.
        let entries = 8;
        let mut w = CqWriter::new(entries);
        let mut r = CqRing::new(0, entries);
        for _ in 0..100 {
            let (slot, phase) = w.next_slot();
            assert_eq!(slot, r.head());
            assert_eq!(phase, r.expected_phase());
            r.consume();
        }
    }

    proptest! {
        #[test]
        fn occupancy_never_exceeds_capacity(
            entries in 2u16..64,
            ops in proptest::collection::vec(any::<bool>(), 0..200),
        ) {
            let mut sq = SqRing::new(0, entries);
            let mut submitted: u64 = 0;
            let mut consumed: u64 = 0;
            for push in ops {
                if push {
                    if !sq.is_full() {
                        sq.advance_tail();
                        submitted += 1;
                    }
                } else if consumed < submitted {
                    consumed += 1;
                    sq.update_head((consumed % entries as u64) as u16);
                }
                prop_assert!(sq.occupancy() < entries);
                prop_assert_eq!(
                    sq.occupancy() as u64,
                    submitted - consumed
                );
            }
        }

        #[test]
        fn writer_reader_agree_prop(entries in 2u16..32, n in 0usize..500) {
            let mut w = CqWriter::new(entries);
            let mut r = CqRing::new(0, entries);
            for _ in 0..n {
                let (slot, phase) = w.next_slot();
                prop_assert_eq!(slot, r.head());
                prop_assert_eq!(phase, r.expected_phase());
                r.consume();
            }
        }
    }
}
