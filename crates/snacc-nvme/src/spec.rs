//! NVMe wire-level encodings (NVMe 1.4 subset).
//!
//! Submission queue entries are 64 bytes, completion queue entries 16
//! bytes, both little-endian. The device model parses exactly these bytes
//! out of queue memory, and the host drivers / NVMe Streamer produce them,
//! so encode/decode must round-trip — the property tests at the bottom
//! pin that down.

use std::fmt;

/// Size of a submission queue entry in bytes.
pub const SQE_BYTES: u64 = 64;
/// Size of a completion queue entry in bytes.
pub const CQE_BYTES: u64 = 16;
/// NVMe memory page size used throughout (CC.MPS = 0 → 4 KiB).
pub const NVME_PAGE: u64 = 4096;
/// Logical block size of our namespace (512 B keeps LBA math familiar).
pub const LBA_BYTES: u64 = 512;

/// Admin command opcodes (NVMe 1.4, Figure 139).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum AdminOpcode {
    /// Delete I/O submission queue.
    DeleteIoSq = 0x00,
    /// Create I/O submission queue.
    CreateIoSq = 0x01,
    /// Delete I/O completion queue.
    DeleteIoCq = 0x04,
    /// Create I/O completion queue.
    CreateIoCq = 0x05,
    /// Identify.
    Identify = 0x06,
    /// Set features.
    SetFeatures = 0x09,
    /// Get features.
    GetFeatures = 0x0A,
}

/// NVM command set opcodes (NVMe 1.4, Figure 346).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u8)]
pub enum IoOpcode {
    /// Flush volatile write cache.
    Flush = 0x00,
    /// Write.
    Write = 0x01,
    /// Read.
    Read = 0x02,
}

impl IoOpcode {
    /// Decode an opcode byte.
    pub fn from_u8(b: u8) -> Option<IoOpcode> {
        match b {
            0x00 => Some(IoOpcode::Flush),
            0x01 => Some(IoOpcode::Write),
            0x02 => Some(IoOpcode::Read),
            _ => None,
        }
    }
}

/// Completion status codes (generic command status, SCT 0).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
#[repr(u16)]
pub enum Status {
    /// Successful completion.
    Success = 0x0,
    /// Invalid command opcode.
    InvalidOpcode = 0x1,
    /// Invalid field in command.
    InvalidField = 0x2,
    /// Data transfer error (e.g. a PRP pointing at an unreachable or
    /// IOMMU-blocked address).
    DataTransferError = 0x4,
    /// LBA out of range.
    LbaOutOfRange = 0x80,
}

impl Status {
    /// Decode a status code value.
    pub fn from_u16(v: u16) -> Status {
        match v {
            0x0 => Status::Success,
            0x1 => Status::InvalidOpcode,
            0x2 => Status::InvalidField,
            0x4 => Status::DataTransferError,
            0x80 => Status::LbaOutOfRange,
            _ => Status::InvalidField,
        }
    }

    /// Whether a retry of the same command could plausibly succeed.
    ///
    /// `DataTransferError` reports a transport-level failure (a TLP that
    /// never completed, an injected fault window) — the command itself is
    /// well-formed, so a retry policy should re-issue it. The other error
    /// statuses describe the command (bad opcode, malformed PRPs, range
    /// overflow) and will fail identically every time.
    pub fn is_transient(self) -> bool {
        self == Status::DataTransferError
    }
}

/// Wire-decode failure for the fixed-size NVMe structures.
///
/// Decoding is total (SL004): any byte slice either decodes or yields
/// this error — there is no panic path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum WireError {
    /// Buffer shorter than the structure's wire size.
    Short {
        /// Bytes the structure needs.
        needed: usize,
        /// Bytes the caller provided.
        got: usize,
    },
}

impl fmt::Display for WireError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            WireError::Short { needed, got } => {
                write!(f, "short wire buffer: need {needed} bytes, got {got}")
            }
        }
    }
}

impl std::error::Error for WireError {}

/// Little-endian field read of `len <= 8` bytes at `off`; bytes beyond
/// the buffer read as zero. Decoders length-check up front, so in-range
/// reads are exact — the zero fill only exists to keep the helper total
/// (no indexing, no panic path).
fn le_field(b: &[u8], off: usize, len: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..len.min(8) {
        v |= (b.get(off + i).copied().unwrap_or(0) as u64) << (8 * i);
    }
    v
}

/// Controller register offsets within BAR0 (NVMe 1.4, Figure 78).
pub mod regs {
    /// Controller capabilities (8 B, RO).
    pub const CAP: u64 = 0x00;
    /// Version (4 B, RO).
    pub const VS: u64 = 0x08;
    /// Controller configuration (4 B, RW).
    pub const CC: u64 = 0x14;
    /// Controller status (4 B, RO).
    pub const CSTS: u64 = 0x1C;
    /// Admin queue attributes (4 B, RW).
    pub const AQA: u64 = 0x24;
    /// Admin submission queue base (8 B, RW).
    pub const ASQ: u64 = 0x28;
    /// Admin completion queue base (8 B, RW).
    pub const ACQ: u64 = 0x30;
    /// First doorbell register.
    pub const DOORBELL_BASE: u64 = 0x1000;
    /// Doorbell stride (CAP.DSTRD = 0 → 4 bytes).
    pub const DOORBELL_STRIDE: u64 = 4;

    /// Offset of the submission-queue tail doorbell for queue `qid`.
    pub fn sq_tail_doorbell(qid: u16) -> u64 {
        DOORBELL_BASE + (2 * qid as u64) * DOORBELL_STRIDE
    }

    /// Offset of the completion-queue head doorbell for queue `qid`.
    pub fn cq_head_doorbell(qid: u16) -> u64 {
        DOORBELL_BASE + (2 * qid as u64 + 1) * DOORBELL_STRIDE
    }
}

/// A decoded submission queue entry.
///
/// Layout (little-endian, NVMe 1.4 Figure 104-105):
/// * DW0: opcode (7:0), fused (9:8), PSDT (15:14), CID (31:16)
/// * DW1: namespace id
/// * DW6-7: PRP entry 1
/// * DW8-9: PRP entry 2
/// * DW10-15: command-specific
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Sqe {
    /// Command opcode byte.
    pub opcode: u8,
    /// Command identifier (unique among outstanding commands on a queue).
    pub cid: u16,
    /// Namespace identifier.
    pub nsid: u32,
    /// PRP entry 1.
    pub prp1: u64,
    /// PRP entry 2 (second page or PRP-list pointer).
    pub prp2: u64,
    /// Command dwords 10–15.
    pub cdw: [u32; 6],
}

impl Sqe {
    /// A zeroed entry with the given opcode/cid.
    pub fn new(opcode: u8, cid: u16) -> Self {
        Sqe {
            opcode,
            cid,
            nsid: 1,
            prp1: 0,
            prp2: 0,
            cdw: [0; 6],
        }
    }

    /// Build an NVM read/write command. `slba` is the starting LBA;
    /// `nlb` is the number of logical blocks **minus one** (spec
    /// convention, CDW12 bits 15:0).
    pub fn io(opcode: IoOpcode, cid: u16, slba: u64, nlb0: u16) -> Self {
        let mut s = Sqe::new(opcode as u8, cid);
        s.cdw[0] = slba as u32;
        s.cdw[1] = (slba >> 32) as u32;
        s.cdw[2] = nlb0 as u32;
        s
    }

    /// Starting LBA of an I/O command.
    pub fn slba(&self) -> u64 {
        (self.cdw[0] as u64) | ((self.cdw[1] as u64) << 32)
    }

    /// Transfer length in logical blocks (decoding the minus-one field).
    pub fn nlb(&self) -> u64 {
        (self.cdw[2] & 0xFFFF) as u64 + 1
    }

    /// Transfer length in bytes.
    pub fn byte_len(&self) -> u64 {
        self.nlb() * LBA_BYTES
    }

    /// Encode into the 64-byte wire format.
    pub fn encode(&self) -> [u8; SQE_BYTES as usize] {
        let mut b = [0u8; 64];
        let dw0 = (self.opcode as u32) | ((self.cid as u32) << 16);
        b[0..4].copy_from_slice(&dw0.to_le_bytes());
        b[4..8].copy_from_slice(&self.nsid.to_le_bytes());
        b[24..32].copy_from_slice(&self.prp1.to_le_bytes());
        b[32..40].copy_from_slice(&self.prp2.to_le_bytes());
        for (i, dw) in self.cdw.iter().enumerate() {
            let o = 40 + i * 4;
            b[o..o + 4].copy_from_slice(&dw.to_le_bytes());
        }
        b
    }

    /// Decode from the 64-byte wire format. Total: short buffers yield
    /// [`WireError::Short`], never a panic (SL004).
    pub fn decode(b: &[u8]) -> Result<Sqe, WireError> {
        if b.len() < SQE_BYTES as usize {
            return Err(WireError::Short {
                needed: SQE_BYTES as usize,
                got: b.len(),
            });
        }
        let dw0 = le_field(b, 0, 4) as u32;
        let mut cdw = [0u32; 6];
        for (i, dw) in cdw.iter_mut().enumerate() {
            *dw = le_field(b, 40 + i * 4, 4) as u32;
        }
        Ok(Sqe {
            opcode: (dw0 & 0xFF) as u8,
            cid: (dw0 >> 16) as u16,
            nsid: le_field(b, 4, 4) as u32,
            prp1: le_field(b, 24, 8),
            prp2: le_field(b, 32, 8),
            cdw,
        })
    }
}

/// A decoded completion queue entry.
///
/// Layout (NVMe 1.4 Figure 122): DW0 command-specific, DW2 SQ head (15:0) +
/// SQ id (31:16), DW3 CID (15:0) + phase (16) + status (31:17).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Cqe {
    /// Command-specific result (DW0).
    pub result: u32,
    /// Submission-queue head pointer at completion time.
    pub sq_head: u16,
    /// Submission queue the command came from.
    pub sq_id: u16,
    /// Command identifier.
    pub cid: u16,
    /// Phase tag — flips each pass around the CQ ring.
    pub phase: bool,
    /// Completion status.
    pub status: Status,
}

impl Cqe {
    /// Encode into the 16-byte wire format.
    pub fn encode(&self) -> [u8; CQE_BYTES as usize] {
        let mut b = [0u8; 16];
        b[0..4].copy_from_slice(&self.result.to_le_bytes());
        b[8..10].copy_from_slice(&self.sq_head.to_le_bytes());
        b[10..12].copy_from_slice(&self.sq_id.to_le_bytes());
        b[12..14].copy_from_slice(&self.cid.to_le_bytes());
        let sf: u16 = ((self.status as u16) << 1) | (self.phase as u16);
        b[14..16].copy_from_slice(&sf.to_le_bytes());
        b
    }

    /// Decode from the 16-byte wire format. Total: short buffers yield
    /// [`WireError::Short`], never a panic (SL004).
    pub fn decode(b: &[u8]) -> Result<Cqe, WireError> {
        if b.len() < CQE_BYTES as usize {
            return Err(WireError::Short {
                needed: CQE_BYTES as usize,
                got: b.len(),
            });
        }
        let sf = le_field(b, 14, 2) as u16;
        Ok(Cqe {
            result: le_field(b, 0, 4) as u32,
            sq_head: le_field(b, 8, 2) as u16,
            sq_id: le_field(b, 10, 2) as u16,
            cid: le_field(b, 12, 2) as u16,
            phase: (sf & 1) != 0,
            status: Status::from_u16(sf >> 1),
        })
    }
}

/// CC register helpers.
pub mod cc {
    /// Enable bit.
    pub const EN: u32 = 1;
}

/// CSTS register helpers.
pub mod csts {
    /// Ready bit.
    pub const RDY: u32 = 1;
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn sqe_roundtrip_basic() {
        let mut s = Sqe::io(IoOpcode::Write, 42, 0x1_2345_6789, 255);
        s.prp1 = 0x0dea_dbee_f000;
        s.prp2 = 0xcafe_0000;
        let d = Sqe::decode(&s.encode()).expect("full buffer decodes");
        assert_eq!(d, s);
        assert_eq!(d.slba(), 0x1_2345_6789);
        assert_eq!(d.nlb(), 256);
        assert_eq!(d.byte_len(), 256 * 512);
    }

    #[test]
    fn cqe_roundtrip_basic() {
        let c = Cqe {
            result: 7,
            sq_head: 33,
            sq_id: 2,
            cid: 999,
            phase: true,
            status: Status::LbaOutOfRange,
        };
        assert_eq!(Cqe::decode(&c.encode()), Ok(c));
    }

    #[test]
    fn short_buffers_are_errors_not_panics() {
        assert_eq!(
            Sqe::decode(&[0u8; 63]),
            Err(WireError::Short {
                needed: 64,
                got: 63
            })
        );
        assert_eq!(
            Cqe::decode(&[0u8; 15]),
            Err(WireError::Short {
                needed: 16,
                got: 15
            })
        );
        assert!(Sqe::decode(&[]).is_err());
        assert!(Cqe::decode(&[]).is_err());
    }

    #[test]
    fn doorbell_offsets() {
        assert_eq!(regs::sq_tail_doorbell(0), 0x1000);
        assert_eq!(regs::cq_head_doorbell(0), 0x1004);
        assert_eq!(regs::sq_tail_doorbell(1), 0x1008);
        assert_eq!(regs::cq_head_doorbell(1), 0x100c);
    }

    #[test]
    fn opcode_decoding() {
        assert_eq!(IoOpcode::from_u8(0x02), Some(IoOpcode::Read));
        assert_eq!(IoOpcode::from_u8(0x01), Some(IoOpcode::Write));
        assert_eq!(IoOpcode::from_u8(0x00), Some(IoOpcode::Flush));
        assert_eq!(IoOpcode::from_u8(0x99), None);
    }

    #[test]
    fn status_roundtrip() {
        for s in [
            Status::Success,
            Status::InvalidOpcode,
            Status::InvalidField,
            Status::DataTransferError,
            Status::LbaOutOfRange,
        ] {
            assert_eq!(Status::from_u16(s as u16), s);
        }
    }

    proptest! {
        #[test]
        fn sqe_roundtrip_prop(
            opcode in any::<u8>(),
            cid in any::<u16>(),
            nsid in any::<u32>(),
            prp1 in any::<u64>(),
            prp2 in any::<u64>(),
            cdw in any::<[u32; 6]>(),
        ) {
            let s = Sqe { opcode, cid, nsid, prp1, prp2, cdw };
            prop_assert_eq!(Sqe::decode(&s.encode()), Ok(s));
        }

        #[test]
        fn cqe_roundtrip_prop(
            result in any::<u32>(),
            sq_head in any::<u16>(),
            sq_id in any::<u16>(),
            cid in any::<u16>(),
            phase in any::<bool>(),
        ) {
            let c = Cqe { result, sq_head, sq_id, cid, phase, status: Status::Success };
            prop_assert_eq!(Cqe::decode(&c.encode()), Ok(c));
        }

        #[test]
        fn slba_nlb_encoding_prop(slba in any::<u64>(), nlb0 in any::<u16>()) {
            let s = Sqe::io(IoOpcode::Read, 1, slba, nlb0);
            let d = match Sqe::decode(&s.encode()) {
                Ok(d) => d,
                Err(e) => return Err(TestCaseError(format!("decode failed: {e}"))),
            };
            prop_assert_eq!(d.slba(), slba);
            prop_assert_eq!(d.nlb(), nlb0 as u64 + 1);
        }
    }
}
