//! Physical Region Page handling (paper Sec 2.2 / 4.4).
//!
//! Two halves:
//!
//! * [`walk_prps`] — the device-side walker: resolve a command's
//!   `(PRP1, PRP2, length)` into the page addresses of its data buffer,
//!   fetching PRP-list pages (and chained lists) through a caller-supplied
//!   reader. The NVMe controller model uses this with a closure that
//!   performs real fabric reads — which is exactly how SNAcc's on-the-fly
//!   PRP computation gets exercised: the "list page" the device reads is
//!   synthesised by the streamer instead of stored in memory.
//! * [`PrpListBuilder`] — the host-side builder used by the SPDK-style
//!   driver: lay out stored PRP lists in memory pages, chaining when a
//!   command needs more than 512 entries.

use crate::spec::NVME_PAGE;

/// Entries per PRP-list page (4096 / 8).
pub const ENTRIES_PER_LIST: usize = 512;

/// One contiguous piece of a command's data buffer (≤ one page).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct PrpSeg {
    /// Fabric address of the segment.
    pub addr: u64,
    /// Length in bytes.
    pub len: u64,
}

/// PRP resolution errors. Format errors (`Misaligned`, `NullEntry`,
/// `EmptyTransfer`, `ChainTooLong`) are host bugs and complete as
/// `Invalid Field`; `FetchFailed` means the *transport* read of a list
/// page failed and completes as `Data Transfer Error` so a retry policy
/// can tell transient from fatal.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PrpError {
    /// A non-first PRP entry was not page-aligned.
    Misaligned(u64),
    /// A required entry was zero.
    NullEntry,
    /// Zero-length command.
    EmptyTransfer,
    /// The chained PRP list exceeded the hop budget implied by the
    /// transfer length — a cyclic or runaway chain. Without this bound a
    /// self-referencing chain entry would walk forever.
    ChainTooLong,
    /// The memory read fetching a PRP-list page failed (fabric error).
    /// The walk aborts immediately rather than parsing a garbage page.
    FetchFailed(u64),
}

/// Total little-endian u64 read; bytes beyond the page read as zero.
/// The walker only reads in-bounds offsets (idx < 512 over a 4096-byte
/// page), so the zero fill exists purely to keep the read panic-free
/// (SL004).
fn le_u64(page: &[u8], off: usize) -> u64 {
    let mut v = 0u64;
    for i in 0..8 {
        v |= (page.get(off + i).copied().unwrap_or(0) as u64) << (8 * i);
    }
    v
}

/// Resolve the data-buffer layout of a command.
///
/// `read_list_page(addr)` must return the 4096 bytes of the PRP list page
/// at `addr` (the device model backs this with a fabric read), or
/// `Err(PrpError::FetchFailed(addr))` if the read itself failed — the
/// walk then stops at once instead of interpreting stale bytes.
pub fn walk_prps(
    prp1: u64,
    prp2: u64,
    byte_len: u64,
    mut read_list_page: impl FnMut(u64) -> Result<[u8; NVME_PAGE as usize], PrpError>,
) -> Result<Vec<PrpSeg>, PrpError> {
    if byte_len == 0 {
        return Err(PrpError::EmptyTransfer);
    }
    if prp1 == 0 {
        return Err(PrpError::NullEntry);
    }
    let first_off = prp1 % NVME_PAGE;
    let first_len = (NVME_PAGE - first_off).min(byte_len);
    let mut segs = vec![PrpSeg {
        addr: prp1,
        len: first_len,
    }];
    let mut remaining = byte_len - first_len;
    if remaining == 0 {
        return Ok(segs);
    }

    // Exactly one more page → PRP2 is the second data page.
    if remaining <= NVME_PAGE {
        if prp2 == 0 {
            return Err(PrpError::NullEntry);
        }
        if !prp2.is_multiple_of(NVME_PAGE) {
            return Err(PrpError::Misaligned(prp2));
        }
        segs.push(PrpSeg {
            addr: prp2,
            len: remaining,
        });
        return Ok(segs);
    }

    // PRP2 points at a (possibly chained) list.
    if prp2 == 0 {
        return Err(PrpError::NullEntry);
    }
    // List pointers may carry an offset into the list page per spec; we
    // require entry alignment (8 B).
    if !prp2.is_multiple_of(8) {
        return Err(PrpError::Misaligned(prp2));
    }
    let mut list_addr = prp2;
    // Hop budget: a well-formed chain advances ≥ ENTRIES_PER_LIST - 1
    // data entries per full list page; anything beyond this is a cycle.
    let max_hops = snacc_sim::ceil_div(
        snacc_sim::ceil_div(byte_len, NVME_PAGE),
        (ENTRIES_PER_LIST - 1) as u64,
    ) + 2;
    let mut hops = 0u64;
    'outer: loop {
        hops += 1;
        if hops > max_hops {
            return Err(PrpError::ChainTooLong);
        }
        let page_base = list_addr / NVME_PAGE * NVME_PAGE;
        let start_idx = ((list_addr % NVME_PAGE) / 8) as usize;
        let page = read_list_page(page_base)?;
        for idx in start_idx..ENTRIES_PER_LIST {
            let entry = le_u64(&page, idx * 8);
            let pages_left = snacc_sim::ceil_div(remaining, NVME_PAGE);
            // If more pages remain than entries in this list, the last
            // entry chains to the next list page.
            if idx == ENTRIES_PER_LIST - 1 && pages_left > 1 {
                if entry == 0 {
                    return Err(PrpError::NullEntry);
                }
                if !entry.is_multiple_of(8) {
                    return Err(PrpError::Misaligned(entry));
                }
                list_addr = entry;
                continue 'outer;
            }
            if entry == 0 {
                return Err(PrpError::NullEntry);
            }
            if !entry.is_multiple_of(NVME_PAGE) {
                return Err(PrpError::Misaligned(entry));
            }
            let take = remaining.min(NVME_PAGE);
            segs.push(PrpSeg {
                addr: entry,
                len: take,
            });
            remaining -= take;
            if remaining == 0 {
                break 'outer;
            }
        }
    }
    Ok(segs)
}

/// Host-side PRP construction: produces `(prp1, prp2)` for a command over
/// the given data pages, writing any required list pages through the
/// supplied sink.
pub struct PrpListBuilder {
    /// Allocator for list pages (returns a page-aligned address).
    list_pages: Vec<u64>,
    next: usize,
}

impl PrpListBuilder {
    /// Builder drawing list pages from a pre-allocated pool.
    pub fn new(list_pages: Vec<u64>) -> Self {
        assert!(list_pages.iter().all(|a| a % NVME_PAGE == 0));
        PrpListBuilder {
            list_pages,
            next: 0,
        }
    }

    /// Reset the pool cursor (list pages may be reused across commands
    /// once the previous command completed).
    pub fn reset(&mut self) {
        self.next = 0;
    }

    fn alloc(&mut self) -> u64 {
        let a = self.list_pages[self.next];
        self.next += 1;
        a
    }

    /// Build PRPs for a buffer made of the given data page addresses
    /// (first may be the only partial one). `write_mem(addr, bytes)` stores
    /// list pages. Returns `(prp1, prp2)`.
    pub fn build(
        &mut self,
        data_pages: &[u64],
        mut write_mem: impl FnMut(u64, &[u8]),
    ) -> (u64, u64) {
        assert!(!data_pages.is_empty());
        let prp1 = data_pages[0];
        if data_pages.len() == 1 {
            return (prp1, 0);
        }
        if data_pages.len() == 2 {
            return (prp1, data_pages[1]);
        }
        // List needed for pages[1..].
        let mut remaining = &data_pages[1..];
        let first_list = self.alloc();
        let mut list_addr = first_list;
        loop {
            let mut page = [0u8; NVME_PAGE as usize];
            let chains = remaining.len() > ENTRIES_PER_LIST;
            let take = if chains {
                ENTRIES_PER_LIST - 1
            } else {
                remaining.len()
            };
            for (i, &p) in remaining[..take].iter().enumerate() {
                page[i * 8..i * 8 + 8].copy_from_slice(&p.to_le_bytes());
            }
            if chains {
                let next_list = self.alloc();
                let o = (ENTRIES_PER_LIST - 1) * 8;
                page[o..o + 8].copy_from_slice(&next_list.to_le_bytes());
                write_mem(list_addr, &page);
                list_addr = next_list;
                remaining = &remaining[take..];
            } else {
                write_mem(list_addr, &page);
                break;
            }
        }
        (prp1, first_list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use snacc_mem::SparseMemory;

    fn mem_reader(mem: &mut SparseMemory) -> impl FnMut(u64) -> Result<[u8; 4096], PrpError> + '_ {
        |addr| {
            let mut p = [0u8; 4096];
            mem.read(addr, &mut p);
            Ok(p)
        }
    }

    #[test]
    fn single_page() {
        let segs = walk_prps(0x1000, 0, 4096, |_| unreachable!()).unwrap();
        assert_eq!(
            segs,
            vec![PrpSeg {
                addr: 0x1000,
                len: 4096
            }]
        );
    }

    #[test]
    fn offset_first_page() {
        // PRP1 with an offset: first segment is the page remainder.
        let segs = walk_prps(0x1100, 0x2000, 4096, |_| unreachable!()).unwrap();
        assert_eq!(
            segs[0],
            PrpSeg {
                addr: 0x1100,
                len: 0xf00
            }
        );
        assert_eq!(
            segs[1],
            PrpSeg {
                addr: 0x2000,
                len: 4096 - 0xf00
            }
        );
    }

    #[test]
    fn two_pages_uses_prp2_directly() {
        let segs = walk_prps(0x1000, 0x8000, 8192, |_| unreachable!()).unwrap();
        assert_eq!(segs.len(), 2);
        assert_eq!(
            segs[1],
            PrpSeg {
                addr: 0x8000,
                len: 4096
            }
        );
    }

    #[test]
    fn list_for_one_megabyte() {
        // 1 MiB = 256 pages: PRP1 + list with 255 entries.
        let mut mem = SparseMemory::new();
        let pages: Vec<u64> = (0..256u64).map(|i| 0x10_0000 + i * 4096).collect();
        let mut b = PrpListBuilder::new(vec![0xA000_0000]);
        let (prp1, prp2) = b.build(&pages, |a, d| mem.write(a, d));
        assert_eq!(prp1, pages[0]);
        assert_eq!(prp2, 0xA000_0000);
        let segs = walk_prps(prp1, prp2, 1 << 20, mem_reader(&mut mem)).unwrap();
        assert_eq!(segs.len(), 256);
        for (i, s) in segs.iter().enumerate() {
            assert_eq!(s.addr, pages[i]);
            assert_eq!(s.len, 4096);
        }
    }

    #[test]
    fn chained_lists_beyond_512_entries() {
        // 3 MiB = 768 pages → PRP1 + 767 list entries → chained lists.
        let mut mem = SparseMemory::new();
        let pages: Vec<u64> = (0..768u64).map(|i| 0x4000_0000 + i * 4096).collect();
        let mut b = PrpListBuilder::new(vec![0xB000_0000, 0xB000_1000]);
        let (prp1, prp2) = b.build(&pages, |a, d| mem.write(a, d));
        let segs = walk_prps(prp1, prp2, 3 << 20, mem_reader(&mut mem)).unwrap();
        assert_eq!(segs.len(), 768);
        assert_eq!(segs.last().unwrap().addr, *pages.last().unwrap());
    }

    #[test]
    fn misaligned_entry_rejected() {
        let r = walk_prps(0x1000, 0x8001, 8192, |_| unreachable!());
        assert_eq!(r, Err(PrpError::Misaligned(0x8001)));
    }

    #[test]
    fn null_entries_rejected() {
        assert_eq!(
            walk_prps(0, 0, 4096, |_| unreachable!()),
            Err(PrpError::NullEntry)
        );
        assert_eq!(
            walk_prps(0x1000, 0, 8192, |_| unreachable!()),
            Err(PrpError::NullEntry)
        );
        assert_eq!(
            walk_prps(0x1000, 0, 0, |_| unreachable!()),
            Err(PrpError::EmptyTransfer)
        );
    }

    #[test]
    fn cyclic_chain_rejected() {
        // A chain entry pointing back at itself (start offset 511*8 means
        // the only entry in scope is the chain pointer) must terminate
        // with ChainTooLong, not walk forever.
        let mut mem = SparseMemory::new();
        let self_ref: u64 = 0xD000 + 511 * 8;
        mem.write(self_ref, &self_ref.to_le_bytes());
        let r = walk_prps(0x1000, self_ref, 4 * 4096, mem_reader(&mut mem));
        assert_eq!(r, Err(PrpError::ChainTooLong));
    }

    #[test]
    fn fetch_failure_aborts_walk() {
        // A failed list-page read surfaces as FetchFailed and stops the
        // walk at the first bad fetch — no further reads are attempted.
        let mut calls = 0u32;
        let r = walk_prps(0x1000, 0xd000, 4 * 4096, |a| {
            calls += 1;
            Err(PrpError::FetchFailed(a))
        });
        assert_eq!(r, Err(PrpError::FetchFailed(0xd000)));
        assert_eq!(calls, 1);
    }

    #[test]
    fn partial_tail_page() {
        // 10000 bytes from an aligned start: 4096 + 4096 + 1808.
        let mut mem = SparseMemory::new();
        let pages = vec![0x1000, 0x2000, 0x3000];
        let mut b = PrpListBuilder::new(vec![0xC000_0000]);
        let (prp1, prp2) = b.build(&pages, |a, d| mem.write(a, d));
        let segs = walk_prps(prp1, prp2, 10000, mem_reader(&mut mem)).unwrap();
        assert_eq!(segs.len(), 3);
        assert_eq!(segs[2].len, 10000 - 8192);
    }

    proptest! {
        /// The builder and the walker are inverses: for arbitrary page
        /// counts and lengths, walking the built PRPs recovers the exact
        /// page sequence and covers exactly `len` bytes.
        #[test]
        fn builder_walker_roundtrip(
            n_pages in 1usize..1400,
            tail in 1u64..=4096,
        ) {
            let mut mem = SparseMemory::new();
            let pages: Vec<u64> =
                (0..n_pages as u64).map(|i| 0x1_0000_0000 + i * 4096).collect();
            let len = (n_pages as u64 - 1) * 4096 + tail;
            let lists: Vec<u64> = (0..4).map(|i| 0xF000_0000 + i * 4096).collect();
            let mut b = PrpListBuilder::new(lists);
            let (prp1, prp2) = b.build(&pages, |a, d| mem.write(a, d));
            let segs = walk_prps(prp1, prp2, len, mem_reader(&mut mem)).unwrap();
            prop_assert_eq!(segs.len(), n_pages);
            let covered: u64 = segs.iter().map(|s| s.len).sum();
            prop_assert_eq!(covered, len);
            for (s, p) in segs.iter().zip(&pages) {
                prop_assert_eq!(s.addr, *p);
            }
        }
    }
}
