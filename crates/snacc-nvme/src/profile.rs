//! Calibrated device profiles.
//!
//! Numbers are derived from the paper's measurements of a Samsung 990 PRO
//! 2 TB on an AMD EPYC 7302P host (Sec 5) plus public device behaviour:
//!
//! * sequential read ceiling 6.9 GB/s (Fig 4a),
//! * sequential program rate alternating 6.24 / 5.90 GB/s (Fig 4a),
//! * 4 KiB random-read latency ≈ 28–31 µs media time (Fig 4c),
//! * random-read throughput ≈ 1.1 M IOPS at SQ depth 64 (Fig 4b),
//! * write completions < 9 µs via the volatile write cache (Fig 4c),
//! * the peer-to-peer fetch-credit limit that caps writes from FPGA
//!   memory at ≈ 5.6 GB/s (Fig 4a, discussion in Sec 5.2).

use crate::nand::NandConfig;
use snacc_pcie::PcieLinkConfig;
use snacc_sim::{Bandwidth, SimDuration};

/// Full parameter set for an NVMe device instance.
#[derive(Clone, Debug)]
pub struct NvmeProfile {
    /// Storage backend parameters.
    pub nand: NandConfig,
    /// The device's PCIe link.
    pub link: PcieLinkConfig,
    /// Data-fetch read-request size (bytes per fabric read).
    pub fetch_chunk: u64,
    /// Outstanding fetch credits towards host memory.
    pub fetch_window_host: usize,
    /// Outstanding fetch credits towards peer devices (P2P) — the paper's
    /// observed P2P limitation comes from this being small.
    pub fetch_window_p2p: usize,
    /// Extra per-chunk issue delay while the program engine is in its slow
    /// state (controller DMA shares resources with NAND folding).
    pub fetch_stall_lo: SimDuration,
    /// Fixed per-chunk issue overhead on peer-to-peer fetches (request
    /// scheduling in the controller's P2P path — the paper's observed
    /// "read accesses ... do not occur frequently enough").
    pub fetch_overhead_p2p: SimDuration,
    /// Maximum number of I/O queue pairs.
    pub max_io_queues: u16,
    /// Maximum entries per queue (CAP.MQES + 1).
    pub max_queue_entries: u16,
    /// How many SQEs the controller fetches per burst read.
    pub sqe_fetch_burst: u16,
    /// Latency of a BAR0 register access at the controller.
    pub reg_latency: SimDuration,
    /// Model/serial strings reported by Identify.
    pub model: &'static str,
}

impl NvmeProfile {
    /// Samsung 990 PRO 2 TB-class device on PCIe Gen4 ×4.
    pub fn samsung_990pro() -> Self {
        NvmeProfile {
            nand: NandConfig {
                dies: 64,
                page_bytes: 16384,
                read_latency_min: SimDuration::from_us(20),
                read_latency_max: SimDuration::from_us(38),
                read_latency_cold_min: SimDuration::from_us(42),
                read_latency_cold_max: SimDuration::from_us(58),
                pslc_window_bytes: 100 << 30,
                channel_bandwidth: Bandwidth::gb_per_s(6.9),
                channels: 8,
                per_channel_bandwidth: Bandwidth::gb_per_s(1.2),
                cmd_overhead: SimDuration::from_ns(450),
                program_hi: Bandwidth::gb_per_s(6.24),
                program_lo: Bandwidth::gb_per_s(5.90),
                program_state_block: 1 << 30,
                write_cache_bytes: 64 << 20,
                cache_admit_latency: SimDuration::from_us(2),
                random_write_derate: 0.85,
                capacity_bytes: 2_000_000_000_000,
            },
            link: PcieLinkConfig::nvme_gen4_x4(),
            fetch_chunk: 4096,
            fetch_window_host: 8,
            fetch_window_p2p: 3,
            fetch_stall_lo: SimDuration::from_ns(80),
            fetch_overhead_p2p: SimDuration::from_ns(42),
            max_io_queues: 16,
            max_queue_entries: 1024,
            sqe_fetch_burst: 8,
            reg_latency: SimDuration::from_ns(80),
            model: "SNAcc-sim 990 PRO 2TB",
        }
    }

    /// A PCIe Gen5 ×4 projection (paper Sec 7): roughly doubled link and
    /// media rates.
    pub fn gen5_projection() -> Self {
        let mut p = Self::samsung_990pro();
        p.link = PcieLinkConfig::nvme_gen5_x4();
        p.nand.channel_bandwidth = Bandwidth::gb_per_s(13.8);
        p.nand.program_hi = Bandwidth::gb_per_s(11.8);
        p.nand.program_lo = Bandwidth::gb_per_s(10.9);
        p.nand.dies = 64;
        p.fetch_window_host = 16;
        p.fetch_window_p2p = 8;
        p.model = "SNAcc-sim Gen5 projection";
        p
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn profile_constants_sane() {
        let p = NvmeProfile::samsung_990pro();
        assert!(p.nand.channel_bandwidth.as_gb_per_s() > 6.0);
        assert!(p.fetch_window_p2p < p.fetch_window_host);
        assert_eq!(p.nand.capacity_bytes, 2_000_000_000_000);
    }

    #[test]
    fn gen5_is_faster() {
        let g4 = NvmeProfile::samsung_990pro();
        let g5 = NvmeProfile::gen5_projection();
        assert!(
            g5.nand.channel_bandwidth.as_gb_per_s() > 1.5 * g4.nand.channel_bandwidth.as_gb_per_s()
        );
        assert!(g5.link.bandwidth().as_gb_per_s() > 1.9 * g4.link.bandwidth().as_gb_per_s());
    }
}
