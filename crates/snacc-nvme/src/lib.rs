//! # snacc-nvme — NVMe protocol + device model
//!
//! A spec-faithful subset of NVMe 1.4 plus a calibrated model of a
//! Samsung 990 PRO-class SSD, both sides of the wire:
//!
//! * [`spec`] — 64-byte submission queue entries, 16-byte completion queue
//!   entries, controller register map, opcodes and status codes. These are
//!   real encodings: the device parses the same bytes a host driver (or
//!   SNAcc's NVMe Streamer) writes into queue memory.
//! * [`queue`] — submission/completion ring arithmetic (tails, heads, phase
//!   tags) shared by the host drivers and the streamer model.
//! * [`prp`] — PRP walking (device side) and PRP list building (host side),
//!   including list chaining for > 1 MB + 4 KiB transfers.
//! * [`nand`] — the storage backend: NAND dies with per-die queueing, a
//!   shared channel budget, the pSLC-cache program-rate state machine that
//!   produces the paper's alternating 6.24 / 5.90 GB/s write bandwidth, and
//!   the controller DRAM write cache that makes 4 KiB writes complete in a
//!   few microseconds.
//! * [`device`] — the controller: doorbells on BAR0, SQE fetch over the
//!   PCIe fabric, PRP resolution, credit-windowed data fetch (the
//!   peer-to-peer read-credit limit that caps SNAcc's URAM write bandwidth
//!   lives here), media access, completion writeback.
//! * [`profile`] — calibrated device parameter sets (990 PRO on Gen4 ×4,
//!   plus the Gen5 projection used by the paper's Sec 7 discussion).

#![deny(missing_docs)]

pub mod device;
pub mod nand;
pub mod profile;
pub mod prp;
pub mod queue;
pub mod spec;

pub use device::{IoFaultConfig, IoFaultStats, NvmeDevice, NvmeDeviceHandle};
pub use profile::NvmeProfile;
