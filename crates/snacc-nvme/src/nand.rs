//! The storage backend behind the NVMe controller.
//!
//! Mechanisms (all calibrated in [`crate::profile`]):
//!
//! * **Dies + channel budget** — media is striped page-wise across NAND
//!   dies; each die serves one page read at a time with ~tR latency, and
//!   read data shares an aggregate channel budget. Sequential reads hit the
//!   channel ceiling (6.9 GB/s on a 990 PRO-class drive); random 4 KiB
//!   reads are die-latency bound, and die collisions create the latency
//!   variance that SNAcc's in-order retirement turns into head-of-line
//!   blocking (paper Sec 5.2, Fig 4b).
//! * **pSLC program-rate state machine** — the drive programs NAND at one
//!   of two sustained rates, toggling after each state block. This is the
//!   mechanism behind the paper's write bandwidth "alternating between
//!   5.90 GB/s and 6.24 GB/s without any intermediate values" (Fig 4a).
//! * **DRAM write cache** — writes complete into controller DRAM within a
//!   few microseconds (Fig 4c: all write latencies < 9 µs) and are
//!   programmed to NAND in the background; admission stalls only when the
//!   cache fills, which couples sustained write bandwidth to the program
//!   rate.

use snacc_mem::SegmentMemory;
use snacc_sim::bytes::Payload;
use snacc_sim::{Bandwidth, SharedLink, SimDuration, SimRng, SimTime};
use std::collections::{HashMap, VecDeque};

/// NAND / controller backend parameters.
#[derive(Clone, Debug)]
pub struct NandConfig {
    /// Number of independent NAND dies.
    pub dies: usize,
    /// NAND page size (striping and read granularity).
    pub page_bytes: u64,
    /// Die read latency (tR) bounds for **warm** data (still resident in
    /// the pSLC cache region); jittered uniformly per page read.
    pub read_latency_min: SimDuration,
    /// Upper warm tR bound.
    pub read_latency_max: SimDuration,
    /// Die read latency bounds for **cold** data (folded to TLC). Reading
    /// never-written or long-ago-written LBAs pays this — the mechanism
    /// behind the paper's 57 µs SPDK read latency vs 34 µs for SNAcc
    /// reading its freshly written benchmark data (Fig 4c).
    pub read_latency_cold_min: SimDuration,
    /// Upper cold tR bound.
    pub read_latency_cold_max: SimDuration,
    /// Bytes of the most recent writes considered pSLC-resident (warm).
    pub pslc_window_bytes: u64,
    /// Aggregate controller read-out bandwidth (the sequential-read
    /// ceiling). Booked by the *delivery* path via
    /// [`NandBackend::book_readout`] so concurrent commands contend in
    /// true completion-time order.
    pub channel_bandwidth: Bandwidth,
    /// Independent NAND channels (dies are distributed round-robin).
    pub channels: usize,
    /// Per-channel transfer bandwidth.
    pub per_channel_bandwidth: Bandwidth,
    /// Per-command controller processing overhead (serialised).
    pub cmd_overhead: SimDuration,
    /// Sustained NAND program rate in the fast cache state.
    pub program_hi: Bandwidth,
    /// Sustained NAND program rate in the slow (folding) state.
    pub program_lo: Bandwidth,
    /// Bytes programmed in one state before toggling to the other.
    pub program_state_block: u64,
    /// Controller DRAM write-cache capacity.
    pub write_cache_bytes: u64,
    /// Latency to admit a write into the DRAM cache.
    pub cache_admit_latency: SimDuration,
    /// Program-rate derating for random (4 KiB) writes (FTL mapping cost).
    pub random_write_derate: f64,
    /// Namespace capacity in bytes.
    pub capacity_bytes: u64,
}

/// The two-state pSLC program-rate machine.
#[derive(Clone, Debug)]
struct ProgramEngine {
    free_at: SimTime,
    hi: Bandwidth,
    lo: Bandwidth,
    in_lo: bool,
    bytes_into_state: u64,
    block: u64,
}

impl ProgramEngine {
    fn new(hi: Bandwidth, lo: Bandwidth, block: u64) -> Self {
        ProgramEngine {
            free_at: SimTime::ZERO,
            hi,
            lo,
            in_lo: false,
            bytes_into_state: 0,
            block,
        }
    }

    /// Book `bytes` of programming no earlier than `t`; returns program
    /// completion time. Crosses state boundaries mid-booking when needed.
    fn book(&mut self, t: SimTime, bytes: u64, derate: f64) -> SimTime {
        let mut cur = t.max(self.free_at);
        let mut remaining = bytes;
        while remaining > 0 {
            let left_in_state = self.block - self.bytes_into_state;
            let take = remaining.min(left_in_state);
            let rate = if self.in_lo { self.lo } else { self.hi }.scaled(derate);
            cur += rate.time_for(take);
            self.bytes_into_state += take;
            remaining -= take;
            if self.bytes_into_state == self.block {
                self.in_lo = !self.in_lo;
                self.bytes_into_state = 0;
            }
        }
        self.free_at = cur;
        cur
    }
}

/// The storage backend: functional media + timing model.
pub struct NandBackend {
    cfg: NandConfig,
    media: SegmentMemory,
    die_free: Vec<SimTime>,
    channels: Vec<SharedLink>,
    readout: SharedLink,
    cmd_free: SimTime,
    program: ProgramEngine,
    /// (program completion, bytes) queue for cache-occupancy accounting.
    cache_queue: VecDeque<(SimTime, u64)>,
    cache_occupancy: u64,
    /// pSLC residency: 1 MiB block → write sequence number.
    warm_blocks: HashMap<u64, u64>,
    write_seq: u64,
    rng: SimRng,
    /// Total bytes read from media.
    pub media_reads: u64,
    /// Total bytes written to media.
    pub media_writes: u64,
}

impl NandBackend {
    /// Create a backend with the given config and RNG seed (tR jitter).
    pub fn new(cfg: NandConfig, seed: u64) -> Self {
        let channels = (0..cfg.channels)
            .map(|i| {
                SharedLink::new(
                    format!("nand.ch{i}"),
                    cfg.per_channel_bandwidth,
                    SimDuration::ZERO,
                )
            })
            .collect();
        let readout = SharedLink::new("nand.readout", cfg.channel_bandwidth, SimDuration::ZERO);
        let program = ProgramEngine::new(cfg.program_hi, cfg.program_lo, cfg.program_state_block);
        NandBackend {
            die_free: vec![SimTime::ZERO; cfg.dies],
            channels,
            readout,
            cmd_free: SimTime::ZERO,
            program,
            cache_queue: VecDeque::new(),
            cache_occupancy: 0,
            warm_blocks: HashMap::new(),
            write_seq: 0,
            rng: SimRng::new(seed ^ 0x5a5a_1234),
            media_reads: 0,
            media_writes: 0,
            media: SegmentMemory::new(),
            cfg,
        }
    }

    /// Backend configuration.
    pub fn config(&self) -> &NandConfig {
        &self.cfg
    }

    /// Is the program engine currently in the slow (folding) state? The
    /// controller derates its host-data fetch pacing in this state — the
    /// coupling that makes the SNAcc URAM / on-board-DRAM write bandwidth
    /// alternate in step with the program rate.
    pub fn in_lo_state(&self) -> bool {
        self.program.in_lo
    }

    /// Namespace capacity in bytes.
    pub fn capacity_bytes(&self) -> u64 {
        self.cfg.capacity_bytes
    }

    /// Is the byte span `[addr, addr+len)` within the namespace?
    pub fn in_bounds(&self, addr: u64, len: u64) -> bool {
        addr.checked_add(len)
            .map(|end| end <= self.cfg.capacity_bytes)
            .unwrap_or(false)
    }

    /// Direct functional media access (tests, pre-population).
    pub fn media_mut(&mut self) -> &mut SegmentMemory {
        &mut self.media
    }

    /// Pre-populate an extent with fill data and mark it pSLC-resident,
    /// without disturbing any timing state — benchmark preconditioning
    /// (the paper's random-read benchmark reads data its own write phase
    /// placed in the drive's cache region). The fill lands as lazy shared
    /// segments: O(len / 1 MiB) metadata, no bytes allocated until read.
    pub fn prewarm(&mut self, addr: u64, len: u64, fill: u8) {
        self.media.fill(addr, len, fill);
        self.mark_warm(addr, len);
    }

    fn book_cmd(&mut self, now: SimTime) -> SimTime {
        let start = now.max(self.cmd_free);
        self.cmd_free = start + self.cfg.cmd_overhead;
        self.cmd_free
    }

    fn die_of(&self, byte_addr: u64) -> usize {
        ((byte_addr / self.cfg.page_bytes) % self.cfg.dies as u64) as usize
    }

    const WARM_BLOCK: u64 = 1 << 20;

    /// Is the 1 MiB block containing `addr` still pSLC-resident?
    pub fn is_warm(&self, addr: u64) -> bool {
        match self.warm_blocks.get(&(addr / Self::WARM_BLOCK)) {
            Some(&seq) => {
                self.write_seq.saturating_sub(seq) * Self::WARM_BLOCK <= self.cfg.pslc_window_bytes
            }
            None => false,
        }
    }

    fn mark_warm(&mut self, addr: u64, len: u64) {
        let first = addr / Self::WARM_BLOCK;
        let last = (addr + len.max(1) - 1) / Self::WARM_BLOCK;
        for b in first..=last {
            self.warm_blocks.insert(b, self.write_seq);
        }
        self.write_seq += snacc_sim::ceil_div(len, Self::WARM_BLOCK);
    }

    fn tr_jitter(&mut self, warm: bool) -> SimDuration {
        let (lo, hi) = if warm {
            (self.cfg.read_latency_min, self.cfg.read_latency_max)
        } else {
            (
                self.cfg.read_latency_cold_min,
                self.cfg.read_latency_cold_max,
            )
        };
        let base = self.rng.gen_duration_between(lo, hi);
        // Occasional long tail: the read collides with a program/erase
        // the die cannot suspend. These tails are what in-order
        // retirement amplifies into the paper's Fig 4b deficit.
        if self.rng.gen_bool(0.03) {
            base * 4
        } else {
            base
        }
    }

    /// Read `out.len()` bytes of media starting at byte address `addr`.
    /// Returns the time the last byte is available in controller SRAM
    /// (ready for [`book_readout`](Self::book_readout) and delivery).
    pub fn read(&mut self, now: SimTime, addr: u64, out: &mut [u8]) -> SimTime {
        assert!(self.in_bounds(addr, out.len() as u64), "media read OOB");
        self.media.read(addr, out);
        self.media_reads += out.len() as u64;
        self.read_timing(now, addr, out.len() as u64)
    }

    /// Zero-copy read: return the media bytes as a [`Payload`] view plus
    /// the media-ready time. Timing is identical to [`read`](Self::read);
    /// the returned payload shares the stored segments' backings (lazy
    /// prewarm fill stays lazy end-to-end).
    pub fn read_payload(&mut self, now: SimTime, addr: u64, len: u64) -> (Payload, SimTime) {
        assert!(self.in_bounds(addr, len), "media read OOB");
        let p = self.media.read_payload(addr, len as usize);
        self.media_reads += len;
        (p, self.read_timing(now, addr, len))
    }

    fn read_timing(&mut self, now: SimTime, addr: u64, len: u64) -> SimTime {
        let t0 = self.book_cmd(now);
        // Page-wise: each page read occupies its die for tR, then moves
        // over its NAND channel into controller SRAM.
        let mut done = t0;
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let page_end = (cur / self.cfg.page_bytes + 1) * self.cfg.page_bytes;
            let n = page_end.min(end) - cur;
            let die = self.die_of(cur);
            let warm = self.is_warm(cur);
            let tr = self.tr_jitter(warm);
            let die_ready = self.die_free[die].max(t0) + tr;
            self.die_free[die] = die_ready;
            let ch = die % self.cfg.channels;
            let moved = self.channels[ch].transfer(die_ready, n);
            done = done.max(moved);
            cur += n;
        }
        done
    }

    /// Book the aggregate controller read-out path for `bytes` starting at
    /// `now`. Call this from the delivery event (i.e. at the command's
    /// actual media-ready time) so commands contend in completion order —
    /// this link is the device's sequential-read ceiling.
    pub fn book_readout(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.readout.transfer(now, bytes)
    }

    /// Write `data` at byte address `addr`. Returns the time the write is
    /// admitted to the DRAM cache (= when the CQE may be posted, volatile
    /// write cache on). `random_hint` applies the FTL derate for small
    /// scattered writes.
    pub fn write(&mut self, now: SimTime, addr: u64, data: &[u8], random_hint: bool) -> SimTime {
        assert!(self.in_bounds(addr, data.len() as u64), "media write OOB");
        self.media.write(addr, data);
        self.write_timing(now, addr, data.len() as u64, random_hint)
    }

    /// Zero-copy write: retain `parts` (in address order, back-to-back
    /// from `addr`) as media segments. Timing is identical to
    /// [`write`](Self::write) of the concatenated bytes; the media keeps
    /// the payload windows, so lazy synthetic data is never materialised.
    pub fn write_parts(
        &mut self,
        now: SimTime,
        addr: u64,
        parts: Vec<Payload>,
        random_hint: bool,
    ) -> SimTime {
        let len: u64 = parts.iter().map(|p| p.len() as u64).sum();
        assert!(self.in_bounds(addr, len), "media write OOB");
        let mut off = 0u64;
        for p in parts {
            let n = p.len() as u64;
            self.media.write_payload(addr + off, p);
            off += n;
        }
        self.write_timing(now, addr, len, random_hint)
    }

    fn write_timing(&mut self, now: SimTime, addr: u64, len: u64, random_hint: bool) -> SimTime {
        self.media_writes += len;
        self.mark_warm(addr, len);
        let t0 = self.book_cmd(now);

        // Free cache space whose programming has finished by t0.
        while let Some(&(end, bytes)) = self.cache_queue.front() {
            if end <= t0 {
                self.cache_occupancy -= bytes;
                self.cache_queue.pop_front();
            } else {
                break;
            }
        }

        // If the cache cannot hold this write, admission waits for enough
        // queued programming to retire.
        let mut t_admit = t0;
        while self.cache_occupancy + len > self.cfg.write_cache_bytes {
            let (end, bytes) = self
                .cache_queue
                .pop_front()
                .expect("cache over-committed with empty queue");
            self.cache_occupancy -= bytes;
            t_admit = t_admit.max(end);
        }

        let derate = if random_hint {
            self.cfg.random_write_derate
        } else {
            1.0
        };
        let prog_end = self.program.book(t_admit, len, derate);
        self.cache_queue.push_back((prog_end, len));
        self.cache_occupancy += len;
        t_admit + self.cfg.cache_admit_latency
    }

    /// Flush: returns when all cached data is programmed.
    pub fn flush(&mut self, now: SimTime) -> SimTime {
        now.max(self.program.free_at)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg() -> NandConfig {
        NandConfig {
            dies: 32,
            page_bytes: 16384,
            read_latency_min: SimDuration::from_us(26),
            read_latency_max: SimDuration::from_us(30),
            read_latency_cold_min: SimDuration::from_us(52),
            read_latency_cold_max: SimDuration::from_us(57),
            pslc_window_bytes: 100 << 30,
            channel_bandwidth: Bandwidth::gb_per_s(6.9),
            channels: 8,
            per_channel_bandwidth: Bandwidth::gb_per_s(1.2),
            cmd_overhead: SimDuration::from_ns(500),
            program_hi: Bandwidth::gb_per_s(6.24),
            program_lo: Bandwidth::gb_per_s(5.90),
            program_state_block: 1 << 30,
            write_cache_bytes: 64 << 20,
            cache_admit_latency: SimDuration::from_us(2),
            random_write_derate: 0.85,
            capacity_bytes: 2_000_000_000_000,
        }
    }

    #[test]
    fn functional_roundtrip() {
        let mut n = NandBackend::new(cfg(), 1);
        let data = vec![0x77u8; 8192];
        n.write(SimTime::ZERO, 123 * 512, &data, false);
        let mut out = vec![0u8; 8192];
        n.read(SimTime::ZERO, 123 * 512, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn sequential_read_hits_readout_ceiling() {
        let mut n = NandBackend::new(cfg(), 2);
        // Read 256 MiB sequentially in 1 MiB commands; each command's
        // read-out is booked at its media-ready time (as the device does).
        let total: u64 = 256 << 20;
        let mut out = vec![0u8; 1 << 20];
        let mut done = SimTime::ZERO;
        for i in 0..(total >> 20) {
            let media = n.read(SimTime::ZERO, i << 20, &mut out);
            done = n.book_readout(media, 1 << 20);
        }
        let gbps = total as f64 / 1e9 / done.as_secs_f64();
        assert!(
            (gbps - 6.9).abs() < 0.25,
            "sequential read should be read-out-bound: {gbps} GB/s"
        );
    }

    #[test]
    fn small_reads_on_distinct_channels_do_not_serialise() {
        let mut n = NandBackend::new(cfg(), 2);
        // A cold page on die 0 then a warm page on die 1: the second must
        // not wait behind the first (independent dies and channels).
        n.write(SimTime::ZERO, 16384, &vec![1u8; 4096], true);
        let mut out = vec![0u8; 4096];
        // Cold address in a different 1 MiB warm-block, die and channel.
        let t_cold = n.read(SimTime::ZERO, 10 << 20, &mut out);
        let t_warm = n.read(SimTime::ZERO, 16384, &mut out);
        assert!(
            t_warm < t_cold,
            "warm {t_warm} should beat cold {t_cold} despite later submission"
        );
    }

    #[test]
    fn cold_read_latency_in_tlc_band() {
        let mut n = NandBackend::new(cfg(), 3);
        let mut out = vec![0u8; 4096];
        let done = n.read(SimTime::ZERO, 512 * 99991, &mut out);
        let us = done.as_us_f64();
        assert!(us > 52.0 && us < 59.0, "{us} µs");
    }

    #[test]
    fn warm_read_latency_in_pslc_band() {
        let mut n = NandBackend::new(cfg(), 3);
        let addr = 512 * 99991;
        let t = n.write(SimTime::ZERO, addr, &vec![1u8; 4096], true);
        assert!(n.is_warm(addr));
        let mut out = vec![0u8; 4096];
        let done = n.read(t, addr, &mut out);
        let us = done.since(t).as_us_f64();
        assert!(us > 26.0 && us < 33.0, "{us} µs");
    }

    #[test]
    fn warmth_expires_beyond_pslc_window() {
        let mut small = cfg();
        small.pslc_window_bytes = 4 << 20;
        let mut n = NandBackend::new(small, 3);
        n.write(SimTime::ZERO, 0, &vec![1u8; 4096], true);
        assert!(n.is_warm(0));
        // Write 8 MB elsewhere: the first block folds out of the window.
        let chunk = vec![0u8; 1 << 20];
        for i in 1..9u64 {
            n.write(SimTime::ZERO, i << 20, &chunk, false);
        }
        assert!(!n.is_warm(0));
        assert!(n.is_warm(8 << 20));
    }

    #[test]
    fn die_collisions_create_variance() {
        let mut n = NandBackend::new(cfg(), 4);
        // Two reads hitting the same die serialise.
        let addr = 0u64; // die 0
        let mut out = vec![0u8; 4096];
        let first = n.read(SimTime::ZERO, addr, &mut out);
        let second = n.read(SimTime::ZERO, addr + 512, &mut out); // same page → same die
        assert!(second.as_us_f64() > first.as_us_f64() + 20.0);
    }

    #[test]
    fn write_admission_is_fast_when_cache_empty() {
        let mut n = NandBackend::new(cfg(), 5);
        let done = n.write(SimTime::ZERO, 0, &vec![0u8; 4096], true);
        assert!(done.as_us_f64() < 5.0, "{}", done.as_us_f64());
    }

    #[test]
    fn sustained_writes_alternate_program_rates() {
        let mut n = NandBackend::new(cfg(), 6);
        // Write 4 GiB; measure per-GiB bandwidth — must alternate between
        // ~6.24 and ~5.90 with no intermediate values.
        let chunk = vec![0u8; 1 << 20];
        let mut rates = Vec::new();
        let mut t_prev = SimTime::ZERO;
        for g in 0..4u64 {
            let mut done = t_prev;
            for i in 0..1024u64 {
                done = n.write(done, (g * 1024 + i) << 20, &chunk, false);
            }
            // Bandwidth limited by cache drain once the cache is full:
            // measure the program engine via flush.
            let flushed = n.flush(done);
            let gib = (1u64 << 30) as f64;
            let secs = flushed.since(t_prev).as_secs_f64();
            rates.push(gib / 1e9 / secs);
            t_prev = flushed;
        }
        // First GiB programs at hi rate, second at lo, etc.
        assert!((rates[0] - 6.24).abs() < 0.15, "{rates:?}");
        assert!((rates[1] - 5.90).abs() < 0.15, "{rates:?}");
        assert!((rates[2] - 6.24).abs() < 0.15, "{rates:?}");
        assert!((rates[3] - 5.90).abs() < 0.15, "{rates:?}");
    }

    #[test]
    fn cache_full_stalls_admission() {
        let mut small = cfg();
        small.write_cache_bytes = 4 << 20;
        let mut n = NandBackend::new(small, 7);
        let chunk = vec![0u8; 1 << 20];
        // Filling the 4 MB cache is fast; the 5th MB must wait for
        // programming (~1 MB / 6.24 GB/s ≈ 160 µs).
        let mut done = SimTime::ZERO;
        for i in 0..4 {
            done = n.write(done, i << 20, &chunk, false);
        }
        assert!(done.as_us_f64() < 20.0, "{}", done.as_us_f64());
        let stalled = n.write(done, 4 << 20, &chunk, false);
        assert!(
            stalled.since(done).as_us_f64() > 100.0,
            "admission should stall on a full cache: {}",
            stalled.since(done).as_us_f64()
        );
    }

    #[test]
    fn random_write_derate_applies() {
        // Issue all writes back-to-back (deep queue); sustained rate is the
        // derated program rate once the cache fills.
        let mut n = NandBackend::new(cfg(), 8);
        let chunk = vec![0u8; 4096];
        let count = 64 << 8; // 64 MiB of 4 KiB writes
        let mut done = SimTime::ZERO;
        for i in 0..count {
            done = done.max(n.write(SimTime::ZERO, i * 4096, &chunk, true));
        }
        let flushed = n.flush(done);
        let gbps = (count * 4096) as f64 / 1e9 / flushed.as_secs_f64();
        // ~0.85 × 6.24 ≈ 5.3 GB/s.
        assert!(gbps < 5.6 && gbps > 4.9, "{gbps}");
    }

    #[test]
    fn lo_state_flag_tracks_blocks() {
        let mut n = NandBackend::new(cfg(), 9);
        assert!(!n.in_lo_state());
        let chunk = vec![0u8; 1 << 20];
        let mut t = SimTime::ZERO;
        for i in 0..1024u64 {
            t = n.write(t, i << 20, &chunk, false);
        }
        // Exactly one state block (1 GiB) programmed → now in lo state.
        assert!(n.in_lo_state());
    }

    #[test]
    fn bounds_checked() {
        let n = NandBackend::new(cfg(), 10);
        assert!(n.in_bounds(0, 4096));
        assert!(!n.in_bounds(n.capacity_bytes(), 1));
        assert!(!n.in_bounds(u64::MAX, 2));
    }
}
