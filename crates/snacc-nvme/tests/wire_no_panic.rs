//! SL004's contract, tested: NVMe wire decoding is total. Arbitrary
//! byte buffers — fuzzed lengths and contents — must decode to `Ok` or
//! `Err`, never panic.

use proptest::collection::vec;
use proptest::prelude::*;
use snacc_nvme::spec::{Cqe, Sqe};

proptest! {
    #[test]
    fn sqe_decode_never_panics(bytes in vec(any::<u8>(), 0..=130)) {
        // Totality is the property: any outcome is fine, panicking is not.
        let _ = Sqe::decode(&bytes);
    }

    #[test]
    fn cqe_decode_never_panics(bytes in vec(any::<u8>(), 0..=40)) {
        let _ = Cqe::decode(&bytes);
    }

    #[test]
    fn full_size_buffers_always_decode(
        sqe_buf in any::<[u8; 64]>(),
        cqe_buf in any::<[u8; 16]>(),
    ) {
        prop_assert!(Sqe::decode(&sqe_buf).is_ok());
        prop_assert!(Cqe::decode(&cqe_buf).is_ok());
    }

    #[test]
    fn short_buffers_are_errors(n in 0usize..64) {
        let buf = vec![0xA5u8; n];
        prop_assert!(Sqe::decode(&buf).is_err());
        if n < 16 {
            prop_assert!(Cqe::decode(&buf).is_err());
        }
    }
}
