//! Host DRAM model and pinned-buffer allocator.
//!
//! The host-DRAM streamer variant exchanges payload data with the NVMe
//! controller through buffers in host memory that the TaPaSCo kernel driver
//! pins for DMA (Sec 4.3 / 4.6). The driver can only allocate *contiguous*
//! buffers of up to 4 MB, so a 64 MB buffer is stitched from 16 segments —
//! the address-calculation overhead the paper mentions comes from walking
//! that segment table, which [`PinnedBuffer`] makes explicit.
//!
//! Host memory itself is modelled full-duplex and generously provisioned
//! (a server-class EPYC memory subsystem); it is never the bottleneck in
//! any of the paper's experiments, and that property carries over here.

use crate::addr::AddrRange;
use crate::segment::SegmentMemory;
use snacc_sim::bytes::Payload;
use snacc_sim::{Bandwidth, SharedLink, SimDuration, SimTime};

/// The kernel driver's maximum physically contiguous allocation (Sec 4.3).
pub const MAX_CONTIG_ALLOC: u64 = 4 << 20;

/// NVMe PRP page size.
pub const PAGE_4K: u64 = 4096;

/// A DMA-pinned buffer composed of one or more physically contiguous
/// segments, each at most [`MAX_CONTIG_ALLOC`] bytes and 4 KiB-aligned.
#[derive(Clone, Debug)]
pub struct PinnedBuffer {
    segments: Vec<AddrRange>,
    size: u64,
}

impl PinnedBuffer {
    /// Total buffer size in bytes.
    pub fn size(&self) -> u64 {
        self.size
    }

    /// The physically contiguous segments, in buffer order.
    pub fn segments(&self) -> &[AddrRange] {
        &self.segments
    }

    /// True if the buffer is a single contiguous region.
    pub fn is_contiguous(&self) -> bool {
        self.segments.len() == 1
    }

    /// Translate a byte offset within the buffer to a physical address.
    /// This is the per-access table walk the host-DRAM streamer performs.
    pub fn phys_addr(&self, offset: u64) -> u64 {
        assert!(offset < self.size, "offset {offset} beyond buffer");
        let mut remaining = offset;
        for seg in &self.segments {
            if remaining < seg.size {
                return seg.base + remaining;
            }
            remaining -= seg.size;
        }
        unreachable!("segment table inconsistent with size");
    }

    /// Physical address of the n-th 4 KiB page of the buffer (PRP entry n).
    pub fn page_addr(&self, page_index: u64) -> u64 {
        self.phys_addr(page_index * PAGE_4K)
    }

    /// Number of 4 KiB pages spanned.
    pub fn pages(&self) -> u64 {
        snacc_sim::ceil_div(self.size, PAGE_4K)
    }
}

/// Host DRAM: functional segment store + a full-duplex timing port per
/// direction, plus the pinned-buffer allocator.
pub struct HostMemory {
    store: SegmentMemory,
    read_port: SharedLink,
    write_port: SharedLink,
    pin_cursor: u64,
    pin_base: u64,
    pin_limit: u64,
}

/// Host memory subsystem parameters.
#[derive(Clone, Debug)]
pub struct HostMemConfig {
    /// Per-direction sustained bandwidth.
    pub bandwidth: Bandwidth,
    /// Access latency.
    pub latency: SimDuration,
    /// Base physical address of the pinned-allocation region.
    pub pinned_base: u64,
    /// Size of the pinned-allocation region.
    pub pinned_size: u64,
}

impl Default for HostMemConfig {
    fn default() -> Self {
        HostMemConfig {
            // One EPYC DDR4 channel pair — far above any PCIe device rate.
            bandwidth: Bandwidth::gb_per_s(38.4),
            latency: SimDuration::from_ns(90),
            pinned_base: 0x1_0000_0000, // 4 GiB mark, away from low memory
            pinned_size: 1 << 30,       // 1 GiB of pinnable memory
        }
    }
}

impl Default for HostMemory {
    fn default() -> Self {
        Self::new(HostMemConfig::default())
    }
}

impl HostMemory {
    /// Create host memory with the given configuration.
    pub fn new(cfg: HostMemConfig) -> Self {
        HostMemory {
            store: SegmentMemory::new(),
            read_port: SharedLink::new("hostmem.rd", cfg.bandwidth, cfg.latency),
            write_port: SharedLink::new("hostmem.wr", cfg.bandwidth, cfg.latency),
            pin_cursor: cfg.pinned_base,
            pin_base: cfg.pinned_base,
            pin_limit: cfg.pinned_base + cfg.pinned_size,
        }
    }

    /// Bytes currently pinned.
    pub fn pinned_bytes(&self) -> u64 {
        self.pin_cursor - self.pin_base
    }

    /// Allocate a DMA-pinned buffer of `size` bytes. The allocation is
    /// split into ≤ 4 MB physically contiguous, 4 KiB-aligned segments,
    /// mirroring the TaPaSCo kernel driver's allocator.
    pub fn alloc_pinned(&mut self, size: u64) -> PinnedBuffer {
        assert!(size > 0, "zero-size pinned allocation");
        let aligned = size.div_ceil(PAGE_4K) * PAGE_4K;
        assert!(
            self.pin_cursor + aligned <= self.pin_limit,
            "pinned memory exhausted"
        );
        let mut segments = Vec::new();
        let mut remaining = aligned;
        while remaining > 0 {
            let seg = remaining.min(MAX_CONTIG_ALLOC);
            segments.push(AddrRange::new(self.pin_cursor, seg));
            self.pin_cursor += seg;
            remaining -= seg;
        }
        PinnedBuffer {
            segments,
            size: aligned,
        }
    }

    /// Direct functional access (no timing).
    pub fn store_mut(&mut self) -> &mut SegmentMemory {
        &mut self.store
    }

    /// Timing-only booking of a read of `bytes` from host memory.
    pub fn book_read(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.read_port.transfer(now, bytes)
    }

    /// Timing-only booking of a write of `bytes` to host memory.
    pub fn book_write(&mut self, now: SimTime, bytes: u64) -> SimTime {
        self.write_port.transfer(now, bytes)
    }

    /// Timed + functional write.
    pub fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        self.store.write(addr, data);
        self.book_write(now, data.len() as u64)
    }

    /// Timed + functional read.
    pub fn read(&mut self, now: SimTime, addr: u64, out: &mut [u8]) -> SimTime {
        self.store.read(addr, out);
        self.book_read(now, out.len() as u64)
    }

    /// Timed + functional zero-copy write: the store retains the payload
    /// window; timing is identical to [`write`](Self::write).
    pub fn write_payload(&mut self, now: SimTime, addr: u64, data: Payload) -> SimTime {
        let len = data.len() as u64;
        self.store.write_payload(addr, data);
        self.book_write(now, len)
    }

    /// Timed + functional zero-copy read: returns the stored bytes as a
    /// payload view; timing is identical to [`read`](Self::read).
    pub fn read_payload(&mut self, now: SimTime, addr: u64, len: usize) -> (Payload, SimTime) {
        let p = self.store.read_payload(addr, len);
        (p, self.book_read(now, len as u64))
    }

    /// Total bytes moved in either direction.
    pub fn bytes_transferred(&self) -> u64 {
        self.read_port.bytes_transferred() + self.write_port.bytes_transferred()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_alloc_is_contiguous() {
        let mut m = HostMemory::default();
        let b = m.alloc_pinned(1 << 20);
        assert!(b.is_contiguous());
        assert_eq!(b.size(), 1 << 20);
        assert_eq!(b.pages(), 256);
    }

    #[test]
    fn large_alloc_splits_at_4mb() {
        let mut m = HostMemory::default();
        let b = m.alloc_pinned(64 << 20);
        assert_eq!(b.segments().len(), 16);
        assert!(b.segments().iter().all(|s| s.size <= MAX_CONTIG_ALLOC));
        assert_eq!(b.size(), 64 << 20);
    }

    #[test]
    fn phys_addr_walks_segments() {
        let mut m = HostMemory::default();
        let b = m.alloc_pinned(9 << 20); // 3 segments: 4+4+1 MB
        assert_eq!(b.segments().len(), 3);
        // Offset 0 → first segment base.
        assert_eq!(b.phys_addr(0), b.segments()[0].base);
        // Offset 4 MB → second segment base.
        assert_eq!(b.phys_addr(4 << 20), b.segments()[1].base);
        // Offset 4 MB − 1 → last byte of first segment.
        assert_eq!(b.phys_addr((4 << 20) - 1), b.segments()[0].end() - 1);
        // Page address helper matches.
        assert_eq!(b.page_addr(1024), b.segments()[1].base);
    }

    #[test]
    fn allocations_do_not_overlap() {
        let mut m = HostMemory::default();
        let a = m.alloc_pinned(6 << 20);
        let b = m.alloc_pinned(6 << 20);
        for sa in a.segments() {
            for sb in b.segments() {
                assert!(!sa.overlaps(sb));
            }
        }
        assert_eq!(m.pinned_bytes(), 12 << 20);
    }

    #[test]
    fn alloc_rounds_to_pages() {
        let mut m = HostMemory::default();
        let b = m.alloc_pinned(100);
        assert_eq!(b.size(), 4096);
    }

    #[test]
    #[should_panic(expected = "exhausted")]
    fn pinned_exhaustion_detected() {
        let mut m = HostMemory::new(HostMemConfig {
            pinned_size: 8 << 20,
            ..Default::default()
        });
        m.alloc_pinned(16 << 20);
    }

    #[test]
    fn timed_roundtrip() {
        let mut m = HostMemory::default();
        let done = m.write(SimTime::ZERO, 0x2000, b"abc");
        assert!(done > SimTime::ZERO);
        let mut out = [0u8; 3];
        m.read(SimTime::ZERO, 0x2000, &mut out);
        assert_eq!(&out, b"abc");
    }
}
