//! # snacc-mem — memory models
//!
//! Functional + timed memory substrates used by every other crate:
//!
//! * [`segment::SegmentMemory`] — zero-copy segment store. This is the
//!   *functional* backing for host DRAM, FPGA DRAM, URAM, and SSD NAND: data
//!   written through the simulated datapaths lands here as retained
//!   [`snacc_sim::bytes::Payload`] windows (O(segments) metadata, lazy
//!   synthetic data stays lazy) and can be read back and checksummed.
//! * [`sparse::SparseMemory`] — page-granular sparse byte store, used for
//!   small MMIO scratch/doorbell regions and as the reference model in the
//!   segment-store equivalence tests.
//! * [`addr::AddressMap`] — address decoding used by the PCIe fabric and the
//!   FPGA platform shell to route accesses to BAR windows.
//! * [`uram::UramModel`] — on-die UltraRAM: small, low latency, high port
//!   bandwidth; SNAcc's first streamer variant buffers here.
//! * [`dram::DramController`] — a single off-chip DRAM channel with
//!   direction-turnaround penalties. Reproduces the paper's observation that
//!   concurrent ingress writes and NVMe-controller reads degrade the
//!   on-board-DRAM streamer's write bandwidth (Sec 5.2).
//! * [`hostmem::HostMemory`] — host DRAM with a pinned-buffer allocator that
//!   enforces the kernel driver's 4 MB contiguity limit (Sec 4.3).

pub mod addr;
pub mod dram;
pub mod hostmem;
pub mod segment;
pub mod sparse;
pub mod uram;

pub use addr::{AddrRange, AddressMap};
pub use dram::{DramConfig, DramController, MemDir};
pub use hostmem::{HostMemory, PinnedBuffer};
pub use segment::SegmentMemory;
pub use sparse::SparseMemory;
pub use uram::{UramConfig, UramModel};

/// FNV-1a checksum over a byte slice — used by integrity tests to compare
/// data that traversed the full simulated datapath.
pub fn fnv1a(data: &[u8]) -> u64 {
    let mut h: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in data {
        h ^= b as u64;
        h = h.wrapping_mul(0x0000_0100_0000_01b3);
    }
    h
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fnv1a_known_values() {
        // Empty input yields the offset basis.
        assert_eq!(fnv1a(b""), 0xcbf2_9ce4_8422_2325);
        // Order sensitivity.
        assert_ne!(fnv1a(b"ab"), fnv1a(b"ba"));
        // Stability.
        assert_eq!(fnv1a(b"snacc"), fnv1a(b"snacc"));
    }
}
