//! Segment-store memory: zero-copy functional media.
//!
//! [`SegmentMemory`] replaces the page-materialising [`crate::SparseMemory`]
//! behind the functional media models (SSD NAND, host DRAM, on-board DRAM,
//! URAM). Instead of copying every written byte into 4 KiB pages, it keeps
//! an ordered map of non-overlapping [`Payload`] windows:
//!
//! * **Writes retain the payload** — an O(1) metadata insert. Lazy pattern
//!   or fill segments stay lazy; a 2 GiB synthetic write pass moves
//!   O(segments) metadata instead of gigabytes of bytes.
//! * **Reads return zero-copy views** — a read covered by one segment is a
//!   slice of that segment's backing; gaps come back as lazy zero-fill.
//!   Only reads spanning multiple backings copy (via [`Payload::concat`]),
//!   and [`read_payload_parts`](SegmentMemory::read_payload_parts) avoids
//!   even that for consumers that can handle a part list.
//! * **Copy-on-write coalescing** bounds fragmentation: when more than
//!   [`COALESCE_SEGS`] segments accumulate inside one 1 MiB window, the
//!   window is materialised into a single owned segment. This is the only
//!   copying path in the store.
//!
//! The byte-oriented API (`write`/`read`/`read_vec`/scalar helpers) matches
//! `SparseMemory` so ring buffers, descriptor pages and tests work
//! unchanged.

use snacc_sim::bytes::Payload;
use std::collections::BTreeMap;

use crate::sparse::PAGE_SIZE;

/// CoW coalescing window (bytes). Fragmentation is bounded per window.
pub const COALESCE_WINDOW: u64 = 1 << 20;

/// Maximum segments tolerated inside one window before the window is
/// materialised into a single owned segment.
pub const COALESCE_SEGS: usize = 64;

/// Chunk size for [`SegmentMemory::fill`] backings: bounds how much one
/// lazy fill segment materialises if a byte of it is ever inspected.
const FILL_CHUNK: u64 = 1 << 20;

/// A sparse, zero-initialised byte-addressable memory storing zero-copy
/// payload segments. See the module docs.
#[derive(Default)]
pub struct SegmentMemory {
    /// Non-overlapping segments keyed by start byte address.
    segs: BTreeMap<u64, Payload>,
    bytes_written: u64,
    bytes_read: u64,
}

impl SegmentMemory {
    /// New empty memory (all bytes read as zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct 4 KiB pages covered by resident segments — the
    /// same footprint measure `SparseMemory::resident_pages` reports.
    pub fn resident_pages(&self) -> usize {
        let mut pages = 0usize;
        let mut last_counted: Option<u64> = None;
        for (&start, seg) in &self.segs {
            let first = start / PAGE_SIZE as u64;
            let last = (start + seg.len() as u64 - 1) / PAGE_SIZE as u64;
            let first = match last_counted {
                Some(lc) if first <= lc => lc + 1,
                _ => first,
            };
            if first <= last {
                pages += (last - first + 1) as usize;
                last_counted = Some(last);
            }
        }
        pages
    }

    /// Number of resident segments (fragmentation metric).
    pub fn segment_count(&self) -> usize {
        self.segs.len()
    }

    /// Total bytes written through the write paths.
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read through the read paths.
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Write `data` starting at byte address `addr` (copies `data` once
    /// into a shared backing; prefer [`write_payload`](Self::write_payload)
    /// on hot paths).
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        if data.is_empty() {
            return;
        }
        self.write_payload(addr, Payload::from(data));
    }

    /// Write a payload window starting at `addr` — O(log segments) metadata
    /// update, no byte copying. Overlapped extents of existing segments are
    /// trimmed (zero-copy slices); adjacent windows of the same backing
    /// re-join so a producer slicing one large buffer leaves one segment.
    pub fn write_payload(&mut self, addr: u64, data: Payload) {
        self.bytes_written += data.len() as u64;
        self.insert_segment(addr, data);
        self.maybe_coalesce(addr);
    }

    /// Fill `[addr, addr + len)` with `byte` as lazy shared-backing fill
    /// segments — O(len / 1 MiB) metadata, no allocation until (and unless)
    /// the bytes are inspected. Chunks are cut at absolute 1 MiB boundaries
    /// so aligned 1 MiB reads land on exactly one segment.
    pub fn fill(&mut self, addr: u64, len: u64, byte: u8) {
        if len == 0 {
            return;
        }
        self.bytes_written += len;
        let backing = Payload::fill(byte, FILL_CHUNK.min(len) as usize);
        let mut cur = addr;
        let end = addr + len;
        while cur < end {
            let chunk_end = ((cur / FILL_CHUNK) + 1) * FILL_CHUNK;
            let n = chunk_end.min(end) - cur;
            self.insert_segment(cur, backing.slice(0..n as usize));
            cur += n;
        }
    }

    /// Read into `out` starting at byte address `addr`. Unwritten bytes
    /// come back as zero; untouched extents never allocate.
    pub fn read(&mut self, addr: u64, out: &mut [u8]) {
        self.bytes_read += out.len() as u64;
        self.read_at(addr, out);
    }

    /// Read `len` bytes starting at `addr` as one [`Payload`] — zero-copy
    /// when one segment covers the span (or the span is a gap, which comes
    /// back as lazy zero-fill); spans crossing backings copy once.
    pub fn read_payload(&mut self, addr: u64, len: usize) -> Payload {
        self.bytes_read += len as u64;
        let parts = self.gather_parts(addr, len);
        match parts.len() {
            0 => Payload::empty(),
            1 => parts.into_iter().next().expect("len checked"),
            _ => Payload::concat(&parts),
        }
    }

    /// Read `len` bytes starting at `addr` as a list of zero-copy payload
    /// parts (in address order, gaps as lazy zero-fill). Never copies.
    pub fn read_payload_parts(&mut self, addr: u64, len: usize) -> Vec<Payload> {
        self.bytes_read += len as u64;
        self.gather_parts(addr, len)
    }

    /// Convenience: read `len` bytes into a fresh vector.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Read a little-endian u32.
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Copy `len` bytes from `src_addr` to `dst_addr` within this memory —
    /// zero-copy: the destination shares the source segments' backings.
    pub fn copy_within(&mut self, src_addr: u64, dst_addr: u64, len: usize) {
        let parts = self.read_payload_parts(src_addr, len);
        self.bytes_written += len as u64;
        let mut off = 0u64;
        for p in parts {
            let n = p.len() as u64;
            self.insert_segment(dst_addr + off, p);
            off += n;
        }
        self.maybe_coalesce(dst_addr);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.segs.clear();
    }

    /// Gather `[addr, addr + len)` as zero-copy parts: segment slices plus
    /// lazy zero-fill for gaps. Parts cover the span exactly, in order.
    fn gather_parts(&self, addr: u64, len: usize) -> Vec<Payload> {
        if len == 0 {
            return Vec::new();
        }
        let end = addr + len as u64;
        let mut parts = Vec::new();
        let mut cur = addr;
        // A segment starting before `addr` may cover the front.
        if let Some((&s, seg)) = self.segs.range(..addr).next_back() {
            let seg_end = s + seg.len() as u64;
            if seg_end > addr {
                let from = (addr - s) as usize;
                let to = (seg_end.min(end) - s) as usize;
                parts.push(seg.slice(from..to));
                cur = seg_end.min(end);
            }
        }
        for (&s, seg) in self.segs.range(addr..end) {
            if cur >= end {
                break;
            }
            if s > cur {
                parts.push(Payload::fill(0, (s.min(end) - cur) as usize));
                cur = s.min(end);
                if cur >= end {
                    break;
                }
            }
            let seg_end = s + seg.len() as u64;
            let to = (seg_end.min(end) - s) as usize;
            parts.push(seg.slice(0..to));
            cur = seg_end.min(end);
        }
        if cur < end {
            parts.push(Payload::fill(0, (end - cur) as usize));
        }
        parts
    }

    /// Copy `[addr, addr + out.len())` into `out` without touching the
    /// read counter (shared by `read` and the coalescer).
    fn read_at(&self, addr: u64, out: &mut [u8]) {
        let mut off = 0usize;
        for p in self.gather_parts(addr, out.len()) {
            let n = p.len();
            // The copy below is the byte-API boundary: callers handed us a
            // borrowed output buffer, so the bytes must land there.
            out[off..off + n].copy_from_slice(p.as_slice());
            off += n;
        }
    }

    /// Insert `data` at `addr`, trimming any overlapped extents of existing
    /// segments and re-joining with same-backing neighbours. All slicing is
    /// zero-copy.
    fn insert_segment(&mut self, addr: u64, data: Payload) {
        if data.is_empty() {
            return;
        }
        let end = addr + data.len() as u64;
        // Trim a segment that starts before `addr` and overlaps it.
        if let Some((&s, seg)) = self.segs.range_mut(..addr).next_back() {
            let seg_end = s + seg.len() as u64;
            if seg_end > addr {
                let left = seg.slice(0..(addr - s) as usize);
                let right = if seg_end > end {
                    Some(seg.slice((end - s) as usize..seg.len()))
                } else {
                    None
                };
                *seg = left;
                if let Some(tail) = right {
                    self.segs.insert(end, tail);
                }
            }
        }
        // Remove segments starting inside the new window; keep any tail
        // extending past it.
        let covered: Vec<u64> = self.segs.range(addr..end).map(|(&s, _)| s).collect();
        for s in covered {
            let seg = self.segs.remove(&s).expect("listed");
            let seg_end = s + seg.len() as u64;
            if seg_end > end {
                self.segs
                    .insert(end, seg.slice((end - s) as usize..seg.len()));
            }
        }
        // Join with the predecessor / successor when they continue the same
        // backing buffer (zero-copy window merge).
        let mut start = addr;
        let mut merged = data;
        if let Some((&s, seg)) = self.segs.range(..addr).next_back() {
            if s + seg.len() as u64 == addr {
                if let Some(j) = seg.try_join(&merged) {
                    self.segs.remove(&s);
                    start = s;
                    merged = j;
                }
            }
        }
        if let Some(succ) = self.segs.get(&end) {
            if let Some(j) = merged.try_join(succ) {
                self.segs.remove(&end);
                merged = j;
            }
        }
        self.segs.insert(start, merged);
    }

    /// If the 1 MiB window containing `addr` holds more than
    /// [`COALESCE_SEGS`] segments, materialise its covered extent into one
    /// owned segment (the store's only copying path).
    fn maybe_coalesce(&mut self, addr: u64) {
        let win_start = addr & !(COALESCE_WINDOW - 1);
        let win_end = win_start + COALESCE_WINDOW;
        let mut count = 0usize;
        let mut lo = u64::MAX;
        let mut hi = 0u64;
        for (&s, seg) in self.segs.range(win_start..win_end) {
            count += 1;
            lo = lo.min(s);
            hi = hi.max((s + seg.len() as u64).min(win_end));
            if count > COALESCE_SEGS {
                break;
            }
        }
        if count <= COALESCE_SEGS || lo >= hi {
            return;
        }
        let len = (hi - lo) as usize;
        let mut buf = vec![0u8; len];
        self.read_at(lo, &mut buf);
        self.insert_segment(lo, Payload::from_vec(buf));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mut m = SegmentMemory::new();
        assert_eq!(m.read_vec(123_456, 16), vec![0u8; 16]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SegmentMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(1000, &data);
        assert_eq!(m.read_vec(1000, 256), data);
        assert_eq!(m.bytes_written(), 256);
    }

    #[test]
    fn overwrite_partial() {
        let mut m = SegmentMemory::new();
        m.write(0, &[1u8; 8]);
        m.write(4, &[2u8; 2]);
        assert_eq!(m.read_vec(0, 8), vec![1, 1, 1, 1, 2, 2, 1, 1]);
    }

    #[test]
    fn overwrite_spanning_many_segments() {
        let mut m = SegmentMemory::new();
        for i in 0..8u64 {
            m.write(i * 10, &[i as u8; 10]);
        }
        m.write(15, &[0xee; 50]);
        let got = m.read_vec(0, 80);
        for (i, b) in got.iter().enumerate() {
            let want = if (15..65).contains(&i) {
                0xee
            } else {
                (i / 10) as u8
            };
            assert_eq!(*b, want, "byte {i}");
        }
    }

    #[test]
    fn payload_write_is_retained_zero_copy() {
        let mut m = SegmentMemory::new();
        let p = Payload::pattern(7, 4096);
        m.write_payload(64, p.clone());
        let back = m.read_payload(64, 4096);
        // The store returned our window, not a copy: a slice of the result
        // re-joins with the original's tail only if both share one backing.
        assert!(p.slice(0..2048).try_join(&back.slice(2048..4096)).is_some());
        assert_eq!(back, p);
        assert_eq!(m.segment_count(), 1);
    }

    #[test]
    fn adjacent_slices_of_one_buffer_rejoin() {
        let mut m = SegmentMemory::new();
        let big = Payload::from_vec((0u8..=255).cycle().take(4096).collect());
        for i in 0..8 {
            m.write_payload((i * 512) as u64, big.slice(i * 512..(i + 1) * 512));
        }
        assert_eq!(m.segment_count(), 1, "same-backing windows must re-join");
        assert_eq!(m.read_vec(0, 4096), big.to_vec());
    }

    #[test]
    fn gap_reads_are_lazy_fill() {
        let mut m = SegmentMemory::new();
        m.write(8192, &[9u8; 16]);
        let p = m.read_payload(0, 4096);
        let dbg = format!("{p:?}");
        assert!(dbg.contains("fill"), "gap read should be lazy: {dbg}");
        assert_eq!(p.to_vec(), vec![0u8; 4096]);
    }

    #[test]
    fn fill_is_metadata_only_and_aligned() {
        let mut m = SegmentMemory::new();
        m.fill(0, 8 << 20, 0xa5);
        assert_eq!(m.segment_count(), 8, "1 MiB chunks");
        // An aligned 1 MiB read is one zero-copy part.
        let parts = m.read_payload_parts(2 << 20, 1 << 20);
        assert_eq!(parts.len(), 1);
        assert_eq!(m.read_vec(123, 7), vec![0xa5; 7]);
    }

    #[test]
    fn resident_pages_counts_covered_pages_once() {
        let mut m = SegmentMemory::new();
        m.write(0, &[1u8; 100]);
        m.write(200, &[2u8; 100]); // same page
        assert_eq!(m.resident_pages(), 1);
        m.write(4096, &[3u8; 4096]);
        assert_eq!(m.resident_pages(), 2);
        m.write(2_000_000_000_000 - 4, &[7u8; 8]);
        assert_eq!(m.resident_pages(), 4, "straddles two pages");
    }

    #[test]
    fn coalesce_bounds_fragmentation() {
        let mut m = SegmentMemory::new();
        // Interleave non-adjacent tiny writes from distinct backings.
        for i in 0..(2 * COALESCE_SEGS as u64) {
            m.write(i * 128, &[i as u8; 64]);
        }
        assert!(
            m.segment_count() <= COALESCE_SEGS + 2,
            "coalescing must bound fragmentation: {} segments",
            m.segment_count()
        );
        // Contents survive coalescing.
        for i in 0..(2 * COALESCE_SEGS as u64) {
            assert_eq!(m.read_vec(i * 128, 64), vec![i as u8; 64]);
            assert_eq!(m.read_vec(i * 128 + 64, 64), vec![0u8; 64]);
        }
    }

    #[test]
    fn copy_within_shares_backing() {
        let mut m = SegmentMemory::new();
        m.write(0, b"hello world");
        m.copy_within(0, 1 << 20, 11);
        assert_eq!(m.read_vec(1 << 20, 11), b"hello world");
        assert_eq!(m.segment_count(), 2);
    }

    #[test]
    fn scalar_helpers() {
        let mut m = SegmentMemory::new();
        m.write_u32(16, 0xdead_beef);
        m.write_u64(24, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u32(16), 0xdead_beef);
        assert_eq!(m.read_u64(24), 0x0123_4567_89ab_cdef);
    }
}
