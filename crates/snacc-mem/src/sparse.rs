//! Sparse byte memory.
//!
//! All functional storage in the simulation (host DRAM, FPGA DRAM, URAM
//! contents, SSD NAND media) is a [`SparseMemory`]: a page table of 4 KiB
//! pages allocated on first write. A "2 TB SSD" therefore costs only as much
//! host memory as the experiment actually touches, and untouched bytes read
//! back as zero — matching fresh hardware.

use std::collections::HashMap;

/// Page size for the sparse store (matches the NVMe PRP page size, which is
/// convenient but not required — reads/writes may span pages arbitrarily).
pub const PAGE_SIZE: usize = 4096;

/// A sparse, zero-initialised byte-addressable memory.
#[derive(Default)]
pub struct SparseMemory {
    pages: HashMap<u64, Box<[u8; PAGE_SIZE]>>,
    bytes_written: u64,
    bytes_read: u64,
}

impl SparseMemory {
    /// New empty memory (all bytes read as zero).
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of distinct pages materialised so far.
    pub fn resident_pages(&self) -> usize {
        self.pages.len()
    }

    /// Total bytes written through [`write`](Self::write).
    pub fn bytes_written(&self) -> u64 {
        self.bytes_written
    }

    /// Total bytes read through [`read`](Self::read).
    pub fn bytes_read(&self) -> u64 {
        self.bytes_read
    }

    /// Write `data` starting at byte address `addr`.
    pub fn write(&mut self, addr: u64, data: &[u8]) {
        self.bytes_written += data.len() as u64;
        let mut page_no = addr / PAGE_SIZE as u64;
        let mut page_off = (addr % PAGE_SIZE as u64) as usize;
        let mut off = 0usize;
        while off < data.len() {
            let n = (PAGE_SIZE - page_off).min(data.len() - off);
            if n == PAGE_SIZE {
                // Full-page overwrite: build the page straight from the
                // source instead of zero-initialising it first.
                let page: [u8; PAGE_SIZE] = data[off..off + n].try_into().expect("full page");
                self.pages.insert(page_no, Box::new(page));
            } else {
                let page = self
                    .pages
                    .entry(page_no)
                    .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
                page[page_off..page_off + n].copy_from_slice(&data[off..off + n]);
            }
            off += n;
            page_no += 1;
            page_off = 0;
        }
    }

    /// Fill `[addr, addr + len)` with the deterministic pattern generator
    /// [`snacc_sim::bytes::pattern_byte`]`(seed, i)` for `i` in `0..len` —
    /// page-wise in place, with no intermediate staging buffer.
    pub fn fill_pattern(&mut self, addr: u64, len: u64, seed: u64) {
        self.bytes_written += len;
        let mut off = 0u64;
        while off < len {
            let a = addr + off;
            let page_no = a / PAGE_SIZE as u64;
            let page_off = (a % PAGE_SIZE as u64) as usize;
            let n = ((PAGE_SIZE - page_off) as u64).min(len - off);
            let page = self
                .pages
                .entry(page_no)
                .or_insert_with(|| Box::new([0u8; PAGE_SIZE]));
            for (i, b) in page[page_off..page_off + n as usize].iter_mut().enumerate() {
                *b = snacc_sim::bytes::pattern_byte(seed, off + i as u64);
            }
            off += n;
        }
    }

    /// Read into `out` starting at byte address `addr`. Unwritten bytes
    /// come back as zero.
    pub fn read(&mut self, addr: u64, out: &mut [u8]) {
        self.bytes_read += out.len() as u64;
        self.read_into(addr, out);
    }

    /// Read into `out`, returning how many bytes came from resident pages.
    /// Untouched pages never allocate — they zero the output in place —
    /// and a fully-untouched span is detectable from the `0` return.
    pub fn read_into(&mut self, addr: u64, out: &mut [u8]) -> usize {
        let mut resident = 0usize;
        let mut page_no = addr / PAGE_SIZE as u64;
        let mut page_off = (addr % PAGE_SIZE as u64) as usize;
        let mut off = 0usize;
        while off < out.len() {
            let n = (PAGE_SIZE - page_off).min(out.len() - off);
            match self.pages.get(&page_no) {
                Some(page) => {
                    out[off..off + n].copy_from_slice(&page[page_off..page_off + n]);
                    resident += n;
                }
                None => out[off..off + n].fill(0),
            }
            off += n;
            page_no += 1;
            page_off = 0;
        }
        resident
    }

    /// Convenience: read `len` bytes into a fresh vector.
    pub fn read_vec(&mut self, addr: u64, len: usize) -> Vec<u8> {
        let mut v = vec![0u8; len];
        self.read(addr, &mut v);
        v
    }

    /// Read a little-endian u32.
    pub fn read_u32(&mut self, addr: u64) -> u32 {
        let mut b = [0u8; 4];
        self.read(addr, &mut b);
        u32::from_le_bytes(b)
    }

    /// Read a little-endian u64.
    pub fn read_u64(&mut self, addr: u64) -> u64 {
        let mut b = [0u8; 8];
        self.read(addr, &mut b);
        u64::from_le_bytes(b)
    }

    /// Write a little-endian u32.
    pub fn write_u32(&mut self, addr: u64, v: u32) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Write a little-endian u64.
    pub fn write_u64(&mut self, addr: u64, v: u64) {
        self.write(addr, &v.to_le_bytes());
    }

    /// Copy `len` bytes from `src_addr` to `dst_addr` within this memory.
    pub fn copy_within(&mut self, src_addr: u64, dst_addr: u64, len: usize) {
        let tmp = self.read_vec(src_addr, len);
        self.write(dst_addr, &tmp);
    }

    /// Drop all contents.
    pub fn clear(&mut self) {
        self.pages.clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn zero_initialised() {
        let mut m = SparseMemory::new();
        assert_eq!(m.read_vec(123_456, 16), vec![0u8; 16]);
        assert_eq!(m.resident_pages(), 0);
    }

    #[test]
    fn write_read_roundtrip() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..=255).collect();
        m.write(1000, &data);
        assert_eq!(m.read_vec(1000, 256), data);
        assert_eq!(m.bytes_written(), 256);
    }

    #[test]
    fn cross_page_access() {
        let mut m = SparseMemory::new();
        let addr = PAGE_SIZE as u64 - 100;
        let data: Vec<u8> = (0..200).map(|i| i as u8).collect();
        m.write(addr, &data);
        assert_eq!(m.read_vec(addr, 200), data);
        assert_eq!(m.resident_pages(), 2);
    }

    #[test]
    fn overwrite_partial() {
        let mut m = SparseMemory::new();
        m.write(0, &[1u8; 8]);
        m.write(4, &[2u8; 2]);
        assert_eq!(m.read_vec(0, 8), vec![1, 1, 1, 1, 2, 2, 1, 1]);
    }

    #[test]
    fn scalar_helpers() {
        let mut m = SparseMemory::new();
        m.write_u32(16, 0xdead_beef);
        m.write_u64(24, 0x0123_4567_89ab_cdef);
        assert_eq!(m.read_u32(16), 0xdead_beef);
        assert_eq!(m.read_u64(24), 0x0123_4567_89ab_cdef);
    }

    #[test]
    fn copy_within_moves_bytes() {
        let mut m = SparseMemory::new();
        m.write(0, b"hello world");
        m.copy_within(0, 1 << 20, 11);
        assert_eq!(m.read_vec(1 << 20, 11), b"hello world");
    }

    #[test]
    fn read_into_reports_resident_bytes() {
        let mut m = SparseMemory::new();
        m.write(PAGE_SIZE as u64, &[3u8; 16]);
        let mut out = vec![0xffu8; 2 * PAGE_SIZE];
        let resident = m.read_into(0, &mut out);
        assert_eq!(resident, PAGE_SIZE, "only the written page is resident");
        assert_eq!(&out[..PAGE_SIZE], &vec![0u8; PAGE_SIZE][..]);
        assert_eq!(&out[PAGE_SIZE..PAGE_SIZE + 16], &[3u8; 16]);
        assert_eq!(m.resident_pages(), 1, "reads must not allocate pages");
    }

    #[test]
    fn fill_pattern_matches_generator() {
        let mut m = SparseMemory::new();
        let addr = PAGE_SIZE as u64 - 10;
        m.fill_pattern(addr, 100, 0xfeed);
        let got = m.read_vec(addr, 100);
        let want: Vec<u8> = (0u64..100)
            .map(|i| snacc_sim::bytes::pattern_byte(0xfeed, i))
            .collect();
        assert_eq!(got, want);
    }

    #[test]
    fn full_page_write_fast_path() {
        let mut m = SparseMemory::new();
        let data: Vec<u8> = (0..2 * PAGE_SIZE + 100).map(|i| i as u8).collect();
        let addr = PAGE_SIZE as u64 - 50;
        m.write(addr, &data);
        assert_eq!(m.read_vec(addr, data.len()), data);
        assert_eq!(m.resident_pages(), 4);
    }

    #[test]
    fn sparse_footprint_stays_small() {
        let mut m = SparseMemory::new();
        // Touch two pages in a "2 TB" address space.
        m.write(2_000_000_000_000 - 8, &[7u8; 8]);
        m.write(0, &[7u8; 8]);
        assert_eq!(m.resident_pages(), 2);
        assert_eq!(m.read_vec(2_000_000_000_000 - 8, 8), vec![7u8; 8]);
    }
}
