//! Address ranges and decode maps.
//!
//! The PCIe root complex, the FPGA platform shell, and the NVMe streamer's
//! BAR windows all decode incoming addresses against a set of
//! non-overlapping ranges; [`AddressMap`] provides that with O(log n)
//! lookup.

use std::fmt;

/// A half-open byte-address range `[base, base + size)`.
#[derive(Clone, Copy, PartialEq, Eq)]
pub struct AddrRange {
    /// First address in the range.
    pub base: u64,
    /// Size in bytes (must be non-zero).
    pub size: u64,
}

impl AddrRange {
    /// Construct; panics on zero size or overflow.
    pub fn new(base: u64, size: u64) -> Self {
        assert!(size > 0, "empty AddrRange");
        assert!(base.checked_add(size).is_some(), "AddrRange overflow");
        AddrRange { base, size }
    }

    /// One past the last address.
    #[inline]
    pub fn end(&self) -> u64 {
        self.base + self.size
    }

    /// Does the range contain `addr`?
    #[inline]
    pub fn contains(&self, addr: u64) -> bool {
        addr >= self.base && addr < self.end()
    }

    /// Does the range fully contain `[addr, addr + len)`?
    #[inline]
    pub fn contains_span(&self, addr: u64, len: u64) -> bool {
        len > 0
            && self.contains(addr)
            && addr
                .checked_add(len)
                .map(|e| e <= self.end())
                .unwrap_or(false)
    }

    /// Offset of `addr` from the range base (caller must ensure containment).
    #[inline]
    pub fn offset_of(&self, addr: u64) -> u64 {
        debug_assert!(self.contains(addr));
        addr - self.base
    }

    /// Do two ranges overlap?
    pub fn overlaps(&self, other: &AddrRange) -> bool {
        self.base < other.end() && other.base < self.end()
    }
}

impl fmt::Debug for AddrRange {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{:#x}..{:#x})", self.base, self.end())
    }
}

/// A decode map from address ranges to targets of type `T`.
///
/// Ranges must not overlap; insertion order is irrelevant. Lookup is binary
/// search over ranges sorted by base.
pub struct AddressMap<T> {
    entries: Vec<(AddrRange, T)>,
}

impl<T> Default for AddressMap<T> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T> AddressMap<T> {
    /// Empty map.
    pub fn new() -> Self {
        AddressMap {
            entries: Vec::new(),
        }
    }

    /// Number of mapped ranges.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True if no ranges are mapped.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Insert a range → target mapping. Panics if it overlaps an existing
    /// range (decode conflicts are configuration bugs and must be loud).
    pub fn insert(&mut self, range: AddrRange, target: T) {
        for (existing, _) in &self.entries {
            assert!(
                !existing.overlaps(&range),
                "AddressMap overlap: {existing:?} vs {range:?}"
            );
        }
        let pos = self.entries.partition_point(|(r, _)| r.base < range.base);
        self.entries.insert(pos, (range, target));
    }

    /// Find the range containing `addr`, returning the range and target.
    pub fn decode(&self, addr: u64) -> Option<(&AddrRange, &T)> {
        let idx = self.entries.partition_point(|(r, _)| r.base <= addr);
        if idx == 0 {
            return None;
        }
        let (r, t) = &self.entries[idx - 1];
        r.contains(addr).then_some((r, t))
    }

    /// Like [`decode`](Self::decode) but requires the whole `[addr, addr+len)`
    /// span to fall inside one range (no split transactions).
    pub fn decode_span(&self, addr: u64, len: u64) -> Option<(&AddrRange, &T)> {
        let (r, t) = self.decode(addr)?;
        r.contains_span(addr, len).then_some((r, t))
    }

    /// Iterate over `(range, target)` pairs in base order.
    pub fn iter(&self) -> impl Iterator<Item = (&AddrRange, &T)> {
        self.entries.iter().map(|(r, t)| (r, t))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn range_basics() {
        let r = AddrRange::new(0x1000, 0x100);
        assert!(r.contains(0x1000));
        assert!(r.contains(0x10ff));
        assert!(!r.contains(0x1100));
        assert_eq!(r.offset_of(0x1080), 0x80);
        assert!(r.contains_span(0x10f0, 0x10));
        assert!(!r.contains_span(0x10f0, 0x11));
        assert!(!r.contains_span(0x1000, 0));
    }

    #[test]
    fn overlap_detection() {
        let a = AddrRange::new(0, 100);
        let b = AddrRange::new(100, 100);
        let c = AddrRange::new(50, 100);
        assert!(!a.overlaps(&b));
        assert!(a.overlaps(&c));
        assert!(c.overlaps(&b));
    }

    #[test]
    fn map_decode() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x0, 0x1000), "low");
        m.insert(AddrRange::new(0x8000, 0x1000), "high");
        m.insert(AddrRange::new(0x2000, 0x1000), "mid");
        assert_eq!(m.decode(0x0).unwrap().1, &"low");
        assert_eq!(m.decode(0x2fff).unwrap().1, &"mid");
        assert_eq!(m.decode(0x8000).unwrap().1, &"high");
        assert!(m.decode(0x1000).is_none());
        assert!(m.decode(0x9000).is_none());
        assert_eq!(m.len(), 3);
    }

    #[test]
    fn decode_span_rejects_straddle() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x0, 0x1000), 1u32);
        m.insert(AddrRange::new(0x1000, 0x1000), 2u32);
        // Span crossing the boundary decodes the first range but fails span
        // containment.
        assert!(m.decode_span(0xff0, 0x20).is_none());
        assert!(m.decode_span(0xff0, 0x10).is_some());
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn map_rejects_overlap() {
        let mut m = AddressMap::new();
        m.insert(AddrRange::new(0x0, 0x1000), ());
        m.insert(AddrRange::new(0x800, 0x1000), ());
    }
}
