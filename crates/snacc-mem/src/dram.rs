//! Off-chip DRAM channel model.
//!
//! The Alveo U280's TaPaSCo shell exposes a single DDR4 memory controller
//! (the paper notes this limitation explicitly in Sec 5.2). DDR data buses
//! are half-duplex: switching between reads and writes costs a turnaround
//! penalty, and under the on-board-DRAM streamer the ingress stream *writes*
//! while the NVMe controller *reads* the same channel, so the bus ping-pongs.
//! That is the mechanism behind the paper's reduced 4.6–4.8 GB/s on-board
//! write bandwidth, and it is what this model reproduces.

use crate::segment::SegmentMemory;
use snacc_sim::bytes::Payload;
use snacc_sim::stats::Counter;
use snacc_sim::{Bandwidth, SharedLink, SimDuration, SimTime};

/// Direction of a memory access.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum MemDir {
    /// Data flows out of the memory.
    Read,
    /// Data flows into the memory.
    Write,
}

/// DRAM channel parameters.
#[derive(Clone, Debug)]
pub struct DramConfig {
    /// Peak data-bus bandwidth.
    pub bandwidth: Bandwidth,
    /// Fixed access latency (activate + CAS + controller pipeline).
    pub access_latency: SimDuration,
    /// Bus turnaround penalty paid when the access direction flips.
    pub turnaround: SimDuration,
    /// Per-burst command overhead.
    pub burst_overhead: SimDuration,
    /// Maximum burst size; larger accesses are split into bursts of this
    /// size (the paper's streamer combines NVMe-controller beats into 4 KiB
    /// bursts, Sec 4.3).
    pub burst_bytes: u64,
}

impl DramConfig {
    /// One DDR4-2400 72-bit channel as found on the Alveo U280 shell.
    pub fn ddr4_u280() -> Self {
        DramConfig {
            bandwidth: Bandwidth::gb_per_s(19.2),
            access_latency: SimDuration::from_ns(110),
            turnaround: SimDuration::from_ns(30),
            burst_overhead: SimDuration::from_ns(5),
            burst_bytes: 4096,
        }
    }
}

/// A single DRAM channel: functional segment store + half-duplex timing.
pub struct DramController {
    cfg: DramConfig,
    store: SegmentMemory,
    bus: SharedLink,
    last_dir: Option<MemDir>,
    direction_switches: Counter,
    reads: Counter,
    writes: Counter,
}

impl DramController {
    /// Create a channel with the given config.
    pub fn new(name: impl Into<String>, cfg: DramConfig) -> Self {
        let bus = SharedLink::new(name, cfg.bandwidth, SimDuration::ZERO);
        DramController {
            cfg,
            store: SegmentMemory::new(),
            bus,
            last_dir: None,
            direction_switches: Counter::new(),
            reads: Counter::new(),
            writes: Counter::new(),
        }
    }

    /// The channel configuration.
    pub fn config(&self) -> &DramConfig {
        &self.cfg
    }

    /// Number of read accesses served.
    pub fn reads(&self) -> u64 {
        self.reads.get()
    }

    /// Number of write accesses served.
    pub fn writes(&self) -> u64 {
        self.writes.get()
    }

    /// Number of bus-direction switches incurred.
    pub fn direction_switches(&self) -> u64 {
        self.direction_switches.get()
    }

    /// Total bytes moved over the data bus.
    pub fn bytes_transferred(&self) -> u64 {
        self.bus.bytes_transferred()
    }

    /// Direct functional access to the backing store (no timing) — used by
    /// initialisation code and by tests that verify datapath integrity.
    pub fn store_mut(&mut self) -> &mut SegmentMemory {
        &mut self.store
    }

    /// Book bus time for an access of `bytes` in direction `dir`, starting
    /// no earlier than `now`. Returns the completion time (when the last
    /// byte is available / absorbed). This is the timing half; the
    /// functional half is done by [`read`](Self::read) /
    /// [`write`](Self::write) which call it.
    pub fn access(&mut self, now: SimTime, dir: MemDir, bytes: u64) -> SimTime {
        match dir {
            MemDir::Read => self.reads.inc(),
            MemDir::Write => self.writes.inc(),
        }
        let mut penalty = SimDuration::ZERO;
        if let Some(last) = self.last_dir {
            if last != dir {
                penalty += self.cfg.turnaround;
                self.direction_switches.inc();
            }
        }
        self.last_dir = Some(dir);
        // Split into bursts: each pays command overhead; the data occupies
        // the bus back-to-back.
        let bursts = snacc_sim::ceil_div(bytes.max(1), self.cfg.burst_bytes);
        let overhead = penalty + self.cfg.burst_overhead * bursts;
        let bus_done = self.bus.transfer_with_overhead(now, bytes, overhead);
        bus_done + self.cfg.access_latency
    }

    /// Timed + functional write.
    pub fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        self.store.write(addr, data);
        self.access(now, MemDir::Write, data.len() as u64)
    }

    /// Timed + functional read.
    pub fn read(&mut self, now: SimTime, addr: u64, out: &mut [u8]) -> SimTime {
        self.store.read(addr, out);
        self.access(now, MemDir::Read, out.len() as u64)
    }

    /// Timed + functional zero-copy write: the store retains the payload
    /// window; timing is identical to [`write`](Self::write).
    pub fn write_payload(&mut self, now: SimTime, addr: u64, data: Payload) -> SimTime {
        let len = data.len() as u64;
        self.store.write_payload(addr, data);
        self.access(now, MemDir::Write, len)
    }

    /// Timed + functional zero-copy read: returns the stored bytes as a
    /// payload view; timing is identical to [`read`](Self::read).
    pub fn read_payload(&mut self, now: SimTime, addr: u64, len: usize) -> (Payload, SimTime) {
        let p = self.store.read_payload(addr, len);
        (p, self.access(now, MemDir::Read, len as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn quick_cfg() -> DramConfig {
        DramConfig {
            bandwidth: Bandwidth::gb_per_s(1.0), // 1 B/ns, easy math
            access_latency: SimDuration::from_ns(100),
            turnaround: SimDuration::from_ns(50),
            burst_overhead: SimDuration::from_ns(10),
            burst_bytes: 1000,
        }
    }

    #[test]
    fn functional_roundtrip() {
        let mut d = DramController::new("dram", DramConfig::ddr4_u280());
        let data: Vec<u8> = (0..100).collect();
        d.write(SimTime::ZERO, 0x10_0000, &data);
        let mut out = vec![0u8; 100];
        d.read(SimTime::ZERO, 0x10_0000, &mut out);
        assert_eq!(out, data);
    }

    #[test]
    fn same_direction_no_turnaround() {
        let mut d = DramController::new("dram", quick_cfg());
        // Two 1000 B writes: each = 10 ns overhead + 1000 ns data.
        let t1 = d.access(SimTime::ZERO, MemDir::Write, 1000);
        assert_eq!(t1.as_ns(), 10 + 1000 + 100);
        let t2 = d.access(SimTime::ZERO, MemDir::Write, 1000);
        assert_eq!(t2.as_ns(), 2 * (10 + 1000) + 100);
        assert_eq!(d.direction_switches(), 0);
    }

    #[test]
    fn direction_switch_pays_turnaround() {
        let mut d = DramController::new("dram", quick_cfg());
        d.access(SimTime::ZERO, MemDir::Write, 1000); // busy till 1010
        let t = d.access(SimTime::ZERO, MemDir::Read, 1000);
        // 1010 + 50 (turnaround) + 10 + 1000 + 100
        assert_eq!(t.as_ns(), 1010 + 50 + 10 + 1000 + 100);
        assert_eq!(d.direction_switches(), 1);
    }

    #[test]
    fn burst_splitting_charges_overhead() {
        let mut d = DramController::new("dram", quick_cfg());
        // 2500 B → 3 bursts → 30 ns overhead + 2500 ns data + 100 latency.
        let t = d.access(SimTime::ZERO, MemDir::Write, 2500);
        assert_eq!(t.as_ns(), 30 + 2500 + 100);
    }

    #[test]
    fn interleaved_traffic_loses_bandwidth() {
        // Ping-pong read/write costs turnarounds that same-direction
        // streams do not pay: the interleaved schedule must finish later.
        let mut a = DramController::new("a", quick_cfg());
        let mut b = DramController::new("b", quick_cfg());
        let mut t_a = SimTime::ZERO;
        for i in 0..100 {
            let dir = if i % 2 == 0 {
                MemDir::Write
            } else {
                MemDir::Read
            };
            t_a = a.access(SimTime::ZERO, dir, 1000);
        }
        let mut t_b = SimTime::ZERO;
        for _ in 0..100 {
            t_b = b.access(SimTime::ZERO, MemDir::Write, 1000);
        }
        assert!(t_a > t_b, "interleaved {t_a} vs streamed {t_b}");
        assert_eq!(a.direction_switches(), 99);
    }

    #[test]
    fn counters_track_ops() {
        let mut d = DramController::new("dram", quick_cfg());
        d.access(SimTime::ZERO, MemDir::Read, 10);
        d.access(SimTime::ZERO, MemDir::Read, 10);
        d.access(SimTime::ZERO, MemDir::Write, 10);
        assert_eq!(d.reads(), 2);
        assert_eq!(d.writes(), 1);
        assert_eq!(d.bytes_transferred(), 30);
    }
}
