//! On-die UltraRAM model.
//!
//! The URAM streamer variant buffers NVMe payload data in 4 MB of on-die
//! UltraRAM (Sec 4.3). URAM blocks are true dual-port: the ingress datapath
//! and the PCIe-facing port can move data concurrently, each at the fabric
//! datapath rate (512 bit × 300 MHz = 19.2 GB/s), with only a few cycles of
//! access latency. URAM is therefore never the bandwidth bottleneck — the
//! paper confirms the 4 MB URAM buffer "poses no limitation on bandwidth
//! compared to the 64 MB DRAM buffer".

use crate::dram::MemDir;
use crate::segment::SegmentMemory;
use snacc_sim::bytes::Payload;
use snacc_sim::{Bandwidth, SharedLink, SimDuration, SimTime};

/// URAM buffer parameters.
#[derive(Clone, Debug)]
pub struct UramConfig {
    /// Buffer capacity in bytes (the paper uses 4 MiB).
    pub capacity: u64,
    /// Per-port bandwidth (512-bit datapath at the memory-controller clock).
    pub port_bandwidth: Bandwidth,
    /// Access latency (a few fabric cycles).
    pub access_latency: SimDuration,
}

impl UramConfig {
    /// The paper's configuration: 4 MiB at 300 MHz × 512 bit.
    pub fn snacc_default() -> Self {
        UramConfig {
            capacity: 4 << 20,
            port_bandwidth: Bandwidth::gb_per_s(19.2),
            access_latency: SimDuration::from_ns(13), // ~4 cycles @300 MHz
        }
    }
}

/// A dual-ported URAM buffer: independent read and write ports over one
/// functional store.
pub struct UramModel {
    cfg: UramConfig,
    store: SegmentMemory,
    read_port: SharedLink,
    write_port: SharedLink,
}

impl UramModel {
    /// Create a URAM buffer.
    pub fn new(name: &str, cfg: UramConfig) -> Self {
        let read_port =
            SharedLink::new(format!("{name}.rd"), cfg.port_bandwidth, cfg.access_latency);
        let write_port =
            SharedLink::new(format!("{name}.wr"), cfg.port_bandwidth, cfg.access_latency);
        UramModel {
            cfg,
            store: SegmentMemory::new(),
            read_port,
            write_port,
        }
    }

    /// Buffer capacity in bytes.
    pub fn capacity(&self) -> u64 {
        self.cfg.capacity
    }

    /// Total bytes read out of the buffer.
    pub fn bytes_read(&self) -> u64 {
        self.read_port.bytes_transferred()
    }

    /// Total bytes written into the buffer.
    pub fn bytes_written(&self) -> u64 {
        self.write_port.bytes_transferred()
    }

    /// Direct functional access (no timing).
    pub fn store_mut(&mut self) -> &mut SegmentMemory {
        &mut self.store
    }

    fn check_bounds(&self, addr: u64, len: u64) {
        assert!(
            addr + len <= self.cfg.capacity,
            "URAM access out of bounds: {:#x}+{} > {:#x}",
            addr,
            len,
            self.cfg.capacity
        );
    }

    /// Timing-only port booking (functional half handled separately when
    /// the caller moves bytes itself).
    pub fn access(&mut self, now: SimTime, dir: MemDir, addr: u64, bytes: u64) -> SimTime {
        self.check_bounds(addr, bytes);
        match dir {
            MemDir::Read => self.read_port.transfer(now, bytes),
            MemDir::Write => self.write_port.transfer(now, bytes),
        }
    }

    /// Timed + functional write.
    pub fn write(&mut self, now: SimTime, addr: u64, data: &[u8]) -> SimTime {
        self.check_bounds(addr, data.len() as u64);
        self.store.write(addr, data);
        self.write_port.transfer(now, data.len() as u64)
    }

    /// Timed + functional read.
    pub fn read(&mut self, now: SimTime, addr: u64, out: &mut [u8]) -> SimTime {
        self.check_bounds(addr, out.len() as u64);
        self.store.read(addr, out);
        self.read_port.transfer(now, out.len() as u64)
    }

    /// Timed + functional zero-copy write: the store retains the payload
    /// window; timing is identical to [`write`](Self::write).
    pub fn write_payload(&mut self, now: SimTime, addr: u64, data: Payload) -> SimTime {
        let len = data.len() as u64;
        self.check_bounds(addr, len);
        self.store.write_payload(addr, data);
        self.write_port.transfer(now, len)
    }

    /// Timed + functional zero-copy read: returns the stored bytes as a
    /// payload view; timing is identical to [`read`](Self::read).
    pub fn read_payload(&mut self, now: SimTime, addr: u64, len: usize) -> (Payload, SimTime) {
        self.check_bounds(addr, len as u64);
        let p = self.store.read_payload(addr, len);
        (p, self.read_port.transfer(now, len as u64))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> UramModel {
        UramModel::new("uram", UramConfig::snacc_default())
    }

    #[test]
    fn roundtrip() {
        let mut u = model();
        u.write(SimTime::ZERO, 4096, b"payload");
        let mut out = [0u8; 7];
        u.read(SimTime::ZERO, 4096, &mut out);
        assert_eq!(&out, b"payload");
    }

    #[test]
    fn dual_port_concurrency() {
        // A read and a write at the same instant do not serialise against
        // each other (separate ports).
        let mut u = model();
        let n = 1 << 20; // 1 MiB
        let w_done = u.access(SimTime::ZERO, MemDir::Write, 0, n);
        let r_done = u.access(SimTime::ZERO, MemDir::Read, 0, n);
        assert_eq!(w_done, r_done);
        // But two reads do serialise.
        let r2 = u.access(SimTime::ZERO, MemDir::Read, 0, n);
        assert!(r2 > r_done);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn bounds_enforced() {
        let mut u = model();
        u.access(SimTime::ZERO, MemDir::Read, (4 << 20) - 10, 11);
    }

    #[test]
    fn bandwidth_is_fabric_rate() {
        let mut u = model();
        let n: u64 = 192_000; // bytes
        let done = u.access(SimTime::ZERO, MemDir::Read, 0, n);
        // 19.2 GB/s → 10 µs for 192 kB (+13 ns latency).
        let expect_ns = 10_000 + 13;
        assert_eq!(done.as_ns(), expect_ns);
    }

    #[test]
    fn meters_accumulate() {
        let mut u = model();
        u.write(SimTime::ZERO, 0, &[0u8; 100]);
        let mut buf = [0u8; 50];
        u.read(SimTime::ZERO, 0, &mut buf);
        assert_eq!(u.bytes_written(), 100);
        assert_eq!(u.bytes_read(), 50);
    }
}
