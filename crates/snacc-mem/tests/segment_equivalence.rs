//! Property tests: [`SegmentMemory`] is byte-equivalent to the
//! page-materialising [`SparseMemory`] under arbitrary write / read /
//! overwrite / span / fill / copy sequences — the segment store is a pure
//! representation change (zero-copy windows + CoW coalescing) and must
//! never alter what a read returns. Also checks that `resident_pages` is
//! monotone while no `clear` happens (coverage only ever grows).

use proptest::prelude::*;
use snacc_mem::{SegmentMemory, SparseMemory};
use snacc_sim::bytes::Payload;

/// Keep the models inside a small address space so random ops overlap
/// and straddle each other often.
const SPACE: u64 = 1 << 15;

fn apply(seg: &mut SegmentMemory, sparse: &mut SparseMemory, op: [u64; 4]) {
    let [sel, a, l, s] = op;
    let addr = a % SPACE;
    let len = 1 + l % 5000;
    match sel % 6 {
        0 => {
            // Byte write of deterministic junk.
            let data: Vec<u8> = (0..len).map(|i| (s ^ i) as u8).collect();
            seg.write(addr, &data);
            sparse.write(addr, &data);
        }
        1 => {
            // Zero-copy payload write of a lazy pattern window.
            let p = Payload::pattern(s, len as usize);
            seg.write_payload(addr, p.clone());
            sparse.write(addr, p.as_slice());
        }
        2 => {
            // A slice of a shared backing (windows that may re-join).
            let big = Payload::pattern(s, 8192);
            let from = (a % 4096) as usize;
            let to = from + (len as usize).min(8192 - from);
            seg.write_payload(addr, big.slice(from..to));
            sparse.write(addr, &big.as_slice()[from..to]);
        }
        3 => {
            // Lazy fill vs materialised fill.
            let byte = s as u8;
            seg.fill(addr, len, byte);
            sparse.write(addr, &vec![byte; len as usize]);
        }
        4 => {
            // Zero-copy intra-store copy vs read+write.
            let dst = s % SPACE;
            seg.copy_within(addr, dst, len as usize);
            let bytes = sparse.read_vec(addr, len as usize);
            sparse.write(dst, &bytes);
        }
        _ => {
            // Scalar writes.
            seg.write_u64(addr, s);
            sparse.write_u64(addr, s);
        }
    }
}

proptest! {
    /// Same bytes out under arbitrary op sequences, through every read
    /// path, and `resident_pages` never shrinks.
    #[test]
    fn segment_store_matches_byte_store(
        ops in proptest::collection::vec(any::<[u64; 4]>(), 1..32),
        probes in proptest::collection::vec(any::<[u64; 2]>(), 1..8),
    ) {
        let mut seg = SegmentMemory::new();
        let mut sparse = SparseMemory::new();
        let mut pages_before = 0usize;
        for op in ops {
            apply(&mut seg, &mut sparse, op);
            let pages = seg.resident_pages();
            prop_assert!(
                pages >= pages_before,
                "resident_pages shrank: {} -> {}", pages_before, pages
            );
            pages_before = pages;
        }
        for [a, l] in probes {
            let addr = a % (SPACE + 4096); // probe past the write space too
            let len = (l % 9000) as usize;
            let want = sparse.read_vec(addr, len);
            // Byte path.
            prop_assert_eq!(&seg.read_vec(addr, len), &want);
            // Zero-copy single-payload path.
            let p = seg.read_payload(addr, len);
            prop_assert_eq!(p.as_slice(), &want[..]);
            // Zero-copy parts path: parts tile the span exactly.
            let parts = seg.read_payload_parts(addr, len);
            let mut flat = Vec::with_capacity(len);
            for p in &parts {
                flat.extend_from_slice(p.as_slice());
            }
            prop_assert_eq!(&flat, &want);
        }
    }

    /// Interleaved tiny writes trip CoW coalescing without changing any
    /// byte; fragmentation stays bounded per window.
    #[test]
    fn coalescing_preserves_bytes(
        writes in proptest::collection::vec(any::<[u64; 2]>(), 80..200),
    ) {
        let mut seg = SegmentMemory::new();
        let mut sparse = SparseMemory::new();
        for [a, s] in &writes {
            // Dense tiny writes inside one 1 MiB window.
            let addr = a % (1 << 20);
            let data = [(s & 0xff) as u8; 48];
            seg.write(addr, &data);
            sparse.write(addr, &data);
        }
        prop_assert!(
            seg.segment_count() <= snacc_mem::segment::COALESCE_SEGS + 2,
            "window fragmentation unbounded: {} segments", seg.segment_count()
        );
        let want = sparse.read_vec(0, 1 << 20);
        prop_assert_eq!(seg.read_vec(0, 1 << 20), want);
    }
}
