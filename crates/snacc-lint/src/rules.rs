//! The SL rule catalog and the line/token scanner that applies it.
//!
//! Matching runs over *sanitized* source: comments and string/char
//! literals are blanked first (so a lint ID mentioned in a doc comment
//! never fires), and `#[cfg(test)]` regions are masked for the rules
//! where test code is legitimately exempt (SL004/SL005 — tests may
//! assert on raw picosecond values and use `expect` freely).

use crate::Violation;

/// Catalog metadata for one rule.
#[derive(Clone, Copy, Debug)]
pub struct RuleInfo {
    /// Stable ID (`SLxxx`).
    pub id: &'static str,
    /// One-line invariant statement.
    pub summary: &'static str,
    /// Where the rule applies.
    pub scope: &'static str,
}

/// The stable rule catalog. IDs are a contract: never renumber.
pub const RULES: &[RuleInfo] = &[
    RuleInfo {
        id: "SL001",
        summary: "no wall-clock time (Instant/SystemTime) — simulations must be bit-deterministic",
        scope: "all simulation crates (everything except snacc-bench and snacc-lint)",
    },
    RuleInfo {
        id: "SL002",
        summary: "no unseeded randomness (thread_rng/rand::random/from_entropy) — all randomness flows through snacc_sim::rng::SimRng",
        scope: "everywhere except crates/snacc-sim/src/rng.rs",
    },
    RuleInfo {
        id: "SL003",
        summary: "no threads/locks/atomics in single-threaded DES crates; rayon only in snacc-bench",
        scope: "all simulation crates (everything except snacc-bench and snacc-lint)",
    },
    RuleInfo {
        id: "SL004",
        summary: "no panic paths (unwrap/expect/panic!/assert!) in wire-decode modules — decoding returns Result",
        scope: "snacc-nvme spec.rs + prp.rs, snacc-net frame.rs (non-test code)",
    },
    RuleInfo {
        id: "SL005",
        summary: "no raw u64 picosecond arithmetic — time math goes through SimTime/SimDuration",
        scope: "everywhere outside snacc-sim (non-test code)",
    },
    RuleInfo {
        id: "SL006",
        summary: "no RefCell borrow guard held across an Engine::schedule call (borrow-across-event hazard)",
        scope: "all simulation crates (everything except snacc-bench and snacc-lint)",
    },
    RuleInfo {
        id: "SL007",
        summary: "no println!/eprintln! in model crates — observability goes through snacc-trace",
        scope: "all simulation crates (non-test code; tests/examples exempt)",
    },
    RuleInfo {
        id: "SL008",
        summary: "no .to_vec()/.clone() on payload buffers (`data`/`payload`) in model-crate hot paths — share snacc_sim::Payload windows; in the functional-media layer (snacc-mem, nand.rs) ANY .to_vec()/copy_from_slice() byte materialisation is flagged",
        scope: "all simulation crates (non-test code; tests/examples exempt)",
    },
];

/// Functional-media files where the zero-copy discipline is strict: the
/// segment store keeps written payload windows as metadata, so *any* byte
/// materialisation here (not just on `data`/`payload` receivers) defeats
/// the design and must be triaged in `lint-allow.toml`.
const MEDIA_STRICT: &[&str] = &["crates/snacc-mem/", "crates/snacc-nvme/src/nand.rs"];

/// Wire-decode modules subject to SL004.
const DECODE_MODULES: &[&str] = &[
    "crates/snacc-nvme/src/spec.rs",
    "crates/snacc-nvme/src/prp.rs",
    "crates/snacc-net/src/frame.rs",
];

/// Crate name a workspace-relative path belongs to (the root package is
/// `snacc`).
fn crate_of(rel_path: &str) -> &str {
    rel_path
        .strip_prefix("crates/")
        .and_then(|rest| rest.split('/').next())
        .unwrap_or("snacc")
}

/// Crates that are part of the single-threaded deterministic simulation.
/// `snacc-bench` is the wall-clock measurement harness; `snacc-lint` is
/// host tooling.
fn is_sim_crate(krate: &str) -> bool {
    krate != "snacc-bench" && krate != "snacc-lint"
}

/// Blank comments and string/char literals, preserving line structure.
fn sanitize(source: &str) -> String {
    let b = source.as_bytes();
    let mut out = vec![b' '; b.len()];
    let mut i = 0;
    // Keep newlines so line numbers survive masking.
    for (idx, &ch) in b.iter().enumerate() {
        if ch == b'\n' {
            out[idx] = b'\n';
        }
    }
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    while i < b.len() {
        let c = b[i];
        // Line comment.
        if c == b'/' && b.get(i + 1) == Some(&b'/') {
            while i < b.len() && b[i] != b'\n' {
                i += 1;
            }
            continue;
        }
        // Block comment (nested).
        if c == b'/' && b.get(i + 1) == Some(&b'*') {
            let mut depth = 1;
            i += 2;
            while i < b.len() && depth > 0 {
                if b[i] == b'/' && b.get(i + 1) == Some(&b'*') {
                    depth += 1;
                    i += 2;
                } else if b[i] == b'*' && b.get(i + 1) == Some(&b'/') {
                    depth -= 1;
                    i += 2;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Raw (byte) string: r"..." / r#"..."# / br#"..."#.
        if (c == b'r' || c == b'b') && (i == 0 || !is_ident(b[i - 1])) {
            let mut j = i;
            if b[j] == b'b' && b.get(j + 1) == Some(&b'r') {
                j += 1;
            }
            if b[j] == b'r' {
                let mut k = j + 1;
                while b.get(k) == Some(&b'#') {
                    k += 1;
                }
                if b.get(k) == Some(&b'"') {
                    let hashes = k - (j + 1);
                    let closer: Vec<u8> = std::iter::once(b'"')
                        .chain(std::iter::repeat_n(b'#', hashes))
                        .collect();
                    let mut m = k + 1;
                    while m < b.len() && !b[m..].starts_with(&closer) {
                        m += 1;
                    }
                    i = (m + closer.len()).min(b.len());
                    continue;
                }
            }
        }
        // Plain (byte) string.
        if c == b'"'
            || (c == b'b' && b.get(i + 1) == Some(&b'"') && (i == 0 || !is_ident(b[i - 1])))
        {
            if c == b'b' {
                i += 1;
            }
            i += 1; // opening quote
            while i < b.len() {
                if b[i] == b'\\' {
                    i += 2;
                } else if b[i] == b'"' {
                    i += 1;
                    break;
                } else {
                    i += 1;
                }
            }
            continue;
        }
        // Char literal vs lifetime.
        if c == b'\'' {
            if b.get(i + 1) == Some(&b'\\') {
                i += 2;
                while i < b.len() && b[i] != b'\'' {
                    i += 1;
                }
                i += 1;
                continue;
            }
            if b.get(i + 2) == Some(&b'\'') {
                i += 3;
                continue;
            }
            // Lifetime: keep the tick, fall through.
        }
        out[i] = c;
        i += 1;
    }
    // SAFETY-free conversion: `out` only contains ASCII substitutions of
    // a valid UTF-8 buffer at char boundaries, but masked multi-byte
    // chars become spaces byte-by-byte, which is still valid UTF-8
    // because every masked byte is replaced by b' '.
    String::from_utf8(out).unwrap_or_default()
}

/// Mark lines inside `#[cfg(test)]`-gated items (attr line through the
/// end of the item's brace block, or the terminating `;` for braceless
/// items).
fn test_mask(lines: &[&str]) -> Vec<bool> {
    let mut mask = vec![false; lines.len()];
    let mut i = 0;
    while i < lines.len() {
        if !lines[i].contains("#[cfg(test)]") {
            i += 1;
            continue;
        }
        mask[i] = true;
        let mut depth: i32 = 0;
        let mut opened = false;
        let mut j = i + 1;
        // Include the attr line itself if the item starts on it.
        let mut scan = vec![i];
        scan.extend(j..lines.len());
        for &k in &scan {
            if k != i {
                mask[k] = true;
            }
            for ch in lines[k].chars() {
                match ch {
                    '{' => {
                        depth += 1;
                        opened = true;
                    }
                    '}' => depth -= 1,
                    ';' if !opened && k != i => {
                        // Braceless gated item (e.g. `#[cfg(test)] use ..;`).
                        depth = 0;
                        opened = true;
                        break;
                    }
                    _ => {}
                }
            }
            if opened && depth <= 0 {
                j = k + 1;
                break;
            }
            j = k + 1;
        }
        i = j;
    }
    mask
}

fn find_ident(line: &str, ident: &str) -> bool {
    let b = line.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(ident) {
        let at = start + pos;
        let before_ok = at == 0 || !is_ident(b[at - 1]);
        let end = at + ident.len();
        let after_ok = end >= b.len() || !is_ident(b[end]);
        if before_ok && after_ok {
            return true;
        }
        start = at + 1;
    }
    false
}

/// True when the line contains an identifier ending in `_ps` (raw
/// picosecond variable/function naming convention).
fn has_ps_suffix_ident(line: &str) -> bool {
    let b = line.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0;
    while let Some(pos) = line[start..].find("_ps") {
        let at = start + pos;
        let end = at + 3;
        if end >= b.len() || !is_ident(b[end]) {
            return true;
        }
        start = at + 1;
    }
    false
}

struct FileCtx<'a> {
    rel_path: &'a str,
    krate: &'a str,
    raw_lines: Vec<&'a str>,
    clean_lines: Vec<String>,
    in_test: Vec<bool>,
    in_test_dir: bool,
}

impl FileCtx<'_> {
    fn violation(&self, rule: &'static str, line_idx: usize, message: String) -> Violation {
        Violation {
            rule,
            path: self.rel_path.to_string(),
            line: line_idx + 1,
            message,
            snippet: self.raw_lines[line_idx].trim().to_string(),
        }
    }
}

/// Scan one file's source. `rel_path` is workspace-relative with
/// forward slashes; it determines which rules apply.
pub fn scan_source(rel_path: &str, source: &str) -> Vec<Violation> {
    let clean = sanitize(source);
    let clean_lines: Vec<String> = clean.lines().map(|l| l.to_string()).collect();
    let clean_refs: Vec<&str> = clean_lines.iter().map(|s| s.as_str()).collect();
    let ctx = FileCtx {
        rel_path,
        krate: crate_of(rel_path),
        raw_lines: source.lines().collect(),
        in_test: test_mask(&clean_refs),
        clean_lines,
        in_test_dir: rel_path.contains("/tests/")
            || rel_path.contains("/benches/")
            || rel_path.starts_with("tests/")
            || rel_path.starts_with("examples/")
            || rel_path.contains("/examples/"),
    };
    let mut out = Vec::new();
    sl001(&ctx, &mut out);
    sl002(&ctx, &mut out);
    sl003(&ctx, &mut out);
    sl004(&ctx, &mut out);
    sl005(&ctx, &mut out);
    sl006(&ctx, &mut out);
    sl007(&ctx, &mut out);
    sl008(&ctx, &mut out);
    out
}

fn sl001(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !is_sim_crate(ctx.krate) {
        return;
    }
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        for ident in ["Instant", "SystemTime", "UNIX_EPOCH"] {
            if find_ident(line, ident) {
                out.push(ctx.violation(
                    "SL001",
                    i,
                    format!(
                        "wall-clock `{ident}` in simulation crate; use snacc_sim::time::SimTime"
                    ),
                ));
                break;
            }
        }
    }
}

fn sl002(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if ctx.rel_path == "crates/snacc-sim/src/rng.rs" {
        return;
    }
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        if find_ident(line, "thread_rng")
            || find_ident(line, "from_entropy")
            || line.contains("rand::random")
        {
            out.push(
                ctx.violation(
                    "SL002",
                    i,
                    "unseeded randomness; draw from a seeded snacc_sim::rng::SimRng instead"
                        .to_string(),
                ),
            );
        }
    }
}

fn sl003(ctx: &FileCtx, out: &mut Vec<Violation>) {
    const SYNC_IDENTS: &[&str] = &[
        "Mutex",
        "RwLock",
        "Condvar",
        "Barrier",
        "AtomicBool",
        "AtomicU8",
        "AtomicU16",
        "AtomicU32",
        "AtomicU64",
        "AtomicUsize",
        "AtomicI8",
        "AtomicI16",
        "AtomicI32",
        "AtomicI64",
        "AtomicIsize",
        "AtomicPtr",
    ];
    let des = is_sim_crate(ctx.krate);
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        if des {
            if line.contains("std::thread") || line.contains("thread::spawn") {
                out.push(ctx.violation(
                    "SL003",
                    i,
                    "OS threads in a single-threaded DES crate".to_string(),
                ));
                continue;
            }
            if let Some(ident) = SYNC_IDENTS.iter().find(|id| find_ident(line, id)) {
                out.push(ctx.violation(
                    "SL003",
                    i,
                    format!("`{ident}` in a single-threaded DES crate; use Rc<RefCell<_>>"),
                ));
                continue;
            }
        }
        if ctx.krate != "snacc-bench" && find_ident(line, "rayon") {
            out.push(ctx.violation(
                "SL003",
                i,
                "rayon is only permitted in snacc-bench (the measurement harness)".to_string(),
            ));
        }
    }
}

fn sl004(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !DECODE_MODULES.contains(&ctx.rel_path) {
        return;
    }
    const PANIC_TOKENS: &[&str] = &[
        ".unwrap(",
        ".expect(",
        "panic!",
        "unreachable!",
        "todo!",
        "unimplemented!",
        "debug_assert",
        "assert!",
        "assert_eq!",
        "assert_ne!",
    ];
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        if ctx.in_test[i] {
            continue;
        }
        if let Some(tok) = PANIC_TOKENS.iter().find(|t| line.contains(**t)) {
            out.push(ctx.violation(
                "SL004",
                i,
                format!("panic path `{tok}` in wire-decode module; return Result instead"),
            ));
        }
    }
}

fn sl005(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if ctx.krate == "snacc-sim" {
        return;
    }
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        if ctx.in_test[i] || ctx.in_test_dir {
            continue;
        }
        let hit = if line.contains(".as_ps(") || line.contains("from_ps(") {
            Some("SimDuration ps escape hatch")
        } else if find_ident(line, "PS_PER_NS")
            || find_ident(line, "PS_PER_US")
            || find_ident(line, "PS_PER_MS")
            || find_ident(line, "PS_PER_SEC")
        {
            Some("raw ps unit constant")
        } else if has_ps_suffix_ident(line) {
            Some("`_ps`-suffixed raw picosecond identifier")
        } else {
            None
        };
        if let Some(what) = hit {
            out.push(ctx.violation(
                "SL005",
                i,
                format!("{what} outside snacc-sim; keep time math in SimTime/SimDuration"),
            ));
        }
    }
}

fn sl006(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !is_sim_crate(ctx.krate) {
        return;
    }
    struct Guard {
        name: String,
        depth: i32,
        line: usize,
    }
    const SCHEDULE_TOKENS: &[&str] = &[
        "schedule_at(",
        "schedule_in(",
        "schedule_now(",
        ".schedule(",
    ];
    let mut depth: i32 = 0;
    let mut guards: Vec<Guard> = Vec::new();
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        let trimmed = line.trim();
        // Flag schedule calls first: guards created on earlier lines are
        // still live here.
        if SCHEDULE_TOKENS.iter().any(|t| line.contains(t)) {
            if let Some(g) = guards.last() {
                out.push(ctx.violation(
                    "SL006",
                    i,
                    format!(
                        "RefCell guard `{}` (bound at line {}) is still live across this \
                         Engine::schedule call; end the borrow first",
                        g.name,
                        g.line + 1
                    ),
                ));
            }
        }
        // New guard binding: `let [mut] name = ....borrow[_mut]();`
        if (trimmed.ends_with(".borrow();") || trimmed.ends_with(".borrow_mut();"))
            && !trimmed.starts_with("if ")
            && !trimmed.starts_with("while ")
        {
            if let Some(rest) = trimmed.strip_prefix("let ") {
                let rest = rest.strip_prefix("mut ").unwrap_or(rest);
                let name: String = rest
                    .chars()
                    .take_while(|c| c.is_ascii_alphanumeric() || *c == '_')
                    .collect();
                if !name.is_empty() && !name.starts_with('_') {
                    guards.push(Guard {
                        name,
                        depth,
                        line: i,
                    });
                }
            }
        }
        // Explicit drop ends a guard.
        guards.retain(|g| !line.contains(&format!("drop({})", g.name)));
        // Apply brace deltas, then expire guards whose scope closed.
        for ch in line.chars() {
            match ch {
                '{' => depth += 1,
                '}' => depth -= 1,
                _ => {}
            }
        }
        guards.retain(|g| depth >= g.depth);
    }
}

/// True when `line` contains `token` not preceded by an identifier
/// character (so `println!` inside `eprintln!` does not double-match).
fn find_macro_token(line: &str, token: &str) -> bool {
    let b = line.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(token) {
        let at = start + pos;
        if at == 0 || !is_ident(b[at - 1]) {
            return true;
        }
        start = at + 1;
    }
    false
}

fn sl007(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !is_sim_crate(ctx.krate) {
        return;
    }
    const PRINT_TOKENS: &[&str] = &["println!", "eprintln!", "print!", "eprint!"];
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        if ctx.in_test[i] || ctx.in_test_dir {
            continue;
        }
        if let Some(tok) = PRINT_TOKENS.iter().find(|t| find_macro_token(line, t)) {
            out.push(ctx.violation(
                "SL007",
                i,
                format!("`{tok}` in a model crate; emit a snacc-trace span/instant/metric instead"),
            ));
        }
    }
}

/// If `line` applies `op` to a receiver whose final path segment is a
/// payload-buffer name, return that name. The receiver must end exactly
/// in the buffer identifier (`beat.data`, `frame.payload`, bare
/// `payload`) — `frame_payload` or `metadata` do not match.
fn payload_receiver(line: &str, op: &str) -> Option<&'static str> {
    const BUFFER_NAMES: &[&str] = &["data", "payload"];
    let b = line.as_bytes();
    let is_ident = |c: u8| c.is_ascii_alphanumeric() || c == b'_';
    let mut start = 0;
    while let Some(pos) = line[start..].find(op) {
        let at = start + pos;
        for name in BUFFER_NAMES {
            if line[..at].ends_with(name) {
                let pre = at - name.len();
                if pre == 0 || !is_ident(b[pre - 1]) {
                    return Some(name);
                }
            }
        }
        start = at + 1;
    }
    None
}

fn sl008(ctx: &FileCtx, out: &mut Vec<Violation>) {
    if !is_sim_crate(ctx.krate) {
        return;
    }
    let strict = MEDIA_STRICT
        .iter()
        .any(|p| ctx.rel_path.starts_with(p) || ctx.rel_path == *p);
    for (i, line) in ctx.clean_lines.iter().enumerate() {
        if ctx.in_test[i] || ctx.in_test_dir {
            continue;
        }
        if strict {
            // Any materialisation in the functional-media layer.
            if let Some(op) = [".to_vec(", "copy_from_slice("]
                .into_iter()
                .find(|op| line.contains(op))
            {
                out.push(ctx.violation(
                    "SL008",
                    i,
                    format!(
                        "`{op})` materialises bytes in the functional-media layer; keep \
                         snacc_sim::Payload windows zero-copy through the segment store \
                         (triage deliberate boundaries in lint-allow.toml)"
                    ),
                ));
                continue;
            }
        }
        for op in [".to_vec(", ".clone("] {
            if let Some(recv) = payload_receiver(line, op) {
                out.push(ctx.violation(
                    "SL008",
                    i,
                    format!(
                        "`{recv}{op})` copies a payload buffer in a model crate; share a \
                         snacc_sim::Payload window (slice/split_at/concat) instead"
                    ),
                ));
                break;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sanitizer_masks_comments_and_strings() {
        let src = "let a = 1; // Instant here\nlet s = \"SystemTime\"; /* Mutex */ let b = 2;\n";
        let clean = sanitize(src);
        assert!(!clean.contains("Instant"));
        assert!(!clean.contains("SystemTime"));
        assert!(!clean.contains("Mutex"));
        assert!(clean.contains("let a = 1;"));
        assert!(clean.contains("let b = 2;"));
        assert_eq!(clean.lines().count(), src.lines().count());
    }

    #[test]
    fn sanitizer_handles_raw_strings_and_chars() {
        let src = "let r = r#\"panic!(\"x\")\"#; let c = '\\n'; let lt: &'static str = x;\n";
        let clean = sanitize(src);
        assert!(!clean.contains("panic!"));
        assert!(clean.contains("'static"));
    }

    #[test]
    fn ident_matching_respects_boundaries() {
        assert!(find_ident("use std::time::Instant;", "Instant"));
        assert!(!find_ident("/// Instantiate the shell", "Instant"));
        assert!(!find_ident("let my_instant_x = 1;", "Instant"));
    }

    #[test]
    fn ps_suffix_matching() {
        assert!(has_ps_suffix_ident("let dur_ps = 5;"));
        assert!(has_ps_suffix_ident("pub fn pause_duration_ps(q: u16)"));
        assert!(!has_ps_suffix_ident("let dur_psec = 5;"));
        assert!(!has_ps_suffix_ident("let duration = 5;"));
    }

    #[test]
    fn test_mask_covers_cfg_test_modules() {
        let src = "fn real() {}\n#[cfg(test)]\nmod tests {\n    fn t() {}\n}\nfn after() {}\n";
        let clean = sanitize(src);
        let lines: Vec<&str> = clean.lines().collect();
        let mask = test_mask(&lines);
        assert_eq!(mask, vec![false, true, true, true, true, false]);
    }

    #[test]
    fn sl001_fires_only_in_sim_crates() {
        let src = "use std::time::Instant;\n";
        let v = scan_source("crates/snacc-core/src/x.rs", src);
        assert_eq!(v.len(), 1);
        assert_eq!(v[0].rule, "SL001");
        assert!(scan_source("crates/snacc-bench/src/x.rs", src).is_empty());
    }

    #[test]
    fn sl006_guard_across_schedule() {
        let src = "\
fn f(&mut self, engine: &mut Engine) {
    let st = self.state.borrow_mut();
    engine.schedule_in(d, move |e| {});
}
";
        let v = scan_source("crates/snacc-core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "SL006");
        assert_eq!(v[0].line, 3);

        let ok = "\
fn f(&mut self, engine: &mut Engine) {
    {
        let st = self.state.borrow_mut();
    }
    engine.schedule_in(d, move |e| {});
    let st2 = self.state.borrow_mut();
    drop(st2);
    engine.schedule_now(move |e| {});
}
";
        assert!(scan_source("crates/snacc-core/src/x.rs", ok).is_empty());
    }

    #[test]
    fn sl004_scope_is_decode_modules_only() {
        let src = "fn d(b: &[u8]) { let x = b.first().unwrap(); }\n";
        assert_eq!(scan_source("crates/snacc-nvme/src/spec.rs", src).len(), 1);
        assert!(scan_source("crates/snacc-nvme/src/queue.rs", src).is_empty());
    }

    #[test]
    fn sl007_print_macros_in_model_crates() {
        let src = "fn f() { println!(\"x\"); eprint!(\"y\"); }\n";
        let v = scan_source("crates/snacc-core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "SL007");
        // Harness crates, tests dirs and examples are exempt.
        assert!(scan_source("crates/snacc-bench/src/x.rs", src).is_empty());
        assert!(scan_source("crates/snacc-core/tests/x.rs", src).is_empty());
        assert!(scan_source("examples/quickstart.rs", src).is_empty());
        // `#[cfg(test)]` regions are exempt too.
        let gated = "#[cfg(test)]\nmod tests {\n    fn t() { println!(\"x\"); }\n}\n";
        assert!(scan_source("crates/snacc-core/src/x.rs", gated).is_empty());
        // `eprintln!` must not double-report as `println!`.
        let e = scan_source(
            "crates/snacc-core/src/x.rs",
            "fn f() { eprintln!(\"x\"); }\n",
        );
        assert_eq!(e.len(), 1);
        assert!(e[0].message.contains("eprintln!"), "{e:?}");
    }

    #[test]
    fn sl008_payload_copies_in_model_crates() {
        let src = "fn f(b: StreamBeat) { let v = b.data.to_vec(); }\n";
        let v = scan_source("crates/snacc-core/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].rule, "SL008");
        let src = "fn f(fr: &EthFrame) { let p = fr.payload.clone(); }\n";
        assert_eq!(scan_source("crates/snacc-net/src/x.rs", src).len(), 1);
        // Bench harness, tests dirs and non-buffer receivers are exempt.
        assert!(scan_source("crates/snacc-bench/src/x.rs", src).is_empty());
        assert!(scan_source("crates/snacc-net/tests/x.rs", src).is_empty());
        let ok = "fn f() { let a = frame_payload.clone(); let b = metadata.to_vec(); }\n";
        assert!(scan_source("crates/snacc-net/src/x.rs", ok).is_empty());
    }

    #[test]
    fn sl005_skips_tests_and_sim_crate() {
        let src = "fn f() { let d_ps = t.as_ps(); }\n#[cfg(test)]\nmod tests {\n    fn t() { let x_ps = 1; }\n}\n";
        let v = scan_source("crates/snacc-net/src/x.rs", src);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v[0].line, 1);
        assert!(scan_source("crates/snacc-sim/src/stats.rs", src).is_empty());
    }
}
