//! CLI for the SNAcc workspace lints.
//!
//! ```text
//! cargo run -p snacc-lint -- check [--json] [--root DIR] [--allow FILE]
//! cargo run -p snacc-lint -- rules
//! ```
//!
//! Exit codes: 0 clean, 1 violations found, 2 usage or I/O error.

use std::path::PathBuf;
use std::process::ExitCode;

use snacc_lint::{parse_allow_file, render_human, run_check, to_json, RULES};

fn usage() -> ExitCode {
    eprintln!(
        "usage: snacc-lint <check|rules> [--json] [--root DIR] [--allow FILE]\n\
         \n\
         check   scan all workspace .rs files against the SL rule catalog\n\
         rules   print the rule catalog\n\
         \n\
         --json        machine-readable report on stdout\n\
         --root DIR    workspace root to scan (default: .)\n\
         --allow FILE  triaged-exception file (default: <root>/lint-allow.toml if present)"
    );
    ExitCode::from(2)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let Some(cmd) = args.first() else {
        return usage();
    };
    match cmd.as_str() {
        "rules" => {
            for r in RULES {
                println!("{}  {}", r.id, r.summary);
                println!("       scope: {}", r.scope);
            }
            ExitCode::SUCCESS
        }
        "check" => {
            let mut json = false;
            let mut root = PathBuf::from(".");
            let mut allow_path: Option<PathBuf> = None;
            let mut it = args[1..].iter();
            while let Some(a) = it.next() {
                match a.as_str() {
                    "--json" => json = true,
                    "--root" => match it.next() {
                        Some(d) => root = PathBuf::from(d),
                        None => return usage(),
                    },
                    "--allow" => match it.next() {
                        Some(f) => allow_path = Some(PathBuf::from(f)),
                        None => return usage(),
                    },
                    _ => return usage(),
                }
            }
            if !root.is_dir() {
                eprintln!("snacc-lint: root `{}` is not a directory", root.display());
                return ExitCode::from(2);
            }
            let allow_file = allow_path.unwrap_or_else(|| root.join("lint-allow.toml"));
            let allow = if allow_file.is_file() {
                let text = match std::fs::read_to_string(&allow_file) {
                    Ok(t) => t,
                    Err(e) => {
                        eprintln!("snacc-lint: cannot read {}: {e}", allow_file.display());
                        return ExitCode::from(2);
                    }
                };
                match parse_allow_file(&text) {
                    Ok(entries) => entries,
                    Err(e) => {
                        eprintln!("snacc-lint: {}: {e}", allow_file.display());
                        return ExitCode::from(2);
                    }
                }
            } else {
                Vec::new()
            };
            match run_check(&root, &allow) {
                Ok(report) => {
                    if json {
                        print!("{}", to_json(&report));
                    } else {
                        print!("{}", render_human(&report));
                    }
                    if report.is_clean() {
                        ExitCode::SUCCESS
                    } else {
                        ExitCode::from(1)
                    }
                }
                Err(e) => {
                    eprintln!("snacc-lint: scan failed: {e}");
                    ExitCode::from(2)
                }
            }
        }
        _ => usage(),
    }
}
