//! `snacc-lint`: workspace-wide static analysis for the SNAcc simulator.
//!
//! The compiler cannot see the properties this reproduction lives or dies
//! by: bit-deterministic discrete-event simulation and panic-free,
//! spec-faithful wire decoding. This crate enforces them as a catalog of
//! domain lints with stable IDs (the contract future PRs are reviewed
//! against):
//!
//! | ID    | Invariant |
//! |-------|-----------|
//! | SL001 | no wall-clock (`Instant`/`SystemTime`) in simulation crates |
//! | SL002 | no unseeded randomness outside `snacc-sim::rng` |
//! | SL003 | no threads/locks/atomics in single-threaded DES crates; `rayon` only in `snacc-bench` |
//! | SL004 | no panic paths (`unwrap`/`expect`/`panic!`/asserts) in wire-decode modules |
//! | SL005 | no raw `u64` picosecond arithmetic outside `snacc-sim` (use `SimTime`/`SimDuration`) |
//! | SL006 | no `RefCell` borrow guard held across an `Engine::schedule` call |
//! | SL007 | no `println!`/`eprintln!` in model crates — observability goes through `snacc-trace` |
//!
//! The analysis is deliberately line/token-level (comments, string
//! literals, and `#[cfg(test)]` modules are masked before matching): it
//! has zero dependencies, runs in milliseconds, and its findings are
//! human-auditable. Triaged exceptions live in a checked-in
//! `lint-allow.toml`, each with a mandatory justification string.

use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

pub mod rules;

pub use rules::{scan_source, RULES};

/// One lint finding.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Violation {
    /// Stable rule ID, e.g. `"SL004"`.
    pub rule: &'static str,
    /// Workspace-relative path with forward slashes.
    pub path: String,
    /// 1-based line number.
    pub line: usize,
    /// Why this is a violation.
    pub message: String,
    /// The offending source line, trimmed.
    pub snippet: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}: {}:{}: {}\n    | {}",
            self.rule, self.path, self.line, self.message, self.snippet
        )
    }
}

/// A triaged exception from `lint-allow.toml`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule ID the exception applies to.
    pub rule: String,
    /// Workspace-relative path the exception applies to.
    pub path: String,
    /// Optional substring the offending line must contain; an empty
    /// pattern matches any line in the file (discouraged — keep
    /// exceptions narrow).
    pub pattern: Option<String>,
    /// Mandatory human rationale. Parsing fails if missing or empty.
    pub justification: String,
}

impl AllowEntry {
    fn matches(&self, v: &Violation) -> bool {
        self.rule == v.rule
            && self.path == v.path
            && self
                .pattern
                .as_deref()
                .map(|p| v.snippet.contains(p))
                .unwrap_or(true)
    }
}

/// Outcome of a full `check` run.
#[derive(Clone, Debug, Default)]
pub struct Report {
    /// Findings that survived the allowlist, sorted by (path, line).
    pub violations: Vec<Violation>,
    /// Findings suppressed by `lint-allow.toml` entries.
    pub suppressed: Vec<(Violation, String)>,
    /// Number of `.rs` files scanned.
    pub files_scanned: usize,
}

impl Report {
    /// True when the tree is clean.
    pub fn is_clean(&self) -> bool {
        self.violations.is_empty()
    }
}

/// Parse `lint-allow.toml` (a small TOML subset: `[[allow]]` array
/// entries with `key = "string"` pairs and `#` comments).
pub fn parse_allow_file(text: &str) -> Result<Vec<AllowEntry>, String> {
    struct Partial {
        rule: Option<String>,
        path: Option<String>,
        pattern: Option<String>,
        justification: Option<String>,
        start_line: usize,
    }

    fn finish(p: Partial) -> Result<AllowEntry, String> {
        let at = format!("[[allow]] entry at line {}", p.start_line);
        let rule = p.rule.ok_or_else(|| format!("{at}: missing `rule`"))?;
        let path = p.path.ok_or_else(|| format!("{at}: missing `path`"))?;
        let justification = p
            .justification
            .ok_or_else(|| format!("{at}: missing mandatory `justification`"))?;
        if justification.trim().is_empty() {
            return Err(format!("{at}: `justification` must be non-empty"));
        }
        if !RULES.iter().any(|r| r.id == rule) {
            return Err(format!("{at}: unknown rule `{rule}`"));
        }
        Ok(AllowEntry {
            rule,
            path,
            pattern: p.pattern,
            justification,
        })
    }

    let mut entries = Vec::new();
    let mut current: Option<Partial> = None;
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = raw.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if line == "[[allow]]" {
            if let Some(p) = current.take() {
                entries.push(finish(p)?);
            }
            current = Some(Partial {
                rule: None,
                path: None,
                pattern: None,
                justification: None,
                start_line: lineno,
            });
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            return Err(format!("line {lineno}: expected `key = \"value\"`"));
        };
        let key = key.trim();
        let value = value.trim();
        let value = value
            .strip_prefix('"')
            .and_then(|v| v.strip_suffix('"'))
            .ok_or_else(|| format!("line {lineno}: `{key}` must be a quoted string"))?
            .replace("\\\"", "\"")
            .replace("\\\\", "\\");
        let Some(p) = current.as_mut() else {
            return Err(format!("line {lineno}: `{key}` outside an [[allow]] entry"));
        };
        match key {
            "rule" => p.rule = Some(value),
            "path" => p.path = Some(value),
            "pattern" => p.pattern = Some(value),
            "justification" => p.justification = Some(value),
            other => return Err(format!("line {lineno}: unknown key `{other}`")),
        }
    }
    if let Some(p) = current.take() {
        entries.push(finish(p)?);
    }
    Ok(entries)
}

/// Collect every workspace `.rs` file under `root` that the lints apply
/// to: `crates/*` plus the root package's `src/`, `tests/`, and
/// `examples/`. Skips `target/`, the vendored offline shims in
/// `vendor/` (third-party stand-ins, not simulation code), and the lint
/// tool's own violation fixtures.
pub fn collect_rs_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut files = Vec::new();
    for top in ["crates", "src", "tests", "examples"] {
        let dir = root.join(top);
        if dir.is_dir() {
            walk(&dir, &mut files)?;
        }
    }
    files.sort();
    Ok(files)
}

fn walk(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let path = entry.path();
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if path.is_dir() {
            if name == "target" || name == "fixtures" || name == ".git" {
                continue;
            }
            walk(&path, out)?;
        } else if name.ends_with(".rs") {
            out.push(path);
        }
    }
    Ok(())
}

/// Run the full check over a workspace tree.
pub fn run_check(root: &Path, allow: &[AllowEntry]) -> io::Result<Report> {
    let files = collect_rs_files(root)?;
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    for file in &files {
        let rel = file
            .strip_prefix(root)
            .unwrap_or(file)
            .to_string_lossy()
            .replace('\\', "/");
        let source = fs::read_to_string(file)?;
        for v in scan_source(&rel, &source) {
            match allow.iter().find(|a| a.matches(&v)) {
                Some(a) => report.suppressed.push((v, a.justification.clone())),
                None => report.violations.push(v),
            }
        }
    }
    report
        .violations
        .sort_by(|a, b| (&a.path, a.line, a.rule).cmp(&(&b.path, b.line, b.rule)));
    Ok(report)
}

fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len() + 2);
    for ch in s.chars() {
        match ch {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

/// Machine-readable report (hand-serialized; round-trips through any
/// JSON parser — the integration tests use the workspace `serde_json`).
pub fn to_json(report: &Report) -> String {
    let mut out = String::from("{\n");
    out.push_str(&format!(
        "  \"files_scanned\": {},\n  \"violation_count\": {},\n  \"suppressed_count\": {},\n",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    ));
    out.push_str("  \"violations\": [");
    for (i, v) in report.violations.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"message\": \"{}\", \"snippet\": \"{}\"}}",
            v.rule,
            json_escape(&v.path),
            v.line,
            json_escape(&v.message),
            json_escape(&v.snippet)
        ));
    }
    if !report.violations.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("],\n  \"suppressed\": [");
    for (i, (v, why)) in report.suppressed.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(&format!(
            "\n    {{\"rule\": \"{}\", \"path\": \"{}\", \"line\": {}, \"justification\": \"{}\"}}",
            v.rule,
            json_escape(&v.path),
            v.line,
            json_escape(why)
        ));
    }
    if !report.suppressed.is_empty() {
        out.push_str("\n  ");
    }
    out.push_str("]\n}\n");
    out
}

/// Human-readable report.
pub fn render_human(report: &Report) -> String {
    let mut out = String::new();
    for v in &report.violations {
        out.push_str(&format!("{v}\n"));
    }
    if !report.suppressed.is_empty() {
        out.push_str(&format!(
            "\n{} finding(s) suppressed by lint-allow.toml:\n",
            report.suppressed.len()
        ));
        for (v, why) in &report.suppressed {
            out.push_str(&format!("  {} {}:{} -- {}\n", v.rule, v.path, v.line, why));
        }
    }
    out.push_str(&format!(
        "\nsnacc-lint: {} file(s) scanned, {} violation(s), {} suppressed\n",
        report.files_scanned,
        report.violations.len(),
        report.suppressed.len()
    ));
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allow_file_parses_and_requires_justification() {
        let good = r#"
# triaged exceptions
[[allow]]
rule = "SL004"
path = "crates/snacc-net/src/frame.rs"
pattern = "assert!"
justification = "encode-side precondition"
"#;
        let entries = parse_allow_file(good).expect("parses");
        assert_eq!(entries.len(), 1);
        assert_eq!(entries[0].rule, "SL004");

        let missing = "[[allow]]\nrule = \"SL004\"\npath = \"x.rs\"\n";
        let err = parse_allow_file(missing).expect_err("must fail");
        assert!(err.contains("justification"), "{err}");

        let empty = "[[allow]]\nrule = \"SL004\"\npath = \"x.rs\"\njustification = \"  \"\n";
        assert!(parse_allow_file(empty).is_err());

        let unknown = "[[allow]]\nrule = \"SL999\"\npath = \"x.rs\"\njustification = \"y\"\n";
        assert!(parse_allow_file(unknown).is_err());
    }

    #[test]
    fn allow_entry_matching_is_narrow() {
        let entry = AllowEntry {
            rule: "SL004".into(),
            path: "a.rs".into(),
            pattern: Some("assert!".into()),
            justification: "ok".into(),
        };
        let mut v = Violation {
            rule: "SL004",
            path: "a.rs".into(),
            line: 3,
            message: String::new(),
            snippet: "assert!(x)".into(),
        };
        assert!(entry.matches(&v));
        v.snippet = "panic!()".into();
        assert!(!entry.matches(&v));
        v.snippet = "assert!(x)".into();
        v.path = "b.rs".into();
        assert!(!entry.matches(&v));
    }

    #[test]
    fn json_escaping() {
        assert_eq!(json_escape("a\"b\\c\nd"), "a\\\"b\\\\c\\nd");
    }
}
