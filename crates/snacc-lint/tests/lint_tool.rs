//! End-to-end tests for the lint tool over the checked-in fixture trees
//! in `tests/fixtures/`. The fixtures are deliberately *not* compiled
//! (the workspace walker skips any `fixtures/` directory); they exist
//! only to be scanned here.

use std::collections::BTreeSet;
use std::path::{Path, PathBuf};
use std::process::Command;

use snacc_lint::{parse_allow_file, run_check, to_json, AllowEntry};

fn fixture(name: &str) -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("tests/fixtures")
        .join(name)
}

#[test]
fn every_rule_fires_on_the_bad_tree() {
    let report = run_check(&fixture("bad_tree"), &[]).expect("scan succeeds");
    let fired: BTreeSet<&str> = report.violations.iter().map(|v| v.rule).collect();
    for id in [
        "SL001", "SL002", "SL003", "SL004", "SL005", "SL006", "SL007",
    ] {
        assert!(
            fired.contains(id),
            "{id} did not fire; got {:?}",
            report.violations
        );
    }
    assert!(!report.is_clean());
    // Deterministic ordering: sorted by (path, line, rule).
    let keys: Vec<_> = report
        .violations
        .iter()
        .map(|v| (v.path.clone(), v.line, v.rule))
        .collect();
    let mut sorted = keys.clone();
    sorted.sort();
    assert_eq!(keys, sorted);
}

#[test]
fn clean_tree_is_clean() {
    let report = run_check(&fixture("clean_tree"), &[]).expect("scan succeeds");
    assert!(
        report.is_clean(),
        "clean tree produced {:?}",
        report.violations
    );
    assert_eq!(report.files_scanned, 1);
}

#[test]
fn allowlist_suppresses_with_justification() {
    let no_allow = run_check(&fixture("bad_tree"), &[]).expect("scan succeeds");
    let sl002_before = no_allow
        .violations
        .iter()
        .filter(|v| v.rule == "SL002")
        .count();
    assert!(sl002_before > 0);

    let allow = vec![AllowEntry {
        rule: "SL002".into(),
        path: "crates/snacc-net/src/entropy.rs".into(),
        pattern: Some("thread_rng".into()),
        justification: "fixture exercise of the suppression path".into(),
    }];
    let report = run_check(&fixture("bad_tree"), &allow).expect("scan succeeds");
    assert!(report.violations.iter().all(|v| v.rule != "SL002"));
    assert_eq!(report.suppressed.len(), sl002_before);
    assert_eq!(
        report.violations.len() + report.suppressed.len(),
        no_allow.violations.len()
    );
    for (v, why) in &report.suppressed {
        assert_eq!(v.rule, "SL002");
        assert!(!why.trim().is_empty());
    }
}

#[test]
fn repo_allow_file_parses_and_every_entry_is_justified() {
    let repo_root = Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .and_then(Path::parent)
        .expect("workspace root");
    let text = std::fs::read_to_string(repo_root.join("lint-allow.toml"))
        .expect("checked-in lint-allow.toml");
    let entries = parse_allow_file(&text).expect("allow file parses");
    assert!(!entries.is_empty());
    for e in &entries {
        assert!(!e.justification.trim().is_empty());
        assert!(e.pattern.is_some(), "keep exceptions narrow: {e:?}");
    }
}

#[test]
fn json_report_round_trips_through_serde_json() {
    let report = run_check(&fixture("bad_tree"), &[]).expect("scan succeeds");
    let text = to_json(&report);
    let doc: serde_json::Value = serde_json::from_str(&text).expect("valid JSON");
    assert_eq!(
        doc.get("files_scanned").and_then(|v| v.as_u64()),
        Some(report.files_scanned as u64)
    );
    assert_eq!(
        doc.get("violation_count").and_then(|v| v.as_u64()),
        Some(report.violations.len() as u64)
    );
    let arr = doc
        .get("violations")
        .and_then(|v| v.as_array())
        .expect("violations array");
    assert_eq!(arr.len(), report.violations.len());
    for (item, v) in arr.iter().zip(&report.violations) {
        assert_eq!(item.get("rule").and_then(|x| x.as_str()), Some(v.rule));
        assert_eq!(
            item.get("path").and_then(|x| x.as_str()),
            Some(v.path.as_str())
        );
        assert_eq!(
            item.get("line").and_then(|x| x.as_u64()),
            Some(v.line as u64)
        );
        assert!(item.get("message").and_then(|x| x.as_str()).is_some());
        assert!(item.get("snippet").and_then(|x| x.as_str()).is_some());
    }
}

#[test]
fn cli_exit_codes_and_json_output() {
    let bin = env!("CARGO_BIN_EXE_snacc-lint");

    let bad = Command::new(bin)
        .args(["check", "--root"])
        .arg(fixture("bad_tree"))
        .output()
        .expect("run lint binary");
    assert_eq!(bad.status.code(), Some(1), "bad tree must fail the check");

    let clean = Command::new(bin)
        .args(["check", "--json", "--root"])
        .arg(fixture("clean_tree"))
        .output()
        .expect("run lint binary");
    assert_eq!(
        clean.status.code(),
        Some(0),
        "stderr: {}",
        String::from_utf8_lossy(&clean.stderr)
    );
    let doc: serde_json::Value =
        serde_json::from_str(&String::from_utf8_lossy(&clean.stdout)).expect("valid JSON");
    assert_eq!(doc.get("violation_count").and_then(|v| v.as_u64()), Some(0));

    let usage = Command::new(bin)
        .arg("bogus")
        .output()
        .expect("run lint binary");
    assert_eq!(usage.status.code(), Some(2));
}
