// Fixture: SL005 (raw picosecond math outside snacc-sim). Not compiled —
// scanned by the lint integration tests.

pub fn service_delay(rate: f64) -> u64 {
    let delay_ps = (1e12 / rate) as u64;
    delay_ps * 2
}

pub fn as_duration(t: u64) -> SimDuration {
    SimDuration::from_ps(t)
}
