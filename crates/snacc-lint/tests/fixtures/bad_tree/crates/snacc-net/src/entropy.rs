// Fixture: SL002 (unseeded randomness). Not compiled — scanned by the
// lint integration tests.

pub fn random_jitter() -> u64 {
    let mut rng = rand::thread_rng();
    rng.gen_range(0..100)
}
