// Fixture: SL004 (panic path in a wire-decode module). Not compiled —
// scanned by the lint integration tests. The path matters: SL004 only
// applies to the named decode modules.

pub fn decode_opcode(b: &[u8]) -> u8 {
    *b.first().unwrap()
}

pub fn decode_qid(b: &[u8]) -> u16 {
    assert!(b.len() >= 2, "short buffer");
    u16::from_le_bytes([b[0], b[1]])
}
