// Fixture: SL006 (RefCell guard live across Engine::schedule). Not
// compiled — scanned by the lint integration tests.

pub fn kick(rc: &Rc<RefCell<State>>, en: &mut Engine) {
    let mut st = rc.borrow_mut();
    st.pending += 1;
    let rc2 = rc.clone();
    en.schedule_at(st.free_at, move |en| {
        rc2.borrow_mut().pending -= 1;
    });
}
