// Fixture: SL001 (wall-clock time), SL003 (sync primitive) and SL007
// (print macro) in a simulation crate. Not compiled — scanned by the
// lint integration tests.

use std::time::Instant;

pub fn elapsed_since_boot() -> u64 {
    let start = Instant::now();
    println!("booted");
    start.elapsed().as_nanos() as u64
}

pub struct SharedCounter {
    inner: std::sync::Mutex<u64>,
}
