// Fixture: SL001 (wall-clock time) and SL003 (sync primitive) in a
// simulation crate. Not compiled — scanned by the lint integration tests.

use std::time::Instant;

pub fn elapsed_since_boot() -> u64 {
    let start = Instant::now();
    start.elapsed().as_nanos() as u64
}

pub struct SharedCounter {
    inner: std::sync::Mutex<u64>,
}
