// Fixture: a clean simulation-crate file — no rule should fire. The
// comment mentions Instant, thread_rng, Mutex and .unwrap( to prove the
// sanitizer masks comments before matching.

pub fn advance(now: SimTime, step: SimDuration) -> SimTime {
    now + step
}

pub fn drain(rc: &Rc<RefCell<State>>, en: &mut Engine) {
    let next = {
        let st = rc.borrow();
        st.next_deadline
    };
    let rc2 = rc.clone();
    en.schedule_at(next, move |en| {
        rc2.borrow_mut().fire(en);
    });
}
