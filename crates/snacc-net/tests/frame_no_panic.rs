//! SL004's contract, tested: Ethernet frame parsing is total. Arbitrary
//! byte buffers — fuzzed lengths and contents — must parse to `Ok` or
//! `Err`, never panic.

use proptest::collection::vec;
use proptest::prelude::*;
use snacc_net::frame::{EthFrame, MacAddr, MAX_PAYLOAD, WIRE_HEADER};

proptest! {
    #[test]
    fn parse_never_panics(bytes in vec(any::<u8>(), 0..=9100)) {
        // Totality is the property: any outcome is fine, panicking is not.
        let _ = EthFrame::parse(&bytes);
    }

    #[test]
    fn parse_is_exhaustive_over_length(
        header in any::<[u8; 14]>(),
        payload in vec(any::<u8>(), 0..=64),
    ) {
        let mut wire = header.to_vec();
        wire.extend_from_slice(&payload);
        prop_assert!(EthFrame::parse(&wire).is_ok());
    }

    #[test]
    fn wire_roundtrip_holds(
        dst in any::<u64>(),
        src in any::<u64>(),
        payload in vec(any::<u8>(), 0..=256),
    ) {
        let f = EthFrame::data(MacAddr::from_index(dst), MacAddr::from_index(src), payload);
        prop_assert_eq!(EthFrame::parse(&f.to_wire()), Ok(f));
    }

    #[test]
    fn short_and_oversize_are_errors(short_len in 0usize..14, extra in 1usize..32) {
        prop_assert!(EthFrame::parse(&vec![0u8; short_len]).is_err());
        let oversize = vec![0u8; WIRE_HEADER + MAX_PAYLOAD + extra];
        prop_assert!(EthFrame::parse(&oversize).is_err());
    }
}
