//! # snacc-net — 100 G Ethernet with 802.3x flow control
//!
//! The paper enhances TaPaSCo's 100 G Ethernet support with the basic
//! Ethernet-802.3 flow-control protocol: an overrun receiver sends a PAUSE
//! frame; intermediary switches pause locally first and propagate the
//! pause upstream; senders fully buffer frames before transmission so a
//! started frame is never cut short (Sec 4.7).
//!
//! This crate models exactly that:
//!
//! * [`frame::EthFrame`] — frames with real payload bytes, plus PAUSE
//!   frame encoding (EtherType 0x8808, opcode 0x0001, quanta).
//! * [`mac::EthMac`] — a full-duplex MAC: store-and-forward TX queue,
//!   bounded RX buffer with high/low watermarks that generate PAUSE /
//!   resume frames, pause honouring on the TX path, drop counting when
//!   flow control is disabled.
//! * [`switch::EthSwitch`] — a store-and-forward switch built out of MACs;
//!   backpressure propagates hop by hop exactly as the standard intends.
//! * [`traffic`] — byte-stream sender / rate-limited sink used by the
//!   tests and the case study.
//!
//! The key property — **losslessness under a slow sink** — is pinned by
//! unit, integration and property tests.

pub mod frame;
pub mod mac;
pub mod switch;
pub mod traffic;

pub use frame::{EthFrame, MacAddr, PAUSE_ETHERTYPE};
pub use mac::{EthMac, MacConfig};
pub use switch::EthSwitch;
