//! Store-and-forward Ethernet switch.
//!
//! Built from MAC ports, with MAC learning and flooding. Backpressure is
//! hop-by-hop exactly as 802.3x intends (paper Sec 4.7: "this protocol
//! also works with intermediary switches, which will first pause locally
//! before propagating the pause request further"): when an egress port's
//! TX queue fills, the switch stops draining the ingress port's RX buffer,
//! whose high watermark then asserts PAUSE towards the upstream sender.

use crate::frame::MacAddr;
use crate::mac::{self, EthMac, MacConfig};
use snacc_sim::Engine;
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

struct SwitchCore {
    ports: Vec<Rc<RefCell<EthMac>>>,
    /// MAC learning table: source address → port index.
    table: HashMap<MacAddr, usize>,
    forwarded_frames: u64,
    flooded_frames: u64,
}

/// An N-port learning switch.
pub struct EthSwitch {
    core: Rc<RefCell<SwitchCore>>,
}

impl EthSwitch {
    /// Build a switch with `n_ports` ports using `cfg` per port. Connect
    /// endpoints to [`port`](Self::port) with [`mac::connect`].
    pub fn new(n_ports: usize, cfg: MacConfig, seed: u64) -> Self {
        assert!(n_ports >= 2, "a switch needs at least two ports");
        let ports: Vec<_> = (0..n_ports)
            .map(|i| {
                EthMac::new(
                    format!("sw.p{i}"),
                    MacAddr::from_index(0xff00 + i as u64),
                    cfg.clone(),
                    seed.wrapping_add(i as u64),
                )
            })
            .collect();
        let core = Rc::new(RefCell::new(SwitchCore {
            ports: ports.clone(),
            table: HashMap::new(),
            forwarded_frames: 0,
            flooded_frames: 0,
        }));
        // Ingress hook: try to forward whenever frames arrive; egress hook:
        // retry all ingress ports whenever TX space frees up.
        for (i, p) in ports.iter().enumerate() {
            let c1 = core.clone();
            p.borrow_mut()
                .set_rx_hook(move |en| forward_port(&c1, en, i));
            let c2 = core.clone();
            p.borrow_mut()
                .set_tx_space_hook(move |en| forward_all(&c2, en));
        }
        EthSwitch { core }
    }

    /// Access port `i`'s MAC endpoint (to connect a peer).
    pub fn port(&self, i: usize) -> Rc<RefCell<EthMac>> {
        self.core.borrow().ports[i].clone()
    }

    /// Number of ports.
    pub fn n_ports(&self) -> usize {
        self.core.borrow().ports.len()
    }

    /// Frames forwarded to a learned port.
    pub fn forwarded_frames(&self) -> u64 {
        self.core.borrow().forwarded_frames
    }

    /// Frames flooded (unknown destination).
    pub fn flooded_frames(&self) -> u64 {
        self.core.borrow().flooded_frames
    }
}

/// Drain as many frames as possible from ingress port `i`.
fn forward_port(core: &Rc<RefCell<SwitchCore>>, en: &mut Engine, i: usize) {
    loop {
        // Decide the egress set while holding only short borrows.
        let (ingress, dst, src) = {
            let c = core.borrow();
            let p = c.ports[i].clone();
            let (dst, src) = {
                let pm = p.borrow();
                match (pm.rx_peek_dst(), pm.rx_peek_src()) {
                    (Some(d), Some(s)) => (d, s),
                    _ => return,
                }
            };
            (p, dst, src)
        };
        // Learn the source.
        core.borrow_mut().table.insert(src, i);

        let (egress, flooded): (Vec<usize>, bool) = {
            let c = core.borrow();
            match c.table.get(&dst) {
                Some(&p) if p != i => (vec![p], false),
                Some(_) => {
                    // Destined back to its own segment: drop (filter).
                    (vec![], false)
                }
                None => ((0..c.ports.len()).filter(|&p| p != i).collect(), true),
            }
        };

        // All egress ports must have space (store-and-forward, no partial
        // flood) or we stall this ingress port — that is the local pause.
        let len = ingress
            .borrow()
            .rx_peek_bytes()
            .expect("frame still queued") as usize;
        let all_fit = {
            let c = core.borrow();
            egress
                .iter()
                .all(|&p| c.ports[p].borrow().tx_has_space(len))
        };
        if !all_fit {
            return;
        }

        let Some(frame) = mac::pop_frame(&ingress, en) else {
            return;
        };
        {
            let mut c = core.borrow_mut();
            if flooded {
                c.flooded_frames += 1;
            } else if !egress.is_empty() {
                c.forwarded_frames += 1;
            }
        }
        let egress_ports: Vec<_> = {
            let c = core.borrow();
            egress.iter().map(|&p| c.ports[p].clone()).collect()
        };
        for p in egress_ports {
            let ok = mac::send(&p, en, frame.clone());
            debug_assert!(ok, "space was checked above");
        }
    }
}

fn forward_all(core: &Rc<RefCell<SwitchCore>>, en: &mut Engine) {
    let n = core.borrow().ports.len();
    for i in 0..n {
        forward_port(core, en, i);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::frame::EthFrame;
    use snacc_sim::{SimDuration, SimTime};

    fn endpoint(name: &str, idx: u64, cfg: MacConfig) -> Rc<RefCell<EthMac>> {
        EthMac::new(name, MacAddr::from_index(idx), cfg, idx)
    }

    #[test]
    fn forwards_between_endpoints() {
        let mut en = Engine::new();
        let sw = EthSwitch::new(2, MacConfig::eth_100g(), 99);
        let a = endpoint("a", 1, MacConfig::eth_100g());
        let b = endpoint("b", 2, MacConfig::eth_100g());
        mac::connect(&a, &sw.port(0));
        mac::connect(&b, &sw.port(1));
        let f = EthFrame::data(
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            vec![5; 2000],
        );
        mac::send(&a, &mut en, f.clone());
        en.run();
        let got = mac::pop_frame(&b, &mut en).expect("delivered through switch");
        assert_eq!(got.payload, f.payload);
        // First frame floods (dst unknown), so it counts as flooded.
        assert_eq!(sw.flooded_frames(), 1);
    }

    #[test]
    fn learning_avoids_flooding() {
        let mut en = Engine::new();
        let sw = EthSwitch::new(3, MacConfig::eth_100g(), 99);
        let a = endpoint("a", 1, MacConfig::eth_100g());
        let b = endpoint("b", 2, MacConfig::eth_100g());
        let c = endpoint("c", 3, MacConfig::eth_100g());
        mac::connect(&a, &sw.port(0));
        mac::connect(&b, &sw.port(1));
        mac::connect(&c, &sw.port(2));
        // b announces itself (flooded — dst still unknown).
        mac::send(
            &b,
            &mut en,
            EthFrame::data(MacAddr::from_index(1), MacAddr::from_index(2), vec![0; 64]),
        );
        en.run();
        assert_eq!(sw.flooded_frames(), 1);
        let c_before = c.borrow().stats().rx_frames;
        // Now a → b should be forwarded, not flooded.
        mac::send(
            &a,
            &mut en,
            EthFrame::data(MacAddr::from_index(2), MacAddr::from_index(1), vec![1; 64]),
        );
        en.run();
        assert_eq!(sw.forwarded_frames(), 1);
        assert_eq!(
            c.borrow().stats().rx_frames,
            c_before,
            "c must not see a→b after learning"
        );
        assert!(mac::pop_frame(&b, &mut en).is_some());
    }

    #[test]
    fn pause_propagates_through_switch() {
        // a → switch → b with b never draining: losslessness end to end
        // requires the switch to pause a.
        let mut en = Engine::new();
        let sw = EthSwitch::new(2, MacConfig::eth_100g(), 99);
        let a = endpoint("a", 1, MacConfig::eth_100g());
        let b = endpoint("b", 2, MacConfig::eth_100g());
        mac::connect(&a, &sw.port(0));
        mac::connect(&b, &sw.port(1));

        // Drain b very slowly (1 frame / 50 µs).
        fn slow_drain(b: Rc<RefCell<EthMac>>, en: &mut Engine) {
            let _ = mac::pop_frame(&b, en);
            en.schedule_in(SimDuration::from_us(50), move |en| slow_drain(b, en));
        }
        let b2 = b.clone();
        en.schedule_at(SimTime::ZERO, move |en| slow_drain(b2, en));

        let total = 400u64;
        let mut sent = 0;
        while sent < total {
            let f = EthFrame::data(
                MacAddr::from_index(2),
                MacAddr::from_index(1),
                vec![sent as u8; 4096],
            );
            if mac::send(&a, &mut en, f) {
                sent += 1;
            } else if !en.step() {
                break;
            }
        }
        en.run_until(SimTime::ZERO + SimDuration::from_ms(50));
        // No drops anywhere.
        assert_eq!(b.borrow().stats().rx_drops, 0);
        assert_eq!(sw.port(0).borrow().stats().rx_drops, 0);
        assert_eq!(sw.port(1).borrow().stats().rx_drops, 0);
        // All frames made it to b.
        assert_eq!(b.borrow().stats().rx_frames, total);
        // And a was paused by the switch (pause propagated upstream).
        assert!(a.borrow().stats().pauses_received > 0);
    }
}
