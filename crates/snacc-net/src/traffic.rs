//! Traffic generation and sinking for tests and benchmarks.
//!
//! The sender emits a deterministic byte stream (each byte is a function
//! of its stream offset), so the sink can verify **content, order and
//! completeness** — any loss, reorder or duplication under flow-control
//! stress shows up as a mismatch, not just a count difference.

use crate::frame::{EthFrame, MacAddr};
use crate::mac::{self, EthMac};
use snacc_sim::{Bandwidth, Engine, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// The expected payload byte at stream offset `off`.
#[inline]
pub fn pattern_byte(off: u64) -> u8 {
    (off.wrapping_mul(31) ^ (off >> 8)) as u8
}

/// Streams `total_bytes` of patterned data as fixed-size frames.
pub struct StreamSender {
    mac: Rc<RefCell<EthMac>>,
    dst: MacAddr,
    payload_size: usize,
    total_bytes: u64,
    sent_bytes: u64,
    finished_at: Option<SimTime>,
}

impl StreamSender {
    /// Create and arm a sender on `mac`; it begins transmitting when
    /// [`kick`](Self::kick) is called and refills on TX-space events.
    pub fn start(
        mac_rc: Rc<RefCell<EthMac>>,
        en: &mut Engine,
        dst: MacAddr,
        payload_size: usize,
        total_bytes: u64,
    ) -> Rc<RefCell<StreamSender>> {
        let s = Rc::new(RefCell::new(StreamSender {
            mac: mac_rc.clone(),
            dst,
            payload_size,
            total_bytes,
            sent_bytes: 0,
            finished_at: None,
        }));
        let s2 = s.clone();
        mac_rc
            .borrow_mut()
            .set_tx_space_hook(move |en| StreamSender::kick(&s2, en));
        StreamSender::kick(&s, en);
        s
    }

    /// Push as many frames as the TX queue accepts right now.
    pub fn kick(rc: &Rc<RefCell<StreamSender>>, en: &mut Engine) {
        loop {
            let frame = {
                let mut s = rc.borrow_mut();
                if s.sent_bytes >= s.total_bytes {
                    if s.finished_at.is_none() {
                        s.finished_at = Some(en.now());
                    }
                    return;
                }
                let n = (s.payload_size as u64).min(s.total_bytes - s.sent_bytes) as usize;
                let mut payload = vec![0u8; n];
                for (i, b) in payload.iter_mut().enumerate() {
                    *b = pattern_byte(s.sent_bytes + i as u64);
                }
                let src = s.mac.borrow().addr();
                let f = EthFrame::data(s.dst, src, payload);
                // Tentatively account; rolled back if refused.
                s.sent_bytes += n as u64;
                f
            };
            let mac_rc = rc.borrow().mac.clone();
            let n = frame.payload.len() as u64;
            if !mac::send(&mac_rc, en, frame) {
                rc.borrow_mut().sent_bytes -= n;
                return;
            }
        }
    }

    /// Bytes handed to the MAC so far.
    pub fn sent_bytes(&self) -> u64 {
        self.sent_bytes
    }

    /// When the last byte was queued (None while still sending).
    pub fn finished_at(&self) -> Option<SimTime> {
        self.finished_at
    }
}

/// Consumes frames at a bounded rate and verifies the pattern.
pub struct RateSink {
    mac: Rc<RefCell<EthMac>>,
    /// None = drain at infinite speed.
    rate: Option<Bandwidth>,
    received_bytes: u64,
    mismatches: u64,
    busy: bool,
    last_byte_at: SimTime,
}

impl RateSink {
    /// Attach a sink to `mac`.
    pub fn attach(mac_rc: Rc<RefCell<EthMac>>, rate: Option<Bandwidth>) -> Rc<RefCell<RateSink>> {
        let s = Rc::new(RefCell::new(RateSink {
            mac: mac_rc.clone(),
            rate,
            received_bytes: 0,
            mismatches: 0,
            busy: false,
            last_byte_at: SimTime::ZERO,
        }));
        let s2 = s.clone();
        mac_rc
            .borrow_mut()
            .set_rx_hook(move |en| RateSink::drain(&s2, en));
        s
    }

    fn drain(rc: &Rc<RefCell<RateSink>>, en: &mut Engine) {
        if rc.borrow().busy {
            return;
        }
        let mac_rc = rc.borrow().mac.clone();
        let Some(frame) = mac::pop_frame(&mac_rc, en) else {
            return;
        };
        let mut s = rc.borrow_mut();
        for (i, &b) in frame.payload.iter().enumerate() {
            if b != pattern_byte(s.received_bytes + i as u64) {
                s.mismatches += 1;
            }
        }
        s.received_bytes += frame.payload.len() as u64;
        s.last_byte_at = en.now();
        match s.rate {
            None => {
                drop(s);
                // Keep draining synchronously.
                let rc2 = rc.clone();
                en.schedule_now(move |en| RateSink::drain(&rc2, en));
            }
            Some(rate) => {
                s.busy = true;
                let dt = rate.time_for(frame.payload.len() as u64);
                drop(s);
                let rc2 = rc.clone();
                en.schedule_in(dt, move |en| {
                    rc2.borrow_mut().busy = false;
                    RateSink::drain(&rc2, en);
                });
            }
        }
    }

    /// Total payload bytes consumed.
    pub fn received_bytes(&self) -> u64 {
        self.received_bytes
    }

    /// Pattern mismatches observed (0 = perfect in-order delivery).
    pub fn mismatches(&self) -> u64 {
        self.mismatches
    }

    /// Arrival time of the most recent byte.
    pub fn last_byte_at(&self) -> SimTime {
        self.last_byte_at
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mac::MacConfig;

    #[test]
    fn pattern_is_deterministic() {
        assert_eq!(pattern_byte(12345), pattern_byte(12345));
        // Not constant.
        assert!(
            (0..100)
                .map(pattern_byte)
                .collect::<std::collections::HashSet<_>>()
                .len()
                > 10
        );
    }

    #[test]
    fn fast_sink_receives_everything_at_line_rate() {
        let mut en = Engine::new();
        let a = EthMac::new("a", MacAddr::from_index(1), MacConfig::eth_100g(), 1);
        let b = EthMac::new("b", MacAddr::from_index(2), MacConfig::eth_100g(), 2);
        mac::connect(&a, &b);
        let total: u64 = 16 << 20;
        let sink = RateSink::attach(b.clone(), None);
        let _sender = StreamSender::start(a.clone(), &mut en, MacAddr::from_index(2), 4096, total);
        let end = en.run();
        let s = sink.borrow();
        assert_eq!(s.received_bytes(), total);
        assert_eq!(s.mismatches(), 0);
        // Goodput close to 100 G line rate (≈ 12.37 GB/s after overhead).
        let gbps = total as f64 / 1e9 / end.as_secs_f64();
        assert!(gbps > 11.5 && gbps < 12.5, "{gbps}");
    }

    #[test]
    fn slow_sink_throttles_to_its_rate_without_loss() {
        let mut en = Engine::new();
        let a = EthMac::new("a", MacAddr::from_index(1), MacConfig::eth_100g(), 1);
        let b = EthMac::new("b", MacAddr::from_index(2), MacConfig::eth_100g(), 2);
        mac::connect(&a, &b);
        let total: u64 = 8 << 20;
        // Sink drains at ~2 GB/s — far below line rate.
        let sink = RateSink::attach(b.clone(), Some(Bandwidth::gb_per_s(2.0)));
        let _sender = StreamSender::start(a.clone(), &mut en, MacAddr::from_index(2), 4096, total);
        let end = en.run();
        let s = sink.borrow();
        assert_eq!(s.received_bytes(), total);
        assert_eq!(s.mismatches(), 0);
        assert_eq!(b.borrow().stats().rx_drops, 0);
        let gbps = total as f64 / 1e9 / end.as_secs_f64();
        assert!(gbps < 2.2, "throughput {gbps} must be sink-bound");
        assert!(b.borrow().stats().pauses_sent > 0);
    }
}
