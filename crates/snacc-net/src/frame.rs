//! Ethernet frames.
//!
//! Frames carry real payload bytes (the case study streams image data
//! through them). PAUSE frames follow IEEE 802.3 Annex 31B: EtherType
//! 0x8808, MAC control opcode 0x0001, a 16-bit pause-quanta field, and the
//! reserved multicast destination 01-80-C2-00-00-01.

use std::fmt;

/// EtherType for MAC control frames (PAUSE).
pub const PAUSE_ETHERTYPE: u16 = 0x8808;
/// MAC control opcode for PAUSE.
pub const PAUSE_OPCODE: u16 = 0x0001;
/// One pause quantum is 512 bit times.
pub const PAUSE_QUANTUM_BITS: u64 = 512;
/// Minimum Ethernet frame size (without preamble/IFG).
pub const MIN_FRAME: usize = 64;
/// Maximum standard payload (we allow jumbo frames up to 9000 too).
pub const MAX_PAYLOAD: usize = 9000;
/// Header (12 MAC + 2 EtherType) + trailing CRC bytes.
pub const HEADER_CRC_BYTES: usize = 18;
/// Preamble (8) + inter-frame gap (12) overhead on the wire per frame.
pub const WIRE_OVERHEAD: u64 = 20;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The 802.3x PAUSE multicast destination.
    pub const PAUSE_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xC2, 0x00, 0x00, 0x01]);

    /// A deterministic test/bench address derived from an index.
    pub fn from_index(i: u64) -> Self {
        let b = i.to_be_bytes();
        MacAddr([0x02, 0x5a, b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An Ethernet frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthFrame {
    /// Destination address.
    pub dst: MacAddr,
    /// Source address.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: u16,
    /// Payload bytes.
    pub payload: Vec<u8>,
}

impl EthFrame {
    /// A data frame (EtherType 0x88B5, local experimental).
    pub fn data(dst: MacAddr, src: MacAddr, payload: Vec<u8>) -> Self {
        assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds jumbo MTU");
        EthFrame {
            dst,
            src,
            ethertype: 0x88B5,
            payload,
        }
    }

    /// A PAUSE frame requesting `quanta` pause quanta (0 = resume).
    pub fn pause(src: MacAddr, quanta: u16) -> Self {
        let mut payload = vec![0u8; 46]; // padded to minimum size
        payload[0..2].copy_from_slice(&PAUSE_OPCODE.to_be_bytes());
        payload[2..4].copy_from_slice(&quanta.to_be_bytes());
        EthFrame {
            dst: MacAddr::PAUSE_MULTICAST,
            src,
            ethertype: PAUSE_ETHERTYPE,
            payload,
        }
    }

    /// Is this a MAC-control PAUSE frame?
    pub fn is_pause(&self) -> bool {
        self.ethertype == PAUSE_ETHERTYPE
            && self.payload.len() >= 4
            && u16::from_be_bytes([self.payload[0], self.payload[1]]) == PAUSE_OPCODE
    }

    /// Pause quanta of a PAUSE frame.
    pub fn pause_quanta(&self) -> Option<u16> {
        self.is_pause()
            .then(|| u16::from_be_bytes([self.payload[2], self.payload[3]]))
    }

    /// Frame size on the medium excluding preamble/IFG (header + payload +
    /// CRC, padded to the 64-byte minimum).
    pub fn frame_bytes(&self) -> u64 {
        (self.payload.len() + HEADER_CRC_BYTES).max(MIN_FRAME) as u64
    }

    /// Total wire cost including preamble and inter-frame gap.
    pub fn wire_bytes(&self) -> u64 {
        self.frame_bytes() + WIRE_OVERHEAD
    }
}

/// Duration of `quanta` pause quanta at `bits_per_sec` line rate, in
/// picoseconds.
pub fn pause_duration_ps(quanta: u16, bits_per_sec: f64) -> u64 {
    let bits = quanta as u64 * PAUSE_QUANTUM_BITS;
    (bits as f64 * 1e12 / bits_per_sec).round() as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_frame_encoding() {
        let p = EthFrame::pause(MacAddr::from_index(1), 0xffff);
        assert!(p.is_pause());
        assert_eq!(p.pause_quanta(), Some(0xffff));
        assert_eq!(p.dst, MacAddr::PAUSE_MULTICAST);
        // Padded to minimum frame size.
        assert_eq!(p.frame_bytes(), 64);
    }

    #[test]
    fn resume_is_zero_quanta() {
        let p = EthFrame::pause(MacAddr::from_index(2), 0);
        assert_eq!(p.pause_quanta(), Some(0));
    }

    #[test]
    fn data_frame_not_pause() {
        let f = EthFrame::data(MacAddr::from_index(1), MacAddr::from_index(2), vec![0; 100]);
        assert!(!f.is_pause());
        assert_eq!(f.pause_quanta(), None);
        assert_eq!(f.frame_bytes(), 118);
        assert_eq!(f.wire_bytes(), 138);
    }

    #[test]
    fn small_frames_padded() {
        let f = EthFrame::data(MacAddr::from_index(1), MacAddr::from_index(2), vec![1]);
        assert_eq!(f.frame_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "jumbo")]
    fn oversize_rejected() {
        EthFrame::data(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            vec![0; MAX_PAYLOAD + 1],
        );
    }

    #[test]
    fn pause_duration_math() {
        // 100 Gbit/s: one quantum = 512 bits = 5.12 ns.
        let ps = pause_duration_ps(1, 100e9);
        assert_eq!(ps, 5120);
        let ps = pause_duration_ps(0xffff, 100e9);
        assert_eq!(ps, 65535 * 5120);
    }

    #[test]
    fn mac_addr_display() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(format!("{m:?}"), "de:ad:be:ef:00:01");
    }
}
