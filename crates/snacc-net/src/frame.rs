//! Ethernet frames.
//!
//! Frames carry real payload bytes (the case study streams image data
//! through them). PAUSE frames follow IEEE 802.3 Annex 31B: EtherType
//! 0x8808, MAC control opcode 0x0001, a 16-bit pause-quanta field, and the
//! reserved multicast destination 01-80-C2-00-00-01.

use snacc_sim::{Payload, SimDuration};
use std::fmt;

/// Wire header bytes preceding the payload (12 MAC + 2 EtherType).
pub const WIRE_HEADER: usize = 14;

/// EtherType for MAC control frames (PAUSE).
pub const PAUSE_ETHERTYPE: u16 = 0x8808;
/// MAC control opcode for PAUSE.
pub const PAUSE_OPCODE: u16 = 0x0001;
/// One pause quantum is 512 bit times.
pub const PAUSE_QUANTUM_BITS: u64 = 512;
/// Minimum Ethernet frame size (without preamble/IFG).
pub const MIN_FRAME: usize = 64;
/// Maximum standard payload (we allow jumbo frames up to 9000 too).
pub const MAX_PAYLOAD: usize = 9000;
/// Header (12 MAC + 2 EtherType) + trailing CRC bytes.
pub const HEADER_CRC_BYTES: usize = 18;
/// Preamble (8) + inter-frame gap (12) overhead on the wire per frame.
pub const WIRE_OVERHEAD: u64 = 20;

/// A 48-bit MAC address.
#[derive(Clone, Copy, PartialEq, Eq, Hash)]
pub struct MacAddr(pub [u8; 6]);

impl MacAddr {
    /// The 802.3x PAUSE multicast destination.
    pub const PAUSE_MULTICAST: MacAddr = MacAddr([0x01, 0x80, 0xC2, 0x00, 0x00, 0x01]);

    /// A deterministic test/bench address derived from an index.
    pub fn from_index(i: u64) -> Self {
        let b = i.to_be_bytes();
        MacAddr([0x02, 0x5a, b[4], b[5], b[6], b[7]])
    }
}

impl fmt::Debug for MacAddr {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let b = self.0;
        write!(
            f,
            "{:02x}:{:02x}:{:02x}:{:02x}:{:02x}:{:02x}",
            b[0], b[1], b[2], b[3], b[4], b[5]
        )
    }
}

/// An Ethernet frame.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct EthFrame {
    /// Destination address.
    pub dst: MacAddr,
    /// Source address.
    pub src: MacAddr,
    /// EtherType.
    pub ethertype: u16,
    /// Payload bytes (a shared zero-copy window).
    pub payload: Payload,
}

impl EthFrame {
    /// A data frame (EtherType 0x88B5, local experimental).
    pub fn data(dst: MacAddr, src: MacAddr, payload: impl Into<Payload>) -> Self {
        let payload = payload.into();
        assert!(payload.len() <= MAX_PAYLOAD, "payload exceeds jumbo MTU");
        EthFrame {
            dst,
            src,
            ethertype: 0x88B5,
            payload,
        }
    }

    /// A PAUSE frame requesting `quanta` pause quanta (0 = resume).
    pub fn pause(src: MacAddr, quanta: u16) -> Self {
        let mut payload = vec![0u8; 46]; // padded to minimum size
        payload[0..2].copy_from_slice(&PAUSE_OPCODE.to_be_bytes());
        payload[2..4].copy_from_slice(&quanta.to_be_bytes());
        EthFrame {
            dst: MacAddr::PAUSE_MULTICAST,
            src,
            ethertype: PAUSE_ETHERTYPE,
            payload: Payload::from_vec(payload),
        }
    }

    /// Is this a MAC-control PAUSE frame?
    pub fn is_pause(&self) -> bool {
        self.ethertype == PAUSE_ETHERTYPE
            && self.payload.len() >= 4
            && u16::from_be_bytes([self.payload[0], self.payload[1]]) == PAUSE_OPCODE
    }

    /// Pause quanta of a PAUSE frame.
    pub fn pause_quanta(&self) -> Option<u16> {
        self.is_pause()
            .then(|| u16::from_be_bytes([self.payload[2], self.payload[3]]))
    }

    /// Frame size on the medium excluding preamble/IFG (header + payload +
    /// CRC, padded to the 64-byte minimum).
    pub fn frame_bytes(&self) -> u64 {
        (self.payload.len() + HEADER_CRC_BYTES).max(MIN_FRAME) as u64
    }

    /// Total wire cost including preamble and inter-frame gap.
    pub fn wire_bytes(&self) -> u64 {
        self.frame_bytes() + WIRE_OVERHEAD
    }

    /// Serialize to wire bytes: dst(6) · src(6) · EtherType(2, BE) ·
    /// payload. CRC, padding, preamble and IFG are modeled analytically
    /// by [`EthFrame::frame_bytes`] / [`EthFrame::wire_bytes`], not
    /// materialised.
    pub fn to_wire(&self) -> Vec<u8> {
        let mut b = Vec::with_capacity(WIRE_HEADER + self.payload.len());
        b.extend_from_slice(&self.dst.0);
        b.extend_from_slice(&self.src.0);
        b.extend_from_slice(&self.ethertype.to_be_bytes());
        b.extend_from_slice(&self.payload);
        b
    }

    /// Parse wire bytes. Total (SL004): every input either parses or
    /// yields a [`FrameError`] — there is no panic path.
    ///
    /// This borrowed-slice form copies the payload once (the ingress
    /// copy); when the wire bytes are already in a shared [`Payload`],
    /// use [`EthFrame::parse_shared`] for a zero-copy parse.
    pub fn parse(b: &[u8]) -> Result<EthFrame, FrameError> {
        Self::check_wire(b)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&b[0..6]);
        src.copy_from_slice(&b[6..12]);
        Ok(EthFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype: u16::from_be_bytes([b[12], b[13]]),
            payload: Payload::from(&b[WIRE_HEADER..]),
        })
    }

    /// Parse wire bytes held in a shared buffer: the returned frame's
    /// payload is a zero-copy window into `b`. Same totality contract as
    /// [`EthFrame::parse`].
    pub fn parse_shared(b: &Payload) -> Result<EthFrame, FrameError> {
        let bytes = b.as_slice();
        Self::check_wire(bytes)?;
        let mut dst = [0u8; 6];
        let mut src = [0u8; 6];
        dst.copy_from_slice(&bytes[0..6]);
        src.copy_from_slice(&bytes[6..12]);
        let ethertype = u16::from_be_bytes([bytes[12], bytes[13]]);
        Ok(EthFrame {
            dst: MacAddr(dst),
            src: MacAddr(src),
            ethertype,
            payload: b.slice(WIRE_HEADER..b.len()),
        })
    }

    /// Shared wire-format validation for the parse entry points.
    fn check_wire(b: &[u8]) -> Result<(), FrameError> {
        if b.len() < WIRE_HEADER {
            return Err(FrameError::ShortHeader(b.len()));
        }
        let payload_len = b.len() - WIRE_HEADER;
        if payload_len > MAX_PAYLOAD {
            return Err(FrameError::Oversize(payload_len));
        }
        Ok(())
    }
}

/// Frame parse errors.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum FrameError {
    /// Fewer bytes than the 14-byte MAC header.
    ShortHeader(usize),
    /// Payload longer than the jumbo MTU.
    Oversize(usize),
}

impl fmt::Display for FrameError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FrameError::ShortHeader(n) => write!(f, "short frame: {n} bytes < 14-byte header"),
            FrameError::Oversize(n) => write!(f, "payload of {n} bytes exceeds jumbo MTU"),
        }
    }
}

impl std::error::Error for FrameError {}

/// Duration of `quanta` pause quanta at `bits_per_sec` line rate.
pub fn pause_duration(quanta: u16, bits_per_sec: f64) -> SimDuration {
    let bits = quanta as u64 * PAUSE_QUANTUM_BITS;
    SimDuration::from_ns_f64(bits as f64 * 1e9 / bits_per_sec)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pause_frame_encoding() {
        let p = EthFrame::pause(MacAddr::from_index(1), 0xffff);
        assert!(p.is_pause());
        assert_eq!(p.pause_quanta(), Some(0xffff));
        assert_eq!(p.dst, MacAddr::PAUSE_MULTICAST);
        // Padded to minimum frame size.
        assert_eq!(p.frame_bytes(), 64);
    }

    #[test]
    fn resume_is_zero_quanta() {
        let p = EthFrame::pause(MacAddr::from_index(2), 0);
        assert_eq!(p.pause_quanta(), Some(0));
    }

    #[test]
    fn data_frame_not_pause() {
        let f = EthFrame::data(MacAddr::from_index(1), MacAddr::from_index(2), vec![0; 100]);
        assert!(!f.is_pause());
        assert_eq!(f.pause_quanta(), None);
        assert_eq!(f.frame_bytes(), 118);
        assert_eq!(f.wire_bytes(), 138);
    }

    #[test]
    fn small_frames_padded() {
        let f = EthFrame::data(MacAddr::from_index(1), MacAddr::from_index(2), vec![1]);
        assert_eq!(f.frame_bytes(), 64);
    }

    #[test]
    #[should_panic(expected = "jumbo")]
    fn oversize_rejected() {
        EthFrame::data(
            MacAddr::from_index(1),
            MacAddr::from_index(2),
            vec![0; MAX_PAYLOAD + 1],
        );
    }

    #[test]
    fn pause_duration_math() {
        // 100 Gbit/s: one quantum = 512 bits = 5.12 ns.
        assert_eq!(pause_duration(1, 100e9).as_ps(), 5120);
        assert_eq!(pause_duration(0xffff, 100e9).as_ps(), 65535 * 5120);
    }

    #[test]
    fn wire_roundtrip() {
        let f = EthFrame::data(
            MacAddr::from_index(3),
            MacAddr::from_index(9),
            vec![7, 8, 9, 10],
        );
        let wire = f.to_wire();
        assert_eq!(wire.len(), WIRE_HEADER + 4);
        assert_eq!(EthFrame::parse(&wire), Ok(f));
        let p = EthFrame::pause(MacAddr::from_index(1), 77);
        assert_eq!(EthFrame::parse(&p.to_wire()), Ok(p));
    }

    #[test]
    fn parse_rejects_short_and_oversize() {
        assert_eq!(
            EthFrame::parse(&[0u8; 13]),
            Err(FrameError::ShortHeader(13))
        );
        assert_eq!(EthFrame::parse(&[]), Err(FrameError::ShortHeader(0)));
        let too_big = vec![0u8; WIRE_HEADER + MAX_PAYLOAD + 1];
        assert_eq!(
            EthFrame::parse(&too_big),
            Err(FrameError::Oversize(MAX_PAYLOAD + 1))
        );
    }

    #[test]
    fn mac_addr_display() {
        let m = MacAddr([0xde, 0xad, 0xbe, 0xef, 0x00, 0x01]);
        assert_eq!(format!("{m:?}"), "de:ad:be:ef:00:01");
    }
}
