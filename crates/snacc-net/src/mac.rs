//! The Ethernet MAC: store-and-forward TX, bounded RX, 802.3x pause.
//!
//! Once an Ethernet frame starts on the wire it cannot be paused, so the
//! MAC fully buffers each frame before transmission (paper Sec 4.7) and
//! only checks the pause state between frames. PAUSE frames are MAC
//! control traffic: they bypass the data queue (front insertion) and are
//! never dropped for lack of TX budget.

use crate::frame::{pause_duration, EthFrame, MacAddr};
use snacc_sim::{Bandwidth, Engine, SharedLink, SimDuration, SimRng, SimTime};
use snacc_trace as trace;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// MAC configuration.
#[derive(Clone, Debug)]
pub struct MacConfig {
    /// Line rate (100 G Ethernet = 12.5 GB/s).
    pub line_rate: Bandwidth,
    /// One-way wire + PHY latency.
    pub wire_latency: SimDuration,
    /// RX buffer capacity in bytes.
    pub rx_buffer_bytes: u64,
    /// Occupancy at which a PAUSE is asserted.
    pub pause_hi_watermark: u64,
    /// Occupancy at which a resume (quanta 0) is sent.
    pub pause_lo_watermark: u64,
    /// TX queue capacity in bytes (full-frame buffering).
    pub tx_queue_bytes: u64,
    /// Is 802.3x flow control enabled?
    pub flow_control: bool,
    /// Quanta requested per PAUSE frame.
    pub pause_quanta: u16,
    /// Probability that a delivered frame is dropped as a CRC error
    /// (failure injection; 0.0 in normal operation).
    pub crc_error_rate: f64,
    /// Probability that a delivered data frame vanishes on the wire
    /// (lossy-link fault injection; 0.0 in normal operation).
    pub drop_rate: f64,
    /// Probability that a delivered data frame arrives corrupted and is
    /// discarded by the FCS check (fault injection; counted separately
    /// from [`MacConfig::crc_error_rate`] noise so campaigns can tell
    /// injected corruption from background errors).
    pub corrupt_rate: f64,
}

impl MacConfig {
    /// A 100 G MAC with flow control on, sized like an FPGA MAC with a
    /// 256 KiB RX buffer.
    pub fn eth_100g() -> Self {
        MacConfig {
            line_rate: Bandwidth::gbit_per_s(100.0),
            wire_latency: SimDuration::from_ns(500),
            rx_buffer_bytes: 256 << 10,
            pause_hi_watermark: 192 << 10,
            pause_lo_watermark: 64 << 10,
            tx_queue_bytes: 256 << 10,
            flow_control: true,
            pause_quanta: 0xffff,
            crc_error_rate: 0.0,
            drop_rate: 0.0,
            corrupt_rate: 0.0,
        }
    }

    /// Same, with flow control disabled (loss demonstration).
    pub fn eth_100g_no_fc() -> Self {
        MacConfig {
            flow_control: false,
            ..Self::eth_100g()
        }
    }
}

/// MAC statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct MacStats {
    /// Data frames transmitted.
    pub tx_frames: u64,
    /// Data bytes (payload) transmitted.
    pub tx_payload_bytes: u64,
    /// Data frames received into the RX buffer.
    pub rx_frames: u64,
    /// Payload bytes received.
    pub rx_payload_bytes: u64,
    /// Frames dropped at RX (buffer overrun).
    pub rx_drops: u64,
    /// Frames dropped as CRC errors (injected).
    pub crc_drops: u64,
    /// Data frames dropped by the lossy-link fault injector.
    pub injected_drops: u64,
    /// Data frames discarded as injector-corrupted (FCS fail).
    pub corrupt_drops: u64,
    /// PAUSE frames sent (including resumes).
    pub pauses_sent: u64,
    /// PAUSE frames received.
    pub pauses_received: u64,
}

type Hook = Rc<RefCell<dyn FnMut(&mut Engine)>>;

/// A full-duplex Ethernet MAC endpoint.
pub struct EthMac {
    name: String,
    addr: MacAddr,
    cfg: MacConfig,
    peer: Option<Rc<RefCell<EthMac>>>,
    /// This MAC's transmit direction of the wire.
    wire: SharedLink,
    tx_queue: VecDeque<EthFrame>,
    tx_queued_bytes: u64,
    tx_in_flight: bool,
    wait_scheduled: bool,
    paused_until: SimTime,
    rx_queue: VecDeque<EthFrame>,
    rx_buffered_bytes: u64,
    congested: bool,
    last_pause_sent: SimTime,
    /// A periodic pause-refresh timer is pending.
    refresh_armed: bool,
    rx_hook: Option<Hook>,
    tx_space_hook: Option<Hook>,
    rng: SimRng,
    stats: MacStats,
}

impl EthMac {
    /// Create a MAC endpoint (connect with [`connect`]).
    pub fn new(
        name: impl Into<String>,
        addr: MacAddr,
        cfg: MacConfig,
        seed: u64,
    ) -> Rc<RefCell<EthMac>> {
        let name = name.into();
        let wire = SharedLink::new(format!("{name}.wire"), cfg.line_rate, cfg.wire_latency);
        Rc::new(RefCell::new(EthMac {
            name,
            addr,
            cfg,
            peer: None,
            wire,
            tx_queue: VecDeque::new(),
            tx_queued_bytes: 0,
            tx_in_flight: false,
            wait_scheduled: false,
            paused_until: SimTime::ZERO,
            rx_queue: VecDeque::new(),
            rx_buffered_bytes: 0,
            congested: false,
            last_pause_sent: SimTime::ZERO,
            refresh_armed: false,
            rx_hook: None,
            tx_space_hook: None,
            rng: SimRng::new(seed),
            stats: MacStats::default(),
        }))
    }

    /// This MAC's address.
    pub fn addr(&self) -> MacAddr {
        self.addr
    }

    /// Display name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> MacStats {
        self.stats
    }

    /// Bytes currently buffered at RX.
    pub fn rx_occupancy(&self) -> u64 {
        self.rx_buffered_bytes
    }

    /// Frames waiting in the RX buffer.
    pub fn rx_pending(&self) -> usize {
        self.rx_queue.len()
    }

    /// Can the TX queue accept a frame of `payload_len` bytes?
    pub fn tx_has_space(&self, payload_len: usize) -> bool {
        self.tx_queued_bytes + payload_len as u64 <= self.cfg.tx_queue_bytes
    }

    /// Size (frame bytes) of the frame at the head of the RX buffer.
    pub fn rx_peek_bytes(&self) -> Option<u64> {
        self.rx_queue.front().map(|f| f.frame_bytes())
    }

    /// Destination address of the frame at the head of the RX buffer.
    pub fn rx_peek_dst(&self) -> Option<MacAddr> {
        self.rx_queue.front().map(|f| f.dst)
    }

    /// Source address of the frame at the head of the RX buffer.
    pub fn rx_peek_src(&self) -> Option<MacAddr> {
        self.rx_queue.front().map(|f| f.src)
    }

    /// Is this MAC currently honouring a received PAUSE?
    pub fn is_paused(&self, now: SimTime) -> bool {
        now < self.paused_until
    }

    /// Set the lossy-link fault-injection rates (see
    /// [`MacConfig::drop_rate`] / [`MacConfig::corrupt_rate`]). Campaigns
    /// call this on an already-connected MAC.
    pub fn set_fault_rates(&mut self, drop_rate: f64, corrupt_rate: f64) {
        self.cfg.drop_rate = drop_rate;
        self.cfg.corrupt_rate = corrupt_rate;
    }

    /// Install the "frames available at RX" hook.
    pub fn set_rx_hook(&mut self, hook: impl FnMut(&mut Engine) + 'static) {
        self.rx_hook = Some(Rc::new(RefCell::new(hook)));
    }

    /// Install the "TX queue drained a frame" hook.
    pub fn set_tx_space_hook(&mut self, hook: impl FnMut(&mut Engine) + 'static) {
        self.tx_space_hook = Some(Rc::new(RefCell::new(hook)));
    }
}

/// Connect two MAC endpoints back to back (or to switch ports).
pub fn connect(a: &Rc<RefCell<EthMac>>, b: &Rc<RefCell<EthMac>>) {
    a.borrow_mut().peer = Some(b.clone());
    b.borrow_mut().peer = Some(a.clone());
}

/// Enqueue a data frame for transmission. Returns `false` (frame refused)
/// when the TX queue is full — the caller must retry on the TX-space hook.
pub fn send(rc: &Rc<RefCell<EthMac>>, en: &mut Engine, frame: EthFrame) -> bool {
    {
        let mut m = rc.borrow_mut();
        let cost = frame.frame_bytes();
        if m.tx_queued_bytes + cost > m.cfg.tx_queue_bytes {
            return false;
        }
        m.tx_queued_bytes += cost;
        m.tx_queue.push_back(frame);
    }
    pump_tx(rc, en);
    true
}

/// Pop a received frame, possibly emitting a resume PAUSE when the buffer
/// drains below the low watermark.
pub fn pop_frame(rc: &Rc<RefCell<EthMac>>, en: &mut Engine) -> Option<EthFrame> {
    let (frame, resume) = {
        let mut m = rc.borrow_mut();
        let frame = m.rx_queue.pop_front()?;
        m.rx_buffered_bytes -= frame.frame_bytes();
        let resume =
            m.cfg.flow_control && m.congested && m.rx_buffered_bytes <= m.cfg.pause_lo_watermark;
        if resume {
            m.congested = false;
        }
        (frame, resume)
    };
    if resume {
        send_pause(rc, en, 0);
    }
    Some(frame)
}

/// Queue a PAUSE/resume frame with control-frame priority. Asserting a
/// pause also arms a periodic refresh timer: as long as the receiver
/// stays congested, a fresh PAUSE goes out every half pause-duration so
/// a long-stalled sink cannot let the sender's pause expire (real MACs
/// refresh from a timer, not from frame arrivals).
fn send_pause(rc: &Rc<RefCell<EthMac>>, en: &mut Engine, quanta: u16) {
    let arm = {
        let mut m = rc.borrow_mut();
        let src = m.addr;
        // Control frames bypass the data budget and go to the front.
        m.tx_queue.push_front(EthFrame::pause(src, quanta));
        m.stats.pauses_sent += 1;
        m.last_pause_sent = en.now();
        let dur = pause_duration(m.cfg.pause_quanta, m.cfg.line_rate.bytes_per_sec() * 8.0);
        if quanta > 0 && !m.refresh_armed {
            m.refresh_armed = true;
            Some(dur / 2)
        } else {
            None
        }
    };
    if let Some(delay) = arm {
        let rc2 = rc.clone();
        en.schedule_in(delay, move |en| {
            let still = {
                let mut m = rc2.borrow_mut();
                m.refresh_armed = false;
                m.congested
            };
            if still {
                let q = rc2.borrow().cfg.pause_quanta;
                send_pause(&rc2, en, q);
            }
        });
    }
    pump_tx(rc, en);
}

/// Schedule a PAUSE storm from this MAC: `count` PAUSE frames of
/// `quanta` quanta each, the first at `start`, spaced `interval` apart.
/// Models a misbehaving or badly congested peer that keeps the link
/// throttled far beyond what its buffers justify (fault injection).
pub fn schedule_pause_storm(
    rc: &Rc<RefCell<EthMac>>,
    en: &mut Engine,
    start: SimTime,
    count: u32,
    interval: SimDuration,
    quanta: u16,
) {
    for i in 0..count {
        let rc2 = rc.clone();
        en.schedule_at(start + interval * i as u64, move |en| {
            trace::metric_counter("faults.net.pause_storms").inc();
            send_pause(&rc2, en, quanta);
        });
    }
}

enum TxAction {
    None,
    Wait(SimTime),
    Send(EthFrame),
}

/// Advance the transmit side: send the next frame if allowed.
pub fn pump_tx(rc: &Rc<RefCell<EthMac>>, en: &mut Engine) {
    let action = {
        let mut m = rc.borrow_mut();
        if m.tx_in_flight || m.wait_scheduled {
            TxAction::None
        } else if let Some(head) = m.tx_queue.front() {
            let is_pause = head.is_pause();
            if !is_pause && en.now() < m.paused_until {
                TxAction::Wait(m.paused_until)
            } else {
                let f = m.tx_queue.pop_front().expect("head exists");
                if !f.is_pause() {
                    m.tx_queued_bytes -= f.frame_bytes();
                    m.stats.tx_frames += 1;
                    m.stats.tx_payload_bytes += f.payload.len() as u64;
                }
                m.tx_in_flight = true;
                TxAction::Send(f)
            }
        } else {
            TxAction::None
        }
    };
    match action {
        TxAction::None => {}
        TxAction::Wait(until) => {
            {
                rc.borrow_mut().wait_scheduled = true;
            }
            let rc2 = rc.clone();
            en.schedule_at(until, move |en| {
                rc2.borrow_mut().wait_scheduled = false;
                pump_tx(&rc2, en);
            });
        }
        TxAction::Send(frame) => {
            let (arrival, tx_free, peer, tx_hook) = {
                let mut m = rc.borrow_mut();
                let arrival = m.wire.transfer(en.now(), frame.wire_bytes());
                let tx_free = arrival - m.cfg.wire_latency;
                if trace::enabled() {
                    let name = if frame.is_pause() {
                        "eth.pause_tx"
                    } else {
                        "eth.tx"
                    };
                    trace::span_between(
                        &format!("net.{}", m.name),
                        name,
                        en.now(),
                        arrival,
                        &[("wire_bytes", frame.wire_bytes())],
                    );
                }
                (arrival, tx_free, m.peer.clone(), m.tx_space_hook.clone())
            };
            // TX side becomes free when the last byte leaves.
            let rc2 = rc.clone();
            en.schedule_at(tx_free, move |en| {
                rc2.borrow_mut().tx_in_flight = false;
                pump_tx(&rc2, en);
                if let Some(h) = &tx_hook {
                    (h.borrow_mut())(en);
                }
            });
            // Frame arrives at the peer after wire latency.
            if let Some(peer) = peer {
                en.schedule_at(arrival, move |en| deliver(&peer, en, frame));
            }
        }
    }
}

/// Deliver a frame arriving from the wire to this MAC.
fn deliver(rc: &Rc<RefCell<EthMac>>, en: &mut Engine, frame: EthFrame) {
    enum RxAction {
        None,
        Notify,
        NotifyAndPause(u16),
    }
    let mut return_action_repump = false;
    let action = {
        let mut m = rc.borrow_mut();
        // Fault injection: lossy-link drops and FCS-detected corruption
        // apply to data frames only, so a campaign cannot silently kill
        // flow control. Draws are skipped entirely at rate 0.0, keeping
        // the per-MAC RNG stream — and thus fault-free traces —
        // byte-identical to pre-injection builds.
        if frame.pause_quanta().is_none() {
            let (drop_rate, corrupt_rate) = (m.cfg.drop_rate, m.cfg.corrupt_rate);
            if drop_rate > 0.0 && m.rng.gen_bool(drop_rate) {
                m.stats.injected_drops += 1;
                trace::metric_counter("faults.net.frame_drops").inc();
                if trace::enabled() {
                    trace::instant(
                        en,
                        &format!("net.{}", m.name),
                        "eth.fault_drop",
                        &[("bytes", frame.frame_bytes())],
                    );
                }
                return;
            }
            if corrupt_rate > 0.0 && m.rng.gen_bool(corrupt_rate) {
                m.stats.corrupt_drops += 1;
                trace::metric_counter("faults.net.frame_corruptions").inc();
                if trace::enabled() {
                    trace::instant(
                        en,
                        &format!("net.{}", m.name),
                        "eth.fault_corrupt",
                        &[("bytes", frame.frame_bytes())],
                    );
                }
                return;
            }
        }
        // Injected CRC errors drop the frame on arrival.
        let crc_rate = m.cfg.crc_error_rate;
        if crc_rate > 0.0 && m.rng.gen_bool(crc_rate) {
            m.stats.crc_drops += 1;
            if trace::enabled() {
                trace::instant(
                    en,
                    &format!("net.{}", m.name),
                    "eth.crc_drop",
                    &[("bytes", frame.frame_bytes())],
                );
            }
            return;
        }
        if let Some(quanta) = frame.pause_quanta() {
            m.stats.pauses_received += 1;
            if trace::enabled() {
                trace::instant(
                    en,
                    &format!("net.{}", m.name),
                    "eth.pause_rx",
                    &[("quanta", quanta as u64)],
                );
            }
            if m.cfg.flow_control {
                let dur = pause_duration(quanta, m.cfg.line_rate.bytes_per_sec() * 8.0);
                let new_until = en.now() + dur;
                let shortened = new_until < m.paused_until;
                m.paused_until = new_until;
                if shortened || quanta == 0 {
                    // A resume (or shorter pause) releases the TX path now;
                    // the pending wait event holds the stale deadline.
                    m.wait_scheduled = false;
                    return_action_repump = true;
                }
            }
            RxAction::None
        } else {
            let cost = frame.frame_bytes();
            if m.rx_buffered_bytes + cost > m.cfg.rx_buffer_bytes {
                m.stats.rx_drops += 1;
                if trace::enabled() {
                    trace::instant(
                        en,
                        &format!("net.{}", m.name),
                        "eth.rx_drop",
                        &[("bytes", cost), ("occupancy", m.rx_buffered_bytes)],
                    );
                }
                RxAction::None
            } else {
                m.rx_buffered_bytes += cost;
                m.stats.rx_frames += 1;
                m.stats.rx_payload_bytes += frame.payload.len() as u64;
                m.rx_queue.push_back(frame);
                if trace::enabled() {
                    trace::instant(
                        en,
                        &format!("net.{}", m.name),
                        "eth.rx",
                        &[("bytes", cost), ("occupancy", m.rx_buffered_bytes)],
                    );
                }
                if m.cfg.flow_control && m.rx_buffered_bytes >= m.cfg.pause_hi_watermark {
                    // Assert (or refresh) the pause. Refresh is rate-limited
                    // to half the pause duration so a long-stalled sink
                    // cannot let the pause expire.
                    let refresh_after =
                        pause_duration(m.cfg.pause_quanta, m.cfg.line_rate.bytes_per_sec() * 8.0)
                            / 2;
                    let need = !m.congested || en.now() >= m.last_pause_sent + refresh_after;
                    if need {
                        m.congested = true;
                        RxAction::NotifyAndPause(m.cfg.pause_quanta)
                    } else {
                        RxAction::Notify
                    }
                } else {
                    RxAction::Notify
                }
            }
        }
    };
    if return_action_repump {
        pump_tx(rc, en);
    }
    match action {
        RxAction::None => {}
        RxAction::Notify => notify_rx(rc, en),
        RxAction::NotifyAndPause(q) => {
            send_pause(rc, en, q);
            notify_rx(rc, en);
        }
    }
}

fn notify_rx(rc: &Rc<RefCell<EthMac>>, en: &mut Engine) {
    let hook = rc.borrow().rx_hook.clone();
    if let Some(h) = hook {
        (h.borrow_mut())(en);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pair(cfg_a: MacConfig, cfg_b: MacConfig) -> (Rc<RefCell<EthMac>>, Rc<RefCell<EthMac>>) {
        let a = EthMac::new("a", MacAddr::from_index(1), cfg_a, 11);
        let b = EthMac::new("b", MacAddr::from_index(2), cfg_b, 22);
        connect(&a, &b);
        (a, b)
    }

    #[test]
    fn frame_delivery() {
        let mut en = Engine::new();
        let (a, b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        let f = EthFrame::data(
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            vec![9u8; 1000],
        );
        assert!(send(&a, &mut en, f.clone()));
        en.run();
        let got = pop_frame(&b, &mut en).expect("frame arrives");
        assert_eq!(got, f);
        assert_eq!(b.borrow().stats().rx_frames, 1);
    }

    #[test]
    fn line_rate_timing() {
        let mut en = Engine::new();
        let (a, _b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        // 4096 B payload → 4114 frame + 20 overhead = 4134 wire bytes at
        // 12.5 GB/s ≈ 330.7 ns + 500 ns latency.
        let f = EthFrame::data(
            MacAddr::from_index(2),
            MacAddr::from_index(1),
            vec![0; 4096],
        );
        send(&a, &mut en, f);
        let end = en.run();
        let ns = end.as_ns();
        assert!((830..=835).contains(&ns), "{ns}");
    }

    #[test]
    fn slow_sink_without_fc_drops() {
        let mut en = Engine::new();
        let (a, b) = pair(MacConfig::eth_100g_no_fc(), MacConfig::eth_100g_no_fc());
        // Never pop at b: rx buffer (256 KiB) overruns.
        for i in 0..200 {
            let f = EthFrame::data(
                MacAddr::from_index(2),
                MacAddr::from_index(1),
                vec![i as u8; 4096],
            );
            // Retry until accepted (tx queue drains at line rate).
            while !send(&a, &mut en, f.clone()) {
                en.step();
            }
        }
        en.run();
        assert!(b.borrow().stats().rx_drops > 0, "expected overruns");
    }

    #[test]
    fn slow_sink_with_fc_is_lossless() {
        let mut en = Engine::new();
        let (a, b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        let total = 300u64;
        let mut sent = 0u64;
        // Drain slowly: pop one frame every 10 µs (≈ 0.4 GB/s).
        fn drain(b: Rc<RefCell<EthMac>>, en: &mut Engine, popped: Rc<RefCell<u64>>) {
            let _ = pop_frame(&b, en);
            *popped.borrow_mut() += 1;
            en.schedule_in(SimDuration::from_us(10), move |en| drain(b, en, popped));
        }
        let popped = Rc::new(RefCell::new(0u64));
        let b2 = b.clone();
        let p2 = popped.clone();
        en.schedule_at(SimTime::ZERO, move |en| drain(b2, en, p2));
        while sent < total {
            let f = EthFrame::data(
                MacAddr::from_index(2),
                MacAddr::from_index(1),
                vec![sent as u8; 4096],
            );
            if send(&a, &mut en, f) {
                sent += 1;
            } else if !en.step() {
                break;
            }
        }
        // Run long enough for the slow drain to finish.
        en.run_until(SimTime::ZERO + SimDuration::from_ms(10));
        let sb = b.borrow().stats();
        assert_eq!(sb.rx_drops, 0, "flow control must prevent loss");
        assert_eq!(sb.rx_frames, total);
        assert!(sb.pauses_sent > 0, "pause must have been asserted");
        assert!(a.borrow().stats().pauses_received > 0);
    }

    #[test]
    fn pause_frame_pauses_sender() {
        let mut en = Engine::new();
        let (a, b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        // b explicitly sends a pause; a must stop transmitting data.
        send_pause(&b, &mut en, 0xffff);
        en.run();
        assert!(a.borrow().is_paused(en.now()));
        // A queued data frame waits ~335 µs (0xffff quanta at 100 G).
        let f = EthFrame::data(MacAddr::from_index(2), MacAddr::from_index(1), vec![0; 512]);
        send(&a, &mut en, f);
        let end = en.run();
        assert!(end.as_us_f64() > 330.0, "{}", end.as_us_f64());
        assert_eq!(b.borrow().stats().rx_frames, 1);
    }

    #[test]
    fn resume_unpauses_early() {
        let mut en = Engine::new();
        let (a, b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        send_pause(&b, &mut en, 0xffff);
        en.run();
        assert!(a.borrow().is_paused(en.now()));
        send_pause(&b, &mut en, 0); // resume
        en.run();
        assert!(!a.borrow().is_paused(en.now()));
    }

    #[test]
    fn crc_errors_drop_frames() {
        let mut en = Engine::new();
        let mut cfg = MacConfig::eth_100g();
        cfg.crc_error_rate = 1.0;
        let (a, b) = pair(MacConfig::eth_100g(), cfg);
        let f = EthFrame::data(MacAddr::from_index(2), MacAddr::from_index(1), vec![0; 100]);
        send(&a, &mut en, f);
        en.run();
        assert_eq!(b.borrow().stats().crc_drops, 1);
        assert_eq!(b.borrow().stats().rx_frames, 0);
    }

    #[test]
    fn injected_drops_and_corruption_counted_separately() {
        let mut en = Engine::new();
        let mut cfg = MacConfig::eth_100g();
        cfg.drop_rate = 1.0;
        let (a, b) = pair(MacConfig::eth_100g(), cfg);
        let f = EthFrame::data(MacAddr::from_index(2), MacAddr::from_index(1), vec![0; 100]);
        send(&a, &mut en, f.clone());
        en.run();
        assert_eq!(b.borrow().stats().injected_drops, 1);
        assert_eq!(b.borrow().stats().rx_frames, 0);
        // Corruption hits its own counter.
        b.borrow_mut().cfg.drop_rate = 0.0;
        b.borrow_mut().cfg.corrupt_rate = 1.0;
        send(&a, &mut en, f);
        en.run();
        let sb = b.borrow().stats();
        assert_eq!(
            (sb.injected_drops, sb.corrupt_drops, sb.rx_frames),
            (1, 1, 0)
        );
    }

    #[test]
    fn lossy_link_spares_pause_frames() {
        let mut en = Engine::new();
        let mut cfg = MacConfig::eth_100g();
        cfg.drop_rate = 1.0;
        cfg.corrupt_rate = 1.0;
        let (a, b) = pair(cfg, MacConfig::eth_100g());
        // A PAUSE from b must survive a's fully lossy injector.
        send_pause(&b, &mut en, 0xffff);
        en.run();
        assert!(a.borrow().is_paused(en.now()));
        assert_eq!(a.borrow().stats().injected_drops, 0);
    }

    #[test]
    fn pause_storm_throttles_sender() {
        let mut en = Engine::new();
        let (a, b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        // Ten max-quanta PAUSEs every 100 µs keep a throttled ~1 ms even
        // though b's buffers are empty the whole time.
        schedule_pause_storm(
            &b,
            &mut en,
            SimTime::ZERO,
            10,
            SimDuration::from_us(100),
            0xffff,
        );
        // Queue the data frame mid-storm (50 µs in) so it waits out the
        // full stacked pause window.
        let a2 = a.clone();
        en.schedule_at(SimTime::ZERO + SimDuration::from_us(50), move |en| {
            let f = EthFrame::data(MacAddr::from_index(2), MacAddr::from_index(1), vec![0; 512]);
            send(&a2, en, f);
        });
        let end = en.run();
        assert!(end.as_us_f64() > 1000.0, "{}", end.as_us_f64());
        assert_eq!(b.borrow().stats().rx_frames, 1);
        assert_eq!(a.borrow().stats().pauses_received, 10);
    }

    #[test]
    fn tx_queue_limit_enforced() {
        let mut en = Engine::new();
        let (a, _b) = pair(MacConfig::eth_100g(), MacConfig::eth_100g());
        let mut accepted = 0;
        loop {
            let f = EthFrame::data(
                MacAddr::from_index(2),
                MacAddr::from_index(1),
                vec![0; 8000],
            );
            if !send(&a, &mut en, f) {
                break;
            }
            accepted += 1;
            if accepted > 1000 {
                panic!("tx queue never filled");
            }
        }
        // 256 KiB / ~8 KiB ≈ 32 frames (first may already be in flight).
        assert!((30..=35).contains(&accepted), "{accepted}");
    }
}
