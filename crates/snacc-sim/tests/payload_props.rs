//! Property tests: [`Payload`] windowing operations are byte-equivalent
//! to the corresponding `Vec<u8>` operations, for arbitrary contents and
//! arbitrary (in-bounds) cut points — including slices of slices, so
//! offset composition is exercised, and [`PayloadQueue`] against a flat
//! `VecDeque<u8>` model.

use proptest::prelude::*;
use snacc_sim::bytes::pattern_byte;
use snacc_sim::{Payload, PayloadQueue};

proptest! {
    /// `slice(a..b)` equals `&v[a..b]` for any in-bounds range, and a
    /// second slice composes like re-slicing the vector.
    #[test]
    fn slice_equals_vec_range(
        v in proptest::collection::vec(any::<u8>(), 0..300),
        cuts in proptest::collection::vec(any::<u64>(), 4),
    ) {
        let p = Payload::from_vec(v.clone());
        let n = v.len() as u64;
        let (a, b) = (cuts[0] % (n + 1), cuts[1] % (n + 1));
        let (a, b) = (a.min(b) as usize, a.max(b) as usize);
        let s = p.slice(a..b);
        prop_assert_eq!(s.as_slice(), &v[a..b]);
        // Slice of a slice == re-slice of the vec.
        let m = (b - a) as u64;
        let (c, d) = (cuts[2] % (m + 1), cuts[3] % (m + 1));
        let (c, d) = (c.min(d) as usize, c.max(d) as usize);
        let ss = s.slice(c..d);
        prop_assert_eq!(ss.as_slice(), &v[a + c..a + d]);
    }

    /// `split_at(mid)` equals `slice::split_at`, and re-concatenating the
    /// halves reproduces the original bytes (zero-copy, same backing).
    #[test]
    fn split_then_concat_roundtrips(
        v in proptest::collection::vec(any::<u8>(), 0..300),
        cut in any::<u64>(),
    ) {
        let p = Payload::from_vec(v.clone());
        let mid = (cut % (v.len() as u64 + 1)) as usize;
        let (head, tail) = p.split_at(mid);
        let (vh, vt) = v.split_at(mid);
        prop_assert_eq!(head.as_slice(), vh);
        prop_assert_eq!(tail.as_slice(), vt);
        let joined = Payload::concat(&[head, tail]);
        prop_assert_eq!(joined.as_slice(), &v[..]);
    }

    /// `concat` of arbitrary (unrelated) parts equals `Vec` concatenation.
    #[test]
    fn concat_equals_vec_append(
        parts in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..64), 0..8),
    ) {
        let payloads: Vec<Payload> =
            parts.iter().map(|p| Payload::from_vec(p.clone())).collect();
        let flat: Vec<u8> = parts.concat();
        let joined = Payload::concat(&payloads);
        prop_assert_eq!(joined.as_slice(), &flat[..]);
    }

    /// Pattern segments materialise to exactly `pattern_byte(seed, i)`,
    /// and slicing before materialisation equals slicing after.
    #[test]
    fn pattern_windows_are_pure(
        seed in any::<u64>(),
        len in 0u64..500,
        cut in any::<u64>(),
    ) {
        let flat: Vec<u8> = (0..len).map(|i| pattern_byte(seed, i)).collect();
        let p = Payload::pattern(seed, len as usize);
        let mid = (cut % (len + 1)) as usize;
        let (head, tail) = p.split_at(mid);
        prop_assert_eq!(head.as_slice(), &flat[..mid]);
        prop_assert_eq!(tail.as_slice(), &flat[mid..]);
        prop_assert_eq!(p.as_slice(), &flat[..]);
    }

    /// A [`PayloadQueue`] fed arbitrary segments and drained with
    /// arbitrary take sizes yields the same byte stream as a flat model.
    #[test]
    fn queue_equals_flat_stream(
        segs in proptest::collection::vec(
            proptest::collection::vec(any::<u8>(), 0..80), 1..12),
        takes in proptest::collection::vec(1u64..100, 1..20),
    ) {
        let mut q = PayloadQueue::new();
        let mut model: Vec<u8> = Vec::new();
        for s in &segs {
            model.extend_from_slice(s);
            q.push_back(Payload::from_vec(s.clone()));
        }
        prop_assert_eq!(q.len(), model.len());
        let mut cursor = 0usize;
        for t in takes {
            let n = (t as usize).min(q.len());
            let got = q.take(n);
            prop_assert_eq!(got.as_slice(), &model[cursor..cursor + n]);
            cursor += n;
            if q.is_empty() {
                break;
            }
        }
    }
}
