//! Engine microbenchmarks: raw event throughput for the scheduling
//! shapes the models exercise — timer ladders (heap ping-pong), wide
//! heaps (many concurrent timers), and same-instant cascades
//! (`schedule_now`-dominated hook deferral, the dominant shape in the
//! AXIS/streamer datapath).
//!
//! Run with `cargo bench -p snacc-sim`. Each figure is a full
//! engine lifetime, so the printed ms/iter divides into events/sec by
//! the per-bench event counts below.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snacc_sim::{Engine, SimDuration};

/// Events per iteration for the chain-shaped benches.
const CHAIN: u64 = 200_000;

/// One self-rescheduling timer chain advancing 1 ns per event.
fn ladder(en: &mut Engine, left: u64) {
    if left > 0 {
        en.schedule_in(SimDuration::from_ns(1), move |en| ladder(en, left - 1));
    }
}

/// A same-instant cascade: each event schedules its successor with
/// `schedule_now`, never advancing time.
fn cascade(en: &mut Engine, left: u64) {
    if left > 0 {
        en.schedule_now(move |en| cascade(en, left - 1));
    }
}

/// A periodic timer rescheduling itself every `period_ns`.
fn periodic(en: &mut Engine, period_ns: u64, left: u64) {
    if left > 0 {
        en.schedule_in(SimDuration::from_ns(period_ns), move |en| {
            periodic(en, period_ns, left - 1)
        });
    }
}

/// A ladder step that also fires a burst of same-instant hook events —
/// the mixed shape AXIS push/pop hooks create.
fn mixed(en: &mut Engine, left: u64) {
    if left > 0 {
        for _ in 0..4 {
            en.schedule_now(|_| {});
        }
        en.schedule_in(SimDuration::from_ns(1), move |en| mixed(en, left - 1));
    }
}

fn engine_benches(c: &mut Criterion) {
    let quick = std::env::var_os("SNACC_QUICK").is_some();
    let mut g = c.benchmark_group("engine");
    g.sample_size(if quick { 3 } else { 10 });

    // 200k events, heap holds one entry at a time.
    g.bench_function("timer_ladder_200k", |b| {
        b.iter(|| {
            let mut en = Engine::new();
            ladder(&mut en, CHAIN);
            en.run();
            black_box(en.now())
        })
    });

    // 200k events, all at the same instant through the FIFO lane.
    g.bench_function("schedule_now_cascade_200k", |b| {
        b.iter(|| {
            let mut en = Engine::new();
            en.schedule_now(move |en| cascade(en, CHAIN));
            en.run();
            black_box(en.now())
        })
    });

    // 64 concurrent timers with coprime-ish periods: 256k events with a
    // heap that stays 64 deep (sift costs dominate).
    g.bench_function("wide_heap_64x4k", |b| {
        b.iter(|| {
            let mut en = Engine::new();
            for t in 0..64u64 {
                periodic(&mut en, t + 1, 4_000);
            }
            en.run();
            black_box(en.now())
        })
    });

    // 40k timer steps each bursting 4 same-instant events (200k total).
    g.bench_function("mixed_ladder_bursts_200k", |b| {
        b.iter(|| {
            let mut en = Engine::new();
            mixed(&mut en, CHAIN / 5);
            en.run();
            black_box(en.now())
        })
    });

    g.finish();
}

criterion_group!(benches, engine_benches);
criterion_main!(benches);
