//! # snacc-sim — discrete-event simulation kernel
//!
//! This crate is the foundation of the SNAcc reproduction: a small,
//! deterministic discrete-event simulation (DES) engine with a picosecond
//! clock, plus the shared building blocks every hardware model in the
//! workspace uses:
//!
//! * [`SimTime`] / [`SimDuration`] — 64-bit picosecond simulated time,
//! * [`Engine`] — the event queue and scheduler,
//! * [`link::SharedLink`] — a serialising bandwidth resource used to model
//!   PCIe links, DRAM ports and NAND channels,
//! * [`stats`] — counters, byte meters and latency histograms,
//! * [`rng::SimRng`] — a deterministic, seedable PRNG so that every
//!   simulation run is exactly reproducible.
//!
//! The engine is intentionally single-threaded: determinism of event order
//! is a correctness property for the models built on top (the experiment
//! harness parallelises across *independent simulations* instead, see
//! `snacc-bench`).
//!
//! ## Example
//!
//! ```
//! use snacc_sim::{Engine, SimDuration};
//! use std::cell::Cell;
//! use std::rc::Rc;
//!
//! let mut engine = Engine::new();
//! let hits = Rc::new(Cell::new(0u32));
//! let h = hits.clone();
//! engine.schedule_in(SimDuration::from_ns(5), move |en| {
//!     h.set(h.get() + 1);
//!     let h2 = h.clone();
//!     en.schedule_in(SimDuration::from_ns(5), move |_| h2.set(h2.get() + 1));
//! });
//! engine.run();
//! assert_eq!(hits.get(), 2);
//! assert_eq!(engine.now().as_ns(), 10);
//! ```

pub mod bytes;
pub mod engine;
pub mod link;
pub mod rng;
pub mod stats;
pub mod time;

pub use bytes::{Payload, PayloadQueue};
pub use engine::{Engine, EngineError};
pub use link::{Bandwidth, SharedLink};
pub use rng::SimRng;
pub use time::{SimDuration, SimTime};

/// Integer ceiling division, used throughout the models for sizing
/// page/beat/burst counts.
#[inline]
pub fn ceil_div(a: u64, b: u64) -> u64 {
    debug_assert!(b > 0);
    a.div_ceil(b)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ceil_div_basics() {
        assert_eq!(ceil_div(0, 4), 0);
        assert_eq!(ceil_div(1, 4), 1);
        assert_eq!(ceil_div(4, 4), 1);
        assert_eq!(ceil_div(5, 4), 2);
        assert_eq!(ceil_div(8192, 4096), 2);
    }
}
