//! Bandwidth-serialising resources.
//!
//! A [`SharedLink`] models anything with a finite byte rate that serves one
//! transfer at a time: a PCIe direction, a DRAM data port, a NAND channel,
//! an Ethernet wire. Transfers *occupy* the link back-to-back and then pay a
//! fixed propagation latency, so contention between concurrent users falls
//! out naturally from `free_at` bookkeeping instead of explicit queues.

use crate::stats::ByteMeter;
use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A byte rate. Stored as bytes/second in `f64`; conversions to event times
/// round to the nearest picosecond, which is deterministic across runs.
#[derive(Clone, Copy, PartialEq)]
pub struct Bandwidth {
    bytes_per_sec: f64,
}

impl Bandwidth {
    /// From decimal gigabytes per second (the unit the SNAcc paper reports).
    pub fn gb_per_s(gb: f64) -> Self {
        assert!(gb > 0.0, "bandwidth must be positive");
        Bandwidth {
            bytes_per_sec: gb * 1e9,
        }
    }

    /// From decimal megabytes per second.
    pub fn mb_per_s(mb: f64) -> Self {
        Bandwidth::gb_per_s(mb / 1e3)
    }

    /// From a line rate in gigabits per second (network convention),
    /// e.g. `Bandwidth::gbit_per_s(100.0)` = 12.5 GB/s.
    pub fn gbit_per_s(gbit: f64) -> Self {
        Bandwidth::gb_per_s(gbit / 8.0)
    }

    /// Raw bytes per second.
    #[inline]
    pub fn bytes_per_sec(self) -> f64 {
        self.bytes_per_sec
    }

    /// Decimal GB/s.
    #[inline]
    pub fn as_gb_per_s(self) -> f64 {
        self.bytes_per_sec / 1e9
    }

    /// Time to move `bytes` at this rate (rounded to nearest picosecond,
    /// but never zero for a non-empty transfer).
    #[inline]
    pub fn time_for(self, bytes: u64) -> SimDuration {
        if bytes == 0 {
            return SimDuration::ZERO;
        }
        let ps = (bytes as f64) * 1e12 / self.bytes_per_sec;
        SimDuration::from_ps((ps.round() as u64).max(1))
    }

    /// Scale the rate by a factor (e.g. efficiency derating).
    pub fn scaled(self, factor: f64) -> Bandwidth {
        assert!(factor > 0.0);
        Bandwidth {
            bytes_per_sec: self.bytes_per_sec * factor,
        }
    }
}

impl fmt::Debug for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.3} GB/s", self.as_gb_per_s())
    }
}

impl fmt::Display for Bandwidth {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:.2} GB/s", self.as_gb_per_s())
    }
}

/// A serialising bandwidth resource with fixed propagation latency.
///
/// `transfer(now, bytes)` books the link for `bytes / bandwidth` starting at
/// `max(now, free_at)` and returns the time the last byte *arrives*
/// (occupancy end + latency). Callers schedule their completion events at
/// the returned time.
pub struct SharedLink {
    name: String,
    bandwidth: Bandwidth,
    latency: SimDuration,
    free_at: SimTime,
    meter: ByteMeter,
}

impl SharedLink {
    /// Create a link with the given rate and propagation latency.
    pub fn new(name: impl Into<String>, bandwidth: Bandwidth, latency: SimDuration) -> Self {
        SharedLink {
            name: name.into(),
            bandwidth,
            latency,
            free_at: SimTime::ZERO,
            meter: ByteMeter::new(),
        }
    }

    /// The link's display name (used in traces and bandwidth reports).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Configured byte rate.
    pub fn bandwidth(&self) -> Bandwidth {
        self.bandwidth
    }

    /// Configured propagation latency.
    pub fn latency(&self) -> SimDuration {
        self.latency
    }

    /// When the link next becomes idle.
    pub fn free_at(&self) -> SimTime {
        self.free_at
    }

    /// Total bytes ever moved across this link.
    pub fn bytes_transferred(&self) -> u64 {
        self.meter.bytes()
    }

    /// Total transfer operations.
    pub fn transfers(&self) -> u64 {
        self.meter.ops()
    }

    /// Book a transfer of `bytes` requested at `now`; returns arrival time
    /// of the last byte.
    pub fn transfer(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let start = now.max(self.free_at);
        let occupy = self.bandwidth.time_for(bytes);
        self.free_at = start + occupy;
        self.meter.record(bytes);
        self.free_at + self.latency
    }

    /// Book a small transfer that interleaves into gaps between bulk
    /// packets instead of queueing behind them: pays its serialisation
    /// time and latency but does not advance `free_at`. PCIe control
    /// traffic (doorbells, completions, descriptor fetches) rides between
    /// large TLPs this way; modelling it as queued would let a single
    /// megabyte data window add hundreds of microseconds to a 16-byte
    /// completion.
    pub fn transfer_interleaved(&mut self, now: SimTime, bytes: u64) -> SimTime {
        let occupy = self.bandwidth.time_for(bytes);
        self.meter.record(bytes);
        now + occupy + self.latency
    }

    /// Book a transfer that additionally pays a fixed per-operation
    /// overhead on the wire (e.g. packet headers expressed in time).
    pub fn transfer_with_overhead(
        &mut self,
        now: SimTime,
        bytes: u64,
        overhead: SimDuration,
    ) -> SimTime {
        let start = now.max(self.free_at);
        let occupy = self.bandwidth.time_for(bytes) + overhead;
        self.free_at = start + occupy;
        self.meter.record(bytes);
        self.free_at + self.latency
    }

    /// Observed average throughput between t = 0 and `now`.
    pub fn observed_bandwidth(&self, now: SimTime) -> Bandwidth {
        let secs = now.as_secs_f64();
        if secs <= 0.0 || self.meter.bytes() == 0 {
            return Bandwidth::gb_per_s(f64::MIN_POSITIVE);
        }
        Bandwidth {
            bytes_per_sec: self.meter.bytes() as f64 / secs,
        }
    }

    /// Reset byte accounting (keeps timing state).
    pub fn reset_meter(&mut self) {
        self.meter = ByteMeter::new();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bandwidth_conversions() {
        let b = Bandwidth::gbit_per_s(100.0);
        assert!((b.as_gb_per_s() - 12.5).abs() < 1e-9);
        let b = Bandwidth::mb_per_s(500.0);
        assert!((b.as_gb_per_s() - 0.5).abs() < 1e-9);
    }

    #[test]
    fn time_for_bytes() {
        // 1 GB/s → 1 byte per ns.
        let b = Bandwidth::gb_per_s(1.0);
        assert_eq!(b.time_for(1000).as_ns(), 1000);
        assert_eq!(b.time_for(0), SimDuration::ZERO);
        // Non-empty transfers always take at least 1 ps.
        let fast = Bandwidth::gb_per_s(1e6);
        assert!(fast.time_for(1).as_ps() >= 1);
    }

    #[test]
    fn link_serialises_transfers() {
        // 1 GB/s, 100 ns latency.
        let mut l = SharedLink::new("test", Bandwidth::gb_per_s(1.0), SimDuration::from_ns(100));
        let t0 = SimTime::ZERO;
        // First transfer of 1000 B: occupies [0,1000) ns, arrives 1100 ns.
        let a1 = l.transfer(t0, 1000);
        assert_eq!(a1.as_ns(), 1100);
        // Second transfer requested at t=0 must wait: occupies [1000,2000),
        // arrives 2100 ns.
        let a2 = l.transfer(t0, 1000);
        assert_eq!(a2.as_ns(), 2100);
        assert_eq!(l.bytes_transferred(), 2000);
        assert_eq!(l.transfers(), 2);
    }

    #[test]
    fn link_idle_gap_not_charged() {
        let mut l = SharedLink::new("test", Bandwidth::gb_per_s(1.0), SimDuration::ZERO);
        l.transfer(SimTime::ZERO, 100); // busy until 100 ns
        let a = l.transfer(SimTime::from_ns(500), 100); // starts at 500
        assert_eq!(a.as_ns(), 600);
    }

    #[test]
    fn overhead_applied_per_op() {
        let mut l = SharedLink::new("test", Bandwidth::gb_per_s(1.0), SimDuration::ZERO);
        let a = l.transfer_with_overhead(SimTime::ZERO, 100, SimDuration::from_ns(20));
        assert_eq!(a.as_ns(), 120);
        assert_eq!(l.free_at().as_ns(), 120);
    }

    #[test]
    fn observed_bandwidth_tracks_bytes() {
        let mut l = SharedLink::new("test", Bandwidth::gb_per_s(2.0), SimDuration::ZERO);
        l.transfer(SimTime::ZERO, 2_000_000);
        let end = l.free_at();
        let bw = l.observed_bandwidth(end);
        assert!((bw.as_gb_per_s() - 2.0).abs() < 0.01, "{bw:?}");
    }
}
