//! Measurement primitives: counters, byte meters, and latency histograms.
//!
//! Every number the benchmark harness reports comes out of these types, so
//! they are deliberately simple and exactly reproducible.

use crate::time::{SimDuration, SimTime};
use std::fmt;

/// A monotonically increasing event counter.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct Counter(u64);

impl Counter {
    /// New counter at zero.
    pub const fn new() -> Self {
        Counter(0)
    }

    /// Increment by one.
    #[inline]
    pub fn inc(&mut self) {
        self.0 += 1;
    }

    /// Increment by `n`.
    #[inline]
    pub fn add(&mut self, n: u64) {
        self.0 += n;
    }

    /// Current value.
    #[inline]
    pub fn get(self) -> u64 {
        self.0
    }
}

/// Byte/operation accounting for a data path.
#[derive(Clone, Copy, Debug, Default)]
pub struct ByteMeter {
    bytes: u64,
    ops: u64,
}

impl ByteMeter {
    /// New meter at zero.
    pub const fn new() -> Self {
        ByteMeter { bytes: 0, ops: 0 }
    }

    /// Record one operation moving `bytes`.
    #[inline]
    pub fn record(&mut self, bytes: u64) {
        self.bytes += bytes;
        self.ops += 1;
    }

    /// Total bytes recorded.
    #[inline]
    pub fn bytes(self) -> u64 {
        self.bytes
    }

    /// Total operations recorded.
    #[inline]
    pub fn ops(self) -> u64 {
        self.ops
    }

    /// Average decimal GB/s over the window `[start, end]`.
    pub fn gb_per_s(self, start: SimTime, end: SimTime) -> f64 {
        let secs = end.since(start).as_secs_f64();
        if secs <= 0.0 {
            return 0.0;
        }
        self.bytes as f64 / 1e9 / secs
    }
}

/// A latency sample set with exact percentile queries.
///
/// Keeps all samples (simulations produce at most a few million), sorts
/// lazily on query.
#[derive(Clone, Debug, Default)]
pub struct LatencyStats {
    samples_ps: Vec<u64>,
    sorted: bool,
}

impl LatencyStats {
    /// Empty sample set.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one latency sample.
    pub fn record(&mut self, d: SimDuration) {
        self.samples_ps.push(d.as_ps());
        self.sorted = false;
    }

    /// Number of samples.
    pub fn count(&self) -> usize {
        self.samples_ps.len()
    }

    /// Arithmetic mean; zero duration when empty.
    pub fn mean(&self) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        let sum: u128 = self.samples_ps.iter().map(|&x| x as u128).sum();
        SimDuration::from_ps((sum / self.samples_ps.len() as u128) as u64)
    }

    /// Minimum sample; zero when empty.
    pub fn min(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().copied().min().unwrap_or(0))
    }

    /// Maximum sample; zero when empty.
    pub fn max(&self) -> SimDuration {
        SimDuration::from_ps(self.samples_ps.iter().copied().max().unwrap_or(0))
    }

    fn sort(&mut self) {
        if !self.sorted {
            self.samples_ps.sort_unstable();
            self.sorted = true;
        }
    }

    /// Nearest-rank percentile (`p` in [0, 100]); zero when empty.
    pub fn percentile(&mut self, p: f64) -> SimDuration {
        if self.samples_ps.is_empty() {
            return SimDuration::ZERO;
        }
        self.sort();
        let rank = ((p / 100.0) * (self.samples_ps.len() as f64 - 1.0)).round() as usize;
        SimDuration::from_ps(self.samples_ps[rank.min(self.samples_ps.len() - 1)])
    }

    /// Median (p50).
    pub fn median(&mut self) -> SimDuration {
        self.percentile(50.0)
    }
}

impl fmt::Display for LatencyStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} mean={} min={} max={}",
            self.count(),
            self.mean(),
            self.min(),
            self.max()
        )
    }
}

/// Min/mean/max over f64 observations (used for alternating-bandwidth
/// reporting in the Fig 4a reproduction).
#[derive(Clone, Copy, Debug, Default)]
pub struct RunningStats {
    n: u64,
    sum: f64,
    min: f64,
    max: f64,
}

impl RunningStats {
    /// Empty accumulator.
    pub fn new() -> Self {
        RunningStats {
            n: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }

    /// Record one observation.
    pub fn record(&mut self, x: f64) {
        self.n += 1;
        self.sum += x;
        self.min = self.min.min(x);
        self.max = self.max.max(x);
    }

    /// Observation count.
    pub fn count(&self) -> u64 {
        self.n
    }

    /// Mean; zero when empty.
    pub fn mean(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.sum / self.n as f64
        }
    }

    /// Minimum; zero when empty.
    pub fn min(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.min
        }
    }

    /// Maximum; zero when empty.
    pub fn max(&self) -> f64 {
        if self.n == 0 {
            0.0
        } else {
            self.max
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::time::SimTime;

    #[test]
    fn counter_accumulates() {
        let mut c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);
    }

    #[test]
    fn byte_meter_bandwidth() {
        let mut m = ByteMeter::new();
        m.record(500_000_000);
        m.record(500_000_000);
        assert_eq!(m.bytes(), 1_000_000_000);
        assert_eq!(m.ops(), 2);
        let bw = m.gb_per_s(SimTime::ZERO, SimTime::ZERO + SimDuration::from_ms(500));
        assert!((bw - 2.0).abs() < 1e-9);
    }

    #[test]
    fn byte_meter_zero_window() {
        let m = ByteMeter::new();
        assert_eq!(m.gb_per_s(SimTime::ZERO, SimTime::ZERO), 0.0);
    }

    #[test]
    fn latency_percentiles() {
        let mut l = LatencyStats::new();
        for us in 1..=100u64 {
            l.record(SimDuration::from_us(us));
        }
        assert_eq!(l.count(), 100);
        assert_eq!(l.min().as_ns(), 1_000);
        assert_eq!(l.max().as_ns(), 100_000);
        let p50 = l.median();
        assert!(p50 >= SimDuration::from_us(50) && p50 <= SimDuration::from_us(51));
        let p99 = l.percentile(99.0);
        assert!(p99 >= SimDuration::from_us(99));
        assert!((l.mean().as_us_f64() - 50.5).abs() < 0.01);
    }

    #[test]
    fn latency_empty() {
        let mut l = LatencyStats::new();
        assert_eq!(l.mean(), SimDuration::ZERO);
        assert_eq!(l.percentile(99.0), SimDuration::ZERO);
    }

    #[test]
    fn running_stats() {
        let mut r = RunningStats::new();
        for x in [5.9, 6.24, 5.9, 6.24] {
            r.record(x);
        }
        assert_eq!(r.count(), 4);
        assert!((r.min() - 5.9).abs() < 1e-12);
        assert!((r.max() - 6.24).abs() < 1e-12);
        assert!((r.mean() - 6.07).abs() < 1e-9);
    }
}
