//! The discrete-event engine.
//!
//! Events are boxed `FnOnce(&mut Engine)` closures ordered by
//! `(time, insertion sequence)` — ties execute in FIFO order, which makes
//! every simulation run bit-for-bit deterministic. Hardware models are
//! `Rc<RefCell<...>>` structures captured by the closures they schedule.
//!
//! Internally, same-instant events — the dominant shape on the
//! AXIS/streamer datapath, where every hook defers through
//! `schedule_now` — bypass the [`BinaryHeap`] entirely via a FIFO lane.
//! The dispatch order is still the exact global `(time, seq)` order: the
//! lane is only ever populated with entries at the current instant,
//! whose `(time, seq)` keys are pushed in increasing order, so comparing
//! the lane front against the heap head yields the same event the single
//! heap would have popped. Closures ride inside the queue entries
//! themselves; an earlier slab-plus-free-list design that kept heap
//! entries slot-indexed cost pure timer workloads ~15% in per-event
//! indirection without helping the lane path, and was removed.

use crate::time::{SimDuration, SimTime};
use std::cell::Cell;
use std::cmp::Ordering;
use std::collections::{BinaryHeap, VecDeque};
use std::fmt;

/// A non-panicking engine failure, produced by [`Engine::try_step`] /
/// [`Engine::try_run`]. Carries enough of the pending-queue state for a
/// diagnosis (observability layers can dump it without re-borrowing the
/// engine).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// The run executed more events than the configured safety valve
    /// allows — almost always an accidental infinite self-rescheduling
    /// loop in a model.
    EventLimit {
        /// The configured limit that was exceeded.
        limit: u64,
        /// Simulated time at which the limit tripped.
        now: SimTime,
        /// Events still pending when the run stopped.
        pending: usize,
        /// `(time, seq)` of the next event that would have run, if any.
        head: Option<(SimTime, u64)>,
    },
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::EventLimit {
                limit,
                now,
                pending,
                head,
            } => {
                write!(
                    f,
                    "simulation exceeded event limit ({limit}) at {now} — runaway model? \
                     {pending} events pending"
                )?;
                if let Some((t, seq)) = head {
                    write!(f, ", next at {t} (seq {seq})")?;
                }
                Ok(())
            }
        }
    }
}

impl std::error::Error for EngineError {}

type EventFn = Box<dyn FnOnce(&mut Engine)>;

/// A time-ordered queue entry carrying its event closure; ordering looks
/// only at `(time, seq)`.
struct HeapEntry {
    time: SimTime,
    seq: u64,
    f: EventFn,
}

impl PartialEq for HeapEntry {
    fn eq(&self, other: &Self) -> bool {
        self.time == other.time && self.seq == other.seq
    }
}
impl Eq for HeapEntry {}

impl PartialOrd for HeapEntry {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapEntry {
    // BinaryHeap is a max-heap; invert so the earliest (time, seq) pops first.
    fn cmp(&self, other: &Self) -> Ordering {
        other
            .time
            .cmp(&self.time)
            .then_with(|| other.seq.cmp(&self.seq))
    }
}

thread_local! {
    /// Events executed by engines that have finished (been dropped) on
    /// this thread — the process-lifetime counter behind the perf
    /// harness (`snacc-bench --perf-json`). A plain `Cell`: the DES is
    /// single-threaded by construction.
    static RETIRED_EVENTS: Cell<u64> = const { Cell::new(0) };
}

/// Total events executed by all engines already dropped on this thread.
/// Add [`Engine::events_executed`] of any still-live engine for a full
/// count.
pub fn lifetime_events_executed() -> u64 {
    RETIRED_EVENTS.with(|c| c.get())
}

/// The discrete-event simulation engine: an event queue plus the clock.
///
/// The engine owns no model state itself; models schedule closures that
/// borrow the engine mutably (for the clock and further scheduling) and
/// their own `Rc<RefCell<..>>` state.
pub struct Engine {
    now: SimTime,
    seq: u64,
    /// Future events, ordered by `(time, seq)`.
    queue: BinaryHeap<HeapEntry>,
    /// Same-instant FIFO lane: events scheduled for the current time.
    /// `(time, seq)` keys enter in strictly increasing order (time is
    /// monotone, seq globally so), so the front is always the lane's
    /// minimum.
    now_lane: VecDeque<(SimTime, u64, EventFn)>,
    executed: u64,
    /// Safety valve: panic if a run executes more events than this.
    /// Guards against accidental infinite self-rescheduling in models.
    event_limit: u64,
}

impl Default for Engine {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        RETIRED_EVENTS.with(|c| c.set(c.get() + self.executed));
    }
}

impl Engine {
    /// Create an engine at t = 0 with the default event limit (10^10).
    pub fn new() -> Self {
        Engine {
            now: SimTime::ZERO,
            seq: 0,
            queue: BinaryHeap::new(),
            now_lane: VecDeque::new(),
            executed: 0,
            event_limit: 10_000_000_000,
        }
    }

    /// Current simulated time.
    #[inline]
    pub fn now(&self) -> SimTime {
        self.now
    }

    /// Number of events executed so far.
    #[inline]
    pub fn events_executed(&self) -> u64 {
        self.executed
    }

    /// Number of events scheduled so far (the next insertion sequence
    /// number). Deterministic across runs; useful as an ID source for
    /// trace/telemetry layers that must never touch wall clocks.
    #[inline]
    pub fn seq(&self) -> u64 {
        self.seq
    }

    /// Number of events currently pending.
    #[inline]
    pub fn pending(&self) -> usize {
        self.queue.len() + self.now_lane.len()
    }

    /// Replace the runaway-simulation event limit.
    pub fn set_event_limit(&mut self, limit: u64) {
        self.event_limit = limit;
    }

    /// Schedule `f` to run at absolute time `t` (must not be in the past).
    pub fn schedule_at(&mut self, t: SimTime, f: impl FnOnce(&mut Engine) + 'static) {
        assert!(
            t >= self.now,
            "scheduling into the past: now={}, t={}",
            self.now,
            t
        );
        let seq = self.seq;
        self.seq += 1;
        if t == self.now {
            self.now_lane.push_back((t, seq, Box::new(f)));
        } else {
            self.queue.push(HeapEntry {
                time: t,
                seq,
                f: Box::new(f),
            });
        }
    }

    /// Schedule `f` to run `d` after the current time.
    #[inline]
    pub fn schedule_in(&mut self, d: SimDuration, f: impl FnOnce(&mut Engine) + 'static) {
        self.schedule_at(self.now + d, f);
    }

    /// Schedule `f` to run at the current time, after all events already
    /// queued for this instant (FIFO tie-break).
    #[inline]
    pub fn schedule_now(&mut self, f: impl FnOnce(&mut Engine) + 'static) {
        let seq = self.seq;
        self.seq += 1;
        self.now_lane.push_back((self.now, seq, Box::new(f)));
    }

    /// `(time, seq)` of the next event in global dispatch order, if any.
    #[inline]
    fn peek_next(&self) -> Option<(SimTime, u64)> {
        match (self.queue.peek(), self.now_lane.front()) {
            (None, None) => None,
            (Some(h), None) => Some((h.time, h.seq)),
            (None, Some((t, s, _))) => Some((*t, *s)),
            (Some(h), Some((t, s, _))) => {
                if (*t, *s) < (h.time, h.seq) {
                    Some((*t, *s))
                } else {
                    Some((h.time, h.seq))
                }
            }
        }
    }

    /// Pop the next event in global dispatch order.
    #[inline]
    fn pop_next(&mut self) -> Option<(SimTime, EventFn)> {
        let from_lane = match (self.queue.peek(), self.now_lane.front()) {
            (None, None) => return None,
            (Some(_), None) => false,
            (None, Some(_)) => true,
            (Some(h), Some((t, s, _))) => (*t, *s) < (h.time, h.seq),
        };
        if from_lane {
            let (t, _, f) = self.now_lane.pop_front().expect("lane front checked");
            Some((t, f))
        } else {
            let e = self.queue.pop().expect("heap head checked");
            Some((e.time, e.f))
        }
    }

    /// Execute the next event, advancing the clock. Returns `Ok(false)`
    /// when the queue is empty and `Err(EngineError::EventLimit)` — with
    /// the pending queue left intact for inspection — when the safety
    /// valve trips.
    pub fn try_step(&mut self) -> Result<bool, EngineError> {
        if self.executed >= self.event_limit {
            if let Some(head) = self.peek_next() {
                return Err(EngineError::EventLimit {
                    limit: self.event_limit,
                    now: self.now,
                    pending: self.pending(),
                    head: Some(head),
                });
            }
        }
        let Some((time, f)) = self.pop_next() else {
            return Ok(false);
        };
        debug_assert!(time >= self.now);
        self.now = time;
        self.executed += 1;
        f(self);
        Ok(true)
    }

    /// Execute the next event, advancing the clock. Returns `false` when
    /// the queue is empty. Panics if the event limit trips; use
    /// [`Engine::try_step`] for a recoverable diagnosis.
    pub fn step(&mut self) -> bool {
        match self.try_step() {
            Ok(progressed) => progressed,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run until the event queue drains; returns the final time, or
    /// `Err(EngineError::EventLimit)` with the pending queue preserved.
    pub fn try_run(&mut self) -> Result<SimTime, EngineError> {
        while self.try_step()? {}
        Ok(self.now)
    }

    /// Run until the event queue drains; returns the final time. Panics
    /// if the event limit trips; use [`Engine::try_run`] to recover.
    pub fn run(&mut self) -> SimTime {
        while self.step() {}
        self.now
    }

    /// Run until the queue drains or the clock passes `deadline`.
    /// Events scheduled exactly at `deadline` still execute. Returns
    /// `Ok(true)` if the queue drained (i.e. the simulation finished on
    /// its own), `Err(EngineError::EventLimit)` with the queue preserved
    /// if the safety valve trips first.
    pub fn try_run_until(&mut self, deadline: SimTime) -> Result<bool, EngineError> {
        loop {
            match self.peek_next() {
                None => return Ok(true),
                Some((t, _)) if t > deadline => {
                    self.now = deadline;
                    return Ok(false);
                }
                Some(_) => {
                    self.try_step()?;
                }
            }
        }
    }

    /// Run until the queue drains or the clock passes `deadline`.
    /// Events scheduled exactly at `deadline` still execute. Returns `true`
    /// if the queue drained (i.e. the simulation finished on its own).
    /// Panics if the event limit trips; use [`Engine::try_run_until`] to
    /// recover.
    pub fn run_until(&mut self, deadline: SimTime) -> bool {
        match self.try_run_until(deadline) {
            Ok(drained) => drained,
            Err(e) => panic!("{e}"),
        }
    }

    /// Run while `cond()` holds and events remain. Returns `Ok(true)` if
    /// the queue drained before the condition turned false,
    /// `Err(EngineError::EventLimit)` with the queue preserved if the
    /// safety valve trips first.
    pub fn try_run_while(&mut self, mut cond: impl FnMut() -> bool) -> Result<bool, EngineError> {
        while cond() {
            if !self.try_step()? {
                return Ok(true);
            }
        }
        Ok(false)
    }

    /// Run while `cond()` holds and events remain. Returns `true` if the
    /// queue drained before the condition turned false. Panics if the
    /// event limit trips; use [`Engine::try_run_while`] to recover.
    pub fn run_while(&mut self, cond: impl FnMut() -> bool) -> bool {
        match self.try_run_while(cond) {
            Ok(drained) => drained,
            Err(e) => panic!("{e}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn executes_in_time_order() {
        let mut en = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for &ns in &[30u64, 10, 20] {
            let o = order.clone();
            en.schedule_at(SimTime::from_ns(ns), move |en| {
                o.borrow_mut().push(en.now().as_ns());
            });
        }
        en.run();
        assert_eq!(*order.borrow(), vec![10, 20, 30]);
        assert_eq!(en.events_executed(), 3);
    }

    #[test]
    fn fifo_tie_break_at_same_time() {
        let mut en = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        for i in 0..5u32 {
            let o = order.clone();
            en.schedule_at(SimTime::from_ns(7), move |_| o.borrow_mut().push(i));
        }
        en.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn schedule_now_runs_after_queued_same_instant() {
        let mut en = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        let o1 = order.clone();
        let o2 = order.clone();
        en.schedule_at(SimTime::ZERO, move |en| {
            let o = o1.clone();
            en.schedule_now(move |_| o.borrow_mut().push("late"));
            o1.borrow_mut().push("first");
        });
        en.schedule_at(SimTime::ZERO, move |_| o2.borrow_mut().push("second"));
        en.run();
        assert_eq!(*order.borrow(), vec!["first", "second", "late"]);
    }

    #[test]
    fn lane_and_heap_interleave_in_seq_order() {
        // Events landing at the same instant from both paths — pre-queued
        // timers (heap) and same-instant deferrals (lane) — must still
        // execute in global seq order.
        let mut en = Engine::new();
        let order = Rc::new(RefCell::new(Vec::new()));
        let t = SimTime::from_ns(10);
        for i in 0..3u32 {
            let o = order.clone();
            en.schedule_at(t, move |_| o.borrow_mut().push(i));
        }
        let o = order.clone();
        en.schedule_at(t, move |en| {
            // Runs at t after 0,1,2: a lane event behind nothing.
            let o2 = o.clone();
            en.schedule_now(move |_| o2.borrow_mut().push(100));
            // And a timer for the same instant can no longer be created
            // (schedule_at(now) routes to the lane) — FIFO with the above.
            let o3 = o.clone();
            en.schedule_at(en.now(), move |_| o3.borrow_mut().push(101));
            o.borrow_mut().push(3);
        });
        en.run();
        assert_eq!(*order.borrow(), vec![0, 1, 2, 3, 100, 101]);
    }

    #[test]
    #[should_panic(expected = "scheduling into the past")]
    fn rejects_past_scheduling() {
        let mut en = Engine::new();
        en.schedule_at(SimTime::from_ns(10), |en| {
            en.schedule_at(SimTime::from_ns(5), |_| {});
        });
        en.run();
    }

    #[test]
    fn run_until_stops_at_deadline() {
        let mut en = Engine::new();
        let count = Rc::new(RefCell::new(0));
        fn tick(en: &mut Engine, count: Rc<RefCell<u32>>) {
            *count.borrow_mut() += 1;
            en.schedule_in(SimDuration::from_ns(10), move |en| tick(en, count));
        }
        let c = count.clone();
        en.schedule_at(SimTime::ZERO, move |en| tick(en, c));
        let drained = en.run_until(SimTime::from_ns(55));
        assert!(!drained);
        // Ticks at 0,10,20,30,40,50 → 6 executions.
        assert_eq!(*count.borrow(), 6);
        assert_eq!(en.now(), SimTime::from_ns(55));
    }

    #[test]
    fn run_until_deadline_inclusive() {
        let mut en = Engine::new();
        let hit = Rc::new(RefCell::new(false));
        let h = hit.clone();
        en.schedule_at(SimTime::from_ns(50), move |_| *h.borrow_mut() = true);
        en.run_until(SimTime::from_ns(50));
        assert!(*hit.borrow());
    }

    #[test]
    fn run_while_condition() {
        let mut en = Engine::new();
        let count = Rc::new(RefCell::new(0u32));
        for _ in 0..10 {
            let c = count.clone();
            en.schedule_in(SimDuration::from_ns(1), move |_| *c.borrow_mut() += 1);
        }
        let c = count.clone();
        let drained = en.run_while(move || *c.borrow() < 4);
        assert!(!drained);
        assert_eq!(*count.borrow(), 4);
    }

    #[test]
    #[should_panic(expected = "event limit")]
    fn event_limit_trips() {
        let mut en = Engine::new();
        en.set_event_limit(100);
        fn forever(en: &mut Engine) {
            en.schedule_in(SimDuration::from_ns(1), forever);
        }
        en.schedule_now(forever);
        en.run();
    }

    #[test]
    fn try_run_reports_event_limit_with_queue_intact() {
        let mut en = Engine::new();
        en.set_event_limit(100);
        fn forever(en: &mut Engine) {
            en.schedule_in(SimDuration::from_ns(1), forever);
        }
        en.schedule_now(forever);
        let err = en.try_run().unwrap_err();
        let EngineError::EventLimit {
            limit,
            now,
            pending,
            head,
        } = err.clone();
        assert_eq!(limit, 100);
        assert_eq!(en.events_executed(), 100);
        // The event that would have run next is still queued, not consumed.
        assert_eq!(pending, 1);
        assert_eq!(en.pending(), 1);
        let (head_t, _seq) = head.expect("head event");
        assert!(head_t >= now);
        assert!(err.to_string().contains("event limit"));
        // try_step keeps failing rather than silently resuming.
        assert!(en.try_step().is_err());
    }

    #[test]
    fn try_run_until_reports_event_limit() {
        let mut en = Engine::new();
        en.set_event_limit(10);
        fn forever(en: &mut Engine) {
            en.schedule_in(SimDuration::from_ns(1), forever);
        }
        en.schedule_now(forever);
        let err = en.try_run_until(SimTime::from_ns(1000)).unwrap_err();
        let EngineError::EventLimit { limit, pending, .. } = err;
        assert_eq!(limit, 10);
        assert_eq!(pending, 1);
        // The deadline path still works on a fresh engine.
        let mut en = Engine::new();
        let hit = Rc::new(RefCell::new(0u32));
        let h = hit.clone();
        en.schedule_at(SimTime::from_ns(5), move |_| *h.borrow_mut() += 1);
        assert_eq!(en.try_run_until(SimTime::from_ns(3)), Ok(false));
        assert_eq!(*hit.borrow(), 0);
        assert_eq!(en.now(), SimTime::from_ns(3));
        assert_eq!(en.try_run_until(SimTime::from_ns(5)), Ok(true));
        assert_eq!(*hit.borrow(), 1);
    }

    #[test]
    fn try_run_while_reports_event_limit() {
        let mut en = Engine::new();
        en.set_event_limit(10);
        fn forever(en: &mut Engine) {
            en.schedule_in(SimDuration::from_ns(1), forever);
        }
        en.schedule_now(forever);
        let err = en.try_run_while(|| true).unwrap_err();
        assert!(matches!(err, EngineError::EventLimit { limit: 10, .. }));
        // And the recoverable drain/condition results mirror run_while.
        let mut en = Engine::new();
        let count = Rc::new(RefCell::new(0u32));
        for _ in 0..10 {
            let c = count.clone();
            en.schedule_in(SimDuration::from_ns(1), move |_| *c.borrow_mut() += 1);
        }
        let c = count.clone();
        assert_eq!(en.try_run_while(move || *c.borrow() < 4), Ok(false));
        assert_eq!(*count.borrow(), 4);
        assert_eq!(en.try_run_while(|| true), Ok(true));
        assert_eq!(*count.borrow(), 10);
    }

    #[test]
    fn seq_counts_scheduled_events() {
        let mut en = Engine::new();
        assert_eq!(en.seq(), 0);
        en.schedule_now(|_| {});
        en.schedule_in(SimDuration::from_ns(1), |_| {});
        assert_eq!(en.seq(), 2);
    }

    #[test]
    fn same_instant_events_bypass_the_heap() {
        let mut en = Engine::new();
        en.schedule_at(SimTime::from_ns(10), |_| {});
        en.step();
        // A same-instant schedule_at routes to the FIFO lane, not the heap.
        en.schedule_at(SimTime::from_ns(10), |_| {});
        en.schedule_now(|_| {});
        assert_eq!(en.now_lane.len(), 2);
        assert_eq!(en.queue.len(), 0);
        en.run();
        assert_eq!(en.events_executed(), 3);
    }

    #[test]
    fn lifetime_counter_accumulates_dropped_engines() {
        let before = lifetime_events_executed();
        {
            let mut en = Engine::new();
            for _ in 0..7 {
                en.schedule_now(|_| {});
            }
            en.run();
        }
        assert_eq!(lifetime_events_executed() - before, 7);
    }
}
