//! Zero-copy payload buffers.
//!
//! Every hop of the simulated datapath (Ethernet frame → AXIS beat →
//! streamer buffer → PCIe → NVMe) used to own a fresh `Vec<u8>`, so a
//! 4 KiB page was memcpy'd once per layer. [`Payload`] is an immutable,
//! cheaply-cloneable view into shared bytes: a reference-counted backing
//! buffer plus an `(offset, len)` window. Cloning, slicing and splitting
//! are O(1) and allocation-free; the bytes are copied at most once — at
//! ingress, or never for pattern-generated synthetic data.
//!
//! `Payload` dereferences to `[u8]`, so read sites (`&beat.data[0..8]`,
//! iteration, `len()`) work unchanged. The type is single-threaded by
//! design (`Rc`, not `Arc`): the DES engine and everything it models are
//! single-threaded, and the workspace lints (SL003) keep atomics out of
//! simulation crates.

use std::cell::OnceCell;
use std::fmt;
use std::ops::{Deref, Range};
use std::rc::Rc;

/// A lazily materialised synthetic segment: bytes are a pure function of
/// `(seed, offset)`, generated once on first access and shared by every
/// clone/slice of the segment.
struct PatternSeg {
    seed: u64,
    total_len: usize,
    cache: OnceCell<Box<[u8]>>,
}

impl PatternSeg {
    fn bytes(&self) -> &[u8] {
        self.cache.get_or_init(|| {
            // Filling a preallocated buffer in place vectorises;
            // collecting the iterator byte-by-byte does not.
            let mut v = vec![0u8; self.total_len];
            for (i, b) in v.iter_mut().enumerate() {
                *b = pattern_byte(self.seed, i as u64);
            }
            v.into_boxed_slice()
        })
    }
}

/// Deterministic pattern byte for (seed, offset) — the generator behind
/// [`Payload::pattern`]. Cheap, seed-dependent, and position-sensitive so
/// shifted windows differ.
#[inline]
pub fn pattern_byte(seed: u64, offset: u64) -> u8 {
    let x = offset.wrapping_add(seed);
    (x ^ (x >> 7) ^ 0x5a) as u8
}

/// A lazily materialised constant-fill segment: every byte is `byte`,
/// allocated once on first access and shared by every clone/slice.
struct FillSeg {
    byte: u8,
    total_len: usize,
    cache: OnceCell<Box<[u8]>>,
}

impl FillSeg {
    fn bytes(&self) -> &[u8] {
        self.cache
            .get_or_init(|| vec![self.byte; self.total_len].into_boxed_slice())
    }
}

#[derive(Clone)]
enum Repr {
    Bytes(Rc<[u8]>),
    Pattern(Rc<PatternSeg>),
    Fill(Rc<FillSeg>),
}

/// An immutable, cheaply-cloneable byte buffer: shared backing storage
/// plus an `(offset, len)` window. See the module docs.
#[derive(Clone)]
pub struct Payload {
    repr: Repr,
    off: usize,
    len: usize,
}

impl Payload {
    /// The empty payload (no backing allocation).
    pub fn empty() -> Payload {
        thread_local! {
            static EMPTY: Rc<[u8]> = Rc::from(Vec::new().into_boxed_slice());
        }
        Payload {
            repr: Repr::Bytes(EMPTY.with(|e| e.clone())),
            off: 0,
            len: 0,
        }
    }

    /// Take ownership of `v` without copying.
    pub fn from_vec(v: Vec<u8>) -> Payload {
        let len = v.len();
        Payload {
            repr: Repr::Bytes(Rc::from(v.into_boxed_slice())),
            off: 0,
            len,
        }
    }

    /// Share an existing reference-counted buffer without copying.
    pub fn from_rc(b: Rc<[u8]>) -> Payload {
        let len = b.len();
        Payload {
            repr: Repr::Bytes(b),
            off: 0,
            len,
        }
    }

    /// A lazily generated synthetic segment of `len` bytes: byte `i` is
    /// [`pattern_byte`]`(seed, i)`. Nothing is allocated until the bytes
    /// are first read; all clones and slices share one materialisation.
    pub fn pattern(seed: u64, len: usize) -> Payload {
        Payload {
            repr: Repr::Pattern(Rc::new(PatternSeg {
                seed,
                total_len: len,
                cache: OnceCell::new(),
            })),
            off: 0,
            len,
        }
    }

    /// A lazily allocated constant-fill segment of `len` bytes, each equal
    /// to `byte`. Nothing is allocated until the bytes are first read; all
    /// clones and slices share one materialisation. Functional media uses
    /// this for reads of never-written (zero) extents and for prewarmed
    /// fill data, so untouched gigabytes stay metadata-only.
    pub fn fill(byte: u8, len: usize) -> Payload {
        Payload {
            repr: Repr::Fill(Rc::new(FillSeg {
                byte,
                total_len: len,
                cache: OnceCell::new(),
            })),
            off: 0,
            len,
        }
    }

    /// Window length in bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the window empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The bytes of this window. Pattern segments materialise (once, for
    /// all sharers) on first call.
    #[inline]
    pub fn as_slice(&self) -> &[u8] {
        match &self.repr {
            Repr::Bytes(b) => &b[self.off..self.off + self.len],
            Repr::Pattern(p) => &p.bytes()[self.off..self.off + self.len],
            Repr::Fill(s) => &s.bytes()[self.off..self.off + self.len],
        }
    }

    /// Zero-copy sub-window. Panics if the range exceeds the window,
    /// matching `&v[range]` semantics on `Vec<u8>`.
    pub fn slice(&self, range: Range<usize>) -> Payload {
        assert!(
            range.start <= range.end && range.end <= self.len,
            "slice {range:?} out of bounds for payload of {} bytes",
            self.len
        );
        Payload {
            repr: self.repr.clone(),
            off: self.off + range.start,
            len: range.end - range.start,
        }
    }

    /// Zero-copy split into `[0, mid)` and `[mid, len)`. Panics if `mid`
    /// exceeds the window, matching `slice::split_at`.
    pub fn split_at(&self, mid: usize) -> (Payload, Payload) {
        (self.slice(0..mid), self.slice(mid..self.len))
    }

    /// Concatenate parts. Adjacent windows of the same backing buffer are
    /// merged zero-copy; anything else copies into one fresh buffer (the
    /// only copying operation on this type besides ingress).
    pub fn concat(parts: &[Payload]) -> Payload {
        match parts {
            [] => Payload::empty(),
            [one] => one.clone(),
            [first, rest @ ..] => {
                // Zero-copy when every part continues the previous one in
                // the same backing buffer.
                let mut end = first.off + first.len;
                let contiguous = rest.iter().all(|p| {
                    let adj = same_backing(&first.repr, &p.repr) && p.off == end;
                    end = p.off + p.len;
                    adj
                });
                if contiguous {
                    let total: usize = parts.iter().map(|p| p.len).sum();
                    return Payload {
                        repr: first.repr.clone(),
                        off: first.off,
                        len: total,
                    };
                }
                let mut v = Vec::with_capacity(parts.iter().map(|p| p.len).sum());
                for p in parts {
                    v.extend_from_slice(p.as_slice());
                }
                Payload::from_vec(v)
            }
        }
    }

    /// Copy the window out into an owned `Vec<u8>`.
    pub fn to_vec(&self) -> Vec<u8> {
        self.as_slice().to_vec()
    }

    /// Zero-copy join: if `next` continues this window in the same backing
    /// buffer, return the merged window; otherwise `None` (no copying is
    /// ever performed). The segment store uses this to re-coalesce writes
    /// that an upstream producer carved out of one large buffer.
    pub fn try_join(&self, next: &Payload) -> Option<Payload> {
        if same_backing(&self.repr, &next.repr) && next.off == self.off + self.len {
            Some(Payload {
                repr: self.repr.clone(),
                off: self.off,
                len: self.len + next.len,
            })
        } else {
            None
        }
    }
}

/// A FIFO of [`Payload`] segments addressable as one logical byte stream.
///
/// Replaces `VecDeque<u8>` staging buffers in the models: refilling is an
/// O(1) segment push instead of a per-byte `extend`, and [`take`] carves
/// the front `n` bytes out as a `Payload` — zero-copy whenever the bytes
/// sit in one segment or in adjacent windows of the same backing buffer
/// (the common case when an upstream producer sliced one large buffer
/// into frames).
///
/// [`take`]: PayloadQueue::take
#[derive(Default)]
pub struct PayloadQueue {
    segs: std::collections::VecDeque<Payload>,
    len: usize,
}

impl PayloadQueue {
    /// An empty queue.
    pub fn new() -> PayloadQueue {
        PayloadQueue::default()
    }

    /// Total buffered bytes.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Is the queue empty?
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Append a segment at the back (O(1), no copy).
    pub fn push_back(&mut self, p: Payload) {
        self.len += p.len();
        if !p.is_empty() {
            self.segs.push_back(p);
        }
    }

    /// Return a segment to the front (O(1), no copy) — the undo of a
    /// [`take`] whose consumer refused the bytes.
    ///
    /// [`take`]: PayloadQueue::take
    pub fn push_front(&mut self, p: Payload) {
        self.len += p.len();
        if !p.is_empty() {
            self.segs.push_front(p);
        }
    }

    /// Remove and return the front `n` bytes as one [`Payload`]. Panics if
    /// fewer than `n` bytes are buffered, matching `drain(..n)` semantics.
    pub fn take(&mut self, n: usize) -> Payload {
        assert!(
            n <= self.len,
            "take({n}) out of bounds for {} bytes",
            self.len
        );
        if n == 0 {
            return Payload::empty();
        }
        self.len -= n;
        // Fast path: the front segment covers the request.
        let first_len = self.segs.front().map_or(0, Payload::len);
        if first_len > n {
            let first = self.segs.front_mut().expect("len accounted");
            let head = first.slice(0..n);
            *first = first.slice(n..first_len);
            return head;
        }
        if first_len == n {
            return self.segs.pop_front().expect("len accounted");
        }
        // Slow path: gather segments; concat merges adjacent windows
        // zero-copy and copies otherwise.
        let mut parts = Vec::new();
        let mut need = n;
        while need > 0 {
            let seg = self.segs.pop_front().expect("len accounted");
            if seg.len() <= need {
                need -= seg.len();
                parts.push(seg);
            } else {
                let (head, tail) = seg.split_at(need);
                self.segs.push_front(tail);
                parts.push(head);
                need = 0;
            }
        }
        Payload::concat(&parts)
    }
}

fn same_backing(a: &Repr, b: &Repr) -> bool {
    match (a, b) {
        (Repr::Bytes(x), Repr::Bytes(y)) => Rc::ptr_eq(x, y),
        (Repr::Pattern(x), Repr::Pattern(y)) => Rc::ptr_eq(x, y),
        (Repr::Fill(x), Repr::Fill(y)) => Rc::ptr_eq(x, y),
        _ => false,
    }
}

impl Default for Payload {
    fn default() -> Self {
        Payload::empty()
    }
}

impl Deref for Payload {
    type Target = [u8];
    #[inline]
    fn deref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl AsRef<[u8]> for Payload {
    #[inline]
    fn as_ref(&self) -> &[u8] {
        self.as_slice()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(v: Vec<u8>) -> Payload {
        Payload::from_vec(v)
    }
}

impl From<&[u8]> for Payload {
    fn from(b: &[u8]) -> Payload {
        Payload::from_vec(b.to_vec())
    }
}

impl<const N: usize> From<[u8; N]> for Payload {
    fn from(b: [u8; N]) -> Payload {
        Payload::from_vec(b.to_vec())
    }
}

impl<const N: usize> From<&[u8; N]> for Payload {
    fn from(b: &[u8; N]) -> Payload {
        Payload::from_vec(b.to_vec())
    }
}

impl PartialEq for Payload {
    fn eq(&self, other: &Self) -> bool {
        self.as_slice() == other.as_slice()
    }
}
impl Eq for Payload {}

impl PartialEq<Vec<u8>> for Payload {
    fn eq(&self, other: &Vec<u8>) -> bool {
        self.as_slice() == other.as_slice()
    }
}

impl PartialEq<[u8]> for Payload {
    fn eq(&self, other: &[u8]) -> bool {
        self.as_slice() == other
    }
}

impl PartialEq<&[u8]> for Payload {
    fn eq(&self, other: &&[u8]) -> bool {
        self.as_slice() == *other
    }
}

impl fmt::Debug for Payload {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        // Don't materialise a lazy segment just to debug-print it.
        match &self.repr {
            Repr::Pattern(p) if p.cache.get().is_none() => {
                return write!(
                    f,
                    "Payload::pattern(seed={:#x}, off={}, len={})",
                    p.seed, self.off, self.len
                );
            }
            Repr::Fill(s) if s.cache.get().is_none() => {
                return write!(f, "Payload::fill(byte={:#04x}, len={})", s.byte, self.len);
            }
            _ => {}
        }
        write!(f, "Payload({} B: {:02x?})", self.len, {
            let s = self.as_slice();
            &s[..s.len().min(16)]
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_vec_roundtrip() {
        let p = Payload::from_vec(vec![1, 2, 3, 4]);
        assert_eq!(p.len(), 4);
        assert_eq!(p.as_slice(), &[1, 2, 3, 4]);
        assert_eq!(p.to_vec(), vec![1, 2, 3, 4]);
        assert_eq!(p, vec![1, 2, 3, 4]);
    }

    #[test]
    fn empty_is_empty() {
        let p = Payload::empty();
        assert!(p.is_empty());
        assert_eq!(p.len(), 0);
        assert_eq!(p.as_slice(), &[] as &[u8]);
        assert_eq!(Payload::default(), p);
    }

    #[test]
    fn clone_shares_backing() {
        let p = Payload::from_vec((0u8..100).collect());
        let q = p.clone();
        let (a, b) = q.split_at(40);
        // All views read the same backing without copies.
        assert!(same_backing(&p.repr, &a.repr));
        assert!(same_backing(&p.repr, &b.repr));
        assert_eq!(a.as_slice(), &p.as_slice()[..40]);
        assert_eq!(b.as_slice(), &p.as_slice()[40..]);
    }

    #[test]
    fn slice_matches_vec_semantics() {
        let v: Vec<u8> = (0u8..32).collect();
        let p = Payload::from_vec(v.clone());
        assert_eq!(p.slice(4..9).as_slice(), &v[4..9]);
        assert_eq!(p.slice(0..0).len(), 0);
        assert_eq!(p.slice(32..32).len(), 0);
        // Slices of slices compose.
        assert_eq!(p.slice(8..24).slice(2..6).as_slice(), &v[10..14]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn slice_out_of_bounds_panics() {
        Payload::from_vec(vec![0; 4]).slice(2..6);
    }

    #[test]
    fn concat_adjacent_is_zero_copy() {
        let p = Payload::from_vec((0u8..64).collect());
        let (a, b) = p.split_at(17);
        let joined = Payload::concat(&[a, b]);
        assert!(same_backing(&joined.repr, &p.repr));
        assert_eq!(joined, p);
    }

    #[test]
    fn concat_disjoint_copies() {
        let a = Payload::from_vec(vec![1, 2]);
        let b = Payload::from_vec(vec![3]);
        let j = Payload::concat(&[a, b, Payload::empty()]);
        assert_eq!(j.as_slice(), &[1, 2, 3]);
        assert_eq!(Payload::concat(&[]), Payload::empty());
    }

    #[test]
    fn pattern_is_lazy_and_shared() {
        let p = Payload::pattern(0xfeed, 4096);
        // Not materialised yet (Debug must not force it).
        let dbg = format!("{p:?}");
        assert!(dbg.contains("pattern"), "{dbg}");
        let s = p.slice(100..108);
        let expect: Vec<u8> = (100u64..108).map(|i| pattern_byte(0xfeed, i)).collect();
        assert_eq!(s.as_slice(), &expect[..]);
        // Clones observe the same materialisation.
        assert_eq!(p.slice(100..108), s);
    }

    #[test]
    fn fill_is_lazy_and_shared() {
        let p = Payload::fill(0xa5, 4096);
        // Not materialised yet (Debug must not force it).
        let dbg = format!("{p:?}");
        assert!(dbg.contains("fill"), "{dbg}");
        let s = p.slice(100..108);
        assert_eq!(s.as_slice(), &[0xa5; 8]);
        // Clones observe the same materialisation.
        assert_eq!(p.slice(0..4).as_slice(), &[0xa5; 4]);
    }

    #[test]
    fn try_join_merges_adjacent_same_backing() {
        let p = Payload::from_vec((0u8..64).collect());
        let (a, b) = p.split_at(17);
        let joined = a.try_join(&b).expect("adjacent");
        assert!(same_backing(&joined.repr, &p.repr));
        assert_eq!(joined, p);
        // Non-adjacent or different backing: no join, no copy.
        assert!(b.try_join(&a).is_none());
        assert!(a.try_join(&Payload::from_vec(vec![0; 4])).is_none());
        // Fill segments join only within one shared backing.
        let f = Payload::fill(0, 32);
        let (fa, fb) = f.split_at(10);
        assert_eq!(fa.try_join(&fb).expect("same fill backing"), f);
        assert!(fa.try_join(&Payload::fill(0, 8)).is_none());
    }

    #[test]
    fn equality_is_by_bytes() {
        let a = Payload::from_vec(vec![5, 6, 7]);
        let b = Payload::from_vec(vec![5, 6, 7]);
        assert_eq!(a, b);
        let pat = Payload::pattern(0, 3);
        let mat = Payload::from_vec(pat.to_vec());
        assert_eq!(pat, mat);
    }

    #[test]
    fn deref_enables_slice_ops() {
        let p = Payload::from_vec(vec![9, 8, 7, 6]);
        assert_eq!(p[1], 8);
        assert_eq!(&p[1..3], &[8, 7]);
        assert_eq!(p.iter().copied().max(), Some(9));
    }

    #[test]
    fn queue_matches_vecdeque_semantics() {
        let mut q = PayloadQueue::new();
        let mut model: Vec<u8> = Vec::new();
        let backing = Payload::from_vec((0u8..=255).collect());
        for i in 0..8 {
            let seg = backing.slice(i * 32..(i + 1) * 32);
            model.extend_from_slice(seg.as_slice());
            q.push_back(seg);
        }
        assert_eq!(q.len(), 256);
        // Takes of varying sizes, spanning segment boundaries.
        for n in [1usize, 31, 32, 33, 64, 95] {
            let got = q.take(n);
            let want: Vec<u8> = model.drain(..n).collect();
            assert_eq!(got.to_vec(), want);
        }
        assert_eq!(q.len(), model.len());
        let rest = q.take(q.len());
        assert_eq!(rest.to_vec(), model);
        assert!(q.is_empty());
    }

    #[test]
    fn queue_take_of_adjacent_segments_is_zero_copy() {
        let backing = Payload::from_vec((0u8..128).collect());
        let mut q = PayloadQueue::new();
        q.push_back(backing.slice(0..50));
        q.push_back(backing.slice(50..100));
        let got = q.take(80); // spans both segments
        assert!(same_backing(&got.repr, &backing.repr));
        assert_eq!(got.to_vec(), backing.as_slice()[..80].to_vec());
        assert_eq!(q.len(), 20);
    }

    #[test]
    fn queue_push_front_undoes_take() {
        let mut q = PayloadQueue::new();
        q.push_back(Payload::from_vec(vec![1, 2, 3, 4, 5]));
        let head = q.take(3);
        q.push_front(head);
        assert_eq!(q.take(5).to_vec(), vec![1, 2, 3, 4, 5]);
    }

    #[test]
    #[should_panic(expected = "out of bounds")]
    fn queue_take_beyond_len_panics() {
        let mut q = PayloadQueue::new();
        q.push_back(Payload::from_vec(vec![0; 4]));
        q.take(5);
    }
}
