//! Deterministic simulation PRNG.
//!
//! Simulations must replay exactly: the same seed yields the same event
//! trace, the same addresses, the same latencies. We use SplitMix64 —
//! tiny, fast, and with well-understood statistical quality that is more
//! than sufficient for workload generation and latency jitter.

/// A seedable SplitMix64 generator.
#[derive(Clone, Debug)]
pub struct SimRng {
    state: u64,
}

impl SimRng {
    /// Create a generator from a seed. Two generators with the same seed
    /// produce identical streams.
    pub fn new(seed: u64) -> Self {
        SimRng { state: seed }
    }

    /// Derive an independent child generator (e.g. one per component) so
    /// adding a consumer does not perturb other components' streams.
    pub fn fork(&mut self) -> SimRng {
        SimRng::new(self.next_u64() ^ 0x9e37_79b9_7f4a_7c15)
    }

    /// Next raw 64-bit value.
    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^ (z >> 31)
    }

    /// Uniform in `[0, n)` via Lemire's multiply-shift reduction.
    /// Panics if `n == 0`.
    #[inline]
    pub fn gen_range(&mut self, n: u64) -> u64 {
        assert!(n > 0, "gen_range(0)");
        ((self.next_u64() as u128 * n as u128) >> 64) as u64
    }

    /// Uniform in `[lo, hi)`.
    #[inline]
    pub fn gen_between(&mut self, lo: u64, hi: u64) -> u64 {
        assert!(hi > lo, "empty range");
        lo + self.gen_range(hi - lo)
    }

    /// Uniform duration in `[lo, hi]` (inclusive). Keeps component
    /// latency jitter inside the SimDuration domain (lint SL005) while
    /// drawing exactly one value from the stream — byte-for-byte the
    /// same draw as `gen_between(lo_ps, hi_ps + 1)`.
    #[inline]
    pub fn gen_duration_between(
        &mut self,
        lo: crate::time::SimDuration,
        hi: crate::time::SimDuration,
    ) -> crate::time::SimDuration {
        crate::time::SimDuration::from_ps(self.gen_between(lo.as_ps(), hi.as_ps() + 1))
    }

    /// Uniform f64 in `[0, 1)`.
    #[inline]
    pub fn gen_f64(&mut self) -> f64 {
        (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }

    /// Bernoulli trial with probability `p`.
    #[inline]
    pub fn gen_bool(&mut self, p: f64) -> bool {
        self.gen_f64() < p
    }

    /// Fill a byte slice with pseudorandom data (used to build payloads
    /// whose integrity is later checksummed).
    pub fn fill_bytes(&mut self, buf: &mut [u8]) {
        let mut chunks = buf.chunks_exact_mut(8);
        for c in &mut chunks {
            c.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let w = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&w[..rem.len()]);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_replay() {
        let mut a = SimRng::new(42);
        let mut b = SimRng::new(42);
        for _ in 0..1000 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_diverge() {
        let mut a = SimRng::new(1);
        let mut b = SimRng::new(2);
        let same = (0..64).filter(|_| a.next_u64() == b.next_u64()).count();
        assert_eq!(same, 0);
    }

    #[test]
    fn range_bounds_hold() {
        let mut r = SimRng::new(7);
        for _ in 0..10_000 {
            let x = r.gen_between(10, 20);
            assert!((10..20).contains(&x));
        }
    }

    #[test]
    fn f64_in_unit_interval() {
        let mut r = SimRng::new(3);
        for _ in 0..10_000 {
            let x = r.gen_f64();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn range_covers_values() {
        let mut r = SimRng::new(5);
        let mut seen = [false; 8];
        for _ in 0..1000 {
            seen[r.gen_range(8) as usize] = true;
        }
        assert!(seen.iter().all(|&s| s));
    }

    #[test]
    fn fork_independent() {
        let mut parent = SimRng::new(9);
        let mut child = parent.fork();
        // Child stream differs from continued parent stream.
        let same = (0..64)
            .filter(|_| parent.next_u64() == child.next_u64())
            .count();
        assert_eq!(same, 0);
    }

    #[test]
    fn fill_bytes_covers_tail() {
        let mut r = SimRng::new(11);
        let mut buf = [0u8; 13];
        r.fill_bytes(&mut buf);
        assert!(buf.iter().any(|&b| b != 0));
        // Deterministic.
        let mut r2 = SimRng::new(11);
        let mut buf2 = [0u8; 13];
        r2.fill_bytes(&mut buf2);
        assert_eq!(buf, buf2);
    }

    #[test]
    fn mean_of_unit_uniform_near_half() {
        let mut r = SimRng::new(1234);
        let n = 100_000;
        let sum: f64 = (0..n).map(|_| r.gen_f64()).sum();
        let mean = sum / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean={mean}");
    }
}
