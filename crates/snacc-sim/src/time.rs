//! Simulated time.
//!
//! All models in the workspace share one clock: a 64-bit count of
//! **picoseconds** since simulation start. Picosecond resolution lets byte
//! times on fast links (100 G Ethernet moves a byte every 80 ps) be
//! represented without rounding collapse, while still covering ~213 days of
//! simulated time before overflow — more than any experiment needs.

use std::fmt;
use std::ops::{Add, AddAssign, Div, Mul, Sub, SubAssign};

/// Picoseconds per nanosecond.
pub const PS_PER_NS: u64 = 1_000;
/// Picoseconds per microsecond.
pub const PS_PER_US: u64 = 1_000_000;
/// Picoseconds per millisecond.
pub const PS_PER_MS: u64 = 1_000_000_000;
/// Picoseconds per second.
pub const PS_PER_SEC: u64 = 1_000_000_000_000;

/// An absolute point in simulated time (picoseconds since t = 0).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimTime(u64);

/// A span of simulated time (picoseconds).
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
pub struct SimDuration(u64);

impl SimTime {
    /// The simulation epoch, t = 0.
    pub const ZERO: SimTime = SimTime(0);
    /// The far future; useful as an "infinity" sentinel for idle resources.
    pub const MAX: SimTime = SimTime(u64::MAX);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimTime(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimTime(ns * PS_PER_NS)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Time as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Time as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// Duration elapsed since `earlier`. Panics in debug builds if
    /// `earlier` is in the future.
    #[inline]
    pub fn since(self, earlier: SimTime) -> SimDuration {
        debug_assert!(self >= earlier, "SimTime::since: earlier is later");
        SimDuration(self.0 - earlier.0)
    }

    /// The later of two instants.
    #[inline]
    pub fn max(self, other: SimTime) -> SimTime {
        if self >= other {
            self
        } else {
            other
        }
    }

    /// Saturating addition of a duration (clamps at [`SimTime::MAX`]).
    #[inline]
    pub fn saturating_add(self, d: SimDuration) -> SimTime {
        SimTime(self.0.saturating_add(d.0))
    }
}

impl SimDuration {
    /// A zero-length duration.
    pub const ZERO: SimDuration = SimDuration(0);

    /// Construct from raw picoseconds.
    #[inline]
    pub const fn from_ps(ps: u64) -> Self {
        SimDuration(ps)
    }

    /// Construct from nanoseconds.
    #[inline]
    pub const fn from_ns(ns: u64) -> Self {
        SimDuration(ns * PS_PER_NS)
    }

    /// Construct from microseconds.
    #[inline]
    pub const fn from_us(us: u64) -> Self {
        SimDuration(us * PS_PER_US)
    }

    /// Construct from milliseconds.
    #[inline]
    pub const fn from_ms(ms: u64) -> Self {
        SimDuration(ms * PS_PER_MS)
    }

    /// Construct from whole seconds.
    #[inline]
    pub const fn from_secs(s: u64) -> Self {
        SimDuration(s * PS_PER_SEC)
    }

    /// Construct from fractional microseconds (rounds to nearest ps).
    #[inline]
    pub fn from_us_f64(us: f64) -> Self {
        debug_assert!(us >= 0.0);
        SimDuration((us * PS_PER_US as f64).round() as u64)
    }

    /// Construct from fractional nanoseconds (rounds to nearest ps).
    #[inline]
    pub fn from_ns_f64(ns: f64) -> Self {
        debug_assert!(ns >= 0.0);
        SimDuration((ns * PS_PER_NS as f64).round() as u64)
    }

    /// Raw picosecond count.
    #[inline]
    pub const fn as_ps(self) -> u64 {
        self.0
    }

    /// Whole nanoseconds (truncating).
    #[inline]
    pub const fn as_ns(self) -> u64 {
        self.0 / PS_PER_NS
    }

    /// Duration as fractional microseconds.
    #[inline]
    pub fn as_us_f64(self) -> f64 {
        self.0 as f64 / PS_PER_US as f64
    }

    /// Duration as fractional seconds.
    #[inline]
    pub fn as_secs_f64(self) -> f64 {
        self.0 as f64 / PS_PER_SEC as f64
    }

    /// True if the duration is zero.
    #[inline]
    pub const fn is_zero(self) -> bool {
        self.0 == 0
    }

    /// The larger of two durations.
    #[inline]
    pub fn max(self, other: SimDuration) -> SimDuration {
        if self >= other {
            self
        } else {
            other
        }
    }
}

impl Add<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 + rhs.0)
    }
}

impl AddAssign<SimDuration> for SimTime {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub<SimDuration> for SimTime {
    type Output = SimTime;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimTime {
        SimTime(self.0 - rhs.0)
    }
}

impl Sub<SimTime> for SimTime {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimTime) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl Add for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn add(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 + rhs.0)
    }
}

impl AddAssign for SimDuration {
    #[inline]
    fn add_assign(&mut self, rhs: SimDuration) {
        self.0 += rhs.0;
    }
}

impl Sub for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn sub(self, rhs: SimDuration) -> SimDuration {
        SimDuration(self.0 - rhs.0)
    }
}

impl SubAssign for SimDuration {
    #[inline]
    fn sub_assign(&mut self, rhs: SimDuration) {
        self.0 -= rhs.0;
    }
}

impl Mul<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn mul(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 * rhs)
    }
}

impl Div<u64> for SimDuration {
    type Output = SimDuration;
    #[inline]
    fn div(self, rhs: u64) -> SimDuration {
        SimDuration(self.0 / rhs)
    }
}

impl fmt::Debug for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "t={}", format_ps(self.0))
    }
}

impl fmt::Display for SimTime {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Debug for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

impl fmt::Display for SimDuration {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", format_ps(self.0))
    }
}

/// Human-readable rendering of a picosecond count, choosing the largest
/// unit that keeps the value ≥ 1.
fn format_ps(ps: u64) -> String {
    if ps >= PS_PER_SEC {
        format!("{:.3}s", ps as f64 / PS_PER_SEC as f64)
    } else if ps >= PS_PER_MS {
        format!("{:.3}ms", ps as f64 / PS_PER_MS as f64)
    } else if ps >= PS_PER_US {
        format!("{:.3}us", ps as f64 / PS_PER_US as f64)
    } else if ps >= PS_PER_NS {
        format!("{:.3}ns", ps as f64 / PS_PER_NS as f64)
    } else {
        format!("{ps}ps")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn construction_and_conversion() {
        assert_eq!(SimTime::from_ns(3).as_ps(), 3_000);
        assert_eq!(SimDuration::from_us(2).as_ns(), 2_000);
        assert_eq!(SimDuration::from_ms(1).as_ps(), PS_PER_MS);
        assert_eq!(SimDuration::from_secs(1).as_ps(), PS_PER_SEC);
        assert!((SimDuration::from_us(5).as_us_f64() - 5.0).abs() < 1e-12);
    }

    #[test]
    fn arithmetic() {
        let t = SimTime::from_ns(10) + SimDuration::from_ns(5);
        assert_eq!(t.as_ns(), 15);
        assert_eq!((t - SimTime::from_ns(10)).as_ns(), 5);
        assert_eq!(t.since(SimTime::from_ns(12)).as_ns(), 3);
        assert_eq!((SimDuration::from_ns(4) * 3).as_ns(), 12);
        assert_eq!((SimDuration::from_ns(12) / 4).as_ns(), 3);
    }

    #[test]
    fn ordering_and_max() {
        let a = SimTime::from_ns(1);
        let b = SimTime::from_ns(2);
        assert!(a < b);
        assert_eq!(a.max(b), b);
        assert_eq!(b.max(a), b);
        assert_eq!(
            SimDuration::from_ns(1).max(SimDuration::from_ns(9)),
            SimDuration::from_ns(9)
        );
    }

    #[test]
    fn fractional_constructors_round() {
        assert_eq!(SimDuration::from_ns_f64(0.0801).as_ps(), 80);
        assert_eq!(SimDuration::from_us_f64(1.5).as_ns(), 1500);
    }

    #[test]
    fn display_units() {
        assert_eq!(format!("{}", SimDuration::from_ps(5)), "5ps");
        assert_eq!(format!("{}", SimDuration::from_ns(5)), "5.000ns");
        assert_eq!(format!("{}", SimDuration::from_us(5)), "5.000us");
        assert_eq!(format!("{}", SimDuration::from_ms(5)), "5.000ms");
        assert_eq!(format!("{}", SimDuration::from_secs(5)), "5.000s");
    }

    #[test]
    fn saturating_add_clamps() {
        assert_eq!(
            SimTime::MAX.saturating_add(SimDuration::from_ns(1)),
            SimTime::MAX
        );
    }
}
