//! End-to-end datapath benchmarks: simulated bytes moved through the
//! full model stack per wall-clock second.
//!
//! Three shapes cover the hot paths the zero-copy payload work targets:
//! sequential streamer transfers (64 KiB beats → NVMe), random 4 KiB
//! writes (payload reuse across commands), and the Fig 5/6 case study
//! (Ethernet frames → RX bridge → database controller → streamer), which
//! moves every image byte across four model layers.
//!
//! Run with `cargo bench -p snacc-bench --bench datapath`; set
//! `SNACC_QUICK=1` for the CI smoke sizes.

use criterion::{black_box, criterion_group, criterion_main, Criterion};
use snacc_apps::pipeline::{run_snacc_case_study, CaseStudyConfig};
use snacc_apps::system::{SnaccSystem, SystemConfig};
use snacc_bench::workloads::{self, Dir};
use snacc_core::config::StreamerVariant;

fn quick() -> bool {
    std::env::var_os("SNACC_QUICK").is_some()
}

fn datapath_benches(c: &mut Criterion) {
    let q = quick();
    let mut g = c.benchmark_group("datapath");
    g.sample_size(if q { 2 } else { 5 });

    let seq_total: u64 = if q { 32 << 20 } else { 256 << 20 };
    g.bench_function("seq_write", |b| {
        b.iter(|| {
            black_box(workloads::snacc_seq_bandwidth(
                StreamerVariant::Uram,
                Dir::Write,
                seq_total,
            ))
        })
    });
    g.bench_function("seq_read", |b| {
        b.iter(|| {
            black_box(workloads::snacc_seq_bandwidth(
                StreamerVariant::Uram,
                Dir::Read,
                seq_total,
            ))
        })
    });

    let rand_total: u64 = if q { 8 << 20 } else { 64 << 20 };
    g.bench_function("rand_write_4k", |b| {
        b.iter(|| {
            black_box(workloads::snacc_rand_bandwidth(
                StreamerVariant::Uram,
                Dir::Write,
                rand_total,
                7,
            ))
        })
    });

    // The paper's case study: images over Ethernet into the database.
    // ~9.4 MB per image traverses net → AXIS → controller → streamer.
    let images: u64 = if q { 4 } else { 16 };
    g.bench_function("case_study", |b| {
        b.iter(|| {
            let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
            let report = run_snacc_case_study(
                &mut sys,
                CaseStudyConfig {
                    images,
                    ..Default::default()
                },
            );
            // Release the sparse functional stores (Rc-cycle web).
            sys.nvme.with(|d| d.nand_mut().media_mut().clear());
            sys.hostmem.borrow_mut().store_mut().clear();
            black_box(report.bandwidth_gbps)
        })
    });

    g.finish();
}

criterion_group!(benches, datapath_benches);
criterion_main!(benches);
