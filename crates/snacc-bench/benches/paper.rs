//! Criterion benches over the paper's key workloads.
//!
//! These measure the *simulator's* wall-clock performance on each
//! evaluation scenario (the reproduced figures themselves come from the
//! `fig*`/`ext_*` binaries, which report simulated-time bandwidths).
//! Keeping one Criterion group per paper artifact makes `cargo bench`
//! exercise every experiment path end to end.

use criterion::{criterion_group, criterion_main, Criterion};
use snacc_apps::pipeline::{run_snacc_case_study, CaseStudyConfig};
use snacc_apps::system::{SnaccSystem, SystemConfig};
use snacc_bench::workloads::{
    snacc_latency_us, snacc_rand_bandwidth, snacc_seq_bandwidth, spdk_bandwidth, Dir,
};
use snacc_core::config::StreamerVariant;

fn fig4a_seq_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4a_seq");
    g.sample_size(10);
    g.bench_function("uram_write_64M", |b| {
        b.iter(|| snacc_seq_bandwidth(StreamerVariant::Uram, Dir::Write, 64 << 20))
    });
    g.bench_function("uram_read_64M", |b| {
        b.iter(|| snacc_seq_bandwidth(StreamerVariant::Uram, Dir::Read, 64 << 20))
    });
    g.bench_function("spdk_write_64M", |b| {
        b.iter(|| spdk_bandwidth(Dir::Write, false, 64 << 20, 64, 1))
    });
    g.finish();
}

fn fig4b_rand_bandwidth(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4b_rand");
    g.sample_size(10);
    g.bench_function("uram_rand_read_16M", |b| {
        b.iter(|| snacc_rand_bandwidth(StreamerVariant::Uram, Dir::Read, 16 << 20, 7))
    });
    g.bench_function("spdk_rand_read_16M", |b| {
        b.iter(|| spdk_bandwidth(Dir::Read, true, 16 << 20, 64, 7))
    });
    g.finish();
}

fn fig4c_latency(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig4c_latency");
    g.sample_size(10);
    g.bench_function("uram_read_lat_x10", |b| {
        b.iter(|| snacc_latency_us(StreamerVariant::Uram, Dir::Read, 10, 3))
    });
    g.finish();
}

fn fig6_case_study(c: &mut Criterion) {
    let mut g = c.benchmark_group("fig6_case_study");
    g.sample_size(10);
    g.bench_function("snacc_uram_16_images", |b| {
        b.iter(|| {
            let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
            run_snacc_case_study(
                &mut sys,
                CaseStudyConfig {
                    images: 16,
                    ..Default::default()
                },
            )
        })
    });
    g.finish();
}

fn table1_resources(c: &mut Criterion) {
    use snacc_core::config::StreamerConfig;
    use snacc_core::resources::streamer_resources;
    let mut g = c.benchmark_group("table1_resources");
    g.bench_function("compose_all_variants", |b| {
        b.iter(|| {
            StreamerVariant::all()
                .iter()
                .map(|&v| streamer_resources(&StreamerConfig::snacc(v)).lut)
                .sum::<u64>()
        })
    });
    g.finish();
}

criterion_group!(
    benches,
    fig4a_seq_bandwidth,
    fig4b_rand_bandwidth,
    fig4c_latency,
    fig6_case_study,
    table1_resources
);
criterion_main!(benches);
