//! CI gate: a `--jobs N` sweep must be byte-identical to `--jobs 1`.
//!
//! Runs the `ext_faults` campaign sweep (6 independent faulted
//! simulations) twice in quick mode and compares both console streams
//! byte for byte. The sweep pool buffers each job's output and flushes in
//! job order (see `snacc_bench::sweep`), so worker count must not leak
//! into anything observable.

use std::process::Command;

fn run(jobs: &str) -> (String, String) {
    let out = Command::new(env!("CARGO_BIN_EXE_ext_faults"))
        .args(["--jobs", jobs])
        .env("SNACC_QUICK", "1")
        .output()
        .expect("run ext_faults");
    assert!(out.status.success(), "ext_faults --jobs {jobs} failed");
    (
        String::from_utf8(out.stdout).expect("utf8 stdout"),
        String::from_utf8(out.stderr).expect("utf8 stderr"),
    )
}

#[test]
#[cfg_attr(
    debug_assertions,
    ignore = "runs GiB-scale sweeps; use --release (CI does)"
)]
fn parallel_sweep_output_is_byte_identical() {
    let (out1, err1) = run("1");
    let (out4, err4) = run("4");
    assert!(
        out1.contains("error_rate"),
        "sweep produced no table:\n{out1}"
    );
    assert_eq!(out1, out4, "stdout differs between --jobs 1 and --jobs 4");
    assert_eq!(err1, err4, "stderr differs between --jobs 1 and --jobs 4");
}
