//! Shared workload drivers for the evaluation binaries.

use snacc_apps::system::{layout, HostSystem, SnaccSystem, SystemConfig};
use snacc_core::config::StreamerVariant;
use snacc_core::streamer::encode_read_cmd;
use snacc_faults::FaultPlan;
use snacc_fpga::axis::{self, StreamBeat};
use snacc_nvme::NvmeProfile;
use snacc_sim::{SimDuration, SimTime};
use snacc_spdk::{SpdkConfig, SpdkNvme};

/// Release a system's functional stores. The component graph is an
/// `Rc`-cycle web (hooks ↔ targets ↔ state), so dropping a system does
/// not free it; the multi-GiB sparse media would otherwise accumulate
/// across jobs in one process.
fn scrub_snacc(sys: &mut SnaccSystem) {
    sys.nvme.with(|d| d.nand_mut().media_mut().clear());
    sys.hostmem.borrow_mut().store_mut().clear();
}

/// Same for a host-only system.
fn scrub_host(host: &mut HostSystem) {
    host.nvme.with(|d| d.nand_mut().media_mut().clear());
    host.hostmem.borrow_mut().store_mut().clear();
}

/// Arm the periodic telemetry probe: every 100 µs of simulated time,
/// sample the streamer's byte counters and the user-channel occupancies
/// into counter tracks (line plots in Perfetto — the backpressure
/// picture). No-op when tracing is disabled. The probe chain dies when
/// the event queue drains, so callers re-arm per measurement window.
pub fn arm_streamer_probe(sys: &mut SnaccSystem) {
    if !snacc_trace::enabled() {
        return;
    }
    let m = sys.streamer.metrics();
    let ports = sys.streamer.ports();
    snacc_trace::probe::arm(&mut sys.en, SimDuration::from_us(100), move |en| {
        snacc_trace::counter(
            en,
            "probe.streamer",
            "bytes_to_pe",
            m.bytes_to_pe.get() as f64,
        );
        snacc_trace::counter(
            en,
            "probe.streamer",
            "bytes_from_pe",
            m.bytes_from_pe.get() as f64,
        );
        snacc_trace::counter(
            en,
            "probe.axis",
            "rd_data_occ",
            ports.rd_data.borrow().occupancy() as f64,
        );
        snacc_trace::counter(
            en,
            "probe.axis",
            "wr_in_occ",
            ports.wr_in.borrow().occupancy() as f64,
        );
    });
}

/// The I/O direction of a benchmark run.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum Dir {
    /// Sequential/random reads.
    Read,
    /// Sequential/random writes.
    Write,
}

/// Cheap deterministic payload byte for offset `o`.
#[inline]
pub fn fill_byte(o: u64) -> u8 {
    (o ^ (o >> 7) ^ 0x5a) as u8
}

/// Drive one write transfer through the streamer ports, streaming
/// generated data chunk-wise with backpressure. Returns when the response
/// token arrives.
pub fn streamer_write(sys: &mut SnaccSystem, addr: u64, len: u64) {
    let ports = sys.streamer.ports();
    let header = StreamBeat::mid(addr.to_le_bytes().to_vec());
    while !axis::push(&ports.wr_in, &mut sys.en, header.clone()) {
        assert!(sys.en.step(), "stalled pushing write header");
    }
    let chunk: u64 = 64 << 10;
    let mut off = 0u64;
    while off < len {
        let n = chunk.min(len - off);
        // fill_byte(addr + off + i) == pattern_byte(addr + off, i): the
        // chunk is a lazily materialised pattern segment, and retried
        // pushes clone an Rc instead of 64 KiB.
        let beat = StreamBeat {
            data: snacc_sim::Payload::pattern(addr + off, n as usize),
            last: off + n == len,
        };
        let mut beat = Some(beat);
        loop {
            let b = beat.take().expect("beat present");
            if axis::push(&ports.wr_in, &mut sys.en, b.clone()) {
                break;
            }
            beat = Some(b);
            assert!(sys.en.step(), "stalled pushing write data");
        }
        off += n;
    }
    while ports.wr_resp.borrow().is_empty() {
        assert!(sys.en.step(), "no write response");
    }
    let _ = axis::pop(&ports.wr_resp, &mut sys.en);
}

/// Drive one read transfer, draining (and discarding) the data stream.
pub fn streamer_read(sys: &mut SnaccSystem, addr: u64, len: u64) {
    let ports = sys.streamer.ports();
    let cmd = encode_read_cmd(addr, len);
    while !axis::push(&ports.rd_cmd, &mut sys.en, cmd.clone()) {
        assert!(sys.en.step(), "stalled pushing read cmd");
    }
    let mut got = 0u64;
    while got < len {
        match axis::pop(&ports.rd_data, &mut sys.en) {
            Some(beat) => {
                got += beat.len() as u64;
                if beat.last {
                    break;
                }
            }
            None => assert!(sys.en.step(), "read data stalled"),
        }
    }
    assert_eq!(got, len);
}

/// Fault-campaign accounting gathered after a faulted run: injections at
/// each layer against what the streamer did about them.
#[derive(Clone, Copy, Debug, Default)]
pub struct FaultSummary {
    /// NVMe command errors injected by the device.
    pub nvme_errors: u64,
    /// NVMe latency spikes injected by the device.
    pub nvme_spikes: u64,
    /// PCIe completion timeouts injected by the fabric.
    pub pcie_timeouts: u64,
    /// Bulk TLPs slowed inside a degradation window.
    pub pcie_degraded: u64,
    /// Failed completions observed by the streamer.
    pub streamer_errors: u64,
    /// Streamer command timeouts fired.
    pub streamer_timeouts: u64,
    /// Streamer retry attempts.
    pub retries: u64,
    /// Commands that completed after at least one retry.
    pub recovered: u64,
    /// Commands abandoned after exhausting the retry budget.
    pub gave_up: u64,
}

impl FaultSummary {
    /// Snapshot the accounting counters from a faulted system. The
    /// streamer's metric counters live in the process-wide registry and
    /// accumulate across systems; take a snapshot at the start of the
    /// measured window and diff with [`FaultSummary::since`].
    pub fn from_system(sys: &SnaccSystem) -> FaultSummary {
        let nvme = sys.nvme.fault_stats();
        let pcie = sys.fabric.borrow().fault_stats();
        let m = sys.streamer.metrics();
        FaultSummary {
            nvme_errors: nvme.errors,
            nvme_spikes: nvme.spikes,
            pcie_timeouts: pcie.timeouts,
            pcie_degraded: pcie.degraded,
            streamer_errors: m.errors.get(),
            streamer_timeouts: m.timeouts.get(),
            retries: m.retries.get(),
            recovered: m.recovered.get(),
            gave_up: m.gave_up.get(),
        }
    }

    /// Field-wise difference against an earlier snapshot of the same
    /// process (all counters are monotonic).
    pub fn since(&self, base: &FaultSummary) -> FaultSummary {
        FaultSummary {
            nvme_errors: self.nvme_errors - base.nvme_errors,
            nvme_spikes: self.nvme_spikes - base.nvme_spikes,
            pcie_timeouts: self.pcie_timeouts - base.pcie_timeouts,
            pcie_degraded: self.pcie_degraded - base.pcie_degraded,
            streamer_errors: self.streamer_errors - base.streamer_errors,
            streamer_timeouts: self.streamer_timeouts - base.streamer_timeouts,
            retries: self.retries - base.retries,
            recovered: self.recovered - base.recovered,
            gave_up: self.gave_up - base.gave_up,
        }
    }

    /// Injections that surface as failed commands at the streamer (spikes
    /// and degradation only add latency).
    pub fn injected_failures(&self) -> u64 {
        self.nvme_errors + self.pcie_timeouts
    }
}

impl std::fmt::Display for FaultSummary {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "injected {} (nvme {} + pcie {}), spikes {}, degraded {}, \
             seen {}, timeouts {}, retries {}, recovered {}, gave_up {}",
            self.injected_failures(),
            self.nvme_errors,
            self.pcie_timeouts,
            self.nvme_spikes,
            self.pcie_degraded,
            self.streamer_errors,
            self.streamer_timeouts,
            self.retries,
            self.recovered,
            self.gave_up,
        )
    }
}

/// Sequential bandwidth through the streamer (Fig 4a): transfers `total`
/// bytes in 1 GB requests, reporting per-GiB bandwidths (the paper's
/// alternating write behaviour shows up as distinct per-GiB values).
pub fn snacc_seq_bandwidth(variant: StreamerVariant, dir: Dir, total: u64) -> Vec<f64> {
    snacc_seq_bandwidth_with(variant, dir, total, None).0
}

/// [`snacc_seq_bandwidth`] under an optional fault campaign: the plan's
/// retry policy is wired into the streamer before bring-up and its NVMe
/// and PCIe injectors installed afterwards (so bring-up itself never
/// faults). Returns the per-GiB rates plus the fault accounting.
pub fn snacc_seq_bandwidth_with(
    variant: StreamerVariant,
    dir: Dir,
    total: u64,
    plan: Option<&FaultPlan>,
) -> (Vec<f64>, Option<FaultSummary>) {
    let cfg = match plan {
        Some(p) => SystemConfig::snacc_faulted(variant, p),
        None => SystemConfig::snacc(variant),
    };
    let mut sys = SnaccSystem::bring_up(cfg);
    if let Some(p) = plan {
        sys.inject_faults(p);
    }
    let fault_base = plan.map(|_| FaultSummary::from_system(&sys));
    if dir == Dir::Read {
        // Pre-populate media (cold data still hits the channel ceiling).
        sys.nvme.with(|d| d.nand_mut().prewarm(0, total, 0xA5));
    }
    let gib = 1u64 << 30;
    let mut rates = Vec::new();
    let mut off = 0u64;
    while off < total {
        let n = gib.min(total - off);
        arm_streamer_probe(&mut sys);
        let t0 = sys.en.now();
        match dir {
            Dir::Write => streamer_write(&mut sys, off, n),
            Dir::Read => streamer_read(&mut sys, off, n),
        }
        sys.en.run();
        let dt = sys.en.now().since(t0).as_secs_f64();
        rates.push(n as f64 / 1e9 / dt);
        off += n;
    }
    let summary = fault_base.map(|base| FaultSummary::from_system(&sys).since(&base));
    scrub_snacc(&mut sys);
    (rates, summary)
}

/// Random 4 KiB bandwidth through the streamer (Fig 4b): `total` bytes in
/// 4 KiB requests at random offsets within a pre-warmed 1 GiB extent.
pub fn snacc_rand_bandwidth(variant: StreamerVariant, dir: Dir, total: u64, seed: u64) -> f64 {
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(variant));
    let span = 1u64 << 30;
    sys.nvme.with(|d| d.nand_mut().prewarm(0, span, 0x3C));
    let mut rng = snacc_sim::SimRng::new(seed);
    let count = total / 4096;
    let ports = sys.streamer.ports();
    arm_streamer_probe(&mut sys);
    let t0 = sys.en.now();
    match dir {
        Dir::Read => {
            let mut issued = 0u64;
            let mut received = 0u64;
            while received < total {
                // Keep the command FIFO primed.
                while issued < count {
                    let addr = rng.gen_range(span / 4096) * 4096;
                    let cmd = encode_read_cmd(addr, 4096);
                    if axis::push(&ports.rd_cmd, &mut sys.en, cmd) {
                        issued += 1;
                    } else {
                        break;
                    }
                }
                match axis::pop(&ports.rd_data, &mut sys.en) {
                    Some(beat) => received += beat.len() as u64,
                    None => assert!(sys.en.step(), "random read stalled"),
                }
            }
        }
        Dir::Write => {
            let mut done = 0u64;
            let mut issued = 0u64;
            // One shared 4 KiB page; per-request clones are Rc bumps.
            let payload = snacc_sim::Payload::pattern(0, 4096);
            while done < count {
                if issued < count && ports.wr_in.borrow().has_space(4096 + 8) {
                    let addr = rng.gen_range(span / 4096) * 4096;
                    let hdr = StreamBeat::mid(addr.to_le_bytes().to_vec());
                    if axis::push(&ports.wr_in, &mut sys.en, hdr) {
                        let ok = axis::push(
                            &ports.wr_in,
                            &mut sys.en,
                            StreamBeat::last(payload.clone()),
                        );
                        assert!(ok, "space was checked for header+payload");
                        issued += 1;
                        continue;
                    }
                }
                if axis::pop(&ports.wr_resp, &mut sys.en).is_some() {
                    done += 1;
                } else {
                    assert!(sys.en.step(), "random write stalled");
                }
            }
        }
    }
    sys.en.run();
    let dt = sys.en.now().since(t0).as_secs_f64();
    scrub_snacc(&mut sys);
    total as f64 / 1e9 / dt
}

/// Single 4 KiB access latency through the streamer (Fig 4c), averaged
/// over `trials` serial accesses. Reads are pre-warmed (the benchmark
/// reads what it wrote, as the paper's setup does).
pub fn snacc_latency_us(variant: StreamerVariant, dir: Dir, trials: u32, seed: u64) -> f64 {
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(variant));
    let span = 256u64 << 20;
    sys.nvme.with(|d| d.nand_mut().prewarm(0, span, 0x7E));
    let mut rng = snacc_sim::SimRng::new(seed);
    let mut sum = 0.0;
    for _ in 0..trials {
        let addr = rng.gen_range(span / 4096) * 4096;
        arm_streamer_probe(&mut sys);
        let t0 = sys.en.now();
        match dir {
            Dir::Read => streamer_read(&mut sys, addr, 4096),
            Dir::Write => streamer_write(&mut sys, addr, 4096),
        }
        sys.en.run();
        sum += sys.en.now().since(t0).as_us_f64();
    }
    scrub_snacc(&mut sys);
    sum / trials as f64
}

/// An SPDK host baseline run: sequential or random, closed loop at the
/// configured queue depth. Returns GB/s.
pub fn spdk_bandwidth(dir: Dir, random: bool, total: u64, qd: u16, seed: u64) -> f64 {
    let mut host = HostSystem::bring_up(NvmeProfile::samsung_990pro(), seed);
    let spdk = SpdkNvme::new(
        host.fabric.clone(),
        host.hostmem.clone(),
        host.nvme.clone(),
        SpdkConfig::with_queue_depth(qd),
    );
    spdk.init(&mut host.en, layout::SPDK_CQ).expect("init");
    host.en.run();
    let span = 1u64 << 30;
    if dir == Dir::Read {
        host.nvme.with(|d| d.nand_mut().prewarm(0, span, 0x11));
    }
    let cmd: u64 = if random { 4096 } else { 1 << 20 };
    let count = total / cmd;
    let mut rng = snacc_sim::SimRng::new(seed ^ 0x77);
    // Closed loop: completions trigger replacement submissions.
    let issued = std::rc::Rc::new(std::cell::RefCell::new(0u64));
    let spdk2 = spdk.clone();
    let issued2 = issued.clone();
    let mut addrs: Vec<u64> = Vec::with_capacity(count as usize);
    for i in 0..count {
        let a = if random {
            rng.gen_range(span / cmd) * cmd
        } else {
            (i * cmd) % span
        };
        addrs.push(a);
    }
    let addrs = std::rc::Rc::new(addrs);
    let a2 = addrs.clone();
    // fill_byte(i) == pattern_byte(0, i): one shared lazy pattern segment;
    // per-command submits clone an Rc instead of copying `cmd` bytes.
    let payload = snacc_sim::Payload::pattern(0, cmd as usize);
    let pay2 = payload.clone();
    spdk.set_completion_hook(move |en, _info| {
        let mut i = issued2.borrow_mut();
        if *i < count {
            let addr = a2[*i as usize];
            let r = match dir {
                Dir::Read => spdk2.submit_read(en, addr, cmd),
                Dir::Write => spdk2.submit_write_payload(en, addr, pay2.clone()),
            };
            if r.is_ok() {
                *i += 1;
            }
        }
    });
    let t0 = host.en.now();
    {
        let mut i = issued.borrow_mut();
        while *i < count.min(qd as u64) {
            let addr = addrs[*i as usize];
            match dir {
                Dir::Read => spdk.submit_read(&mut host.en, addr, cmd).expect("prime"),
                Dir::Write => spdk
                    .submit_write_payload(&mut host.en, addr, payload.clone())
                    .expect("prime"),
            };
            *i += 1;
        }
    }
    host.en.run();
    let st = spdk.stats();
    assert_eq!(st.completed, count, "all commands must finish");
    let dt = host.en.now().since(t0).as_secs_f64();
    scrub_host(&mut host);
    total as f64 / 1e9 / dt
}

/// Per-GiB sequential bandwidth series for SPDK (alternation visibility).
pub fn spdk_seq_series(dir: Dir, total: u64, seed: u64) -> Vec<f64> {
    let gib = 1u64 << 30;
    let mut out = Vec::new();
    // One long-lived system; measure GiB windows back to back.
    let mut host = HostSystem::bring_up(NvmeProfile::samsung_990pro(), seed);
    let spdk = SpdkNvme::new(
        host.fabric.clone(),
        host.hostmem.clone(),
        host.nvme.clone(),
        SpdkConfig::default(),
    );
    spdk.init(&mut host.en, layout::SPDK_CQ).expect("init");
    host.en.run();
    if dir == Dir::Read {
        host.nvme.with(|d| d.nand_mut().prewarm(0, total, 0x22));
    }
    let payload = snacc_sim::Payload::pattern(0, 1 << 20);
    let mut off = 0u64;
    while off < total {
        let end = (off + gib).min(total);
        let t0 = host.en.now();
        let mut cur = off;
        // Closed loop within the window at QD 64 via polling steps.
        let mut inflight = 0u64;
        let done = std::rc::Rc::new(std::cell::RefCell::new(0u64));
        let d2 = done.clone();
        spdk.set_completion_hook(move |_, _| *d2.borrow_mut() += 1);
        let window_cmds = (end - off) / (1 << 20);
        while *done.borrow() < window_cmds {
            while cur < end && spdk.can_submit() {
                match dir {
                    Dir::Read => spdk.submit_read(&mut host.en, cur, 1 << 20).map(|_| ()),
                    Dir::Write => spdk
                        .submit_write_payload(&mut host.en, cur, payload.clone())
                        .map(|_| ()),
                }
                .expect("submit");
                cur += 1 << 20;
                inflight += 1;
            }
            if !host.en.step() && *done.borrow() < window_cmds {
                panic!("SPDK window stalled");
            }
        }
        let _ = inflight;
        let dt = host.en.now().since(t0).as_secs_f64();
        out.push((end - off) as f64 / 1e9 / dt);
        off = end;
    }
    scrub_host(&mut host);
    out
}

/// Single-access SPDK latency (Fig 4c). Reads target *cold* addresses —
/// see the warm/cold discussion in `snacc-nvme::nand`.
pub fn spdk_latency_us(dir: Dir, trials: u32, seed: u64) -> f64 {
    let mut host = HostSystem::bring_up(NvmeProfile::samsung_990pro(), seed);
    let spdk = SpdkNvme::new(
        host.fabric.clone(),
        host.hostmem.clone(),
        host.nvme.clone(),
        SpdkConfig::default(),
    );
    spdk.init(&mut host.en, layout::SPDK_CQ).expect("init");
    host.en.run();
    let lat = std::rc::Rc::new(std::cell::RefCell::new(SimDuration::ZERO));
    let l2 = lat.clone();
    spdk.set_completion_hook(move |_, info| {
        *l2.borrow_mut() = info.completed.since(info.submitted);
    });
    let mut rng = snacc_sim::SimRng::new(seed);
    let payload = snacc_sim::Payload::pattern(0, 4096);
    let mut sum = 0.0;
    for _ in 0..trials {
        let addr = (40 << 30) + rng.gen_range(1 << 18) * 4096;
        match dir {
            Dir::Read => spdk.submit_read(&mut host.en, addr, 4096).expect("submit"),
            Dir::Write => spdk
                .submit_write_payload(&mut host.en, addr, payload.clone())
                .expect("submit"),
        };
        host.en.run();
        sum += lat.borrow().as_us_f64();
    }
    let _ = SimTime::ZERO;
    scrub_host(&mut host);
    sum / trials as f64
}
