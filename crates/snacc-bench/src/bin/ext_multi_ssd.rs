//! Sec 7 extension — multi-SSD scaling: aggregate sequential write
//! bandwidth over 1–4 SSDs, one streamer instance per drive, with a
//! striping layer fanning one logical stream across them.

use snacc_apps::system::layout;
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_core::hostinit::SnaccHostDriver;
use snacc_core::multi::MultiSsd;
use snacc_core::plugin::NvmeSubsystem;
use snacc_fpga::axis;
use snacc_fpga::tapasco::TapascoShell;
use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::{NvmeDeviceHandle, NvmeProfile};
use snacc_pcie::target::HostMemTarget;
use snacc_pcie::{PcieFabric, HOST_NODE};
use snacc_sim::Engine;
use std::cell::RefCell;
use std::rc::Rc;

fn aggregate_write_bw(n_ssds: usize) -> f64 {
    let mut en = Engine::new();
    let mut fabric = PcieFabric::new();
    let hostmem = Rc::new(RefCell::new(HostMemory::default()));
    let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
    fabric.map_region(HOST_NODE, AddrRange::new(0, layout::HOST_SPAN), t);
    let fabric = Rc::new(RefCell::new(fabric));
    let mut shell = TapascoShell::new(fabric.clone(), layout::SHELL_BAR);

    let mut streamers = Vec::new();
    for i in 0..n_ssds {
        let mut plugin = NvmeSubsystem::new(StreamerConfig::snacc(StreamerVariant::Uram));
        shell.apply_plugin(&mut en, &mut plugin);
        let streamer = plugin.streamer();
        let nvme = NvmeDeviceHandle::attach(
            fabric.clone(),
            (layout::NVME_BAR + (i as u64)) << 28,
            NvmeProfile::samsung_990pro(),
            100 + i as u64,
        );
        let mut driver = SnaccHostDriver::new(fabric.clone(), hostmem.clone(), nvme.clone());
        driver.bring_up(&mut en, &streamer, 1).expect("bring-up");
        streamers.push(streamer);
    }
    let multi = MultiSsd::new(streamers.clone(), 1 << 20);

    // Stream 1 GiB of striped writes, paced by responses.
    let total: u64 = 1 << 30;
    let stripe_batch: u64 = (n_ssds as u64) << 20;
    let data: Vec<u8> = (0..stripe_batch).map(|i| i as u8).collect();
    let t0 = en.now();
    let mut off = 0u64;
    while off < total {
        multi.write_striped(&mut en, off, &data);
        en.run();
        off += stripe_batch;
    }
    // Drain responses.
    for s in &streamers {
        let ports = s.ports();
        while axis::pop(&ports.wr_resp, &mut en).is_some() {}
    }
    let dt = en.now().since(t0).as_secs_f64();
    total as f64 / 1e9 / dt
}

fn main() {
    let telemetry = Telemetry::from_args();
    let mut records = Vec::new();
    for n in 1..=4usize {
        let bw = aggregate_write_bw(n);
        println!("{n} SSD(s): {bw:.2} GB/s aggregate sequential write");
        records.push(BenchRecord::new(
            "ext_multi_ssd",
            &format!("{n} SSD"),
            bw,
            None,
            "GB/s",
        ));
    }
    print_table("Sec 7 extension — multi-SSD write scaling", &records);
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
