//! Sec 7 extension — out-of-order retirement: random 4 KiB reads with
//! issue slots recycled at completion instead of in-order retirement.

use snacc_apps::system::{SnaccSystem, SystemConfig};
use snacc_bench::workloads::{snacc_rand_bandwidth, Dir};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_nvme::NvmeProfile;

fn ooo_rand_read(total: u64) -> f64 {
    let cfg = SystemConfig {
        streamer: StreamerConfig::snacc_ooo(StreamerVariant::Uram),
        nvme: NvmeProfile::samsung_990pro(),
        enforce_iommu: true,
        seed: 0x5aacc,
    };
    let mut sys = SnaccSystem::bring_up(cfg);
    sys.nvme.with(|d| d.nand_mut().prewarm(0, 1 << 30, 0x3C));
    // Reuse the workload driver by inlining its read loop.
    let ports = sys.streamer.ports();
    let mut rng = snacc_sim::SimRng::new(0xF1B4);
    let count = total / 4096;
    let mut issued = 0u64;
    let mut received = 0u64;
    let t0 = sys.en.now();
    while received < total {
        while issued < count {
            let addr = rng.gen_range((1u64 << 30) / 4096) * 4096;
            let cmd = snacc_core::streamer::encode_read_cmd(addr, 4096);
            if snacc_fpga::axis::push(&ports.rd_cmd, &mut sys.en, cmd) {
                issued += 1;
            } else {
                break;
            }
        }
        match snacc_fpga::axis::pop(&ports.rd_data, &mut sys.en) {
            Some(beat) => received += beat.len() as u64,
            None => assert!(sys.en.step(), "stalled"),
        }
    }
    sys.en.run();
    total as f64 / 1e9 / sys.en.now().since(t0).as_secs_f64()
}

fn main() {
    let telemetry = Telemetry::from_args();
    let total: u64 = if std::env::var("SNACC_QUICK").is_ok() {
        128 << 20
    } else {
        512 << 20
    };
    let in_order = snacc_rand_bandwidth(StreamerVariant::Uram, Dir::Read, total, 0xF1B4);
    let ooo = ooo_rand_read(total);
    let records = vec![
        BenchRecord::new(
            "ext_ooo",
            "in-order retirement (paper)",
            in_order,
            Some(1.6),
            "GB/s",
        ),
        BenchRecord::new("ext_ooo", "out-of-order issue (Sec 7)", ooo, None, "GB/s"),
    ];
    println!("OoO speedup on random 4 KiB reads: {:.2}x", ooo / in_order);
    print_table(
        "Sec 7 extension — out-of-order retirement, random reads",
        &records,
    );
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
