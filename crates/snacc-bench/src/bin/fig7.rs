//! Fig 7 — PCIe data transfers in the case study: bytes on the bus per
//! stored byte, per configuration. URAM / on-board DRAM move the least
//! (one P2P pass); host-DRAM and SPDK stage through host memory (2×);
//! the GPU path adds H2D/D2H on top (most).

use snacc_apps::gpu::{run_gpu_case_study, GpuModel};
use snacc_apps::pipeline::{run_snacc_case_study, CaseStudyConfig};
use snacc_apps::spdk_ref::run_spdk_case_study;
use snacc_apps::system::{SnaccSystem, SystemConfig};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;

fn main() {
    let telemetry = Telemetry::from_args();
    let images: u64 = if std::env::var("SNACC_FULL").is_ok() {
        16384
    } else {
        384
    };
    let cfg = CaseStudyConfig {
        images,
        ..Default::default()
    };
    enum Cfg {
        Snacc(StreamerVariant),
        Spdk,
        Gpu,
    }
    // Paper reports relative transfer volume; ~1× for the on-card
    // variants, ~2× for host staging, most for the GPU.
    let jobs = vec![
        (
            "FPGA (URAM)".to_string(),
            Cfg::Snacc(StreamerVariant::Uram),
            1.0,
        ),
        (
            "FPGA (On-board DRAM)".to_string(),
            Cfg::Snacc(StreamerVariant::OnboardDram),
            1.0,
        ),
        (
            "FPGA (Host DRAM)".to_string(),
            Cfg::Snacc(StreamerVariant::HostDram),
            2.0,
        ),
        ("SPDK".to_string(), Cfg::Spdk, 2.0),
        ("GPU".to_string(), Cfg::Gpu, 2.1),
    ];
    let records: Vec<BenchRecord> = jobs
        .into_iter()
        .map(|(label, job, paper_ratio)| {
            let report = match job {
                Cfg::Snacc(v) => {
                    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(v));
                    let r = run_snacc_case_study(&mut sys, cfg.clone());
                    sys.nvme.with(|d| d.nand_mut().media_mut().clear());
                    sys.hostmem.borrow_mut().store_mut().clear();
                    r
                }
                Cfg::Spdk => run_spdk_case_study(cfg.clone(), 7),
                Cfg::Gpu => run_gpu_case_study(cfg.clone(), GpuModel::default(), 7),
            };
            let ratio = report.pcie_bytes as f64 / report.image_bytes as f64;
            println!(
                "{label}: {:.2} PCIe bytes per stored byte ({:.1} GB on the bus)",
                ratio,
                report.pcie_bytes as f64 / 1e9
            );
            BenchRecord::new("fig7", &label, ratio, Some(paper_ratio), "x stored")
        })
        .collect();
    print_table("Fig 7 — PCIe transfer volume per stored byte", &records);
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
