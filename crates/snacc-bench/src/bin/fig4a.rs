//! Fig 4a — sequential NVMe bandwidth (1 GB transfers): SNAcc URAM /
//! on-board DRAM / host DRAM vs SPDK, read and write. Write bandwidth is
//! reported as the paper's alternating lo/hi pair.

use snacc_bench::sweep::{self, JobOutput};
use snacc_bench::workloads::{snacc_seq_bandwidth_with, spdk_seq_series, Dir};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;

fn minmax(series: &[f64]) -> (f64, f64) {
    let lo = series.iter().copied().fold(f64::INFINITY, f64::min);
    let hi = series.iter().copied().fold(f64::NEG_INFINITY, f64::max);
    (lo, hi)
}

fn main() {
    let telemetry = Telemetry::from_args();
    // 3 GiB spans both program-rate states (1 GiB state blocks) while
    // keeping the functional media resident within small-machine RAM;
    // SNACC_QUICK drops to 2 GiB. The first write window is warm-up (the
    // SSD's 64 MB cache absorbs it) and is excluded from the lo/hi pair.
    let total: u64 = if std::env::var("SNACC_QUICK").is_ok() {
        2 << 30
    } else {
        3 << 30
    };

    // (label, direction, variant [None = SPDK], paper GB/s, paper-lo GB/s)
    type Job = (
        String,
        Dir,
        Option<StreamerVariant>,
        Option<f64>,
        Option<f64>,
    );
    let jobs: Vec<Job> = vec![
        (
            "URAM seq-r".into(),
            Dir::Read,
            Some(StreamerVariant::Uram),
            Some(6.9),
            None,
        ),
        (
            "On-board DRAM seq-r".into(),
            Dir::Read,
            Some(StreamerVariant::OnboardDram),
            Some(6.9),
            None,
        ),
        (
            "Host DRAM seq-r".into(),
            Dir::Read,
            Some(StreamerVariant::HostDram),
            Some(6.9),
            None,
        ),
        ("SPDK seq-r".into(), Dir::Read, None, Some(6.9), None),
        (
            "URAM seq-w".into(),
            Dir::Write,
            Some(StreamerVariant::Uram),
            Some(5.6),
            Some(5.32),
        ),
        (
            "On-board DRAM seq-w".into(),
            Dir::Write,
            Some(StreamerVariant::OnboardDram),
            Some(4.8),
            Some(4.6),
        ),
        (
            "Host DRAM seq-w".into(),
            Dir::Write,
            Some(StreamerVariant::HostDram),
            Some(6.24),
            Some(5.90),
        ),
        (
            "SPDK seq-w".into(),
            Dir::Write,
            None,
            Some(6.24),
            Some(5.90),
        ),
    ];

    let plan = telemetry.fault_plan();
    let work: Vec<sweep::Job<'_, BenchRecord>> = jobs
        .into_iter()
        .map(|(label, dir, variant, paper_hi, paper_lo)| {
            Box::new(move |log: &mut JobOutput| {
                log.eprintln(format!("[fig4a] running {label}..."));
                let mut series = match variant {
                    Some(v) => {
                        let (series, faults) = snacc_seq_bandwidth_with(v, dir, total, plan);
                        if let Some(s) = faults {
                            log.eprintln(format!("[fig4a] {label} faults: {s}"));
                        }
                        series
                    }
                    // The SPDK baseline has no streamer; campaigns target
                    // the SNAcc rows only.
                    None => spdk_seq_series(dir, total, 42),
                };
                if dir == Dir::Write && series.len() > 1 {
                    series.remove(0); // cache-fill warm-up window
                }
                let (lo, hi) = minmax(&series);
                log.eprintln(format!("[fig4a] {label}: {series:?}"));
                let mut r = BenchRecord::new("fig4a", &label, hi, paper_hi, "GB/s");
                if dir == Dir::Write {
                    r = r.with_lo(lo);
                    if let Some(pl) = paper_lo {
                        // Encode the paper's lo in the label for the table.
                        r.label = format!("{label} (paper lo {pl})");
                    }
                }
                r
            }) as sweep::Job<'_, BenchRecord>
        })
        .collect();
    let records = sweep::run_jobs(telemetry.jobs(), work);

    print_table("Fig 4a — sequential bandwidth (GB/s)", &records);
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
