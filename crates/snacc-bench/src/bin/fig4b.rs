//! Fig 4b — random 4 KiB bandwidth (1 GB total, SQ depth 64): in-order
//! SNAcc retirement vs SPDK's out-of-order reaping.

use rayon::prelude::*;
use snacc_bench::workloads::{snacc_rand_bandwidth, spdk_bandwidth, Dir};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;

fn main() {
    let telemetry = Telemetry::from_args();
    let total: u64 = if std::env::var("SNACC_QUICK").is_ok() {
        256 << 20
    } else {
        1 << 30
    };
    let jobs: Vec<(String, Dir, Option<StreamerVariant>, Option<f64>)> = vec![
        (
            "URAM rand-r".into(),
            Dir::Read,
            Some(StreamerVariant::Uram),
            Some(1.6),
        ),
        (
            "On-board DRAM rand-r".into(),
            Dir::Read,
            Some(StreamerVariant::OnboardDram),
            Some(1.6),
        ),
        (
            "Host DRAM rand-r".into(),
            Dir::Read,
            Some(StreamerVariant::HostDram),
            Some(1.6),
        ),
        ("SPDK rand-r".into(), Dir::Read, None, Some(4.5)),
        (
            "URAM rand-w".into(),
            Dir::Write,
            Some(StreamerVariant::Uram),
            Some(4.6),
        ),
        (
            "On-board DRAM rand-w".into(),
            Dir::Write,
            Some(StreamerVariant::OnboardDram),
            Some(4.5),
        ),
        (
            "Host DRAM rand-w".into(),
            Dir::Write,
            Some(StreamerVariant::HostDram),
            Some(4.8),
        ),
        ("SPDK rand-w".into(), Dir::Write, None, Some(5.25)),
    ];
    let run =
        |(label, dir, variant, paper): (String, Dir, Option<StreamerVariant>, Option<f64>)| {
            let gbps = match variant {
                Some(v) => snacc_rand_bandwidth(v, dir, total, 0xF1B4),
                None => spdk_bandwidth(dir, true, total, 64, 0xF1B4),
            };
            BenchRecord::new("fig4b", &label, gbps, paper, "GB/s")
        };
    // The tracer is thread-local: record sequentially when tracing.
    let records: Vec<BenchRecord> = if telemetry.tracing() {
        jobs.into_iter().map(run).collect()
    } else {
        jobs.into_par_iter().map(run).collect()
    };
    print_table("Fig 4b — random 4 KiB bandwidth, QD 64 (GB/s)", &records);
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
