//! Sec 5.2 note — "SPDK can achieve even higher bandwidth when the
//! submission queue size is increased": random-read QD sweep.

use rayon::prelude::*;
use snacc_bench::workloads::{spdk_bandwidth, Dir};
use snacc_bench::{print_table, BenchRecord, Telemetry};

fn main() {
    let telemetry = Telemetry::from_args();
    let total: u64 = if std::env::var("SNACC_QUICK").is_ok() {
        128 << 20
    } else {
        512 << 20
    };
    let qds = [8u16, 16, 32, 64, 128, 256];
    let run = |&qd: &u16| {
        let bw = spdk_bandwidth(Dir::Read, true, total, qd, 31);
        BenchRecord::new("ext_qd_sweep", &format!("QD {qd}"), bw, None, "GB/s")
    };
    // The tracer is thread-local: record sequentially when tracing.
    let records: Vec<BenchRecord> = if telemetry.tracing() {
        qds.iter().map(run).collect()
    } else {
        qds.par_iter().map(run).collect()
    };
    print_table("SPDK random 4 KiB read vs submission queue depth", &records);
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
