//! Fig 4c — single 4 KiB access latency. SNAcc reads target data its own
//! write phase placed in the drive's pSLC region; the SPDK figure matches
//! a cold TLC read (see snacc-nvme::nand for the mechanism).

use rayon::prelude::*;
use snacc_bench::workloads::{snacc_latency_us, spdk_latency_us, Dir};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;

fn main() {
    let telemetry = Telemetry::from_args();
    let trials = 100;
    let jobs: Vec<(String, Dir, Option<StreamerVariant>, Option<f64>)> = vec![
        (
            "URAM read".into(),
            Dir::Read,
            Some(StreamerVariant::Uram),
            Some(34.0),
        ),
        (
            "On-board DRAM read".into(),
            Dir::Read,
            Some(StreamerVariant::OnboardDram),
            Some(41.0),
        ),
        (
            "Host DRAM read".into(),
            Dir::Read,
            Some(StreamerVariant::HostDram),
            Some(43.0),
        ),
        ("SPDK read".into(), Dir::Read, None, Some(57.0)),
        (
            "URAM write".into(),
            Dir::Write,
            Some(StreamerVariant::Uram),
            Some(9.0),
        ),
        (
            "On-board DRAM write".into(),
            Dir::Write,
            Some(StreamerVariant::OnboardDram),
            Some(9.0),
        ),
        (
            "Host DRAM write".into(),
            Dir::Write,
            Some(StreamerVariant::HostDram),
            Some(9.0),
        ),
        ("SPDK write".into(), Dir::Write, None, Some(6.0)),
    ];
    let run =
        |(label, dir, variant, paper): (String, Dir, Option<StreamerVariant>, Option<f64>)| {
            let us = match variant {
                Some(v) => snacc_latency_us(v, dir, trials, 0xC4),
                None => spdk_latency_us(dir, trials, 0xC4),
            };
            BenchRecord::new("fig4c", &label, us, paper, "us")
        };
    // The tracer is thread-local: record sequentially when tracing.
    let records: Vec<BenchRecord> = if telemetry.tracing() {
        jobs.into_iter().map(run).collect()
    } else {
        jobs.into_par_iter().map(run).collect()
    };
    print_table(
        "Fig 4c — single 4 KiB access latency (µs; write rows: paper reports <9 µs)",
        &records,
    );
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
