//! Sec 4.7 — Ethernet flow control: a 100 G source against a slow sink,
//! directly and through a switch. Losslessness and goodput throttling.

use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_net::frame::MacAddr;
use snacc_net::mac::{self, EthMac, MacConfig};
use snacc_net::switch::EthSwitch;
use snacc_net::traffic::{RateSink, StreamSender};
use snacc_sim::{Bandwidth, Engine};

fn run(through_switch: bool, sink_gbps: f64, fc: bool) -> (f64, u64, u64) {
    let mut en = Engine::new();
    let cfg = if fc {
        MacConfig::eth_100g()
    } else {
        MacConfig::eth_100g_no_fc()
    };
    let a = EthMac::new("src", MacAddr::from_index(1), cfg.clone(), 1);
    let b = EthMac::new("dst", MacAddr::from_index(2), cfg.clone(), 2);
    let _sw = if through_switch {
        let sw = EthSwitch::new(2, cfg.clone(), 9);
        mac::connect(&a, &sw.port(0));
        mac::connect(&b, &sw.port(1));
        Some(sw)
    } else {
        mac::connect(&a, &b);
        None
    };
    let total: u64 = 256 << 20;
    let sink = RateSink::attach(b.clone(), Some(Bandwidth::gb_per_s(sink_gbps)));
    let _sender = StreamSender::start(a.clone(), &mut en, MacAddr::from_index(2), 8192, total);
    en.run();
    let (received, mismatches, last_at) = {
        let s = sink.borrow();
        (s.received_bytes(), s.mismatches(), s.last_byte_at())
    };
    let bw = received as f64 / 1e9 / last_at.as_secs_f64().max(1e-12);
    let drops = b.borrow().stats().rx_drops;
    (bw, drops, mismatches)
}

fn main() {
    let telemetry = Telemetry::from_args();
    let mut records = Vec::new();
    for (label, sw, gbps, fc) in [
        ("direct, 6 GB/s sink, FC on", false, 6.0, true),
        ("via switch, 6 GB/s sink, FC on", true, 6.0, true),
        ("direct, 2 GB/s sink, FC on", false, 2.0, true),
        ("direct, 6 GB/s sink, FC OFF", false, 6.0, false),
    ] {
        let (bw, drops, mismatches) = run(sw, gbps, fc);
        println!("{label}: goodput {bw:.2} GB/s, drops {drops}, corrupt {mismatches}");
        records.push(BenchRecord::new("ext_flowctl", label, bw, None, "GB/s"));
        records.push(BenchRecord::new(
            "ext_flowctl",
            &format!("{label} drops"),
            drops as f64,
            Some(if fc { 0.0 } else { 1.0 }),
            "frames",
        ));
    }
    print_table("Sec 4.7 — 802.3x flow control under a slow sink", &records);
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
