//! Fig 6 — case-study bandwidth: image classification on a 100 G stream,
//! five configurations. Default 2048 frames (≈ 19 GB; steady state well
//! before that); SNACC_FULL=1 streams the paper's 16384 frames.

use snacc_apps::gpu::{run_gpu_case_study, GpuModel};
use snacc_apps::pipeline::{run_snacc_case_study_with, CaseStudyConfig};
use snacc_apps::spdk_ref::run_spdk_case_study;
use snacc_apps::system::{SnaccSystem, SystemConfig};
use snacc_bench::sweep::{self, JobOutput};
use snacc_bench::workloads::FaultSummary;
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;

fn main() {
    let telemetry = Telemetry::from_args();
    let images: u64 = if std::env::var("SNACC_FULL").is_ok() {
        16384
    } else {
        512
    };
    let plan = telemetry.fault_plan();
    // A lossy-link campaign desyncs the capture stream; let the
    // DbController resync on the image magic instead of panicking.
    let lossy = plan.is_some_and(|p| {
        p.net
            .as_ref()
            .is_some_and(|n| n.drop_rate > 0.0 || n.corrupt_rate > 0.0)
    });
    let cfg = CaseStudyConfig {
        images,
        tolerate_loss: lossy,
        ..Default::default()
    };
    enum Cfg {
        Snacc(StreamerVariant, f64),
        Spdk(f64),
        Gpu(f64),
    }
    let jobs = vec![
        (
            "FPGA (URAM)".to_string(),
            Cfg::Snacc(StreamerVariant::Uram, 5.6),
        ),
        (
            "FPGA (On-board DRAM)".to_string(),
            Cfg::Snacc(StreamerVariant::OnboardDram, 4.8),
        ),
        (
            "FPGA (Host DRAM)".to_string(),
            Cfg::Snacc(StreamerVariant::HostDram, 6.1),
        ),
        ("SPDK".to_string(), Cfg::Spdk(6.1)),
        ("GPU".to_string(), Cfg::Gpu(5.76)),
    ];
    let work: Vec<sweep::Job<'_, BenchRecord>> = jobs
        .into_iter()
        .map(|(label, job)| {
            let cfg = cfg.clone();
            Box::new(move |log: &mut JobOutput| {
                let (report, paper) = match job {
                    Cfg::Snacc(v, paper) => {
                        let syscfg = match plan {
                            Some(p) => SystemConfig::snacc_faulted(v, p),
                            None => SystemConfig::snacc(v),
                        };
                        let mut sys = SnaccSystem::bring_up(syscfg);
                        let base = plan.map(|_| FaultSummary::from_system(&sys));
                        let r = run_snacc_case_study_with(&mut sys, cfg.clone(), plan);
                        if let Some(base) = base {
                            let s = FaultSummary::from_system(&sys).since(&base);
                            log.eprintln(format!(
                                "[fig6] {label} faults: {s}, resyncs {}, bytes_skipped {}",
                                r.resyncs, r.bytes_skipped
                            ));
                        }
                        // Release functional media (Rc cycles keep the
                        // system alive; GiB-scale stores must not
                        // accumulate).
                        sys.nvme.with(|d| d.nand_mut().media_mut().clear());
                        sys.hostmem.borrow_mut().store_mut().clear();
                        (r, paper)
                    }
                    Cfg::Spdk(paper) => (run_spdk_case_study(cfg.clone(), 7), paper),
                    Cfg::Gpu(paper) => (
                        run_gpu_case_study(cfg.clone(), GpuModel::default(), 7),
                        paper,
                    ),
                };
                log.println(format!(
                    "{label}: {:.2} GB/s, {:.0} frames/s, accuracy {}/{}",
                    report.bandwidth_gbps, report.fps, report.correct, report.classified
                ));
                BenchRecord::new("fig6", &label, report.bandwidth_gbps, Some(paper), "GB/s")
            }) as sweep::Job<'_, BenchRecord>
        })
        .collect();
    let records = sweep::run_jobs(telemetry.jobs(), work);
    print_table(
        "Fig 6 — case-study bandwidth (GB/s; paper: 676 f/s at 6.1)",
        &records,
    );
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
