//! Table 1 — FPGA resource utilisation of the NVMe Streamer variants:
//! compositional model vs the paper's synthesis results.

use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_core::resources::{paper_table1, streamer_resources};
use snacc_fpga::resources::DeviceResources;

fn main() {
    let telemetry = Telemetry::from_args();
    let dev = DeviceResources::alveo_u280();
    let mut records = Vec::new();
    for v in StreamerVariant::all() {
        let m = streamer_resources(&StreamerConfig::snacc(v));
        let p = paper_table1(v);
        records.push(BenchRecord::new(
            "table1",
            &format!("{} LUT", v.label()),
            m.lut as f64,
            Some(p.lut as f64),
            "LUTs",
        ));
        records.push(BenchRecord::new(
            "table1",
            &format!("{} FF", v.label()),
            m.ff as f64,
            Some(p.ff as f64),
            "FFs",
        ));
        records.push(BenchRecord::new(
            "table1",
            &format!("{} BRAM", v.label()),
            m.bram36,
            Some(p.bram36),
            "RAMB36",
        ));
        records.push(BenchRecord::new(
            "table1",
            &format!("{} URAM", v.label()),
            m.uram_bytes as f64 / (1 << 20) as f64,
            Some(p.uram_bytes as f64 / (1 << 20) as f64),
            "MB",
        ));
        println!(
            "{:<14}: LUT {:>6} ({:.1}%)  FF {:>6} ({:.1}%)  BRAM {:>5.1} ({:.1}%)  URAM {:.1} MB ({:.1}%)  DRAM {} MB",
            v.label(), m.lut, dev.lut_pct(&m), m.ff, dev.ff_pct(&m),
            m.bram36, dev.bram_pct(&m),
            m.uram_bytes as f64 / (1 << 20) as f64, dev.uram_pct(&m),
            (m.dram_bytes + m.host_dram_bytes) >> 20,
        );
    }
    print_table(
        "Table 1 — NVMe Streamer resource utilisation (model vs paper)",
        &records,
    );
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
