//! Sec 7 extension — PCIe Gen5 SSD projection: the same streamer design
//! against a Gen5 ×4 drive with doubled media rates.

use snacc_apps::system::{SnaccSystem, SystemConfig};
use snacc_bench::workloads::{fill_byte, streamer_read, streamer_write};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_nvme::NvmeProfile;

fn run(profile: NvmeProfile, write: bool) -> f64 {
    let cfg = SystemConfig {
        streamer: StreamerConfig::snacc(StreamerVariant::HostDram),
        nvme: profile,
        enforce_iommu: true,
        seed: 0x6e5,
    };
    let mut sys = SnaccSystem::bring_up(cfg);
    let total: u64 = 1 << 30;
    if !write {
        sys.nvme
            .with(|d| d.nand_mut().prewarm(0, total, fill_byte(7)));
    }
    let t0 = sys.en.now();
    if write {
        streamer_write(&mut sys, 0, total);
    } else {
        streamer_read(&mut sys, 0, total);
    }
    sys.en.run();
    total as f64 / 1e9 / sys.en.now().since(t0).as_secs_f64()
}

fn main() {
    let telemetry = Telemetry::from_args();
    let mut records = Vec::new();
    for (label, profile) in [
        ("Gen4 x4 (990 PRO)", NvmeProfile::samsung_990pro()),
        ("Gen5 x4 projection", NvmeProfile::gen5_projection()),
    ] {
        let r = run(profile.clone(), false);
        let w = run(profile, true);
        println!("{label}: seq-r {r:.2} GB/s, seq-w {w:.2} GB/s");
        records.push(BenchRecord::new(
            "ext_gen5",
            &format!("{label} seq-r"),
            r,
            None,
            "GB/s",
        ));
        records.push(BenchRecord::new(
            "ext_gen5",
            &format!("{label} seq-w"),
            w,
            None,
            "GB/s",
        ));
    }
    print_table(
        "Sec 7 extension — PCIe Gen5 projection (host-DRAM variant)",
        &records,
    );
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
