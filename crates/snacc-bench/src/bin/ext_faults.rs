//! Extension — fault-campaign sweep: sequential reads through the SNAcc
//! streamer under increasing NVMe transient-error rates, reporting
//! bandwidth alongside the full recovery accounting. Checks the
//! subsystem's core invariant on every point: each injected failure is
//! either retried or given up (`injected == retries + gave_up`), so no
//! fault can pass silently.
//!
//! With `--faults <plan.toml>` the sweep is replaced by a single run of
//! the given campaign (any layers: NVMe, PCIe, retry policy all honoured).

use snacc_bench::workloads::{snacc_seq_bandwidth_with, Dir, FaultSummary};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;
use snacc_faults::FaultPlan;

fn campaign(label: &str, plan: &FaultPlan, total: u64) -> (BenchRecord, FaultSummary) {
    eprintln!("[ext_faults] running {label}...");
    let (series, summary) =
        snacc_seq_bandwidth_with(StreamerVariant::Uram, Dir::Read, total, Some(plan));
    let s = summary.expect("a plan was installed");
    eprintln!("[ext_faults] {label}: {s}");
    assert_eq!(
        s.injected_failures(),
        s.retries + s.gave_up,
        "{label}: every injected failure must be retried or given up"
    );
    let bw = series.iter().sum::<f64>() / series.len() as f64;
    (BenchRecord::new("ext_faults", label, bw, None, "GB/s"), s)
}

fn main() {
    let telemetry = Telemetry::from_args();
    let total: u64 = if std::env::var("SNACC_QUICK").is_ok() {
        512 << 20
    } else {
        1 << 30
    };

    let mut records = Vec::new();
    let mut summaries = Vec::new();
    if let Some(plan) = telemetry.fault_plan() {
        let (r, s) = campaign("--faults plan", plan, total);
        records.push(r);
        summaries.push(("--faults plan".to_string(), s));
    } else {
        // Baseline plus an error-rate sweep under a 3-attempt retry
        // budget. At these rates a command needs 4 consecutive failed
        // attempts to be lost, so recovery should stay total until the
        // highest rates.
        let baseline = FaultPlan::parse("seed = 7").expect("static plan");
        let (r, s) = campaign("error_rate 0", &baseline, total);
        records.push(r);
        summaries.push(("error_rate 0".to_string(), s));
        for rate in [0.01f64, 0.02, 0.05, 0.10, 0.20] {
            let toml = format!(
                "seed = 7\n[retry]\nmax_retries = 3\nbackoff_us = 10\n\
                 [nvme]\nerror_rate = {rate}\n"
            );
            let plan = FaultPlan::parse(&toml).expect("generated plan");
            let label = format!("error_rate {rate}");
            let (r, s) = campaign(&label, &plan, total);
            records.push(r);
            summaries.push((label, s));
        }
    }

    print_table(
        "Ext — sequential read bandwidth under NVMe fault injection",
        &records,
    );
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>8}",
        "configuration", "injected", "retries", "recovered", "gave_up"
    );
    for (label, s) in &summaries {
        println!(
            "{:<16} {:>9} {:>8} {:>10} {:>8}",
            label,
            s.injected_failures(),
            s.retries,
            s.recovered,
            s.gave_up
        );
    }
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
