//! Extension — fault-campaign sweep: sequential reads through the SNAcc
//! streamer under increasing NVMe transient-error rates, reporting
//! bandwidth alongside the full recovery accounting. Checks the
//! subsystem's core invariant on every point: each injected failure is
//! either retried or given up (`injected == retries + gave_up`), so no
//! fault can pass silently.
//!
//! With `--faults <plan.toml>` the sweep is replaced by a single run of
//! the given campaign (any layers: NVMe, PCIe, retry policy all honoured).

use snacc_bench::sweep::{self, JobOutput};
use snacc_bench::workloads::{snacc_seq_bandwidth_with, Dir, FaultSummary};
use snacc_bench::{print_table, BenchRecord, Telemetry};
use snacc_core::config::StreamerVariant;
use snacc_faults::FaultPlan;

fn campaign(
    log: &mut JobOutput,
    label: &str,
    plan: &FaultPlan,
    total: u64,
) -> (BenchRecord, FaultSummary) {
    log.eprintln(format!("[ext_faults] running {label}..."));
    let (series, summary) =
        snacc_seq_bandwidth_with(StreamerVariant::Uram, Dir::Read, total, Some(plan));
    let s = summary.expect("a plan was installed");
    log.eprintln(format!("[ext_faults] {label}: {s}"));
    assert_eq!(
        s.injected_failures(),
        s.retries + s.gave_up,
        "{label}: every injected failure must be retried or given up"
    );
    let bw = series.iter().sum::<f64>() / series.len() as f64;
    (BenchRecord::new("ext_faults", label, bw, None, "GB/s"), s)
}

fn main() {
    let telemetry = Telemetry::from_args();
    let total: u64 = if std::env::var("SNACC_QUICK").is_ok() {
        512 << 20
    } else {
        1 << 30
    };

    // Declare the campaign grid, then fan it across the sweep pool.
    let grid: Vec<(String, FaultPlan)> = if let Some(plan) = telemetry.fault_plan() {
        vec![("--faults plan".to_string(), plan.clone())]
    } else {
        // Baseline plus an error-rate sweep under a 3-attempt retry
        // budget. At these rates a command needs 4 consecutive failed
        // attempts to be lost, so recovery should stay total until the
        // highest rates.
        let mut g = vec![(
            "error_rate 0".to_string(),
            FaultPlan::parse("seed = 7").expect("static plan"),
        )];
        for rate in [0.01f64, 0.02, 0.05, 0.10, 0.20] {
            let toml = format!(
                "seed = 7\n[retry]\nmax_retries = 3\nbackoff_us = 10\n\
                 [nvme]\nerror_rate = {rate}\n"
            );
            g.push((
                format!("error_rate {rate}"),
                FaultPlan::parse(&toml).expect("generated plan"),
            ));
        }
        g
    };
    type CampaignResult = (BenchRecord, (String, FaultSummary));
    let work: Vec<sweep::Job<'_, CampaignResult>> = grid
        .into_iter()
        .map(|(label, plan)| {
            Box::new(move |log: &mut JobOutput| {
                let (r, s) = campaign(log, &label, &plan, total);
                (r, (label, s))
            }) as sweep::Job<'_, CampaignResult>
        })
        .collect();
    let (records, summaries): (Vec<_>, Vec<_>) =
        sweep::run_jobs(telemetry.jobs(), work).into_iter().unzip();

    print_table(
        "Ext — sequential read bandwidth under NVMe fault injection",
        &records,
    );
    println!(
        "{:<16} {:>9} {:>8} {:>10} {:>8}",
        "configuration", "injected", "retries", "recovered", "gave_up"
    );
    for (label, s) in &summaries {
        println!(
            "{:<16} {:>9} {:>8} {:>10} {:>8}",
            label,
            s.injected_failures(),
            s.retries,
            s.recovered,
            s.gave_up
        );
    }
    snacc_bench::report::save_json(&records);
    telemetry.finish();
}
