//! Result records and table printing shared by the evaluation binaries.

use serde_json::{Map, Value};
use std::io::Write as _;
use std::path::Path;

/// One measured value with paper reference for side-by-side reporting.
#[derive(Clone, Debug)]
pub struct BenchRecord {
    /// Experiment id (e.g. "fig4a").
    pub experiment: String,
    /// Row label (e.g. "URAM seq-w").
    pub label: String,
    /// Measured value.
    pub measured: f64,
    /// Optional secondary value (e.g. min of an alternating pair).
    pub measured_lo: Option<f64>,
    /// The paper's reported value, if stated.
    pub paper: Option<f64>,
    /// Unit.
    pub unit: String,
}

impl BenchRecord {
    /// Shorthand constructor.
    pub fn new(
        experiment: &str,
        label: &str,
        measured: f64,
        paper: Option<f64>,
        unit: &str,
    ) -> Self {
        BenchRecord {
            experiment: experiment.to_string(),
            label: label.to_string(),
            measured,
            measured_lo: None,
            paper,
            unit: unit.to_string(),
        }
    }

    /// Attach a lower bound (alternating-bandwidth reporting).
    pub fn with_lo(mut self, lo: f64) -> Self {
        self.measured_lo = Some(lo);
        self
    }

    /// Explicit JSON projection (the vendored serde_json has no derive).
    fn to_json(&self) -> Value {
        let mut m = Map::new();
        m.insert("experiment", Value::from(self.experiment.as_str()));
        m.insert("label", Value::from(self.label.as_str()));
        m.insert("measured", Value::from(self.measured));
        m.insert(
            "measured_lo",
            self.measured_lo.map(Value::from).unwrap_or(Value::Null),
        );
        m.insert("paper", self.paper.map(Value::from).unwrap_or(Value::Null));
        m.insert("unit", Value::from(self.unit.as_str()));
        Value::Object(m)
    }
}

/// Print an experiment's records as an aligned table with paper values.
pub fn print_table(title: &str, records: &[BenchRecord]) {
    println!("\n=== {title} ===");
    println!(
        "{:<28} {:>18} {:>12} {:>8}",
        "configuration", "measured", "paper", "unit"
    );
    for r in records {
        let measured = match r.measured_lo {
            Some(lo) => format!("{:.2} / {:.2}", lo, r.measured),
            None => format!("{:.2}", r.measured),
        };
        let paper = r
            .paper
            .map(|p| format!("{p:.2}"))
            .unwrap_or_else(|| "-".to_string());
        println!(
            "{:<28} {:>18} {:>12} {:>8}",
            r.label, measured, paper, r.unit
        );
    }
}

/// Append records to `results/<experiment>.json` (machine-readable feed
/// for EXPERIMENTS.md).
pub fn save_json(records: &[BenchRecord]) {
    if records.is_empty() {
        return;
    }
    let dir = Path::new("results");
    if std::fs::create_dir_all(dir).is_err() {
        return;
    }
    let path = dir.join(format!("{}.json", records[0].experiment));
    let doc = Value::Array(records.iter().map(BenchRecord::to_json).collect());
    if let Ok(mut f) = std::fs::File::create(&path) {
        let _ = writeln!(f, "{}", serde_json::to_string_pretty(&doc));
        eprintln!("(saved {})", path.display());
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn record_builders() {
        let r = BenchRecord::new("fig4a", "URAM seq-w", 5.6, Some(5.6), "GB/s").with_lo(5.32);
        assert_eq!(r.measured_lo, Some(5.32));
        assert_eq!(r.experiment, "fig4a");
    }

    #[test]
    fn print_does_not_panic() {
        print_table("t", &[BenchRecord::new("x", "a", 1.0, None, "GB/s")]);
    }
}
