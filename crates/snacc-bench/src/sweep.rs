//! Deterministic parallel sweep runner.
//!
//! The figure binaries are sweeps: a list of self-contained simulation
//! jobs (variant × direction × seed), each bringing up its own
//! [`Engine`](snacc_sim::Engine) world. Jobs share no state, so they can
//! run on worker threads — but the simulation stack is intentionally
//! single-threaded (`Rc`-based, thread-local tracer/metrics), so each job
//! must *construct and run* its world entirely on one thread.
//!
//! [`run_jobs`] provides exactly that: a fixed worker pool pulls jobs in
//! index order, every job's console output is captured in a [`JobOutput`]
//! buffer, and the main thread flushes buffers strictly in job order. The
//! visible byte stream is therefore identical for `--jobs 1` and
//! `--jobs N` (CI asserts this; see `tests/jobs_determinism.rs`), and
//! identical to the pre-pool sequential binaries.
//!
//! Telemetry caveat: the tracer, metrics registry and the engine's
//! lifetime event counter are thread-local, so runs recording `--trace`,
//! `--metrics-json` or `--perf-json` degrade to one worker
//! ([`Telemetry::jobs`](crate::Telemetry::jobs) handles this).

use std::collections::VecDeque;
use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::{Condvar, Mutex};

/// Captured console output of one sweep job. Jobs print through this
/// handle instead of `println!`/`eprintln!`; the runner flushes each
/// job's lines (stderr first, then stdout) in job order.
#[derive(Default)]
pub struct JobOutput {
    out: Vec<String>,
    err: Vec<String>,
}

impl JobOutput {
    /// Buffer a stdout line.
    pub fn println(&mut self, line: impl Into<String>) {
        self.out.push(line.into());
    }

    /// Buffer a stderr line (progress/diagnostics).
    pub fn eprintln(&mut self, line: impl Into<String>) {
        self.err.push(line.into());
    }

    fn flush(self) {
        for l in self.err {
            eprintln!("{l}");
        }
        for l in self.out {
            println!("{l}");
        }
    }
}

/// One sweep job: runs a self-contained simulation, printing through the
/// given [`JobOutput`].
pub type Job<'a, R> = Box<dyn FnOnce(&mut JobOutput) -> R + Send + 'a>;

enum Slot<R> {
    Done(JobOutput, R),
    Panicked(JobOutput, Box<dyn std::any::Any + Send>),
}

fn run_one<R>(job: Job<'_, R>) -> Slot<R> {
    let mut log = JobOutput::default();
    match catch_unwind(AssertUnwindSafe(|| job(&mut log))) {
        Ok(r) => Slot::Done(log, r),
        Err(p) => Slot::Panicked(log, p),
    }
}

fn settle<R>(slot: Slot<R>) -> R {
    match slot {
        Slot::Done(log, r) => {
            log.flush();
            r
        }
        Slot::Panicked(log, p) => {
            log.flush();
            resume_unwind(p);
        }
    }
}

/// Run `jobs` on a pool of `workers` threads, returning results in job
/// order. Output is flushed strictly in job order, so the byte stream is
/// independent of the worker count. `workers <= 1` runs inline with no
/// threads (the CI-deterministic default). A panicking job still flushes
/// its output, then the panic resumes on the caller's thread.
pub fn run_jobs<'a, R: Send>(workers: usize, jobs: Vec<Job<'a, R>>) -> Vec<R> {
    let n = jobs.len();
    if workers <= 1 || n <= 1 {
        return jobs.into_iter().map(|j| settle(run_one(j))).collect();
    }
    let workers = workers.min(n);
    let queue: Mutex<VecDeque<(usize, Job<'a, R>)>> =
        Mutex::new(jobs.into_iter().enumerate().collect());
    let slots: Mutex<Vec<Option<Slot<R>>>> = Mutex::new((0..n).map(|_| None).collect());
    let done = Condvar::new();
    std::thread::scope(|s| {
        for _ in 0..workers {
            s.spawn(|| loop {
                let next = queue.lock().expect("queue lock").pop_front();
                let Some((i, job)) = next else {
                    break;
                };
                let slot = run_one(job);
                slots.lock().expect("slot lock")[i] = Some(slot);
                done.notify_all();
            });
        }
        // Flush and collect in job order as results land.
        let mut results = Vec::with_capacity(n);
        for i in 0..n {
            let slot = {
                let mut g = slots.lock().expect("slot lock");
                while g[i].is_none() {
                    g = done.wait(g).expect("slot wait");
                }
                g[i].take().expect("checked above")
            };
            results.push(settle(slot));
        }
        results
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn jobs(n: usize) -> Vec<Job<'static, usize>> {
        (0..n)
            .map(|i| {
                Box::new(move |log: &mut JobOutput| {
                    log.eprintln(format!("job {i} starting"));
                    log.println(format!("job {i} result"));
                    i * 10
                }) as Job<'static, usize>
            })
            .collect()
    }

    #[test]
    fn results_are_in_job_order() {
        for workers in [1, 2, 4, 16] {
            let got = run_jobs(workers, jobs(9));
            assert_eq!(got, (0..9).map(|i| i * 10).collect::<Vec<_>>());
        }
    }

    #[test]
    fn borrows_are_allowed() {
        // Jobs may borrow caller state (e.g. a fault plan).
        let shared = vec![1u64, 2, 3];
        let work: Vec<Job<'_, u64>> = (0..3)
            .map(|i| {
                let shared = &shared;
                Box::new(move |_: &mut JobOutput| shared[i]) as Job<'_, u64>
            })
            .collect();
        assert_eq!(run_jobs(3, work), vec![1, 2, 3]);
    }

    #[test]
    fn panic_propagates_after_flush() {
        let work: Vec<Job<'static, ()>> = vec![
            Box::new(|_| ()),
            Box::new(|log: &mut JobOutput| {
                log.eprintln("about to fail");
                panic!("boom");
            }),
        ];
        let r = catch_unwind(AssertUnwindSafe(|| run_jobs(2, work)));
        assert!(r.is_err());
    }
}
