//! # snacc-bench — the paper's evaluation, regenerated
//!
//! One regenerator per table and figure of the SNAcc paper (Sec 5–6),
//! each as a binary printing the same rows/series the paper reports:
//!
//! | binary          | paper artifact | metric |
//! |-----------------|----------------|--------|
//! | `fig4a`         | Fig 4a | sequential R/W bandwidth, 1 GB, per variant + SPDK |
//! | `fig4b`         | Fig 4b | random 4 KiB bandwidth, 1 GB total, QD 64 |
//! | `fig4c`         | Fig 4c | single 4 KiB access latency |
//! | `table1`        | Table 1 | FPGA resource utilisation per variant |
//! | `fig6`          | Fig 6 | case-study bandwidth, five configurations |
//! | `fig7`          | Fig 7 | PCIe traffic per configuration |
//! | `ext_multi_ssd` | Sec 7 | multi-SSD write scaling |
//! | `ext_ooo`       | Sec 7 | out-of-order retirement on random reads |
//! | `ext_gen5`      | Sec 7 | PCIe Gen5 SSD projection |
//! | `ext_qd_sweep`  | Sec 5.2 note | SPDK random read vs queue depth |
//! | `ext_flowctl`   | Sec 4.7 | Ethernet flow control losslessness |
//!
//! The library half hosts the shared workload drivers plus the
//! deterministic sweep pool ([`sweep`]): binaries declare their job grid
//! and fan independent simulations across `--jobs N` worker threads with
//! byte-identical output at any worker count.

pub mod report;
pub mod sweep;
pub mod telemetry;
pub mod workloads;

pub use report::{print_table, BenchRecord};
pub use telemetry::Telemetry;
