//! `--trace` / `--metrics-json` / `--perf-json` support shared by the
//! evaluation binaries.
//!
//! [`Telemetry::from_args`] scans the process arguments; `--trace <path>`
//! installs a fresh [`Tracer`] so every model-crate instrumentation site
//! starts recording, `--metrics-json <path>` installs a fresh metrics
//! registry scoped to this run, and `--perf-json <path>` records *wall
//! clock* performance of the process itself — elapsed seconds, simulation
//! events executed, peak RSS. [`Telemetry::finish`] writes the exports:
//! the trace as Chrome `trace_event` JSON (open it in
//! <https://ui.perfetto.dev> or `chrome://tracing`), the metrics as a
//! key-sorted JSON snapshot, and the perf record merged into the given
//! JSON file keyed by binary name (so several figure binaries can append
//! to one `BENCH_*.json`).
//!
//! `--faults <plan.toml>` loads a [`FaultPlan`] (see `snacc-faults` and
//! the shipped `plans/*.toml`); binaries that support fault campaigns
//! fetch it with [`Telemetry::fault_plan`] and wire it into their
//! systems.
//!
//! `--jobs <N>` sizes the sweep worker pool ([`Telemetry::jobs`]): sweep
//! binaries fan their independent simulation jobs across `N` threads with
//! byte-identical output (see [`crate::sweep`]). Defaults to 1; forced
//! back to 1 while any telemetry sink is recording.

use snacc_faults::FaultPlan;
use snacc_trace::{MetricsRegistry, Tracer};
use std::path::PathBuf;
use std::time::Instant;

/// Parsed telemetry flags; holds the export paths while the thread-local
/// tracer/registry record the run.
pub struct Telemetry {
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    perf_path: Option<PathBuf>,
    fault_plan: Option<FaultPlan>,
    jobs: usize,
    started: Instant,
}

struct Flags {
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
    perf_path: Option<PathBuf>,
    faults_path: Option<PathBuf>,
    jobs: usize,
}

fn parse(args: impl Iterator<Item = String>) -> Flags {
    let mut f = Flags {
        trace_path: None,
        metrics_path: None,
        perf_path: None,
        faults_path: None,
        jobs: 1,
    };
    let mut args = args;
    while let Some(a) = args.next() {
        if a == "--trace" {
            f.trace_path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--trace=") {
            f.trace_path = Some(PathBuf::from(p));
        } else if a == "--metrics-json" {
            f.metrics_path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--metrics-json=") {
            f.metrics_path = Some(PathBuf::from(p));
        } else if a == "--perf-json" {
            f.perf_path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--perf-json=") {
            f.perf_path = Some(PathBuf::from(p));
        } else if a == "--faults" {
            f.faults_path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--faults=") {
            f.faults_path = Some(PathBuf::from(p));
        } else if a == "--jobs" {
            f.jobs = args.next().and_then(|v| v.parse().ok()).unwrap_or(1);
        } else if let Some(p) = a.strip_prefix("--jobs=") {
            f.jobs = p.parse().unwrap_or(1);
        }
    }
    f
}

/// Peak resident set size of this process in KiB, from
/// `/proc/self/status` `VmHWM` (0 where unavailable).
fn peak_rss_kb() -> u64 {
    let Ok(status) = std::fs::read_to_string("/proc/self/status") else {
        return 0;
    };
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            return rest
                .split_whitespace()
                .next()
                .and_then(|v| v.parse().ok())
                .unwrap_or(0);
        }
    }
    0
}

/// Merge `{key: record}` into the JSON object file at `path`, preserving
/// other keys (each figure binary writes its own entry). The existing file
/// is parsed just enough to splice objects; on any parse trouble the file
/// is rewritten with only the new entry.
fn merge_json_entry(path: &PathBuf, key: &str, record: &str) -> std::io::Result<()> {
    let existing = std::fs::read_to_string(path).unwrap_or_default();
    let mut entries: Vec<(String, String)> = Vec::new();
    if let Some(body) = existing
        .trim()
        .strip_prefix('{')
        .and_then(|s| s.strip_suffix('}'))
    {
        // Top-level entries are `"key": {...}` — values are one-level
        // objects, so splitting on `}` boundaries is enough.
        for part in body.split_inclusive('}') {
            let part = part.trim().trim_start_matches(',').trim();
            if let Some((k, v)) = part.split_once(':') {
                let k = k.trim().trim_matches('"').to_string();
                if !k.is_empty() && k != key {
                    entries.push((k, v.trim().to_string()));
                }
            }
        }
    }
    entries.push((key.to_string(), record.to_string()));
    let mut out = String::from("{\n");
    for (i, (k, v)) in entries.iter().enumerate() {
        let sep = if i + 1 == entries.len() { "" } else { "," };
        out.push_str(&format!("  \"{k}\": {v}{sep}\n"));
    }
    out.push('}');
    out.push('\n');
    std::fs::write(path, out)
}

impl Telemetry {
    /// Parse `--trace <path>` / `--metrics-json <path>` / `--perf-json
    /// <path>` (also the `--flag=path` spelling) from the process
    /// arguments and install the corresponding sinks. Other arguments are
    /// ignored.
    pub fn from_args() -> Telemetry {
        let f = parse(std::env::args().skip(1));
        if f.trace_path.is_some() {
            snacc_trace::install(Tracer::new());
        }
        if f.metrics_path.is_some() {
            snacc_trace::install_registry(MetricsRegistry::new());
        }
        let fault_plan = f.faults_path.as_ref().map(|p| {
            let plan = FaultPlan::load(p).unwrap_or_else(|e| panic!("--faults {e}"));
            eprintln!(
                "(faults: campaign from {}, seed {})",
                p.display(),
                plan.seed
            );
            plan
        });
        Telemetry {
            trace_path: f.trace_path,
            metrics_path: f.metrics_path,
            perf_path: f.perf_path,
            fault_plan,
            jobs: f.jobs,
            started: Instant::now(),
        }
    }

    /// The fault campaign requested with `--faults <plan.toml>`, if any.
    pub fn fault_plan(&self) -> Option<&FaultPlan> {
        self.fault_plan.as_ref()
    }

    /// Must the binary run its simulations sequentially? True when a
    /// trace is being recorded (the tracer, like the simulation itself,
    /// is thread-local, and a deterministic trace needs a deterministic
    /// interleaving) and when wall-clock perf is being recorded (a rayon
    /// fan-out would make events-executed and RSS incomparable between
    /// runs).
    pub fn tracing(&self) -> bool {
        self.trace_path.is_some() || self.perf_path.is_some()
    }

    /// Worker count for the sweep pool (`--jobs N`, default 1). Degrades
    /// to 1 whenever telemetry is recording: the tracer, the metrics
    /// registry and the engine's lifetime event counter are all
    /// thread-local, so a fan-out would record nothing (and make
    /// `--perf-json` events/RSS incomparable). The sweep output itself is
    /// byte-identical at any worker count (see `snacc_bench::sweep`).
    pub fn jobs(&self) -> usize {
        if self.trace_path.is_some() || self.metrics_path.is_some() || self.perf_path.is_some() {
            1
        } else {
            self.jobs.max(1)
        }
    }

    /// Write the requested export files and stop recording.
    pub fn finish(self) {
        if let Some(p) = &self.trace_path {
            let tracer = snacc_trace::uninstall().expect("tracer was installed");
            std::fs::write(p, snacc_trace::export_chrome_trace(&tracer)).expect("write trace");
            eprintln!(
                "(trace: {} events -> {}; open in https://ui.perfetto.dev)",
                tracer.events_recorded(),
                p.display()
            );
        }
        if let Some(p) = &self.metrics_path {
            std::fs::write(p, snacc_trace::registry().snapshot_json()).expect("write metrics");
            eprintln!("(metrics -> {})", p.display());
        }
        if let Some(p) = &self.perf_path {
            let wall = self.started.elapsed().as_secs_f64();
            let events = snacc_sim::engine::lifetime_events_executed();
            let rss = peak_rss_kb();
            let bin = std::env::args()
                .next()
                .map(|a| {
                    PathBuf::from(a)
                        .file_name()
                        .map(|n| n.to_string_lossy().into_owned())
                        .unwrap_or_else(|| "unknown".into())
                })
                .unwrap_or_else(|| "unknown".into());
            let record = format!(
                "{{\"wall_seconds\": {wall:.3}, \"events_executed\": {events}, \"peak_rss_kb\": {rss}}}"
            );
            merge_json_entry(p, &bin, &record).expect("write perf json");
            eprintln!(
                "(perf: {wall:.3} s wall, {events} events, {rss} KiB peak RSS -> {})",
                p.display()
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_both_flag_spellings() {
        let f = parse(strings(&["--trace", "a.json", "--metrics-json=m.json"]));
        assert_eq!(f.trace_path, Some(PathBuf::from("a.json")));
        assert_eq!(f.metrics_path, Some(PathBuf::from("m.json")));
        let f = parse(strings(&["--trace=b.json", "--metrics-json", "n.json"]));
        assert_eq!(f.trace_path, Some(PathBuf::from("b.json")));
        assert_eq!(f.metrics_path, Some(PathBuf::from("n.json")));
        let f = parse(strings(&["--perf-json", "p.json"]));
        assert_eq!(f.perf_path, Some(PathBuf::from("p.json")));
        let f = parse(strings(&["--perf-json=q.json"]));
        assert_eq!(f.perf_path, Some(PathBuf::from("q.json")));
        let f = parse(strings(&["--faults", "plans/flaky_ssd.toml"]));
        assert_eq!(f.faults_path, Some(PathBuf::from("plans/flaky_ssd.toml")));
        let f = parse(strings(&["--faults=x.toml"]));
        assert_eq!(f.faults_path, Some(PathBuf::from("x.toml")));
        let f = parse(strings(&["--jobs", "8"]));
        assert_eq!(f.jobs, 8);
        let f = parse(strings(&["--jobs=4"]));
        assert_eq!(f.jobs, 4);
    }

    #[test]
    fn jobs_defaults_to_one() {
        let f = parse(strings(&[]));
        assert_eq!(f.jobs, 1);
    }

    #[test]
    fn ignores_unrelated_args() {
        let f = parse(strings(&["--quiet", "positional"]));
        assert_eq!(f.trace_path, None);
        assert_eq!(f.metrics_path, None);
        assert_eq!(f.perf_path, None);
    }

    #[test]
    fn perf_json_merges_by_key() {
        let dir = std::env::temp_dir().join(format!("snacc-perf-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("perf.json");
        merge_json_entry(&path, "fig4a", "{\"wall_seconds\": 1.5}").unwrap();
        merge_json_entry(&path, "fig7", "{\"wall_seconds\": 2.0}").unwrap();
        // Re-running a binary replaces its entry, keeping the others.
        merge_json_entry(&path, "fig4a", "{\"wall_seconds\": 1.0}").unwrap();
        let got = std::fs::read_to_string(&path).unwrap();
        assert!(got.contains("\"fig7\": {\"wall_seconds\": 2.0}"), "{got}");
        assert!(got.contains("\"fig4a\": {\"wall_seconds\": 1.0}"), "{got}");
        assert!(!got.contains("1.5"), "{got}");
        std::fs::remove_dir_all(&dir).unwrap();
    }

    #[test]
    fn peak_rss_is_positive_on_linux() {
        // The proc parse itself must not panic anywhere; on Linux the
        // value is real.
        let rss = peak_rss_kb();
        if std::path::Path::new("/proc/self/status").exists() {
            assert!(rss > 0);
        }
    }
}
