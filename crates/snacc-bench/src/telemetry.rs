//! `--trace` / `--metrics-json` support shared by the evaluation binaries.
//!
//! [`Telemetry::from_args`] scans the process arguments; `--trace <path>`
//! installs a fresh [`Tracer`] so every model-crate instrumentation site
//! starts recording, and `--metrics-json <path>` installs a fresh metrics
//! registry scoped to this run. [`Telemetry::finish`] writes the exports:
//! the trace as Chrome `trace_event` JSON (open it in
//! <https://ui.perfetto.dev> or `chrome://tracing`), the metrics as a
//! key-sorted JSON snapshot.

use snacc_trace::{MetricsRegistry, Tracer};
use std::path::PathBuf;

/// Parsed telemetry flags; holds the export paths while the thread-local
/// tracer/registry record the run.
pub struct Telemetry {
    trace_path: Option<PathBuf>,
    metrics_path: Option<PathBuf>,
}

fn parse(args: impl Iterator<Item = String>) -> (Option<PathBuf>, Option<PathBuf>) {
    let mut trace_path = None;
    let mut metrics_path = None;
    let mut args = args;
    while let Some(a) = args.next() {
        if a == "--trace" {
            trace_path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--trace=") {
            trace_path = Some(PathBuf::from(p));
        } else if a == "--metrics-json" {
            metrics_path = args.next().map(PathBuf::from);
        } else if let Some(p) = a.strip_prefix("--metrics-json=") {
            metrics_path = Some(PathBuf::from(p));
        }
    }
    (trace_path, metrics_path)
}

impl Telemetry {
    /// Parse `--trace <path>` / `--metrics-json <path>` (also the
    /// `--flag=path` spelling) from the process arguments and install the
    /// corresponding sinks. Other arguments are ignored.
    pub fn from_args() -> Telemetry {
        let (trace_path, metrics_path) = parse(std::env::args().skip(1));
        if trace_path.is_some() {
            snacc_trace::install(Tracer::new());
        }
        if metrics_path.is_some() {
            snacc_trace::install_registry(MetricsRegistry::new());
        }
        Telemetry {
            trace_path,
            metrics_path,
        }
    }

    /// Is a trace being recorded? Binaries that fan independent
    /// simulations across threads with rayon must fall back to sequential
    /// execution in that case — the tracer (like the simulation itself)
    /// is thread-local, and a deterministic trace needs a deterministic
    /// interleaving anyway.
    pub fn tracing(&self) -> bool {
        self.trace_path.is_some()
    }

    /// Write the requested export files and stop recording.
    pub fn finish(self) {
        if let Some(p) = &self.trace_path {
            let tracer = snacc_trace::uninstall().expect("tracer was installed");
            std::fs::write(p, snacc_trace::export_chrome_trace(&tracer)).expect("write trace");
            eprintln!(
                "(trace: {} events -> {}; open in https://ui.perfetto.dev)",
                tracer.events_recorded(),
                p.display()
            );
        }
        if let Some(p) = &self.metrics_path {
            std::fs::write(p, snacc_trace::registry().snapshot_json()).expect("write metrics");
            eprintln!("(metrics -> {})", p.display());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn strings(v: &[&str]) -> impl Iterator<Item = String> {
        v.iter()
            .map(|s| s.to_string())
            .collect::<Vec<_>>()
            .into_iter()
    }

    #[test]
    fn parses_both_flag_spellings() {
        let (t, m) = parse(strings(&["--trace", "a.json", "--metrics-json=m.json"]));
        assert_eq!(t, Some(PathBuf::from("a.json")));
        assert_eq!(m, Some(PathBuf::from("m.json")));
        let (t, m) = parse(strings(&["--trace=b.json", "--metrics-json", "n.json"]));
        assert_eq!(t, Some(PathBuf::from("b.json")));
        assert_eq!(m, Some(PathBuf::from("n.json")));
    }

    #[test]
    fn ignores_unrelated_args() {
        let (t, m) = parse(strings(&["--quiet", "positional"]));
        assert_eq!(t, None);
        assert_eq!(m, None);
    }
}
