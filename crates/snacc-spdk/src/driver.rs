//! The SPDK-style polling NVMe driver.
//!
//! Queue memory, payload slabs and stored PRP-list pages all live in
//! pinned host memory; the controller fetches everything over its host
//! link. Completions are reaped out of order — any completed command
//! frees its slot immediately — which is exactly the behaviour that wins
//! the random-read comparison in Fig 4b.
//!
//! **Latency note.** The paper measures 57 µs for a single 4 KiB read via
//! SPDK while SNAcc's URAM variant measures 34 µs on the *same SSD*
//! (Fig 4c). The SSD model reconciles this with its warm/cold read
//! mechanism (`snacc-nvme::nand`): SNAcc's latency benchmark reads the
//! data it just wrote (pSLC-resident, ~30 µs tR) while the SPDK figure
//! matches a cold TLC read (~54 µs tR). `host_path_latency` remains
//! available as an explicit ablation knob and defaults to zero.

use crate::cpu::CpuCore;
use snacc_mem::hostmem::PinnedBuffer;
use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::prp::PrpListBuilder;
use snacc_nvme::queue::{CqRing, SqRing};
use snacc_nvme::spec::{self, AdminOpcode, Cqe, IoOpcode, Sqe, Status};
use snacc_nvme::NvmeDeviceHandle;
use snacc_pcie::target::NotifyTarget;
use snacc_pcie::{PcieFabric, HOST_NODE};
use snacc_sim::bytes::Payload;
use snacc_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;

/// I/O direction of a submitted command.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum IoKind {
    /// NVM read.
    Read,
    /// NVM write.
    Write,
}

/// Driver configuration.
#[derive(Clone, Debug)]
pub struct SpdkConfig {
    /// Maximum commands in flight (the paper benchmarks QD 64).
    pub queue_depth: u16,
    /// I/O queue ring entries.
    pub io_entries: u16,
    /// Per-command transfer limit (split larger requests).
    pub max_cmd_bytes: u64,
    /// CPU cost to build + submit one command.
    pub submit_overhead: SimDuration,
    /// CPU cost to reap one completion.
    pub reap_overhead: SimDuration,
    /// Calibrated pipelined host-path latency adder (see module docs).
    pub host_path_latency: SimDuration,
}

impl Default for SpdkConfig {
    fn default() -> Self {
        SpdkConfig {
            queue_depth: 64,
            io_entries: 256,
            max_cmd_bytes: 1 << 20,
            submit_overhead: SimDuration::from_ns(300),
            reap_overhead: SimDuration::from_ns(200),
            host_path_latency: SimDuration::ZERO,
        }
    }
}

impl SpdkConfig {
    /// Same driver with a different queue depth (Fig 4b QD sweep).
    pub fn with_queue_depth(qd: u16) -> Self {
        SpdkConfig {
            queue_depth: qd,
            io_entries: (qd * 4).max(64),
            ..Default::default()
        }
    }
}

/// Information passed to the completion hook.
#[derive(Clone, Copy, Debug)]
pub struct CompletionInfo {
    /// Command id.
    pub cid: u16,
    /// Completed successfully?
    pub ok: bool,
    /// Direction.
    pub kind: IoKind,
    /// Bytes transferred.
    pub bytes: u64,
    /// Submission time.
    pub submitted: SimTime,
    /// User-visible completion time.
    pub completed: SimTime,
}

/// Driver statistics.
#[derive(Clone, Copy, Debug, Default)]
pub struct SpdkStats {
    /// Commands submitted.
    pub submitted: u64,
    /// Commands completed.
    pub completed: u64,
    /// Bytes read.
    pub read_bytes: u64,
    /// Bytes written.
    pub write_bytes: u64,
    /// Error completions.
    pub errors: u64,
}

struct Inflight {
    kind: IoKind,
    bytes: u64,
    slot: usize,
    submitted: SimTime,
}

type CompletionHook = Box<dyn FnMut(&mut Engine, CompletionInfo)>;

struct Inner {
    cfg: SpdkConfig,
    fabric: Rc<RefCell<PcieFabric>>,
    hostmem: Rc<RefCell<HostMemory>>,
    nvme: NvmeDeviceHandle,
    cpu: CpuCore,
    // Admin.
    admin_sq: SqRing,
    admin_cq: CqRing,
    ident_buf: u64,
    // I/O queue (qid 1) in host memory.
    io_sq: SqRing,
    io_cq: CqRing,
    cq_mem: Option<Rc<RefCell<NotifyTarget>>>,
    cq_base: u64,
    // Payload slabs: one per queue slot, each physically contiguous.
    slabs: Vec<PinnedBuffer>,
    free_slots: Vec<usize>,
    // Stored PRP-list pages: one per queue slot.
    list_pages: Vec<u64>,
    next_cid: u16,
    inflight: HashMap<u16, Inflight>,
    hook: Option<CompletionHook>,
    reaping: bool,
    stats: SpdkStats,
}

/// The SPDK-style driver handle.
#[derive(Clone)]
pub struct SpdkNvme {
    inner: Rc<RefCell<Inner>>,
}

/// Driver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SpdkError {
    /// All queue slots are busy.
    QueueFull,
    /// Request exceeds the per-command limit.
    TooLarge,
    /// Admin phase failed.
    AdminFailed(Status),
    /// Controller did not come up.
    NotReady,
}

impl SpdkNvme {
    /// Create the driver: allocates admin queues, per-slot payload slabs
    /// and PRP-list pages from pinned host memory. Host memory must be
    /// mapped on the fabric; the caller is responsible for IOMMU grants
    /// covering the pinned region (SPDK requires root / VFIO for the same
    /// reason, Sec 6.3).
    pub fn new(
        fabric: Rc<RefCell<PcieFabric>>,
        hostmem: Rc<RefCell<HostMemory>>,
        nvme: NvmeDeviceHandle,
        cfg: SpdkConfig,
    ) -> Self {
        let qd = cfg.queue_depth as usize;
        let (admin_sq, admin_cq, ident, io_sq_base, slabs, list_pages) = {
            let mut hm = hostmem.borrow_mut();
            let asq = hm.alloc_pinned(32 * spec::SQE_BYTES).segments()[0].base;
            let acq = hm.alloc_pinned(32 * spec::CQE_BYTES).segments()[0].base;
            let ident = hm.alloc_pinned(4096).segments()[0].base;
            let io_sq = hm
                .alloc_pinned(cfg.io_entries as u64 * spec::SQE_BYTES)
                .segments()[0]
                .base;
            let slabs: Vec<PinnedBuffer> = (0..qd)
                .map(|_| hm.alloc_pinned(cfg.max_cmd_bytes))
                .collect();
            let lists: Vec<u64> = (0..qd)
                .map(|_| hm.alloc_pinned(4096).segments()[0].base)
                .collect();
            (asq, acq, ident, io_sq, slabs, lists)
        };
        let inner = Inner {
            admin_sq: SqRing::new(admin_sq, 32),
            admin_cq: CqRing::new(admin_cq, 32),
            ident_buf: ident,
            io_sq: SqRing::new(io_sq_base, cfg.io_entries),
            io_cq: CqRing::new(0, cfg.io_entries), // base set at init
            cq_mem: None,
            cq_base: 0,
            free_slots: (0..qd).rev().collect(),
            slabs,
            list_pages,
            next_cid: 0,
            inflight: HashMap::new(),
            hook: None,
            reaping: false,
            stats: SpdkStats::default(),
            cpu: CpuCore::new("spdk-reactor"),
            cfg,
            fabric,
            hostmem,
            nvme,
        };
        SpdkNvme {
            inner: Rc::new(RefCell::new(inner)),
        }
    }

    fn reg_write32(&self, en: &mut Engine, off: u64, v: u32) {
        let (fabric, bar) = {
            let i = self.inner.borrow();
            (i.fabric.clone(), i.nvme.bar0_base())
        };
        fabric
            .borrow_mut()
            .write_u32(en, HOST_NODE, bar + off, v)
            .expect("BAR0 reachable");
    }

    fn reg_write64(&self, en: &mut Engine, off: u64, v: u64) {
        let (fabric, bar) = {
            let i = self.inner.borrow();
            (i.fabric.clone(), i.nvme.bar0_base())
        };
        fabric
            .borrow_mut()
            .write(en, HOST_NODE, bar + off, &v.to_le_bytes())
            .expect("BAR0 reachable");
    }

    fn run_admin(&self, en: &mut Engine, mut sqe: Sqe) -> Result<Cqe, SpdkError> {
        let (addr, tail) = {
            let mut i = self.inner.borrow_mut();
            sqe.cid = i.admin_sq.tail();
            let addr = i.admin_sq.tail_addr();
            i.hostmem
                .borrow_mut()
                .store_mut()
                .write(addr, &sqe.encode());
            (addr, i.admin_sq.advance_tail())
        };
        let _ = addr;
        self.reg_write32(en, spec::regs::sq_tail_doorbell(0), tail as u32);
        en.run();
        let mut i = self.inner.borrow_mut();
        let head_addr = i.admin_cq.head_addr();
        let raw = i.hostmem.borrow_mut().store_mut().read_vec(head_addr, 16);
        let Ok(cqe) = Cqe::decode(&raw) else {
            return Err(SpdkError::NotReady);
        };
        if cqe.phase != i.admin_cq.expected_phase() {
            return Err(SpdkError::NotReady);
        }
        i.admin_cq.consume();
        i.admin_sq.update_head(cqe.sq_head);
        if cqe.status != Status::Success {
            return Err(SpdkError::AdminFailed(cqe.status));
        }
        Ok(cqe)
    }

    /// Bring the controller up and create the I/O queue pair. The CQ is a
    /// dedicated pinned host range so the simulated reactor "polls" it
    /// (write-notification models the poll hit).
    pub fn init(&self, en: &mut Engine, cq_phys_base: u64) -> Result<(), SpdkError> {
        {
            let mut i = self.inner.borrow_mut();
            i.cpu.claim(en.now());
        }
        // Admin queue + enable.
        let (asq, acq, entries) = {
            let i = self.inner.borrow();
            (i.admin_sq.base(), i.admin_cq.base(), 32u32)
        };
        self.reg_write32(en, spec::regs::AQA, ((entries - 1) << 16) | (entries - 1));
        self.reg_write64(en, spec::regs::ASQ, asq);
        self.reg_write64(en, spec::regs::ACQ, acq);
        self.reg_write32(en, spec::regs::CC, spec::cc::EN);
        en.run();

        // Identify (exercises the admin data path).
        let ident = self.inner.borrow().ident_buf;
        let mut s = Sqe::new(AdminOpcode::Identify as u8, 0);
        s.prp1 = ident;
        s.cdw[0] = 0x01;
        self.run_admin(en, s)?;

        // Map the CQ as a notifying host range.
        let (entries_io, fabric) = {
            let i = self.inner.borrow();
            (i.cfg.io_entries, i.fabric.clone())
        };
        let cq_mem = Rc::new(RefCell::new(NotifyTarget::new(
            "spdk-cq",
            SimDuration::from_ns(90),
        )));
        fabric.borrow_mut().map_region(
            HOST_NODE,
            AddrRange::new(cq_phys_base, entries_io as u64 * spec::CQE_BYTES),
            cq_mem.clone(),
        );
        {
            let me = self.clone();
            cq_mem
                .borrow_mut()
                .set_hook(Box::new(move |en, _off, _data, arrival| {
                    let me2 = me.clone();
                    let delay = me.inner.borrow().cfg.host_path_latency;
                    en.schedule_at(arrival.max(en.now()) + delay, move |en| {
                        me2.reap(en);
                    });
                }));
        }
        {
            let mut i = self.inner.borrow_mut();
            i.cq_mem = Some(cq_mem);
            i.cq_base = cq_phys_base;
            i.io_cq = CqRing::new(cq_phys_base, entries_io);
        }

        // Create the I/O queue pair.
        let (sq_base, io_entries) = {
            let i = self.inner.borrow();
            (i.io_sq.base(), i.cfg.io_entries)
        };
        let mut c = Sqe::new(AdminOpcode::CreateIoCq as u8, 0);
        c.prp1 = cq_phys_base;
        c.cdw[0] = 1 | (((io_entries - 1) as u32) << 16);
        c.cdw[1] = 1;
        self.run_admin(en, c)?;
        let mut s = Sqe::new(AdminOpcode::CreateIoSq as u8, 0);
        s.prp1 = sq_base;
        s.cdw[0] = 1 | (((io_entries - 1) as u32) << 16);
        s.cdw[1] = 1 | (1 << 16);
        self.run_admin(en, s)?;
        Ok(())
    }

    /// Install the completion hook.
    pub fn set_completion_hook(&self, hook: impl FnMut(&mut Engine, CompletionInfo) + 'static) {
        self.inner.borrow_mut().hook = Some(Box::new(hook));
    }

    /// Is a queue slot available?
    pub fn can_submit(&self) -> bool {
        let i = self.inner.borrow();
        !i.free_slots.is_empty() && !i.io_sq.is_full()
    }

    /// Commands currently in flight.
    pub fn inflight(&self) -> usize {
        self.inner.borrow().inflight.len()
    }

    /// Statistics snapshot.
    pub fn stats(&self) -> SpdkStats {
        self.inner.borrow().stats
    }

    /// Occupancy of the reactor core (1.0 while polling).
    pub fn cpu_occupancy(&self, start: SimTime, now: SimTime) -> f64 {
        self.inner.borrow().cpu.occupancy(start, now)
    }

    /// Useful CPU work consumed so far.
    pub fn cpu_busy(&self) -> SimDuration {
        self.inner.borrow().cpu.busy_total()
    }

    /// Submit a read of `len` bytes at byte address `addr`. Data lands in
    /// the slot's slab; fetch it with [`take_read_data`](Self::take_read_data)
    /// after completion.
    pub fn submit_read(&self, en: &mut Engine, addr: u64, len: u64) -> Result<u16, SpdkError> {
        self.submit(en, IoKind::Read, addr, len, None)
    }

    /// Submit a write of a byte slice at byte address `addr` — the
    /// ingestion point for caller-owned bytes: they are copied once into
    /// a shared backing here, then flow zero-copy. Prefer
    /// [`submit_write_payload`](Self::submit_write_payload) when the
    /// caller already holds a [`Payload`].
    pub fn submit_write(&self, en: &mut Engine, addr: u64, bytes: &[u8]) -> Result<u16, SpdkError> {
        self.submit_write_payload(en, addr, Payload::from_vec(bytes.to_vec()))
    }

    /// Submit a write of a payload window at byte address `addr`. The slab
    /// staging retains the window zero-copy — lazy pattern/fill payloads
    /// stay lazy all the way into the functional media.
    pub fn submit_write_payload(
        &self,
        en: &mut Engine,
        addr: u64,
        data: Payload,
    ) -> Result<u16, SpdkError> {
        let len = data.len() as u64;
        self.submit(en, IoKind::Write, addr, len, Some(data))
    }

    fn submit(
        &self,
        en: &mut Engine,
        kind: IoKind,
        addr: u64,
        len: u64,
        data: Option<Payload>,
    ) -> Result<u16, SpdkError> {
        assert!(
            addr.is_multiple_of(512) && len.is_multiple_of(512),
            "LBA alignment"
        );
        let (cid, tail, submit_done) = {
            let mut i = self.inner.borrow_mut();
            if len > i.cfg.max_cmd_bytes {
                return Err(SpdkError::TooLarge);
            }
            if i.free_slots.is_empty() || i.io_sq.is_full() {
                return Err(SpdkError::QueueFull);
            }
            let slot = i.free_slots.pop().expect("checked");
            let cid = i.next_cid;
            i.next_cid = i.next_cid.wrapping_add(1) % 4096;

            // Zero-copy: the application's data is already in the pinned
            // slab (functionally: copy it there now, costless like a
            // producer writing in place).
            let slab_base = i.slabs[slot].segments()[0].base;
            if let Some(d) = data {
                i.hostmem
                    .borrow_mut()
                    .store_mut()
                    .write_payload(slab_base, d);
            }

            // Build PRPs with a *stored* list page when needed.
            let pages = snacc_sim::ceil_div(len, 4096);
            let page_addrs: Vec<u64> = (0..pages).map(|p| slab_base + p * 4096).collect();
            let mut builder = PrpListBuilder::new(vec![i.list_pages[slot]]);
            let hm = i.hostmem.clone();
            let (prp1, prp2) = builder.build(&page_addrs, |a, bytes| {
                hm.borrow_mut().store_mut().write(a, bytes);
            });

            let opcode = match kind {
                IoKind::Read => IoOpcode::Read,
                IoKind::Write => IoOpcode::Write,
            };
            let mut sqe = Sqe::io(opcode, cid, addr / 512, (len / 512 - 1) as u16);
            sqe.prp1 = prp1;
            sqe.prp2 = prp2;
            let sq_addr = i.io_sq.tail_addr();
            i.hostmem
                .borrow_mut()
                .store_mut()
                .write(sq_addr, &sqe.encode());
            let tail = i.io_sq.advance_tail();

            // Submission costs CPU time; the doorbell rings when the CPU
            // work retires.
            let now = en.now();
            let cost = i.cfg.submit_overhead;
            let done = i.cpu.book(now, cost);
            i.inflight.insert(
                cid,
                Inflight {
                    kind,
                    bytes: len,
                    slot,
                    submitted: now,
                },
            );
            i.stats.submitted += 1;
            (cid, tail, done)
        };
        // Ring the doorbell once the CPU finished the submission work.
        let me = self.clone();
        en.schedule_at(submit_done, move |en| {
            me.reg_write32(en, spec::regs::sq_tail_doorbell(1), tail as u32);
        });
        Ok(cid)
    }

    /// Copy a completed read's data out of its (already recycled-safe)
    /// slab. Call from the completion hook.
    pub fn take_read_data(&self, cid_slot: usize, len: usize) -> Vec<u8> {
        let i = self.inner.borrow();
        let base = i.slabs[cid_slot].segments()[0].base;
        let out = i.hostmem.borrow_mut().store_mut().read_vec(base, len);
        out
    }

    /// Slot index of an inflight command (needed to read a slab before
    /// the hook returns).
    pub fn slot_of(&self, cid: u16) -> Option<usize> {
        self.inner.borrow().inflight.get(&cid).map(|f| f.slot)
    }

    /// Reap all newly visible completions (poll hit).
    fn reap(&self, en: &mut Engine) {
        if self.inner.borrow().reaping {
            return;
        }
        self.inner.borrow_mut().reaping = true;
        let mut callbacks: Vec<CompletionInfo> = Vec::new();
        let mut reaped = 0u32;
        loop {
            let mut i = self.inner.borrow_mut();
            let head_addr = i.io_cq.head_addr();
            let raw = {
                let cq = i.cq_mem.as_ref().expect("initialised").clone();
                let off = head_addr - i.cq_base;
                let mut m = cq.borrow_mut();
                m.mem_mut().read_vec(off, 16)
            };
            let Ok(cqe) = Cqe::decode(&raw) else {
                break;
            };
            if cqe.phase != i.io_cq.expected_phase() {
                break;
            }
            i.io_cq.consume();
            let entries = i.io_sq.entries();
            i.io_sq.update_head(cqe.sq_head % entries);
            reaped += 1;
            let now = en.now();
            let reap_cost = i.cfg.reap_overhead;
            let done = i.cpu.book(now, reap_cost);
            if let Some(fl) = i.inflight.remove(&cqe.cid) {
                // Out-of-order slot recycling: any completion frees its
                // slot immediately.
                i.free_slots.push(fl.slot);
                let ok = cqe.status == Status::Success;
                i.stats.completed += 1;
                if ok {
                    match fl.kind {
                        IoKind::Read => i.stats.read_bytes += fl.bytes,
                        IoKind::Write => i.stats.write_bytes += fl.bytes,
                    }
                } else {
                    i.stats.errors += 1;
                }
                callbacks.push(CompletionInfo {
                    cid: cqe.cid,
                    ok,
                    kind: fl.kind,
                    bytes: fl.bytes,
                    submitted: fl.submitted,
                    completed: done,
                });
            }
        }
        self.inner.borrow_mut().reaping = false;
        if reaped > 0 {
            // CQ head doorbell (posted MMIO).
            let head = self.inner.borrow().io_cq.head();
            self.reg_write32(en, spec::regs::cq_head_doorbell(1), head as u32);
        }
        // Invoke user callbacks with no inner borrow held.
        for info in callbacks {
            let hook = {
                let mut i = self.inner.borrow_mut();
                i.hook.take()
            };
            if let Some(mut h) = hook {
                h(en, info);
                let mut i = self.inner.borrow_mut();
                if i.hook.is_none() {
                    i.hook = Some(h);
                }
            }
        }
    }

    /// Stop the reactor (releases the core).
    pub fn shutdown(&self, en: &mut Engine) {
        self.inner.borrow_mut().cpu.release(en.now());
    }
}
