//! Host CPU core model.
//!
//! SPDK's reactor pegs one core at 100 %: it spins polling the completion
//! queue even when no work arrives (paper Sec 6.3: "one CPU thread
//! running at 100 % capacity, doing nothing but moving data around").
//! We track both the *useful* busy time (submission and reap work, which
//! serialises driver operations) and the polling occupancy (wall time the
//! core is claimed).

use snacc_sim::{SimDuration, SimTime};

/// A single host core running a polling reactor.
#[derive(Debug, Clone)]
pub struct CpuCore {
    name: String,
    busy_until: SimTime,
    busy_total: SimDuration,
    claimed_from: Option<SimTime>,
    claimed_total: SimDuration,
}

impl CpuCore {
    /// A fresh, idle core.
    pub fn new(name: impl Into<String>) -> Self {
        CpuCore {
            name: name.into(),
            busy_until: SimTime::ZERO,
            busy_total: SimDuration::ZERO,
            claimed_from: None,
            claimed_total: SimDuration::ZERO,
        }
    }

    /// Core name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Serialise a unit of driver work costing `cost`; returns when it
    /// finishes.
    pub fn book(&mut self, now: SimTime, cost: SimDuration) -> SimTime {
        let start = now.max(self.busy_until);
        self.busy_until = start + cost;
        self.busy_total += cost;
        self.busy_until
    }

    /// Total useful (non-spin) work performed.
    pub fn busy_total(&self) -> SimDuration {
        self.busy_total
    }

    /// Mark the reactor started (core claimed at 100 %).
    pub fn claim(&mut self, now: SimTime) {
        if self.claimed_from.is_none() {
            self.claimed_from = Some(now);
        }
    }

    /// Mark the reactor stopped.
    pub fn release(&mut self, now: SimTime) {
        if let Some(from) = self.claimed_from.take() {
            self.claimed_total += now.since(from);
        }
    }

    /// Wall time the core has been claimed by the reactor so far.
    pub fn claimed_total(&self, now: SimTime) -> SimDuration {
        match self.claimed_from {
            Some(from) => self.claimed_total + now.since(from),
            None => self.claimed_total,
        }
    }

    /// Occupancy over `[start, now]`: 1.0 while the reactor polls
    /// (SPDK's defining cost), regardless of useful work.
    pub fn occupancy(&self, start: SimTime, now: SimTime) -> f64 {
        let window = now.since(start).as_secs_f64();
        if window <= 0.0 {
            return 0.0;
        }
        (self.claimed_total(now).as_secs_f64() / window).min(1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn booking_serialises() {
        let mut c = CpuCore::new("core0");
        let t1 = c.book(SimTime::ZERO, SimDuration::from_ns(100));
        assert_eq!(t1.as_ns(), 100);
        // Second op at t=0 queues behind the first.
        let t2 = c.book(SimTime::ZERO, SimDuration::from_ns(50));
        assert_eq!(t2.as_ns(), 150);
        // An op after an idle gap starts immediately.
        let t3 = c.book(SimTime::from_ns(1000), SimDuration::from_ns(10));
        assert_eq!(t3.as_ns(), 1010);
        assert_eq!(c.busy_total().as_ns(), 160);
    }

    #[test]
    fn occupancy_is_full_while_claimed() {
        let mut c = CpuCore::new("core0");
        c.claim(SimTime::ZERO);
        let now = SimTime::from_ns(1_000_000);
        assert!((c.occupancy(SimTime::ZERO, now) - 1.0).abs() < 1e-9);
        c.release(now);
        // After release, the claimed window stays fixed.
        let later = SimTime::from_ns(2_000_000);
        assert!((c.occupancy(SimTime::ZERO, later) - 0.5).abs() < 1e-9);
    }

    #[test]
    fn double_claim_is_idempotent() {
        let mut c = CpuCore::new("core0");
        c.claim(SimTime::ZERO);
        c.claim(SimTime::from_ns(500));
        c.release(SimTime::from_ns(1000));
        assert_eq!(c.claimed_total(SimTime::from_ns(1000)).as_ns(), 1000);
    }
}
