//! # snacc-spdk — SPDK-style host baseline
//!
//! The paper's reference point (Sec 5.1): a user-space, polling NVMe
//! driver on the host CPU. "SPDK provides high-performance, raw access to
//! NVMe-based SSDs by shifting driver functionality into user space ...
//! All required data buffers are located in pinned memory ... SPDK
//! optimizes latency by polling for completions instead of relying on
//! interrupt mechanisms. In a setup with one SSD, it can leverage the
//! full SSD bandwidth running on a single thread."
//!
//! Differences from the SNAcc streamer that matter for the evaluation:
//!
//! * queues and payload buffers live in **host memory** (SQE fetches, data
//!   DMA and CQE writes all cross the host link);
//! * PRP lists are **stored** in memory and fetched by the controller —
//!   not synthesised on the fly;
//! * completions are reaped **out of order**, so a slow command never
//!   blocks slot reuse (the Fig 4b random-read advantage);
//! * one CPU core runs at 100 % for the duration (Sec 6.3).
//!
//! [`cpu::CpuCore`] models the polling core; [`driver::SpdkNvme`] is the
//! driver itself.

pub mod cpu;
pub mod driver;

pub use cpu::CpuCore;
pub use driver::{CompletionInfo, IoKind, SpdkConfig, SpdkNvme};
