//! SPDK-style driver end-to-end tests against the simulated SSD.

use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::{NvmeDeviceHandle, NvmeProfile};
use snacc_pcie::target::HostMemTarget;
use snacc_pcie::{PcieFabric, HOST_NODE};
use snacc_sim::{Engine, SimRng, SimTime};
use snacc_spdk::{SpdkConfig, SpdkNvme};
use std::cell::RefCell;
use std::collections::HashSet;
use std::rc::Rc;

const NVME_BAR: u64 = 0x8_0000_0000;
const CQ_PHYS: u64 = 0x3_0000_0000; // dedicated notifying host range

struct Rig {
    en: Engine,
    spdk: SpdkNvme,
    nvme: NvmeDeviceHandle,
    hostmem: Rc<RefCell<HostMemory>>,
}

fn rig(cfg: SpdkConfig) -> Rig {
    let mut en = Engine::new();
    let mut fabric = PcieFabric::new();
    let hostmem = Rc::new(RefCell::new(HostMemory::default()));
    let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
    fabric.map_region(HOST_NODE, AddrRange::new(0, 8 << 30), t);
    let fabric = Rc::new(RefCell::new(fabric));
    let nvme =
        NvmeDeviceHandle::attach(fabric.clone(), NVME_BAR, NvmeProfile::samsung_990pro(), 77);
    let spdk = SpdkNvme::new(fabric, hostmem.clone(), nvme.clone(), cfg);
    spdk.init(&mut en, CQ_PHYS).expect("init");
    en.run();
    Rig {
        en,
        spdk,
        nvme,
        hostmem,
    }
}

#[test]
fn write_read_roundtrip() {
    let mut r = rig(SpdkConfig::default());
    let mut rng = SimRng::new(5);
    let mut data = vec![0u8; 64 << 10];
    rng.fill_bytes(&mut data);

    let done = Rc::new(RefCell::new(Vec::new()));
    let d2 = done.clone();
    r.spdk
        .set_completion_hook(move |_, info| d2.borrow_mut().push(info));

    r.spdk.submit_write(&mut r.en, 4096, &data).unwrap();
    r.en.run();
    assert_eq!(done.borrow().len(), 1);
    assert!(done.borrow()[0].ok);

    // Media holds it.
    let media = r
        .nvme
        .with(|d| d.nand_mut().media_mut().read_vec(4096, data.len()));
    assert_eq!(media, data);

    // Read back through the driver.
    let cid = r
        .spdk
        .submit_read(&mut r.en, 4096, data.len() as u64)
        .unwrap();
    let slot = r.spdk.slot_of(cid).unwrap();
    r.en.run();
    assert_eq!(done.borrow().len(), 2);
    let back = r.spdk.take_read_data(slot, data.len());
    assert_eq!(back, data);
}

#[test]
fn queue_depth_enforced() {
    let mut r = rig(SpdkConfig::with_queue_depth(4));
    for i in 0..4u64 {
        r.spdk.submit_read(&mut r.en, i * 4096, 4096).unwrap();
    }
    assert!(!r.spdk.can_submit());
    let e = r.spdk.submit_read(&mut r.en, 0, 4096);
    assert!(e.is_err());
    r.en.run();
    assert!(r.spdk.can_submit());
    assert_eq!(r.spdk.stats().completed, 4);
}

#[test]
fn out_of_order_slot_recycling() {
    // Mix one slow (cold, large) read with fast (warm) reads: completions
    // arrive out of order and slots free immediately — unlike the
    // streamer's in-order retirement.
    let mut r = rig(SpdkConfig::with_queue_depth(2));
    // Warm up one extent (NAND page 1 → die 1).
    let data = vec![9u8; 4096];
    r.spdk.submit_write(&mut r.en, 16384, &data).unwrap();
    r.en.run();

    let order = Rc::new(RefCell::new(Vec::new()));
    let o2 = order.clone();
    r.spdk.set_completion_hook(move |_, info| {
        o2.borrow_mut().push((info.cid, info.completed));
    });
    // Cold 4 KiB read (slow, distinct warm-block/die/channel) then warm
    // 4 KiB read (fast): submitted in that order, they must complete in
    // the opposite order.
    let slow = r.spdk.submit_read(&mut r.en, 10 << 20, 4096).unwrap();
    let fast = r.spdk.submit_read(&mut r.en, 16384, 4096).unwrap();
    r.en.run();
    let order = order.borrow();
    assert_eq!(order.len(), 2);
    assert_eq!(order[0].0, fast, "fast command completes first");
    assert_eq!(order[1].0, slow);
}

#[test]
fn write_latency_under_9us() {
    let mut r = rig(SpdkConfig::default());
    let lat = Rc::new(RefCell::new(None));
    let l2 = lat.clone();
    r.spdk.set_completion_hook(move |_, info| {
        *l2.borrow_mut() = Some(info.completed.since(info.submitted));
    });
    let data = vec![1u8; 4096];
    r.spdk.submit_write(&mut r.en, 0, &data).unwrap();
    r.en.run();
    let us = lat.borrow().unwrap().as_us_f64();
    assert!(us < 9.0, "SPDK 4 KiB write took {us} µs");
}

#[test]
fn cold_read_latency_near_57us() {
    // Fig 4c shape: SPDK single 4 KiB read of cold data ≈ 57 µs.
    let mut r = rig(SpdkConfig::default());
    let lat = Rc::new(RefCell::new(None));
    let l2 = lat.clone();
    r.spdk.set_completion_hook(move |_, info| {
        *l2.borrow_mut() = Some(info.completed.since(info.submitted));
    });
    r.spdk.submit_read(&mut r.en, 40 << 30, 4096).unwrap();
    r.en.run();
    let us = lat.borrow().unwrap().as_us_f64();
    assert!((50.0..65.0).contains(&us), "SPDK cold 4 KiB read {us} µs");
}

#[test]
fn closed_loop_random_reads_sustain_depth() {
    // A closed-loop QD-16 random-read run: every completion immediately
    // submits a replacement; conservation and depth hold throughout.
    let mut r = rig(SpdkConfig::with_queue_depth(16));
    // Warm 64 MB so reads are pSLC-resident.
    let chunk = vec![0xabu8; 1 << 20];
    for i in 0..64u64 {
        r.spdk.submit_write(&mut r.en, i << 20, &chunk).unwrap();
        r.en.run();
    }
    let total = 500u64;
    let issued = Rc::new(RefCell::new(0u64));
    let spdk2 = r.spdk.clone();
    let issued2 = issued.clone();
    let mut rng = SimRng::new(33);
    let mut addrs: Vec<u64> = (0..total).map(|_| rng.gen_range(16384) * 4096).collect();
    addrs.truncate(total as usize);
    let addrs = Rc::new(addrs);
    let a2 = addrs.clone();
    r.spdk.set_completion_hook(move |en, _info| {
        let mut i = issued2.borrow_mut();
        if *i < total {
            let addr = a2[*i as usize];
            spdk2.submit_read(en, addr, 4096).expect("slot free");
            *i += 1;
        }
    });
    // Prime the window.
    {
        let mut i = issued.borrow_mut();
        while *i < 16 {
            let addr = addrs[*i as usize];
            r.spdk.submit_read(&mut r.en, addr, 4096).unwrap();
            *i += 1;
        }
    }
    r.en.run();
    let st = r.spdk.stats();
    assert_eq!(st.completed, st.submitted);
    assert_eq!(st.completed, total + 64); // reads + warming writes
    assert_eq!(st.errors, 0);
}

#[test]
fn cpu_core_pegged_while_running() {
    let mut r = rig(SpdkConfig::default());
    let data = vec![0u8; 1 << 20];
    let start = SimTime::ZERO;
    for i in 0..8u64 {
        r.spdk.submit_write(&mut r.en, i << 20, &data).unwrap();
        r.en.run();
    }
    let now = r.en.now();
    assert!(
        r.spdk.cpu_occupancy(start, now) > 0.99,
        "polling reactor must claim the core"
    );
    assert!(r.spdk.cpu_busy().as_ns() > 0);
    r.spdk.shutdown(&mut r.en);
    let _ = r.hostmem;
}

#[test]
fn prp_lists_are_stored_in_host_memory() {
    // Contrast with the streamer: a 1 MB command leaves a real PRP list
    // in host memory.
    let mut r = rig(SpdkConfig::default());
    let data = vec![3u8; 1 << 20];
    r.spdk.submit_write(&mut r.en, 0, &data).unwrap();
    r.en.run();
    // Find any nonzero stored list: scan pinned region pages (the list
    // pool was allocated after the slabs — just assert media correctness
    // plus completion; the builder unit tests cover the list layout).
    assert_eq!(r.spdk.stats().write_bytes, 1 << 20);
    let media = r
        .nvme
        .with(|d| d.nand_mut().media_mut().read_vec(0, 1 << 20));
    let distinct: HashSet<u8> = media.iter().copied().collect();
    assert_eq!(distinct.len(), 1);
    assert!(distinct.contains(&3));
}
