//! Fault plans: what to break, where, and how hard.
//!
//! A [`FaultPlan`] is the single description of a fault campaign. It is
//! built from a TOML-subset file (see [`FaultPlan::parse`] and the
//! `plans/` directory at the repository root), or from one of the named
//! presets, and then *applied* to the individual layer models — the NVMe
//! device, the PCIe fabric, an Ethernet MAC. All randomness inside the
//! injectors derives from [`FaultPlan::seed`] through per-layer salts,
//! so two runs of the same plan on the same workload are event-for-event
//! identical.

use crate::minitoml::{self, TomlDoc};
use snacc_core::config::RetryPolicy;
use snacc_net::mac::{self, EthMac};
use snacc_nvme::spec::Status;
use snacc_nvme::{IoFaultConfig, NvmeDeviceHandle};
use snacc_pcie::{PcieFabric, PcieFaultConfig};
use snacc_sim::{Engine, SimDuration, SimTime};
use snacc_trace as trace;
use std::cell::RefCell;
use std::fmt;
use std::path::Path;
use std::rc::Rc;

/// Errors from loading or validating a plan.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PlanError {
    /// The file could not be read.
    Io(String),
    /// The document is not in the supported TOML subset.
    Parse(String),
    /// The document parsed but describes an impossible campaign
    /// (unknown key, rate outside `[0, 1]`, inverted window, …).
    Invalid(String),
}

impl fmt::Display for PlanError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PlanError::Io(e) => write!(f, "cannot read fault plan: {e}"),
            PlanError::Parse(e) => write!(f, "fault plan syntax: {e}"),
            PlanError::Invalid(e) => write!(f, "fault plan invalid: {e}"),
        }
    }
}

impl std::error::Error for PlanError {}

/// NVMe-layer faults: command error statuses and latency spikes.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NvmeFaultSpec {
    /// Probability that an I/O command completes with an error status.
    pub error_rate: f64,
    /// Inject a *fatal* status (LBA Out of Range) instead of the default
    /// transient Data Transfer Error — retries then give up immediately.
    pub fatal: bool,
    /// Probability that an I/O command is delayed by a latency spike.
    pub latency_spike_rate: f64,
    /// Spike duration in microseconds.
    pub latency_spike_us: f64,
    /// Restrict injection to `[start, end)` microseconds (`None` = all).
    pub window_us: Option<(f64, f64)>,
}

/// Ethernet-layer faults: frame loss, corruption, PAUSE storms.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct NetFaultSpec {
    /// Probability that a delivered data frame is dropped on the wire.
    pub drop_rate: f64,
    /// Probability that a delivered data frame is discarded as corrupt.
    pub corrupt_rate: f64,
    /// Optional PAUSE storm (see [`PauseStormSpec`]).
    pub pause_storm: Option<PauseStormSpec>,
}

/// A scheduled burst of PAUSE frames from a misbehaving peer.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PauseStormSpec {
    /// First PAUSE, microseconds from time zero.
    pub start_us: f64,
    /// Number of PAUSE frames.
    pub count: u32,
    /// Spacing between PAUSEs in microseconds.
    pub interval_us: f64,
    /// Quanta per PAUSE (0xffff = maximum throttle).
    pub quanta: u16,
}

/// PCIe-layer faults: completion timeouts and link degradation.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct PcieFaultSpec {
    /// Probability that a bulk non-posted read times out.
    pub timeout_rate: f64,
    /// Restrict timeout draws to `[start, end)` microseconds.
    pub window_us: Option<(f64, f64)>,
    /// Link-degradation window in microseconds (`None` = off).
    pub degrade_us: Option<(f64, f64)>,
    /// Extra latency per degraded transaction, microseconds.
    pub degrade_extra_us: f64,
}

/// A complete, validated fault campaign.
#[derive(Clone, Debug, PartialEq)]
pub struct FaultPlan {
    /// Master seed; every injector RNG derives from it.
    pub seed: u64,
    /// Streamer retry policy the campaign runs under.
    pub retry: RetryPolicy,
    /// NVMe-layer faults, if any.
    pub nvme: Option<NvmeFaultSpec>,
    /// Ethernet-layer faults, if any.
    pub net: Option<NetFaultSpec>,
    /// PCIe-layer faults, if any.
    pub pcie: Option<PcieFaultSpec>,
}

fn dur_us(us: f64) -> SimDuration {
    SimDuration::from_ns((us * 1000.0).round() as u64)
}

fn time_us(us: f64) -> SimTime {
    SimTime::ZERO + dur_us(us)
}

/// Derive a per-layer RNG seed from the master seed. SplitMix64-style
/// scramble so layers never share a stream even for small seeds.
fn layer_seed(seed: u64, salt: u64) -> u64 {
    let mut z = seed
        .wrapping_add(salt.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

impl FaultPlan {
    /// A plan that injects nothing and retries nothing.
    pub fn none() -> Self {
        FaultPlan {
            seed: 0,
            retry: RetryPolicy::disabled(),
            nvme: None,
            net: None,
            pcie: None,
        }
    }

    /// The shipped `plans/flaky_ssd.toml`: transient NVMe command errors
    /// recovered by bounded retry.
    pub fn flaky_ssd() -> Self {
        Self::parse(include_str!("../../../plans/flaky_ssd.toml")).expect("shipped plan parses")
    }

    /// The shipped `plans/lossy_link.toml`: Ethernet frame loss and
    /// corruption, absorbed as graceful degradation.
    pub fn lossy_link() -> Self {
        Self::parse(include_str!("../../../plans/lossy_link.toml")).expect("shipped plan parses")
    }

    /// The shipped `plans/degraded_pcie.toml`: a link-degradation window
    /// plus sporadic completion timeouts.
    pub fn degraded_pcie() -> Self {
        Self::parse(include_str!("../../../plans/degraded_pcie.toml")).expect("shipped plan parses")
    }

    /// Load a plan from a file.
    pub fn load(path: impl AsRef<Path>) -> Result<Self, PlanError> {
        let text = std::fs::read_to_string(path.as_ref())
            .map_err(|e| PlanError::Io(format!("{}: {e}", path.as_ref().display())))?;
        Self::parse(&text)
    }

    /// Parse and validate a plan document.
    pub fn parse(text: &str) -> Result<Self, PlanError> {
        let doc = minitoml::parse(text).map_err(PlanError::Parse)?;
        validate_keys(&doc)?;
        let seed = match doc.get("", "seed") {
            Some(v) => v
                .as_u64()
                .ok_or_else(|| PlanError::Invalid("seed must be a non-negative integer".into()))?,
            None => {
                return Err(PlanError::Invalid(
                    "missing required root key `seed`".into(),
                ))
            }
        };
        let plan = FaultPlan {
            seed,
            retry: parse_retry(&doc)?,
            nvme: parse_nvme(&doc)?,
            net: parse_net(&doc)?,
            pcie: parse_pcie(&doc)?,
        };
        plan.validate()?;
        Ok(plan)
    }

    fn validate(&self) -> Result<(), PlanError> {
        let check_rate = |name: &str, r: f64| {
            if (0.0..=1.0).contains(&r) {
                Ok(())
            } else {
                Err(PlanError::Invalid(format!("{name} = {r} outside [0, 1]")))
            }
        };
        if let Some(n) = &self.nvme {
            check_rate("nvme.error_rate", n.error_rate)?;
            check_rate("nvme.latency_spike_rate", n.latency_spike_rate)?;
            check_window("nvme", n.window_us)?;
        }
        if let Some(n) = &self.net {
            check_rate("net.drop_rate", n.drop_rate)?;
            check_rate("net.corrupt_rate", n.corrupt_rate)?;
        }
        if let Some(p) = &self.pcie {
            check_rate("pcie.timeout_rate", p.timeout_rate)?;
            check_window("pcie", p.window_us)?;
            check_window("pcie degrade", p.degrade_us)?;
        }
        Ok(())
    }

    /// Install the NVMe-layer faults on a device (no-op without a
    /// `[nvme]` section).
    pub fn apply_nvme(&self, nvme: &NvmeDeviceHandle) {
        let Some(n) = &self.nvme else { return };
        let window = n.window_us.map(|(a, b)| (time_us(a), time_us(b)));
        nvme.install_faults(IoFaultConfig {
            error_rate: n.error_rate,
            error_status: if n.fatal {
                Status::LbaOutOfRange
            } else {
                Status::DataTransferError
            },
            latency_spike_rate: n.latency_spike_rate,
            latency_spike: dur_us(n.latency_spike_us),
            window,
            seed: layer_seed(self.seed, 1),
        });
        if let (Some((a, b)), true) = (window, trace::enabled()) {
            trace::span_between("faults", "window.nvme", a, b, &[]);
        }
    }

    /// Install the PCIe-layer faults on the fabric (no-op without a
    /// `[pcie]` section).
    pub fn apply_fabric(&self, fabric: &mut PcieFabric) {
        let Some(p) = &self.pcie else { return };
        let window = p.window_us.map(|(a, b)| (time_us(a), time_us(b)));
        let degrade_window = p.degrade_us.map(|(a, b)| (time_us(a), time_us(b)));
        fabric.install_faults(PcieFaultConfig {
            timeout_rate: p.timeout_rate,
            window,
            degrade_window,
            degrade_extra: dur_us(p.degrade_extra_us),
            seed: layer_seed(self.seed, 2),
        });
        if trace::enabled() {
            if let Some((a, b)) = window {
                trace::span_between("faults", "window.pcie_timeouts", a, b, &[]);
            }
            if let Some((a, b)) = degrade_window {
                trace::span_between("faults", "window.pcie_degrade", a, b, &[]);
            }
        }
    }

    /// Install the Ethernet-layer faults on a MAC: loss/corruption rates
    /// plus the PAUSE storm, if configured (no-op without a `[net]`
    /// section). The storm is emitted *by* `mac` towards its peer.
    pub fn apply_mac(&self, en: &mut Engine, mac_rc: &Rc<RefCell<EthMac>>) {
        let Some(n) = &self.net else { return };
        mac_rc
            .borrow_mut()
            .set_fault_rates(n.drop_rate, n.corrupt_rate);
        if let Some(s) = &n.pause_storm {
            mac::schedule_pause_storm(
                mac_rc,
                en,
                time_us(s.start_us),
                s.count,
                dur_us(s.interval_us),
                s.quanta,
            );
            if trace::enabled() {
                let end = s.start_us + s.interval_us * s.count as f64;
                trace::span_between(
                    "faults",
                    "window.pause_storm",
                    time_us(s.start_us),
                    time_us(end),
                    &[("pauses", s.count as u64)],
                );
            }
        }
    }
}

fn check_window(name: &str, w: Option<(f64, f64)>) -> Result<(), PlanError> {
    match w {
        Some((a, b)) if a >= b || a < 0.0 => Err(PlanError::Invalid(format!(
            "{name} window [{a}, {b}) is empty or negative"
        ))),
        _ => Ok(()),
    }
}

/// Every key the plan format understands, for strict validation.
const KNOWN_KEYS: &[(&str, &str)] = &[
    ("", "seed"),
    ("retry", "max_retries"),
    ("retry", "backoff_us"),
    ("retry", "timeout_us"),
    ("nvme", "error_rate"),
    ("nvme", "fatal"),
    ("nvme", "latency_spike_rate"),
    ("nvme", "latency_spike_us"),
    ("nvme", "window_start_us"),
    ("nvme", "window_end_us"),
    ("net", "drop_rate"),
    ("net", "corrupt_rate"),
    ("net", "pause_storm_start_us"),
    ("net", "pause_storm_count"),
    ("net", "pause_storm_interval_us"),
    ("net", "pause_storm_quanta"),
    ("pcie", "timeout_rate"),
    ("pcie", "window_start_us"),
    ("pcie", "window_end_us"),
    ("pcie", "degrade_start_us"),
    ("pcie", "degrade_end_us"),
    ("pcie", "degrade_extra_us"),
];

fn validate_keys(doc: &TomlDoc) -> Result<(), PlanError> {
    for (section, key) in doc.entries() {
        if !KNOWN_KEYS.iter().any(|(s, k)| *s == section && *k == key) {
            let place = if section.is_empty() {
                "at the root".to_string()
            } else {
                format!("in [{section}]")
            };
            return Err(PlanError::Invalid(format!("unknown key `{key}` {place}")));
        }
    }
    Ok(())
}

fn get_f64(doc: &TomlDoc, section: &str, key: &str, default: f64) -> Result<f64, PlanError> {
    match doc.get(section, key) {
        None => Ok(default),
        Some(v) => v
            .as_f64()
            .ok_or_else(|| PlanError::Invalid(format!("[{section}] {key} must be a number"))),
    }
}

fn get_u64(doc: &TomlDoc, section: &str, key: &str, default: u64) -> Result<u64, PlanError> {
    match doc.get(section, key) {
        None => Ok(default),
        Some(v) => v.as_u64().ok_or_else(|| {
            PlanError::Invalid(format!("[{section}] {key} must be a non-negative integer"))
        }),
    }
}

fn get_window(doc: &TomlDoc, section: &str, prefix: &str) -> Result<Option<(f64, f64)>, PlanError> {
    let start_key = format!("{prefix}start_us");
    let end_key = format!("{prefix}end_us");
    match (doc.get(section, &start_key), doc.get(section, &end_key)) {
        (None, None) => Ok(None),
        (Some(_), None) | (None, Some(_)) => Err(PlanError::Invalid(format!(
            "[{section}] {start_key}/{end_key} must be given together"
        ))),
        (Some(_), Some(_)) => Ok(Some((
            get_f64(doc, section, &start_key, 0.0)?,
            get_f64(doc, section, &end_key, 0.0)?,
        ))),
    }
}

fn parse_retry(doc: &TomlDoc) -> Result<RetryPolicy, PlanError> {
    if !doc.has_section("retry") {
        return Ok(RetryPolicy::disabled());
    }
    let max_retries = get_u64(doc, "retry", "max_retries", 0)?;
    if max_retries > 64 {
        return Err(PlanError::Invalid(format!(
            "retry.max_retries = {max_retries} is unreasonable (max 64)"
        )));
    }
    let cmd_timeout = match doc.get("retry", "timeout_us") {
        None => None,
        Some(_) => Some(dur_us(get_f64(doc, "retry", "timeout_us", 0.0)?)),
    };
    Ok(RetryPolicy {
        max_retries: max_retries as u32,
        backoff: dur_us(get_f64(doc, "retry", "backoff_us", 10.0)?),
        cmd_timeout,
    })
}

fn parse_nvme(doc: &TomlDoc) -> Result<Option<NvmeFaultSpec>, PlanError> {
    if !doc.has_section("nvme") {
        return Ok(None);
    }
    let fatal = match doc.get("nvme", "fatal") {
        None => false,
        Some(v) => v
            .as_bool()
            .ok_or_else(|| PlanError::Invalid("[nvme] fatal must be a boolean".into()))?,
    };
    Ok(Some(NvmeFaultSpec {
        error_rate: get_f64(doc, "nvme", "error_rate", 0.0)?,
        fatal,
        latency_spike_rate: get_f64(doc, "nvme", "latency_spike_rate", 0.0)?,
        latency_spike_us: get_f64(doc, "nvme", "latency_spike_us", 100.0)?,
        window_us: get_window(doc, "nvme", "window_")?,
    }))
}

fn parse_net(doc: &TomlDoc) -> Result<Option<NetFaultSpec>, PlanError> {
    if !doc.has_section("net") {
        return Ok(None);
    }
    let count = get_u64(doc, "net", "pause_storm_count", 0)?;
    let pause_storm = if count > 0 {
        Some(PauseStormSpec {
            start_us: get_f64(doc, "net", "pause_storm_start_us", 0.0)?,
            count: count.min(u32::MAX as u64) as u32,
            interval_us: get_f64(doc, "net", "pause_storm_interval_us", 100.0)?,
            quanta: get_u64(doc, "net", "pause_storm_quanta", 0xffff)?.min(0xffff) as u16,
        })
    } else {
        None
    };
    Ok(Some(NetFaultSpec {
        drop_rate: get_f64(doc, "net", "drop_rate", 0.0)?,
        corrupt_rate: get_f64(doc, "net", "corrupt_rate", 0.0)?,
        pause_storm,
    }))
}

fn parse_pcie(doc: &TomlDoc) -> Result<Option<PcieFaultSpec>, PlanError> {
    if !doc.has_section("pcie") {
        return Ok(None);
    }
    Ok(Some(PcieFaultSpec {
        timeout_rate: get_f64(doc, "pcie", "timeout_rate", 0.0)?,
        window_us: get_window(doc, "pcie", "window_")?,
        degrade_us: get_window(doc, "pcie", "degrade_")?,
        degrade_extra_us: get_f64(doc, "pcie", "degrade_extra_us", 5.0)?,
    }))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn shipped_presets_parse() {
        let flaky = FaultPlan::flaky_ssd();
        assert!(flaky.nvme.is_some());
        assert!(flaky.retry.enabled());
        let lossy = FaultPlan::lossy_link();
        assert!(lossy.net.is_some());
        let degraded = FaultPlan::degraded_pcie();
        let p = degraded.pcie.expect("pcie section");
        assert!(p.degrade_us.is_some());
    }

    #[test]
    fn unknown_keys_rejected() {
        let e = FaultPlan::parse("seed = 1\n[nvme]\nerorr_rate = 0.1").unwrap_err();
        assert!(matches!(e, PlanError::Invalid(_)), "{e}");
        let e = FaultPlan::parse("seed = 1\n[ssd]\nerror_rate = 0.1").unwrap_err();
        assert!(matches!(e, PlanError::Invalid(_)), "{e}");
    }

    #[test]
    fn rates_and_windows_validated() {
        let e = FaultPlan::parse("seed = 1\n[nvme]\nerror_rate = 1.5").unwrap_err();
        assert!(matches!(e, PlanError::Invalid(_)), "{e}");
        let e = FaultPlan::parse("seed = 1\n[pcie]\ndegrade_start_us = 9\ndegrade_end_us = 3")
            .unwrap_err();
        assert!(matches!(e, PlanError::Invalid(_)), "{e}");
        let e = FaultPlan::parse("seed = 1\n[pcie]\ndegrade_start_us = 9").unwrap_err();
        assert!(matches!(e, PlanError::Invalid(_)), "{e}");
    }

    #[test]
    fn seed_is_required_and_layer_seeds_differ() {
        assert!(matches!(
            FaultPlan::parse("[nvme]\nerror_rate = 0.1"),
            Err(PlanError::Invalid(_))
        ));
        assert_ne!(layer_seed(7, 1), layer_seed(7, 2));
        assert_ne!(layer_seed(0, 1), layer_seed(1, 1));
    }

    #[test]
    fn retry_section_maps_to_policy() {
        let p = FaultPlan::parse(
            "seed = 1\n[retry]\nmax_retries = 5\nbackoff_us = 20\ntimeout_us = 500",
        )
        .unwrap();
        assert_eq!(p.retry.max_retries, 5);
        assert_eq!(p.retry.backoff, SimDuration::from_us(20));
        assert_eq!(p.retry.cmd_timeout, Some(SimDuration::from_us(500)));
        let off = FaultPlan::parse("seed = 1").unwrap();
        assert!(!off.retry.enabled());
    }
}
