//! # snacc-faults — deterministic fault injection for SNAcc campaigns
//!
//! Real network-to-storage pipelines fail in layered ways: links drop
//! frames, PCIe completions time out, SSDs return transient error
//! statuses or stall on internal housekeeping. This crate turns those
//! failure modes into *reproducible experiments*: a [`FaultPlan`]
//! describes what to break (which layer, at what rate, inside which time
//! window) and a master seed; applying the plan installs seeded
//! injectors into the layer models. Because every injector draws from
//! [`snacc_sim::SimRng`] streams derived from the plan seed — never from
//! wall time — two runs of the same plan over the same workload are
//! event-for-event identical, down to the exported trace bytes.
//!
//! The layers:
//!
//! * **NVMe** ([`FaultPlan::apply_nvme`]) — I/O commands complete with an
//!   injected error status (transient Data Transfer Error by default, or
//!   a fatal LBA Out of Range) or are delayed by latency spikes. This is
//!   the layer the streamer's bounded-retry machinery
//!   ([`snacc_core::config::RetryPolicy`]) recovers from.
//! * **PCIe** ([`FaultPlan::apply_fabric`]) — bulk non-posted reads abort
//!   with completion timeouts, and a degradation window adds fixed
//!   latency to every bulk TLP. Control traffic (doorbells, CQEs, SQE
//!   fetches) is never faulted.
//! * **Ethernet** ([`FaultPlan::apply_mac`]) — data frames vanish or
//!   arrive corrupted (FCS drop), and PAUSE storms from a misbehaving
//!   peer throttle the link. Ethernet has no retransmit, so these are
//!   absorbed as *graceful degradation* and show up in MAC counters.
//!
//! Plans live in files (see `plans/` at the repository root) using a
//! small TOML subset ([`minitoml`]), or come from the named presets
//! ([`FaultPlan::flaky_ssd`], [`FaultPlan::lossy_link`],
//! [`FaultPlan::degraded_pcie`]) which are `include_str!` views of those
//! same files. The campaign playbook in `EXPERIMENTS.md` walks through
//! all three.

#![deny(missing_docs)]

pub mod minitoml;
pub mod plan;

pub use plan::{FaultPlan, NetFaultSpec, NvmeFaultSpec, PauseStormSpec, PcieFaultSpec, PlanError};
