//! A tiny TOML-subset reader for fault plans.
//!
//! The workspace vendors no TOML crate, and fault plans need only a flat
//! `[section]` / scalar `key = value` structure, so this module parses
//! exactly that subset: comments (`#`), section headers, and integer /
//! float / boolean / double-quoted-string values. Arrays, tables-in-line,
//! dotted keys, dates and multi-line strings are rejected with a line
//! number — a plan using them is a plan this crate does not understand.

/// A scalar value from a plan file.
#[derive(Clone, Debug, PartialEq)]
pub enum TomlValue {
    /// An integer literal (underscore separators allowed).
    Int(i64),
    /// A float literal.
    Float(f64),
    /// `true` / `false`.
    Bool(bool),
    /// A double-quoted string (no escape processing).
    Str(String),
}

impl TomlValue {
    /// The value as an `f64` (integers widen).
    pub fn as_f64(&self) -> Option<f64> {
        match self {
            TomlValue::Int(v) => Some(*v as f64),
            TomlValue::Float(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            TomlValue::Int(v) if *v >= 0 => Some(*v as u64),
            _ => None,
        }
    }

    /// The value as a boolean.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            TomlValue::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// The value as a string slice.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            TomlValue::Str(v) => Some(v),
            _ => None,
        }
    }
}

/// A parsed document: sections in file order, keys in file order. Keys
/// before the first section header live in the root section `""`.
#[derive(Clone, Debug, Default)]
pub struct TomlDoc {
    sections: Vec<(String, Vec<(String, TomlValue)>)>,
}

impl TomlDoc {
    /// Look up `key` in `section` (`""` for the root).
    pub fn get(&self, section: &str, key: &str) -> Option<&TomlValue> {
        self.sections
            .iter()
            .find(|(name, _)| name == section)
            .and_then(|(_, kv)| kv.iter().find(|(k, _)| k == key))
            .map(|(_, v)| v)
    }

    /// Does the document contain `section`?
    pub fn has_section(&self, section: &str) -> bool {
        self.sections.iter().any(|(name, _)| name == section)
    }

    /// All `(section, key)` pairs, for strict unknown-key validation.
    pub fn entries(&self) -> impl Iterator<Item = (&str, &str)> {
        self.sections
            .iter()
            .flat_map(|(name, kv)| kv.iter().map(move |(k, _)| (name.as_str(), k.as_str())))
    }
}

/// Parse a plan document. Errors carry a 1-based line number.
pub fn parse(text: &str) -> Result<TomlDoc, String> {
    let mut doc = TomlDoc::default();
    let mut current = String::new();
    doc.sections.push((current.clone(), Vec::new()));
    for (idx, raw) in text.lines().enumerate() {
        let lineno = idx + 1;
        let line = strip_comment(raw).trim();
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix('[') {
            let name = rest
                .strip_suffix(']')
                .ok_or_else(|| format!("line {lineno}: unterminated section header"))?
                .trim();
            if name.is_empty() || name.contains(['[', '.', '"']) {
                return Err(format!("line {lineno}: unsupported section name {name:?}"));
            }
            current = name.to_string();
            if !doc.has_section(&current) {
                doc.sections.push((current.clone(), Vec::new()));
            }
            continue;
        }
        let (key, value) = line
            .split_once('=')
            .ok_or_else(|| format!("line {lineno}: expected `key = value`"))?;
        let key = key.trim();
        if key.is_empty() || key.contains(['.', '"', ' ']) {
            return Err(format!("line {lineno}: unsupported key {key:?}"));
        }
        let value = parse_scalar(value.trim())
            .ok_or_else(|| format!("line {lineno}: unsupported value {:?}", value.trim()))?;
        let section = doc
            .sections
            .iter_mut()
            .find(|(name, _)| *name == current)
            .expect("current section exists");
        if section.1.iter().any(|(k, _)| k == key) {
            return Err(format!("line {lineno}: duplicate key {key:?}"));
        }
        section.1.push((key.to_string(), value));
    }
    Ok(doc)
}

/// Cut a `#` comment, respecting double-quoted strings.
fn strip_comment(line: &str) -> &str {
    let mut in_str = false;
    for (i, c) in line.char_indices() {
        match c {
            '"' => in_str = !in_str,
            '#' if !in_str => return &line[..i],
            _ => {}
        }
    }
    line
}

fn parse_scalar(s: &str) -> Option<TomlValue> {
    if let Some(rest) = s.strip_prefix('"') {
        let inner = rest.strip_suffix('"')?;
        if inner.contains('"') {
            return None;
        }
        return Some(TomlValue::Str(inner.to_string()));
    }
    match s {
        "true" => return Some(TomlValue::Bool(true)),
        "false" => return Some(TomlValue::Bool(false)),
        _ => {}
    }
    let num = s.replace('_', "");
    if let Ok(v) = num.parse::<i64>() {
        return Some(TomlValue::Int(v));
    }
    if let Ok(v) = num.parse::<f64>() {
        if v.is_finite() {
            return Some(TomlValue::Float(v));
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sections_keys_and_scalars() {
        let doc = parse(
            r#"
seed = 42  # root key
[nvme]
error_rate = 0.05
big = 1_000_000
on = true
label = "flaky ssd"
"#,
        )
        .unwrap();
        assert_eq!(doc.get("", "seed").unwrap().as_u64(), Some(42));
        assert_eq!(doc.get("nvme", "error_rate").unwrap().as_f64(), Some(0.05));
        assert_eq!(doc.get("nvme", "big").unwrap().as_u64(), Some(1_000_000));
        assert_eq!(doc.get("nvme", "on").unwrap().as_bool(), Some(true));
        assert_eq!(
            doc.get("nvme", "label").unwrap().as_str(),
            Some("flaky ssd")
        );
        assert!(doc.has_section("nvme"));
        assert!(!doc.has_section("net"));
        assert_eq!(doc.entries().count(), 5);
    }

    #[test]
    fn hash_inside_string_is_not_a_comment() {
        let doc = parse("name = \"a # b\"").unwrap();
        assert_eq!(doc.get("", "name").unwrap().as_str(), Some("a # b"));
    }

    #[test]
    fn errors_carry_line_numbers() {
        assert!(parse("[oops").unwrap_err().contains("line 1"));
        assert!(parse("\nkey value").unwrap_err().contains("line 2"));
        assert!(parse("k = [1, 2]").unwrap_err().contains("line 1"));
        assert!(parse("k = 1\nk = 2").unwrap_err().contains("duplicate"));
    }
}
