//! IOMMU permission model.
//!
//! Device-initiated accesses (DMA and peer-to-peer) pass through the host
//! IOMMU. SNAcc requires explicit grants so the FPGA and the NVMe
//! controller may reach each other's address ranges (paper Sec 4). We model
//! the permission check (grant table per requester) and expose a
//! passthrough mode corresponding to `iommu=off` — the paper verified that
//! disabling the IOMMU did not change bandwidth, and the same holds here
//! because translation cost is negligible at transaction granularity.

use crate::fabric::NodeId;
use snacc_mem::AddrRange;
use std::collections::HashMap;

/// The IOMMU: per-requester allowed ranges, or passthrough.
#[derive(Default)]
pub struct Iommu {
    passthrough: bool,
    grants: HashMap<NodeId, Vec<AddrRange>>,
    faults: u64,
}

impl Iommu {
    /// An enforcing IOMMU with no grants yet.
    pub fn new() -> Self {
        Iommu {
            passthrough: false,
            grants: HashMap::new(),
            faults: 0,
        }
    }

    /// A disabled IOMMU (all accesses allowed).
    pub fn passthrough() -> Self {
        Iommu {
            passthrough: true,
            grants: HashMap::new(),
            faults: 0,
        }
    }

    /// Is the IOMMU in passthrough mode?
    pub fn is_passthrough(&self) -> bool {
        self.passthrough
    }

    /// Grant `requester` access to `range`.
    pub fn grant(&mut self, requester: NodeId, range: AddrRange) {
        self.grants.entry(requester).or_default().push(range);
    }

    /// Revoke all grants for `requester`.
    pub fn revoke_all(&mut self, requester: NodeId) {
        self.grants.remove(&requester);
    }

    /// Number of faults recorded so far.
    pub fn faults(&self) -> u64 {
        self.faults
    }

    /// Check whether `requester` may access `[addr, addr+len)`. Records a
    /// fault on denial.
    pub fn check(&mut self, requester: NodeId, addr: u64, len: u64) -> bool {
        if self.passthrough {
            return true;
        }
        let ok = self
            .grants
            .get(&requester)
            .map(|ranges| ranges.iter().any(|r| r.contains_span(addr, len)))
            .unwrap_or(false);
        if !ok {
            self.faults += 1;
        }
        ok
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn node(n: usize) -> NodeId {
        NodeId(n)
    }

    #[test]
    fn deny_by_default() {
        let mut io = Iommu::new();
        assert!(!io.check(node(1), 0x1000, 8));
        assert_eq!(io.faults(), 1);
    }

    #[test]
    fn grant_allows_span() {
        let mut io = Iommu::new();
        io.grant(node(1), AddrRange::new(0x1000, 0x1000));
        assert!(io.check(node(1), 0x1000, 0x1000));
        assert!(io.check(node(1), 0x1800, 0x100));
        // Straddling the grant edge is denied.
        assert!(!io.check(node(1), 0x1f00, 0x200));
        // Other requesters are denied.
        assert!(!io.check(node(2), 0x1000, 8));
    }

    #[test]
    fn passthrough_allows_everything() {
        let mut io = Iommu::passthrough();
        assert!(io.check(node(9), 0xdead_0000, 4096));
        assert_eq!(io.faults(), 0);
    }

    #[test]
    fn revoke_removes_access() {
        let mut io = Iommu::new();
        io.grant(node(1), AddrRange::new(0, 4096));
        assert!(io.check(node(1), 0, 8));
        io.revoke_all(node(1));
        assert!(!io.check(node(1), 0, 8));
    }

    #[test]
    fn multiple_grants_checked() {
        let mut io = Iommu::new();
        io.grant(node(1), AddrRange::new(0, 4096));
        io.grant(node(1), AddrRange::new(1 << 30, 4096));
        assert!(io.check(node(1), (1 << 30) + 100, 8));
        assert!(!io.check(node(1), 1 << 20, 8));
    }
}
