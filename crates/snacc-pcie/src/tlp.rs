//! Transaction-layer packet accounting.
//!
//! We do not materialise individual TLPs as events (a 147 GB case study
//! would produce billions); instead transfers are *accounted* at TLP
//! granularity: a payload of N bytes over a link with max payload size M
//! costs `N + ceil(N/M) × header` wire bytes. Read requests and completion
//! headers are charged the same way.

/// TLP header + framing bytes per packet (3-4 DW header + LCRC + framing).
pub const TLP_HEADER_BYTES: u64 = 24;

/// A read request TLP is header-only.
pub const READ_REQUEST_BYTES: u64 = TLP_HEADER_BYTES;

/// Wire bytes for a posted write / completion stream of `payload` bytes
/// chunked at `max_payload`.
pub fn wire_bytes(payload: u64, max_payload: u64) -> u64 {
    if payload == 0 {
        return TLP_HEADER_BYTES;
    }
    let packets = snacc_sim::ceil_div(payload, max_payload);
    payload + packets * TLP_HEADER_BYTES
}

/// Number of packets a payload splits into.
pub fn packet_count(payload: u64, max_payload: u64) -> u64 {
    if payload == 0 {
        1
    } else {
        snacc_sim::ceil_div(payload, max_payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn header_only_for_empty() {
        assert_eq!(wire_bytes(0, 512), TLP_HEADER_BYTES);
        assert_eq!(packet_count(0, 512), 1);
    }

    #[test]
    fn single_packet() {
        assert_eq!(wire_bytes(512, 512), 512 + 24);
        assert_eq!(packet_count(512, 512), 1);
    }

    #[test]
    fn multi_packet() {
        assert_eq!(wire_bytes(4096, 512), 4096 + 8 * 24);
        assert_eq!(packet_count(4096, 512), 8);
        assert_eq!(wire_bytes(513, 512), 513 + 2 * 24);
    }

    #[test]
    fn efficiency_reasonable() {
        // 512 B MPS → ~95.5 % efficiency on bulk data.
        let eff = 4096.0 / wire_bytes(4096, 512) as f64;
        assert!(eff > 0.95 && eff < 0.96, "{eff}");
    }
}
