//! The PCIe fabric: topology, routing, and transaction timing.
//!
//! Topology is a star: every device has one full-duplex link to the root
//! complex (which also fronts host memory). Transactions:
//!
//! * host → device (MMIO, doorbells): down-link of the target,
//! * device → host (DMA): up-link of the requester,
//! * device → device (peer-to-peer): up-link of the requester, a root
//!   complex forwarding hop, and the down-link of the target —
//!
//! with TLP header overhead charged per packet and the IOMMU checked for
//! every device-initiated access. All byte movement is functional: the
//! registered [`MmioTarget`] really receives/produces the bytes.

use crate::config::PcieLinkConfig;
use crate::iommu::Iommu;
use crate::target::MmioTarget;
use crate::tlp::{wire_bytes, READ_REQUEST_BYTES};

/// Payloads at or below this size ride as interleaved control TLPs
/// (doorbells, CQEs, SQE fetches) — they pay wire time and latency but do
/// not queue behind bulk data windows.
pub const CTRL_TLP_BYTES: u64 = 512;
use snacc_mem::{AddrRange, AddressMap};
use snacc_sim::stats::ByteMeter;
use snacc_sim::{Engine, SharedLink, SimDuration, SimRng, SimTime};
use snacc_trace as trace;
use snacc_trace::MeterHandle;
use std::cell::RefCell;
use std::fmt;
use std::rc::Rc;

/// A node on the fabric. `HOST_NODE` is the root complex / host CPU side;
/// devices are numbered from 1 in registration order.
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Debug)]
pub struct NodeId(pub usize);

/// The host / root-complex node.
pub const HOST_NODE: NodeId = NodeId(0);

/// Errors a fabric transaction can produce.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PcieError {
    /// The IOMMU denied a device-initiated access.
    IommuFault {
        /// Requesting node.
        requester: NodeId,
        /// Faulting address.
        addr: u64,
    },
    /// No mapped range covers the requested span.
    Unmapped {
        /// Requested address.
        addr: u64,
        /// Requested length.
        len: u64,
    },
    /// Requester and target are the same node — local accesses must not be
    /// routed over the fabric (this is a model-wiring bug).
    LocalAccess,
    /// The completion for a non-posted read never arrived (injected
    /// fault; see [`PcieFaultConfig`]). A transient condition — callers
    /// with a retry policy may re-issue the transaction.
    CompletionTimeout {
        /// Requesting node.
        requester: NodeId,
        /// Address of the timed-out read.
        addr: u64,
    },
}

impl fmt::Display for PcieError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PcieError::IommuFault { requester, addr } => {
                write!(f, "IOMMU fault: node {requester:?} at {addr:#x}")
            }
            PcieError::Unmapped { addr, len } => {
                write!(f, "unmapped PCIe access at {addr:#x} (+{len})")
            }
            PcieError::LocalAccess => write!(f, "local access routed over fabric"),
            PcieError::CompletionTimeout { requester, addr } => {
                write!(f, "completion timeout: node {requester:?} at {addr:#x}")
            }
        }
    }
}

impl std::error::Error for PcieError {}

/// Transactions below this size are never faulted: doorbells (4 B), CQEs
/// (16 B), and SQE fetches stay reliable so an injected fault can only
/// hit data movement, where the NVMe/streamer recovery path handles it.
pub const FAULT_MIN_BYTES: u64 = 4096;

/// Fault-injection configuration for the fabric (see
/// [`PcieFabric::install_faults`]). Two independent mechanisms:
///
/// * **Completion timeouts** — a seeded draw aborts eligible non-posted
///   reads with [`PcieError::CompletionTimeout`]. Posted writes are never
///   timed out (they have no completion to lose), matching real PCIe.
/// * **Link degradation** — every eligible transaction *issued* inside
///   the window pays a fixed extra latency. Deterministic: no RNG draw,
///   so it perturbs timing without consuming randomness.
#[derive(Clone, Copy, Debug)]
pub struct PcieFaultConfig {
    /// Probability that an eligible non-posted read times out.
    pub timeout_rate: f64,
    /// Restrict timeout draws to `[start, end)` (`None` = whole run).
    pub window: Option<(SimTime, SimTime)>,
    /// Link-degradation window `[start, end)` (`None` = off).
    pub degrade_window: Option<(SimTime, SimTime)>,
    /// Extra latency per degraded transaction.
    pub degrade_extra: SimDuration,
    /// Seed for the timeout draws.
    pub seed: u64,
}

impl PcieFaultConfig {
    /// Timeouts only, across the whole run.
    pub fn timeouts(rate: f64, seed: u64) -> Self {
        PcieFaultConfig {
            timeout_rate: rate,
            window: None,
            degrade_window: None,
            degrade_extra: SimDuration::from_ns(0),
            seed,
        }
    }

    /// A degradation window only (no timeouts, no RNG consumption).
    pub fn degraded(window: (SimTime, SimTime), extra: SimDuration) -> Self {
        PcieFaultConfig {
            timeout_rate: 0.0,
            window: None,
            degrade_window: Some(window),
            degrade_extra: extra,
            seed: 0,
        }
    }
}

/// Counters kept by the fabric fault injector.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct PcieFaultStats {
    /// Non-posted reads aborted with a completion timeout.
    pub timeouts: u64,
    /// Transactions that paid the link-degradation latency.
    pub degraded: u64,
}

struct PcieFaultState {
    cfg: PcieFaultConfig,
    rng: SimRng,
    stats: PcieFaultStats,
    /// Registry counters (`faults.pcie.*`) for metrics snapshots.
    reg_timeouts: trace::CounterHandle,
    reg_degraded: trace::CounterHandle,
}

/// Decoded MMIO route: (offset within the window, owning node, target).
type DecodedTarget = (u64, NodeId, Rc<RefCell<dyn MmioTarget>>);

struct DeviceLink {
    name: String,
    cfg: PcieLinkConfig,
    /// Device → root complex.
    up: SharedLink,
    /// Root complex → device.
    down: SharedLink,
}

struct MapEntry {
    node: NodeId,
    target: Rc<RefCell<dyn MmioTarget>>,
}

/// The star-topology PCIe fabric.
pub struct PcieFabric {
    devices: Vec<DeviceLink>,
    map: AddressMap<MapEntry>,
    iommu: Iommu,
    /// Root-complex forwarding latency for peer-to-peer hops.
    rc_forward: SimDuration,
    /// Payload bytes per *transaction* (counted once, not per link) — the
    /// paper's Fig 7 "data transfers over the PCIe bus" metric.
    payload: ByteMeter,
    /// Registry mirror of `payload` (`pcie.payload` in metrics snapshots).
    payload_meter: MeterHandle,
    /// Fault injector, absent in normal operation.
    faults: Option<PcieFaultState>,
}

impl Default for PcieFabric {
    fn default() -> Self {
        Self::new()
    }
}

impl PcieFabric {
    /// An empty fabric with a passthrough IOMMU. Call
    /// [`set_iommu`](Self::set_iommu) to install an enforcing one.
    pub fn new() -> Self {
        PcieFabric {
            devices: Vec::new(),
            map: AddressMap::new(),
            iommu: Iommu::passthrough(),
            rc_forward: SimDuration::from_ns(100),
            payload: ByteMeter::new(),
            payload_meter: trace::metric_meter("pcie.payload"),
            faults: None,
        }
    }

    /// Install (or replace) the fault injector.
    pub fn install_faults(&mut self, cfg: PcieFaultConfig) {
        self.faults = Some(PcieFaultState {
            rng: SimRng::new(cfg.seed),
            cfg,
            stats: PcieFaultStats::default(),
            reg_timeouts: trace::metric_counter("faults.pcie.completion_timeouts"),
            reg_degraded: trace::metric_counter("faults.pcie.degraded_tlps"),
        });
    }

    /// Remove the fault injector.
    pub fn clear_faults(&mut self) {
        self.faults = None;
    }

    /// Snapshot of the injector's counters (zeros if none installed).
    pub fn fault_stats(&self) -> PcieFaultStats {
        self.faults.as_ref().map(|f| f.stats).unwrap_or_default()
    }

    /// Draw a completion timeout for an eligible read issued at `start`.
    fn draw_timeout(&mut self, en: &mut Engine, start: SimTime, len: u64, addr: u64) -> bool {
        if len < FAULT_MIN_BYTES {
            return false;
        }
        let Some(f) = &mut self.faults else {
            return false;
        };
        let in_window = f.cfg.window.is_none_or(|(a, b)| start >= a && start < b);
        if !in_window || f.cfg.timeout_rate <= 0.0 || !f.rng.gen_bool(f.cfg.timeout_rate) {
            return false;
        }
        f.stats.timeouts += 1;
        f.reg_timeouts.inc();
        if trace::enabled() {
            trace::instant(
                en,
                "pcie.faults",
                "fault.completion_timeout",
                &[("addr", addr), ("len", len)],
            );
        }
        true
    }

    /// Apply the degradation window to a transaction issued at `start`
    /// that would otherwise complete at `t`.
    fn degrade(&mut self, start: SimTime, len: u64, t: SimTime) -> SimTime {
        if len < FAULT_MIN_BYTES {
            return t;
        }
        let Some(f) = &mut self.faults else {
            return t;
        };
        let Some((a, b)) = f.cfg.degrade_window else {
            return t;
        };
        if start >= a && start < b {
            f.stats.degraded += 1;
            f.reg_degraded.inc();
            t + f.cfg.degrade_extra
        } else {
            t
        }
    }

    /// Install an IOMMU (replaces the current one).
    pub fn set_iommu(&mut self, iommu: Iommu) {
        self.iommu = iommu;
    }

    /// Mutable access to the IOMMU (for grants).
    pub fn iommu_mut(&mut self) -> &mut Iommu {
        &mut self.iommu
    }

    /// Attach a device with the given link; returns its node id.
    pub fn add_device(&mut self, name: impl Into<String>, cfg: PcieLinkConfig) -> NodeId {
        let name = name.into();
        let hop = SimDuration::from_ns(200);
        let up = SharedLink::new(format!("{name}.up"), cfg.bandwidth(), hop);
        let down = SharedLink::new(format!("{name}.down"), cfg.bandwidth(), hop);
        self.devices.push(DeviceLink {
            name,
            cfg,
            up,
            down,
        });
        NodeId(self.devices.len())
    }

    /// Name of a device node.
    pub fn device_name(&self, node: NodeId) -> &str {
        &self.devices[node.0 - 1].name
    }

    /// Map an address range owned by `node` to a target.
    pub fn map_region(
        &mut self,
        node: NodeId,
        range: AddrRange,
        target: Rc<RefCell<dyn MmioTarget>>,
    ) {
        self.map.insert(range, MapEntry { node, target });
    }

    /// Which node owns the mapping that covers `addr`, if any.
    pub fn owner_of(&self, addr: u64) -> Option<NodeId> {
        self.map.decode(addr).map(|(_, e)| e.node)
    }

    /// Bytes moved over a device's link (both directions).
    pub fn link_bytes(&self, node: NodeId) -> u64 {
        let d = &self.devices[node.0 - 1];
        d.up.bytes_transferred() + d.down.bytes_transferred()
    }

    /// Total bytes moved over all PCIe links (wire-level accounting; each
    /// peer-to-peer byte appears on two links).
    pub fn total_bytes(&self) -> u64 {
        self.devices
            .iter()
            .map(|d| d.up.bytes_transferred() + d.down.bytes_transferred())
            .sum()
    }

    /// Payload bytes transferred over the bus, counted once per
    /// transaction — the paper's Fig 7 metric ("data transfers over the
    /// PCIe bus"): a P2P move is one transfer, staging through host
    /// memory is two.
    pub fn total_payload_bytes(&self) -> u64 {
        self.payload.bytes()
    }

    /// Reset all byte meters (e.g. after warm-up).
    pub fn reset_meters(&mut self) {
        for d in &mut self.devices {
            d.up.reset_meter();
            d.down.reset_meter();
        }
        self.payload = ByteMeter::new();
        self.payload_meter.reset();
    }

    fn mps_for(&self, a: NodeId, b: NodeId) -> u64 {
        let mut mps = u64::MAX;
        for n in [a, b] {
            if n != HOST_NODE {
                mps = mps.min(self.devices[n.0 - 1].cfg.max_payload);
            }
        }
        if mps == u64::MAX {
            512
        } else {
            mps
        }
    }

    fn decode(&self, addr: u64, len: u64) -> Result<DecodedTarget, PcieError> {
        let (range, entry) = self
            .map
            .decode_span(addr, len)
            .ok_or(PcieError::Unmapped { addr, len })?;
        Ok((range.offset_of(addr), entry.node, entry.target.clone()))
    }

    fn check_iommu(&mut self, requester: NodeId, addr: u64, len: u64) -> Result<(), PcieError> {
        if requester != HOST_NODE && !self.iommu.check(requester, addr, len) {
            return Err(PcieError::IommuFault { requester, addr });
        }
        Ok(())
    }

    /// A non-posted read: `requester` reads `out.len()` bytes at fabric
    /// address `addr`. Returns the time the last completion byte reaches
    /// the requester.
    pub fn read(
        &mut self,
        en: &mut Engine,
        requester: NodeId,
        addr: u64,
        out: &mut [u8],
    ) -> Result<SimTime, PcieError> {
        let now = en.now();
        self.read_at(en, now, requester, addr, out)
    }

    /// Like [`read`](Self::read) but the request is issued at `start`
    /// (≥ now) — used by windowed DMA pumps that book transactions ahead
    /// of the event clock.
    pub fn read_at(
        &mut self,
        en: &mut Engine,
        start: SimTime,
        requester: NodeId,
        addr: u64,
        out: &mut [u8],
    ) -> Result<SimTime, PcieError> {
        debug_assert!(start >= en.now());
        let len = out.len() as u64;
        self.check_iommu(requester, addr, len)?;
        let (offset, target_node, target) = self.decode(addr, len)?;
        if requester == target_node {
            return Err(PcieError::LocalAccess);
        }
        if self.draw_timeout(en, start, len, addr) {
            return Err(PcieError::CompletionTimeout { requester, addr });
        }
        let p2p = requester != HOST_NODE && target_node != HOST_NODE;
        let mps = self.mps_for(requester, target_node);
        self.payload.record(len);
        self.payload_meter.record(len);

        // Request phase: header-only TLP towards the target (control
        // traffic: interleaves, never queues behind bulk data).
        let mut t = start;
        if requester != HOST_NODE {
            t = self.devices[requester.0 - 1]
                .up
                .transfer_interleaved(t, READ_REQUEST_BYTES);
        }
        if p2p {
            t += self.rc_forward;
        }
        if target_node != HOST_NODE {
            t = self.devices[target_node.0 - 1]
                .down
                .transfer_interleaved(t, READ_REQUEST_BYTES);
        }

        // Service at the target.
        let service = target.borrow_mut().read(en, t, offset, out);
        t += service;

        // Completion phase: data flows back to the requester. Small
        // completions interleave; bulk data queues on the links.
        let wire = wire_bytes(len, mps);
        let small = len <= CTRL_TLP_BYTES;
        if target_node != HOST_NODE {
            let l = &mut self.devices[target_node.0 - 1].up;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        if p2p {
            t += self.rc_forward;
        }
        if requester != HOST_NODE {
            let l = &mut self.devices[requester.0 - 1].down;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        t = self.degrade(start, len, t);
        // Bulk transfers (control TLPs would swamp the trace) get an
        // issue→completion span on the requesting device's track.
        if !small && trace::enabled() {
            let dev = if requester != HOST_NODE {
                requester
            } else {
                target_node
            };
            trace::span_between(
                &format!("pcie.{}", self.devices[dev.0 - 1].name),
                "tlp.read",
                start,
                t,
                &[("addr", addr), ("len", len)],
            );
        }
        Ok(t)
    }

    /// A posted write: `requester` writes `data` at fabric address `addr`.
    /// Returns the time the target has absorbed the data.
    pub fn write(
        &mut self,
        en: &mut Engine,
        requester: NodeId,
        addr: u64,
        data: &[u8],
    ) -> Result<SimTime, PcieError> {
        let now = en.now();
        self.write_at(en, now, requester, addr, data)
    }

    /// Like [`write`](Self::write) but issued at `start` (≥ now).
    pub fn write_at(
        &mut self,
        en: &mut Engine,
        start: SimTime,
        requester: NodeId,
        addr: u64,
        data: &[u8],
    ) -> Result<SimTime, PcieError> {
        debug_assert!(start >= en.now());
        let len = data.len() as u64;
        self.check_iommu(requester, addr, len)?;
        let (offset, target_node, target) = self.decode(addr, len)?;
        if requester == target_node {
            return Err(PcieError::LocalAccess);
        }
        let p2p = requester != HOST_NODE && target_node != HOST_NODE;
        let mps = self.mps_for(requester, target_node);
        let wire = wire_bytes(len, mps);
        let small = len <= CTRL_TLP_BYTES;
        self.payload.record(len);
        self.payload_meter.record(len);

        let mut t = start;
        if requester != HOST_NODE {
            let l = &mut self.devices[requester.0 - 1].up;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        if p2p {
            t += self.rc_forward;
        }
        if target_node != HOST_NODE {
            let l = &mut self.devices[target_node.0 - 1].down;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        let service = target.borrow_mut().write(en, t, offset, data);
        let done = self.degrade(start, len, t + service);
        if !small && trace::enabled() {
            let dev = if requester != HOST_NODE {
                requester
            } else {
                target_node
            };
            trace::span_between(
                &format!("pcie.{}", self.devices[dev.0 - 1].name),
                "tlp.write",
                start,
                done,
                &[("addr", addr), ("len", len)],
            );
        }
        Ok(done)
    }

    /// Zero-copy variant of [`read_at`](Self::read_at): the target returns
    /// the bytes as a [`snacc_sim::bytes::Payload`] view of its segment
    /// store instead of filling a caller buffer. Timing, fault injection,
    /// TLP accounting and tracing are identical to the byte path.
    pub fn read_payload_at(
        &mut self,
        en: &mut Engine,
        start: SimTime,
        requester: NodeId,
        addr: u64,
        len: u64,
    ) -> Result<(snacc_sim::bytes::Payload, SimTime), PcieError> {
        debug_assert!(start >= en.now());
        self.check_iommu(requester, addr, len)?;
        let (offset, target_node, target) = self.decode(addr, len)?;
        if requester == target_node {
            return Err(PcieError::LocalAccess);
        }
        if self.draw_timeout(en, start, len, addr) {
            return Err(PcieError::CompletionTimeout { requester, addr });
        }
        let p2p = requester != HOST_NODE && target_node != HOST_NODE;
        let mps = self.mps_for(requester, target_node);
        self.payload.record(len);
        self.payload_meter.record(len);

        // Request phase: header-only TLP towards the target (control
        // traffic: interleaves, never queues behind bulk data).
        let mut t = start;
        if requester != HOST_NODE {
            t = self.devices[requester.0 - 1]
                .up
                .transfer_interleaved(t, READ_REQUEST_BYTES);
        }
        if p2p {
            t += self.rc_forward;
        }
        if target_node != HOST_NODE {
            t = self.devices[target_node.0 - 1]
                .down
                .transfer_interleaved(t, READ_REQUEST_BYTES);
        }

        // Service at the target.
        let (data, service) = target
            .borrow_mut()
            .read_payload(en, t, offset, len as usize);
        t += service;

        // Completion phase: data flows back to the requester. Small
        // completions interleave; bulk data queues on the links.
        let wire = wire_bytes(len, mps);
        let small = len <= CTRL_TLP_BYTES;
        if target_node != HOST_NODE {
            let l = &mut self.devices[target_node.0 - 1].up;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        if p2p {
            t += self.rc_forward;
        }
        if requester != HOST_NODE {
            let l = &mut self.devices[requester.0 - 1].down;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        t = self.degrade(start, len, t);
        if !small && trace::enabled() {
            let dev = if requester != HOST_NODE {
                requester
            } else {
                target_node
            };
            trace::span_between(
                &format!("pcie.{}", self.devices[dev.0 - 1].name),
                "tlp.read",
                start,
                t,
                &[("addr", addr), ("len", len)],
            );
        }
        Ok((data, t))
    }

    /// Zero-copy variant of [`write_at`](Self::write_at): the target
    /// retains the [`snacc_sim::bytes::Payload`] window in its segment
    /// store instead of copying from a caller buffer. Timing, fault
    /// injection, TLP accounting and tracing are identical to the byte
    /// path.
    pub fn write_payload_at(
        &mut self,
        en: &mut Engine,
        start: SimTime,
        requester: NodeId,
        addr: u64,
        data: snacc_sim::bytes::Payload,
    ) -> Result<SimTime, PcieError> {
        debug_assert!(start >= en.now());
        let len = data.len() as u64;
        self.check_iommu(requester, addr, len)?;
        let (offset, target_node, target) = self.decode(addr, len)?;
        if requester == target_node {
            return Err(PcieError::LocalAccess);
        }
        let p2p = requester != HOST_NODE && target_node != HOST_NODE;
        let mps = self.mps_for(requester, target_node);
        let wire = wire_bytes(len, mps);
        let small = len <= CTRL_TLP_BYTES;
        self.payload.record(len);
        self.payload_meter.record(len);

        let mut t = start;
        if requester != HOST_NODE {
            let l = &mut self.devices[requester.0 - 1].up;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        if p2p {
            t += self.rc_forward;
        }
        if target_node != HOST_NODE {
            let l = &mut self.devices[target_node.0 - 1].down;
            t = if small {
                l.transfer_interleaved(t, wire)
            } else {
                l.transfer(t, wire)
            };
        }
        let service = target.borrow_mut().write_payload(en, t, offset, data);
        let done = self.degrade(start, len, t + service);
        if !small && trace::enabled() {
            let dev = if requester != HOST_NODE {
                requester
            } else {
                target_node
            };
            trace::span_between(
                &format!("pcie.{}", self.devices[dev.0 - 1].name),
                "tlp.write",
                start,
                done,
                &[("addr", addr), ("len", len)],
            );
        }
        Ok(done)
    }

    /// Convenience: 32-bit register read (host driver MMIO).
    pub fn read_u32(
        &mut self,
        en: &mut Engine,
        requester: NodeId,
        addr: u64,
    ) -> Result<u32, PcieError> {
        let mut b = [0u8; 4];
        self.read(en, requester, addr, &mut b)?;
        Ok(u32::from_le_bytes(b))
    }

    /// Convenience: 32-bit register write (host driver MMIO / doorbells).
    pub fn write_u32(
        &mut self,
        en: &mut Engine,
        requester: NodeId,
        addr: u64,
        value: u32,
    ) -> Result<SimTime, PcieError> {
        self.write(en, requester, addr, &value.to_le_bytes())
    }

    /// Convenience: 64-bit read.
    pub fn read_u64(
        &mut self,
        en: &mut Engine,
        requester: NodeId,
        addr: u64,
    ) -> Result<u64, PcieError> {
        let mut b = [0u8; 8];
        self.read(en, requester, addr, &mut b)?;
        Ok(u64::from_le_bytes(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{PcieGen, PcieLinkConfig};
    use crate::target::ScratchTarget;

    fn scratch(name: &str) -> Rc<RefCell<ScratchTarget>> {
        Rc::new(RefCell::new(ScratchTarget::new(
            name,
            SimDuration::from_ns(50),
        )))
    }

    fn setup() -> (Engine, PcieFabric, NodeId, NodeId) {
        let mut fab = PcieFabric::new();
        let fpga = fab.add_device("fpga", PcieLinkConfig::alveo_u280());
        let ssd = fab.add_device("ssd", PcieLinkConfig::nvme_gen4_x4());
        (Engine::new(), fab, fpga, ssd)
    }

    #[test]
    fn host_to_device_write_read() {
        let (mut en, mut fab, fpga, _) = setup();
        let t = scratch("bar0");
        fab.map_region(fpga, AddrRange::new(0x10_0000, 0x1000), t.clone());
        fab.write(&mut en, HOST_NODE, 0x10_0010, b"ping").unwrap();
        let mut out = [0u8; 4];
        fab.read(&mut en, HOST_NODE, 0x10_0010, &mut out).unwrap();
        assert_eq!(&out, b"ping");
    }

    #[test]
    fn p2p_routes_through_both_links() {
        let (mut en, mut fab, fpga, ssd) = setup();
        let t = scratch("fpga-mem");
        fab.map_region(fpga, AddrRange::new(0x20_0000, 0x1000), t);
        // SSD reads 512 B from FPGA BAR.
        let mut out = [0u8; 512];
        let done = fab.read(&mut en, ssd, 0x20_0000, &mut out).unwrap();
        assert!(done > SimTime::ZERO);
        // Both device links saw traffic.
        assert!(fab.link_bytes(ssd) > 0);
        assert!(fab.link_bytes(fpga) > 0);
        // FPGA link carried the completion data upstream.
        assert!(fab.link_bytes(fpga) >= 512);
    }

    #[test]
    fn unmapped_access_fails() {
        let (mut en, mut fab, _, _) = setup();
        let mut out = [0u8; 4];
        let e = fab.read(&mut en, HOST_NODE, 0xdead_0000, &mut out);
        assert!(matches!(e, Err(PcieError::Unmapped { .. })));
    }

    #[test]
    fn iommu_blocks_ungranted_p2p() {
        let (mut en, mut fab, fpga, ssd) = setup();
        fab.set_iommu(Iommu::new());
        let t = scratch("fpga-mem");
        fab.map_region(fpga, AddrRange::new(0x20_0000, 0x1000), t);
        let mut out = [0u8; 8];
        let e = fab.read(&mut en, ssd, 0x20_0000, &mut out);
        assert!(matches!(e, Err(PcieError::IommuFault { .. })));
        // After a grant it works.
        fab.iommu_mut()
            .grant(ssd, AddrRange::new(0x20_0000, 0x1000));
        fab.read(&mut en, ssd, 0x20_0000, &mut out).unwrap();
        // Host accesses bypass the IOMMU.
        fab.write(&mut en, HOST_NODE, 0x20_0000, b"x").unwrap();
    }

    #[test]
    fn local_access_rejected() {
        let (mut en, mut fab, fpga, _) = setup();
        let t = scratch("fpga-mem");
        fab.map_region(fpga, AddrRange::new(0x0, 0x1000), t);
        let mut out = [0u8; 4];
        let e = fab.read(&mut en, fpga, 0x0, &mut out);
        assert_eq!(e, Err(PcieError::LocalAccess));
    }

    #[test]
    fn bandwidth_serialises_on_narrow_link() {
        // Two 64 KiB host→SSD writes serialise on the SSD's Gen4 x4 link.
        let (mut en, mut fab, _, ssd) = setup();
        let t = scratch("ssd-buf");
        fab.map_region(ssd, AddrRange::new(0x80_0000, 0x2_0000), t);
        let buf = vec![0u8; 65536];
        let t1 = fab.write(&mut en, HOST_NODE, 0x80_0000, &buf).unwrap();
        let t2 = fab.write(&mut en, HOST_NODE, 0x80_0000, &buf).unwrap();
        let d1 = t1.since(SimTime::ZERO).as_ns();
        let d2 = t2.since(SimTime::ZERO).as_ns();
        // Second transfer takes roughly twice as long end-to-end.
        assert!(d2 as f64 > 1.8 * d1 as f64, "d1={d1} d2={d2}");
    }

    #[test]
    fn wire_overhead_counted_in_link_bytes() {
        let (mut en, mut fab, fpga, _) = setup();
        let t = scratch("bar");
        fab.map_region(fpga, AddrRange::new(0x0, 0x10000), t);
        let buf = vec![0u8; 4096];
        fab.write(&mut en, HOST_NODE, 0x0, &buf).unwrap();
        // 4096 B at MPS 512 → 8 packets → 8 × 24 B headers.
        assert_eq!(fab.link_bytes(fpga), 4096 + 8 * 24);
    }

    #[test]
    fn u32_register_helpers() {
        let (mut en, mut fab, fpga, _) = setup();
        let t = scratch("regs");
        fab.map_region(fpga, AddrRange::new(0x1000, 0x100), t);
        fab.write_u32(&mut en, HOST_NODE, 0x1004, 0xabcd_1234)
            .unwrap();
        assert_eq!(
            fab.read_u32(&mut en, HOST_NODE, 0x1004).unwrap(),
            0xabcd_1234
        );
    }

    #[test]
    fn injected_timeouts_spare_control_traffic() {
        let (mut en, mut fab, fpga, _) = setup();
        let t = scratch("bar");
        fab.map_region(fpga, AddrRange::new(0x0, 0x10000), t);
        fab.install_faults(PcieFaultConfig::timeouts(1.0, 7));
        // A doorbell-sized read is never faulted.
        assert!(fab.read_u32(&mut en, HOST_NODE, 0x0).is_ok());
        // A bulk read times out every time at rate 1.0.
        let mut buf = vec![0u8; 8192];
        let e = fab.read(&mut en, HOST_NODE, 0x0, &mut buf);
        assert!(matches!(e, Err(PcieError::CompletionTimeout { .. })));
        assert_eq!(fab.fault_stats().timeouts, 1);
        // Clearing the injector restores normal service.
        fab.clear_faults();
        fab.read(&mut en, HOST_NODE, 0x0, &mut buf).unwrap();
    }

    #[test]
    fn degradation_window_slows_bulk_transfers() {
        let (mut en, mut fab, fpga, _) = setup();
        let t = scratch("bar");
        fab.map_region(fpga, AddrRange::new(0x0, 0x10000), t);
        let buf = vec![0u8; 8192];
        let clean = fab.write(&mut en, HOST_NODE, 0x0, &buf).unwrap();
        let win = (SimTime::ZERO, SimTime::ZERO + SimDuration::from_us(1000));
        fab.install_faults(PcieFaultConfig::degraded(win, SimDuration::from_us(5)));
        let t1 = fab.write(&mut en, HOST_NODE, 0x0, &buf).unwrap();
        // The degraded transfer finishes at least `degrade_extra` after
        // the point the clean repeat would have (the wire time itself is
        // well under 5 µs for 8 KiB on this link).
        assert!(
            t1.since(clean) >= SimDuration::from_us(5),
            "{t1:?} vs {clean:?}"
        );
        assert_eq!(fab.fault_stats().degraded, 1);
        // Control-sized traffic is untouched even inside the window.
        fab.write_u32(&mut en, HOST_NODE, 0x0, 1).unwrap();
        assert_eq!(fab.fault_stats().degraded, 1);
    }

    #[test]
    fn gen5_link_is_faster() {
        let mut fab = PcieFabric::new();
        let g4 = fab.add_device("g4", PcieLinkConfig::nvme_gen4_x4());
        let g5 = fab.add_device("g5", PcieLinkConfig::nvme_gen5_x4());
        let mut en = Engine::new();
        let t4 = scratch("t4");
        let t5 = scratch("t5");
        fab.map_region(g4, AddrRange::new(0x0, 0x100000), t4);
        fab.map_region(g5, AddrRange::new(0x100000, 0x100000), t5);
        let buf = vec![0u8; 1 << 20];
        let a = fab.write(&mut en, HOST_NODE, 0x0, &buf).unwrap();
        // Reset time by new engine for clean comparison.
        let mut en2 = Engine::new();
        let mut fab2 = PcieFabric::new();
        let g5b = fab2.add_device("g5", PcieLinkConfig::nvme_gen5_x4());
        let t5b = scratch("t5b");
        fab2.map_region(g5b, AddrRange::new(0x0, 0x100000), t5b);
        let b = fab2.write(&mut en2, HOST_NODE, 0x0, &buf).unwrap();
        assert!(b < a, "gen5 {b} should beat gen4 {a}");
        let _ = (g5, PcieGen::Gen5);
    }
}
