//! PCIe link configuration.
//!
//! Bandwidths are the usable data rates after physical-layer encoding
//! (128b/130b for Gen3+), i.e. ~0.985 GB/s per lane per 8 GT/s. TLP header
//! overhead is charged separately by the fabric per packet.

use snacc_sim::Bandwidth;

/// PCIe generation (signalling rate).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum PcieGen {
    /// 8 GT/s per lane.
    Gen3,
    /// 16 GT/s per lane.
    Gen4,
    /// 32 GT/s per lane.
    Gen5,
}

impl PcieGen {
    /// Usable bytes/s per lane after line coding.
    pub fn bytes_per_lane(self) -> f64 {
        match self {
            // 8 GT/s × 128/130 / 8 bits
            PcieGen::Gen3 => 0.9846e9,
            PcieGen::Gen4 => 1.9692e9,
            PcieGen::Gen5 => 3.9385e9,
        }
    }
}

/// One device's link to the root complex.
#[derive(Clone, Copy, Debug)]
pub struct PcieLinkConfig {
    /// Signalling generation.
    pub gen: PcieGen,
    /// Lane count (x1/x4/x8/x16).
    pub lanes: u32,
    /// Maximum TLP payload size in bytes (typically 256 or 512).
    pub max_payload: u64,
    /// Maximum read-request size in bytes (typically 512).
    pub max_read_request: u64,
}

impl PcieLinkConfig {
    /// Construct with common defaults (MPS 512, MRRS 512).
    pub fn new(gen: PcieGen, lanes: u32) -> Self {
        assert!(matches!(lanes, 1 | 2 | 4 | 8 | 16), "invalid lane count");
        PcieLinkConfig {
            gen,
            lanes,
            max_payload: 512,
            max_read_request: 512,
        }
    }

    /// The Alveo U280's host link: Gen3 ×16 (~15.75 GB/s/dir).
    pub fn alveo_u280() -> Self {
        Self::new(PcieGen::Gen3, 16)
    }

    /// A Gen4 ×4 NVMe SSD link (Samsung 990 PRO class, ~7.88 GB/s/dir).
    pub fn nvme_gen4_x4() -> Self {
        Self::new(PcieGen::Gen4, 4)
    }

    /// A Gen5 ×4 NVMe SSD link (the paper's Sec 7 extension).
    pub fn nvme_gen5_x4() -> Self {
        Self::new(PcieGen::Gen5, 4)
    }

    /// An A100-class GPU link: Gen4 ×16.
    pub fn gpu_gen4_x16() -> Self {
        Self::new(PcieGen::Gen4, 16)
    }

    /// Per-direction usable bandwidth.
    pub fn bandwidth(&self) -> Bandwidth {
        Bandwidth::gb_per_s(self.gen.bytes_per_lane() * self.lanes as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gen3_x16_rate() {
        let c = PcieLinkConfig::alveo_u280();
        let gb = c.bandwidth().as_gb_per_s();
        assert!((gb - 15.75).abs() < 0.1, "{gb}");
    }

    #[test]
    fn gen4_x4_rate() {
        let c = PcieLinkConfig::nvme_gen4_x4();
        let gb = c.bandwidth().as_gb_per_s();
        assert!((gb - 7.88).abs() < 0.1, "{gb}");
    }

    #[test]
    fn gen5_doubles_gen4() {
        let g4 = PcieLinkConfig::nvme_gen4_x4().bandwidth().as_gb_per_s();
        let g5 = PcieLinkConfig::nvme_gen5_x4().bandwidth().as_gb_per_s();
        assert!((g5 / g4 - 2.0).abs() < 0.01);
    }

    #[test]
    #[should_panic(expected = "invalid lane count")]
    fn rejects_bad_lanes() {
        PcieLinkConfig::new(PcieGen::Gen3, 3);
    }
}
