//! Credit-windowed DMA pump.
//!
//! Models a DMA engine that keeps a bounded number of outstanding
//! transactions in flight. Throughput of such an engine is
//! `min(link bandwidth, window × chunk / round-trip-time)` — the
//! *latency–bandwidth product* limit that explains the paper's PCIe
//! peer-to-peer write ceiling (Sec 5.2): the NVMe controller simply does
//! not keep enough read requests outstanding towards the FPGA BAR.

use crate::fabric::{NodeId, PcieError, PcieFabric};
use snacc_sim::{Engine, SimTime};
use std::collections::VecDeque;

/// DMA engine parameters.
#[derive(Clone, Copy, Debug)]
pub struct DmaConfig {
    /// Bytes per transaction (read-request / write-burst size).
    pub chunk: u64,
    /// Maximum transactions in flight.
    pub outstanding: usize,
}

impl DmaConfig {
    /// TaPaSCo's host DMA engine: large bursts, deep pipeline.
    pub fn tapasco_host() -> Self {
        DmaConfig {
            chunk: 4096,
            outstanding: 32,
        }
    }
}

/// A stateless transfer pump: each call books a whole windowed transfer on
/// the fabric and returns its completion time.
#[derive(Clone, Copy, Debug)]
pub struct DmaEngine {
    cfg: DmaConfig,
}

impl DmaEngine {
    /// Create a pump with the given window parameters.
    pub fn new(cfg: DmaConfig) -> Self {
        DmaEngine { cfg }
    }

    /// The configured parameters.
    pub fn config(&self) -> DmaConfig {
        self.cfg
    }

    /// Windowed read of `out.len()` bytes from fabric address `addr` into
    /// `out`, issued by `requester`. Returns completion of the last chunk.
    pub fn read(
        &self,
        en: &mut Engine,
        fab: &mut PcieFabric,
        requester: NodeId,
        addr: u64,
        out: &mut [u8],
    ) -> Result<SimTime, PcieError> {
        let mut slots: VecDeque<SimTime> = VecDeque::with_capacity(self.cfg.outstanding);
        let mut t_issue = en.now();
        let mut last = en.now();
        let chunk = self.cfg.chunk as usize;
        let mut off = 0usize;
        while off < out.len() {
            let n = chunk.min(out.len() - off);
            if slots.len() == self.cfg.outstanding {
                let freed = slots.pop_front().expect("window non-empty");
                t_issue = t_issue.max(freed);
            }
            let done = fab.read_at(
                en,
                t_issue,
                requester,
                addr + off as u64,
                &mut out[off..off + n],
            )?;
            slots.push_back(done);
            last = last.max(done);
            off += n;
        }
        Ok(last)
    }

    /// Windowed (posted) write of `data` to fabric address `addr`.
    /// Posted writes don't wait for completions, but the engine still
    /// paces issue on its window to model finite write buffers.
    pub fn write(
        &self,
        en: &mut Engine,
        fab: &mut PcieFabric,
        requester: NodeId,
        addr: u64,
        data: &[u8],
    ) -> Result<SimTime, PcieError> {
        let mut slots: VecDeque<SimTime> = VecDeque::with_capacity(self.cfg.outstanding);
        let mut t_issue = en.now();
        let mut last = en.now();
        let chunk = self.cfg.chunk as usize;
        let mut off = 0usize;
        while off < data.len() {
            let n = chunk.min(data.len() - off);
            if slots.len() == self.cfg.outstanding {
                let freed = slots.pop_front().expect("window non-empty");
                t_issue = t_issue.max(freed);
            }
            let done = fab.write_at(
                en,
                t_issue,
                requester,
                addr + off as u64,
                &data[off..off + n],
            )?;
            slots.push_back(done);
            last = last.max(done);
            off += n;
        }
        Ok(last)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::PcieLinkConfig;
    use crate::fabric::HOST_NODE;
    use crate::target::ScratchTarget;
    use snacc_mem::AddrRange;
    use snacc_sim::SimDuration;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn setup(latency_ns: u64) -> (Engine, PcieFabric, NodeId) {
        let mut fab = PcieFabric::new();
        let dev = fab.add_device("dev", PcieLinkConfig::alveo_u280());
        let t = Rc::new(RefCell::new(ScratchTarget::new(
            "mem",
            SimDuration::from_ns(latency_ns),
        )));
        t.borrow_mut().mem_mut().write(0, &vec![0xabu8; 1 << 20]);
        fab.map_region(dev, AddrRange::new(0, 1 << 20), t);
        (Engine::new(), fab, dev)
    }

    #[test]
    fn reads_move_data() {
        let (mut en, mut fab, _) = setup(50);
        let dma = DmaEngine::new(DmaConfig {
            chunk: 4096,
            outstanding: 8,
        });
        let mut out = vec![0u8; 64 << 10];
        dma.read(&mut en, &mut fab, HOST_NODE, 0, &mut out).unwrap();
        assert!(out.iter().all(|&b| b == 0xab));
    }

    #[test]
    fn deeper_window_is_faster_when_latency_bound() {
        // With high service latency, a shallow window throttles throughput.
        let mk = |outstanding| {
            let (mut en, mut fab, _) = setup(2_000);
            let dma = DmaEngine::new(DmaConfig {
                chunk: 512,
                outstanding,
            });
            let mut out = vec![0u8; 256 << 10];
            dma.read(&mut en, &mut fab, HOST_NODE, 0, &mut out).unwrap()
        };
        let shallow = mk(1);
        let deep = mk(16);
        assert!(
            deep.as_ns() * 4 < shallow.as_ns(),
            "deep={deep:?} shallow={shallow:?}"
        );
    }

    #[test]
    fn window_one_serialises_rtt() {
        let (mut en, mut fab, _) = setup(1_000);
        let dma = DmaEngine::new(DmaConfig {
            chunk: 512,
            outstanding: 1,
        });
        let mut out = vec![0u8; 512 * 10];
        let done = dma.read(&mut en, &mut fab, HOST_NODE, 0, &mut out).unwrap();
        // Each RTT ≥ service latency (1 µs) + 2 × hop (400 ns) → ≥ 14 µs
        // for 10 serial chunks.
        assert!(done.as_ns() >= 14_000, "{done:?}");
    }

    #[test]
    fn writes_complete_and_store() {
        let (mut en, mut fab, _) = setup(50);
        let dma = DmaEngine::new(DmaConfig::tapasco_host());
        let data = vec![0x5au8; 32 << 10];
        dma.write(&mut en, &mut fab, HOST_NODE, 4096, &data)
            .unwrap();
        let mut back = vec![0u8; 32 << 10];
        dma.read(&mut en, &mut fab, HOST_NODE, 4096, &mut back)
            .unwrap();
        assert_eq!(back, data);
    }
}
