//! # snacc-pcie — PCIe fabric model
//!
//! A transaction-level model of the PCIe interconnect used in the SNAcc
//! setup: host root complex, the FPGA card, the NVMe SSD (and optionally a
//! GPU) all hang off the same bus, and — crucially for the paper — devices
//! can reach each other *peer-to-peer* without host involvement.
//!
//! Design:
//!
//! * [`config::PcieLinkConfig`] — per-device link (generation × lanes →
//!   per-direction bandwidth), maximum payload size, TLP header overhead.
//! * [`fabric::PcieFabric`] — the topology: every device has a full-duplex
//!   link to the root complex; memory-mapped ranges (host DRAM, device
//!   BARs) are registered in one global address map; `read`/`write` route a
//!   transaction over the involved links, book their bandwidth, apply the
//!   IOMMU, and functionally move the bytes to/from the registered
//!   [`target::MmioTarget`].
//! * [`iommu::Iommu`] — permission table for device-initiated accesses
//!   (the paper notes P2P requires IOMMU grants; Sec 4).
//! * [`dma::DmaEngine`] — a credit-windowed transfer pump used by host-side
//!   infrastructure (TaPaSCo's DMA engine) and baselines.
//!
//! Reentrancy rule: [`target::MmioTarget`] implementations are *passive*
//! (memories, register files, PRP responders). Active reactions to MMIO
//! (e.g. an NVMe doorbell) must be deferred through
//! [`snacc_sim::Engine::schedule_now`] — handlers receive the engine for
//! exactly this purpose. This keeps `RefCell` borrows non-overlapping.

pub mod config;
pub mod dma;
pub mod fabric;
pub mod iommu;
pub mod target;
pub mod tlp;

pub use config::{PcieGen, PcieLinkConfig};
pub use fabric::{
    NodeId, PcieError, PcieFabric, PcieFaultConfig, PcieFaultStats, FAULT_MIN_BYTES, HOST_NODE,
};
pub use iommu::Iommu;
pub use target::MmioTarget;
