//! Memory-mapped targets.
//!
//! Anything reachable over the fabric — host DRAM, an FPGA BAR window
//! backed by URAM or on-board DRAM, an NVMe controller's register file —
//! implements [`MmioTarget`]. Targets are *passive*: they move bytes and
//! return a service latency. Side effects that must re-enter the fabric
//! (e.g. a doorbell write triggering command fetch) are deferred via the
//! engine handle.

use snacc_mem::{DramController, HostMemory, SparseMemory, UramModel};
use snacc_sim::bytes::Payload;
use snacc_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// A memory-mapped region reachable through the PCIe fabric.
pub trait MmioTarget {
    /// Target name for traces and error messages.
    fn name(&self) -> &str;

    /// Serve a read of `out.len()` bytes at `offset` within the region.
    /// `arrival` is when the request reaches the target; the return value
    /// is the service latency before the completion data starts back.
    fn read(
        &mut self,
        en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration;

    /// Absorb a write of `data` at `offset`. Returns the service latency.
    fn write(&mut self, en: &mut Engine, arrival: SimTime, offset: u64, data: &[u8])
        -> SimDuration;

    /// Serve a read of `len` bytes at `offset` as a zero-copy [`Payload`].
    /// The default materialises through [`read`](Self::read); memory-backed
    /// targets override it to hand out views of their segment store.
    fn read_payload(
        &mut self,
        en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        len: usize,
    ) -> (Payload, SimDuration) {
        let mut buf = vec![0u8; len];
        let lat = self.read(en, arrival, offset, &mut buf);
        (Payload::from_vec(buf), lat)
    }

    /// Absorb a write of a [`Payload`] at `offset`. The default
    /// materialises through [`write`](Self::write); memory-backed targets
    /// override it to retain the window without copying.
    fn write_payload(
        &mut self,
        en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: Payload,
    ) -> SimDuration {
        self.write(en, arrival, offset, data.as_slice())
    }
}

/// Host DRAM exposed as a fabric target.
pub struct HostMemTarget {
    mem: Rc<RefCell<HostMemory>>,
    /// Physical base address of the mapped window (offsets are absolute
    /// host-physical addresses minus this base).
    base: u64,
}

impl HostMemTarget {
    /// Map host memory at physical base `base`.
    pub fn new(mem: Rc<RefCell<HostMemory>>, base: u64) -> Self {
        HostMemTarget { mem, base }
    }
}

impl MmioTarget for HostMemTarget {
    fn name(&self) -> &str {
        "host-dram"
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        let mut m = self.mem.borrow_mut();
        let done = m.read(arrival, self.base + offset, out);
        done.since(arrival)
    }

    fn write(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: &[u8],
    ) -> SimDuration {
        let mut m = self.mem.borrow_mut();
        let done = m.write(arrival, self.base + offset, data);
        done.since(arrival)
    }

    fn read_payload(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        len: usize,
    ) -> (Payload, SimDuration) {
        let mut m = self.mem.borrow_mut();
        let (p, done) = m.read_payload(arrival, self.base + offset, len);
        (p, done.since(arrival))
    }

    fn write_payload(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: Payload,
    ) -> SimDuration {
        let mut m = self.mem.borrow_mut();
        let done = m.write_payload(arrival, self.base + offset, data);
        done.since(arrival)
    }
}

/// A URAM buffer exposed through an FPGA BAR window.
pub struct UramTarget {
    uram: Rc<RefCell<UramModel>>,
}

impl UramTarget {
    /// Wrap a shared URAM model.
    pub fn new(uram: Rc<RefCell<UramModel>>) -> Self {
        UramTarget { uram }
    }
}

impl MmioTarget for UramTarget {
    fn name(&self) -> &str {
        "uram-bar"
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        let mut u = self.uram.borrow_mut();
        let done = u.read(arrival, offset, out);
        done.since(arrival)
    }

    fn write(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: &[u8],
    ) -> SimDuration {
        let mut u = self.uram.borrow_mut();
        let done = u.write(arrival, offset, data);
        done.since(arrival)
    }

    fn read_payload(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        len: usize,
    ) -> (Payload, SimDuration) {
        let mut u = self.uram.borrow_mut();
        let (p, done) = u.read_payload(arrival, offset, len);
        (p, done.since(arrival))
    }

    fn write_payload(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: Payload,
    ) -> SimDuration {
        let mut u = self.uram.borrow_mut();
        let done = u.write_payload(arrival, offset, data);
        done.since(arrival)
    }
}

/// An on-board DRAM window exposed through an FPGA BAR.
pub struct DramTarget {
    dram: Rc<RefCell<DramController>>,
    /// Offset of this window within the DRAM address space.
    window_base: u64,
}

impl DramTarget {
    /// Map `dram` starting at `window_base` within the channel.
    pub fn new(dram: Rc<RefCell<DramController>>, window_base: u64) -> Self {
        DramTarget { dram, window_base }
    }
}

impl MmioTarget for DramTarget {
    fn name(&self) -> &str {
        "onboard-dram-bar"
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        let mut d = self.dram.borrow_mut();
        let done = d.read(arrival, self.window_base + offset, out);
        done.since(arrival)
    }

    fn write(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: &[u8],
    ) -> SimDuration {
        let mut d = self.dram.borrow_mut();
        let done = d.write(arrival, self.window_base + offset, data);
        done.since(arrival)
    }

    fn read_payload(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        len: usize,
    ) -> (Payload, SimDuration) {
        let mut d = self.dram.borrow_mut();
        let (p, done) = d.read_payload(arrival, self.window_base + offset, len);
        (p, done.since(arrival))
    }

    fn write_payload(
        &mut self,
        _en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: Payload,
    ) -> SimDuration {
        let mut d = self.dram.borrow_mut();
        let done = d.write_payload(arrival, self.window_base + offset, data);
        done.since(arrival)
    }
}

/// A plain register-file / scratch target with fixed service latency.
/// Useful for config windows and in tests.
pub struct ScratchTarget {
    name: String,
    mem: SparseMemory,
    latency: SimDuration,
}

impl ScratchTarget {
    /// Create with a fixed access latency.
    pub fn new(name: impl Into<String>, latency: SimDuration) -> Self {
        ScratchTarget {
            name: name.into(),
            mem: SparseMemory::new(),
            latency,
        }
    }

    /// Functional access to the backing store.
    pub fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
}

impl MmioTarget for ScratchTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        self.mem.read(offset, out);
        self.latency
    }

    fn write(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        offset: u64,
        data: &[u8],
    ) -> SimDuration {
        self.mem.write(offset, data);
        self.latency
    }
}

/// Callback invoked by a [`NotifyTarget`] after a write lands:
/// `(engine, region offset, written bytes, arrival time)`. The hook runs
/// while the target (and typically the fabric) is borrowed — it must not
/// re-enter either; schedule an event for anything that does.
pub type WriteHook = Box<dyn FnMut(&mut Engine, u64, &[u8], SimTime)>;

/// A memory region that notifies a hook after each write — the simulation
/// stand-in for "a poller notices new bytes". NVMe completion queues use
/// this so consumers (the streamer's reorder buffer, the SPDK reactor)
/// wake without the simulator running dense polling events; consumers add
/// their own reaction latency to model real polling granularity.
pub struct NotifyTarget {
    name: String,
    mem: SparseMemory,
    latency: SimDuration,
    hook: Option<WriteHook>,
}

impl NotifyTarget {
    /// Create with a fixed access latency and no hook.
    pub fn new(name: impl Into<String>, latency: SimDuration) -> Self {
        NotifyTarget {
            name: name.into(),
            mem: SparseMemory::new(),
            latency,
            hook: None,
        }
    }

    /// Install (or replace) the write hook.
    pub fn set_hook(&mut self, hook: WriteHook) {
        self.hook = Some(hook);
    }

    /// Functional access to the backing store.
    pub fn mem_mut(&mut self) -> &mut SparseMemory {
        &mut self.mem
    }
}

impl MmioTarget for NotifyTarget {
    fn name(&self) -> &str {
        &self.name
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        self.mem.read(offset, out);
        self.latency
    }

    fn write(
        &mut self,
        en: &mut Engine,
        arrival: SimTime,
        offset: u64,
        data: &[u8],
    ) -> SimDuration {
        self.mem.write(offset, data);
        if let Some(hook) = &mut self.hook {
            hook(en, offset, data, arrival + self.latency);
        }
        self.latency
    }
}

/// Timing model of the URAM read path under dir contention is handled by
/// the URAM model itself; see `snacc-mem`.
#[cfg(test)]
mod tests {
    use super::*;
    use snacc_mem::{DramConfig, UramConfig};

    #[test]
    fn scratch_roundtrip() {
        let mut en = Engine::new();
        let mut t = ScratchTarget::new("regs", SimDuration::from_ns(50));
        let lat = t.write(&mut en, SimTime::ZERO, 0x10, b"abcd");
        assert_eq!(lat, SimDuration::from_ns(50));
        let mut out = [0u8; 4];
        t.read(&mut en, SimTime::ZERO, 0x10, &mut out);
        assert_eq!(&out, b"abcd");
    }

    #[test]
    fn uram_target_moves_bytes() {
        let mut en = Engine::new();
        let uram = Rc::new(RefCell::new(UramModel::new(
            "u",
            UramConfig::snacc_default(),
        )));
        let mut t = UramTarget::new(uram.clone());
        t.write(&mut en, SimTime::ZERO, 4096, b"hello");
        let mut out = [0u8; 5];
        t.read(&mut en, SimTime::ZERO, 4096, &mut out);
        assert_eq!(&out, b"hello");
        assert_eq!(uram.borrow().bytes_written(), 5);
    }

    #[test]
    fn dram_target_applies_window_base() {
        let mut en = Engine::new();
        let dram = Rc::new(RefCell::new(DramController::new(
            "d",
            DramConfig::ddr4_u280(),
        )));
        let mut t = DramTarget::new(dram.clone(), 0x100_0000);
        t.write(&mut en, SimTime::ZERO, 0, b"xy");
        let got = dram.borrow_mut().store_mut().read_vec(0x100_0000, 2);
        assert_eq!(got, b"xy");
    }

    #[test]
    fn hostmem_target_absolute_addresses() {
        let mut en = Engine::new();
        let mem = Rc::new(RefCell::new(HostMemory::default()));
        let mut t = HostMemTarget::new(mem.clone(), 0);
        t.write(&mut en, SimTime::ZERO, 0x5000, b"zz");
        assert_eq!(mem.borrow_mut().store_mut().read_vec(0x5000, 2), b"zz");
    }
}
