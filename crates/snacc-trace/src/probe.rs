//! Periodic simulated-time probes.
//!
//! A probe samples model state (queue depths, ROB occupancy, link
//! credits) at a fixed simulated-time period and typically emits
//! [`counter`](crate::tracer::counter) events. The sample closure gets an
//! immutable engine reference, so probes are read-only by construction —
//! arming one cannot change model behaviour beyond the extra (empty)
//! engine events it schedules.
//!
//! A probe re-arms itself only while other events remain pending, so it
//! never keeps an otherwise-finished simulation alive.

use snacc_sim::{Engine, SimDuration};

/// Arm a periodic probe. `sample(en)` runs every `period` of simulated
/// time until the rest of the event queue drains.
pub fn arm(en: &mut Engine, period: SimDuration, sample: impl FnMut(&Engine) + 'static) {
    assert!(!period.is_zero(), "probe period must be non-zero");
    fn tick(en: &mut Engine, period: SimDuration, mut sample: Box<dyn FnMut(&Engine)>) {
        sample(en);
        if en.pending() > 0 {
            en.schedule_in(period, move |en| tick(en, period, sample));
        }
    }
    en.schedule_in(period, move |en| tick(en, period, Box::new(sample)));
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn probe_samples_while_work_pending_then_stops() {
        let mut en = Engine::new();
        // Workload: ticks at 10ns intervals until 100ns.
        fn work(en: &mut Engine, remaining: u32) {
            if remaining > 0 {
                en.schedule_in(SimDuration::from_ns(10), move |en| work(en, remaining - 1));
            }
        }
        en.schedule_in(SimDuration::from_ns(10), |en| work(en, 9));
        let samples = Rc::new(RefCell::new(Vec::new()));
        let s = samples.clone();
        arm(&mut en, SimDuration::from_ns(25), move |en| {
            s.borrow_mut().push(en.now().as_ns());
        });
        en.run();
        // Samples at 25/50/75/100; at 100 the final workload event is
        // still pending (the probe's re-arm was scheduled first), so one
        // trailing sample lands at 125 and then the queue drains.
        assert_eq!(*samples.borrow(), vec![25, 50, 75, 100, 125]);
        assert_eq!(en.now().as_ns(), 125);
    }

    #[test]
    fn probe_alone_fires_once_and_drains() {
        let mut en = Engine::new();
        let count = Rc::new(RefCell::new(0u32));
        let c = count.clone();
        arm(&mut en, SimDuration::from_ns(5), move |_| {
            *c.borrow_mut() += 1
        });
        en.run();
        assert_eq!(*count.borrow(), 1);
    }
}
