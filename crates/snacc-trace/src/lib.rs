//! # snacc-trace — deterministic tracing & telemetry
//!
//! The observability layer for the SNAcc simulation workspace:
//!
//! * [`tracer`] — spans, instants and counter samples keyed by
//!   `(SimTime, record sequence, track)`. All identifiers come from
//!   deterministic engine/tracer counters, never wall clocks, so traces
//!   are bit-identical across runs of the same seed and configuration.
//! * [`metrics`] — a registry of named counters, meters and histograms
//!   that unifies the models' ad-hoc statistics into one snapshot.
//! * [`chrome`] — Chrome `trace_event` JSON export for Perfetto /
//!   `chrome://tracing`.
//! * [`probe`] — periodic simulated-time samplers for queue depths, ROB
//!   occupancy and link credits.
//!
//! ## Zero cost when disabled
//!
//! Instrumentation sites in the model crates are gated on
//! [`enabled`] — a thread-local `Cell<bool>` read — and do no argument
//! collection or allocation unless a tracer is installed. With tracing
//! off, a model run executes the identical event sequence it executed
//! before this crate existed.
//!
//! ## Example
//!
//! ```
//! use snacc_sim::{Engine, SimDuration};
//! use snacc_trace as trace;
//!
//! let tracer = trace::Tracer::new();
//! trace::install(tracer.clone());
//! let mut en = Engine::new();
//! let span = trace::begin(&en, "nvme.dev", "sqe", &[("cid", 7)]);
//! en.schedule_in(SimDuration::from_ns(900), move |en| {
//!     trace::end(en, span);
//! });
//! en.run();
//! trace::uninstall();
//! let json = trace::export_chrome_trace(&tracer);
//! assert!(json.contains("\"traceEvents\""));
//! ```

pub mod chrome;
pub mod metrics;
pub mod probe;
pub mod tracer;

pub use chrome::export_chrome_trace;
pub use metrics::{
    counter as metric_counter, histogram as metric_histogram, install_registry,
    meter as metric_meter, registry, CounterHandle, HistogramHandle, MeterHandle, MetricsRegistry,
};
pub use tracer::{
    begin, counter, enabled, end, end_at, install, instant, instant_at, report_engine_error,
    span_between, uninstall, SpanId, TraceEvent, Tracer,
};
