//! Chrome `trace_event` JSON export, loadable in Perfetto
//! (<https://ui.perfetto.dev>) or `chrome://tracing`.
//!
//! Mapping:
//! * every tracer track becomes a "thread" (`pid` 1, `tid` = track + 1)
//!   named via `thread_name` metadata events;
//! * spans are emitted as *async nestable* pairs (`ph:"b"` / `ph:"e"`)
//!   keyed by the span id — async events tolerate the overlapping,
//!   out-of-order completions an ROB produces, which the synchronous
//!   `B`/`E` stack model does not;
//! * instants are `ph:"i"` with thread scope, counters are `ph:"C"`;
//! * timestamps are fractional microseconds of simulated time.
//!
//! Events are sorted by `(SimTime, record seq)` before emission, so the
//! output is byte-identical across runs of the same seed/configuration.

use crate::tracer::{TraceEvent, Tracer};
use serde_json::{Map, Value};

const PID: u64 = 1;

fn base(ph: &str, name: &str, tid: u64, ts: f64) -> Map {
    let mut m = Map::new();
    m.insert("ph", Value::from(ph));
    m.insert("name", Value::from(name));
    m.insert("pid", Value::from(PID));
    m.insert("tid", Value::from(tid));
    m.insert("ts", Value::from(ts));
    m
}

fn args_obj(args: &[(&'static str, u64)]) -> Value {
    let mut m = Map::new();
    for (k, v) in args {
        m.insert(*k, Value::from(*v));
    }
    Value::Object(m)
}

fn span_id_str(span: u64) -> String {
    format!("0x{span:x}")
}

/// Render the tracer's buffer as a Chrome `trace_event` JSON document.
pub fn export_chrome_trace(tracer: &Tracer) -> String {
    let inner = tracer.inner.borrow();
    let mut events: Vec<Value> = Vec::with_capacity(inner.events.len() + inner.tracks.len() + 1);

    // Thread-name metadata first: one per track, in registration order.
    for (id, name) in inner.tracks.iter().enumerate() {
        let mut m = Map::new();
        m.insert("ph", Value::from("M"));
        m.insert("name", Value::from("thread_name"));
        m.insert("pid", Value::from(PID));
        m.insert("tid", Value::from(id as u64 + 1));
        let mut args = Map::new();
        args.insert("name", Value::from(name.as_str()));
        m.insert("args", Value::Object(args));
        events.push(Value::Object(m));
    }

    let mut ordered: Vec<&TraceEvent> = inner.events.iter().collect();
    ordered.sort_by_key(|ev| ev.key());

    for ev in ordered {
        let v = match ev {
            TraceEvent::Begin {
                t,
                track,
                name,
                span,
                args,
                ..
            } => {
                let mut m = base("b", name, *track as u64 + 1, t.as_us_f64());
                m.insert("cat", Value::from("snacc"));
                m.insert("id", Value::from(span_id_str(*span)));
                if !args.is_empty() {
                    m.insert("args", args_obj(args));
                }
                m
            }
            TraceEvent::End {
                t,
                track,
                name,
                span,
                ..
            } => {
                let mut m = base("e", name, *track as u64 + 1, t.as_us_f64());
                m.insert("cat", Value::from("snacc"));
                m.insert("id", Value::from(span_id_str(*span)));
                m
            }
            TraceEvent::Mark {
                t,
                track,
                name,
                args,
                ..
            } => {
                let mut m = base("i", name, *track as u64 + 1, t.as_us_f64());
                m.insert("cat", Value::from("snacc"));
                m.insert("s", Value::from("t"));
                if !args.is_empty() {
                    m.insert("args", args_obj(args));
                }
                m
            }
            TraceEvent::Counter {
                t,
                track,
                name,
                value,
                ..
            } => {
                let mut m = base("C", name, *track as u64 + 1, t.as_us_f64());
                let mut args = Map::new();
                args.insert("value", Value::from(*value));
                m.insert("args", Value::Object(args));
                m
            }
        };
        events.push(Value::Object(v));
    }

    let mut root = Map::new();
    root.insert("traceEvents", Value::Array(events));
    root.insert("displayTimeUnit", Value::from("ns"));
    if inner.dropped > 0 {
        root.insert("snaccDroppedEvents", Value::from(inner.dropped));
    }
    serde_json::to_string(&Value::Object(root))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tracer::{begin, end, install, instant, span_between, uninstall};
    use snacc_sim::{Engine, SimDuration, SimTime};

    fn sample_run() -> String {
        let tracer = Tracer::new();
        install(tracer.clone());
        let mut en = Engine::new();
        let span = begin(&en, "dev", "cmd", &[("len", 4096)]);
        en.schedule_in(SimDuration::from_ns(100), move |en| {
            instant(en, "dev", "doorbell", &[("tail", 1)]);
            end(en, span);
        });
        en.run();
        span_between(
            "link",
            "xfer",
            SimTime::from_ns(10),
            SimTime::from_ns(50),
            &[("bytes", 512)],
        );
        uninstall();
        export_chrome_trace(&tracer)
    }

    #[test]
    fn export_is_valid_json_with_expected_phases() {
        let text = sample_run();
        let doc = serde_json::from_str(&text).expect("valid JSON");
        let events = doc
            .get("traceEvents")
            .and_then(|v| v.as_array())
            .expect("traceEvents array");
        let phases: Vec<&str> = events
            .iter()
            .filter_map(|e| e.get("ph").and_then(|p| p.as_str()))
            .collect();
        // 2 thread_name metadata + b/e for "cmd", i, b/e for "xfer".
        assert_eq!(phases.iter().filter(|p| **p == "M").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "b").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "e").count(), 2);
        assert_eq!(phases.iter().filter(|p| **p == "i").count(), 1);
    }

    #[test]
    fn events_sorted_by_time_after_out_of_order_recording() {
        let text = sample_run();
        let doc = serde_json::from_str(&text).unwrap();
        let events = doc.get("traceEvents").and_then(|v| v.as_array()).unwrap();
        let ts: Vec<f64> = events
            .iter()
            .filter(|e| e.get("ph").and_then(|p| p.as_str()) != Some("M"))
            .filter_map(|e| e.get("ts").and_then(|t| t.as_f64()))
            .collect();
        // The span_between at 10ns..50ns was recorded after the 100ns
        // events but must appear in time order.
        assert!(ts.windows(2).all(|w| w[0] <= w[1]), "ts not sorted: {ts:?}");
    }

    #[test]
    fn identical_runs_export_identical_bytes() {
        assert_eq!(sample_run(), sample_run());
    }
}
