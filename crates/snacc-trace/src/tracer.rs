//! The deterministic tracer: spans, instants and counter samples keyed by
//! `(SimTime, record sequence, track)`.
//!
//! Every identifier is derived from monotonically increasing counters that
//! advance in event-execution order — which the engine guarantees is
//! deterministic — so two runs with the same seed and configuration
//! produce bit-identical traces. No wall clocks, no addresses, no hashing
//! of unordered containers.
//!
//! The tracer is installed into a thread-local slot ([`install`]) because
//! the whole simulation is single-threaded by design; model code checks
//! [`enabled`] — a plain `Cell<bool>` read — before doing any argument
//! formatting, which keeps the disabled path free of allocation.

use snacc_sim::engine::EngineError;
use snacc_sim::{Engine, SimTime};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// Identifier of an open span. `SpanId::NONE` (the zero value) is inert:
/// ending it is a no-op, so models can unconditionally store span IDs in
/// their command state even when tracing is disabled.
#[derive(Clone, Copy, PartialEq, Eq, Debug, Default)]
pub struct SpanId(pub(crate) u64);

impl SpanId {
    /// The inert span: produced when tracing is disabled, ignored by
    /// [`end`] / [`end_at`].
    pub const NONE: SpanId = SpanId(0);

    /// True for the inert span.
    #[inline]
    pub fn is_none(self) -> bool {
        self.0 == 0
    }
}

/// Key/value annotations attached to an event. Values are `u64` so sites
/// never format strings on the hot path.
pub type Args = Vec<(&'static str, u64)>;

/// One recorded trace event. `seq` is the tracer-local record sequence —
/// the total order in which events were recorded, used as the
/// deterministic tie-break when sorting by time at export.
#[derive(Clone, Debug)]
pub enum TraceEvent {
    /// Span open (Chrome `ph:"b"`).
    Begin {
        /// Simulated time of the open.
        t: SimTime,
        /// Tracer-local record sequence.
        seq: u64,
        /// Track the span lives on.
        track: u32,
        /// Span name.
        name: &'static str,
        /// Span identifier (matches the `End`).
        span: u64,
        /// Annotations.
        args: Args,
    },
    /// Span close (Chrome `ph:"e"`).
    End {
        /// Simulated time of the close.
        t: SimTime,
        /// Tracer-local record sequence.
        seq: u64,
        /// Track the span lives on.
        track: u32,
        /// Span name (must match the `Begin`).
        name: &'static str,
        /// Span identifier.
        span: u64,
    },
    /// A point event (Chrome `ph:"i"`).
    Mark {
        /// Simulated time.
        t: SimTime,
        /// Tracer-local record sequence.
        seq: u64,
        /// Track.
        track: u32,
        /// Event name.
        name: &'static str,
        /// Annotations.
        args: Args,
    },
    /// A sampled counter value (Chrome `ph:"C"`).
    Counter {
        /// Simulated time of the sample.
        t: SimTime,
        /// Tracer-local record sequence.
        seq: u64,
        /// Track.
        track: u32,
        /// Counter name.
        name: &'static str,
        /// Sampled value.
        value: f64,
    },
}

impl TraceEvent {
    /// `(time, record seq)` sort key for export.
    pub(crate) fn key(&self) -> (SimTime, u64) {
        match self {
            TraceEvent::Begin { t, seq, .. }
            | TraceEvent::End { t, seq, .. }
            | TraceEvent::Mark { t, seq, .. }
            | TraceEvent::Counter { t, seq, .. } => (*t, *seq),
        }
    }
}

pub(crate) struct TracerInner {
    pub(crate) events: Vec<TraceEvent>,
    /// Open spans: span id → (track, name), consumed by `end`.
    open: BTreeMap<u64, (u32, &'static str)>,
    next_span: u64,
    /// Track names in registration order; index = track id.
    pub(crate) tracks: Vec<String>,
    track_ids: BTreeMap<String, u32>,
    seq: u64,
    cap: usize,
    pub(crate) dropped: u64,
}

/// A cloneable handle to one trace buffer. Install it with [`install`],
/// run the simulation, then export with
/// [`export_chrome_trace`](crate::chrome::export_chrome_trace).
#[derive(Clone)]
pub struct Tracer {
    pub(crate) inner: Rc<RefCell<TracerInner>>,
}

impl Default for Tracer {
    fn default() -> Self {
        Self::new()
    }
}

/// Default event-buffer capacity. Generous enough for full figure runs;
/// recording stops (deterministically) past this point and the dropped
/// count is reported in the export metadata.
const DEFAULT_EVENT_CAP: usize = 4_000_000;

impl Tracer {
    /// A tracer with the default event capacity.
    pub fn new() -> Self {
        Self::with_capacity(DEFAULT_EVENT_CAP)
    }

    /// A tracer that stops recording after `cap` events (the drop is
    /// deterministic: same run, same events dropped).
    pub fn with_capacity(cap: usize) -> Self {
        Tracer {
            inner: Rc::new(RefCell::new(TracerInner {
                events: Vec::new(),
                open: BTreeMap::new(),
                next_span: 1,
                tracks: Vec::new(),
                track_ids: BTreeMap::new(),
                seq: 0,
                cap,
                dropped: 0,
            })),
        }
    }

    /// Number of events recorded so far.
    pub fn events_recorded(&self) -> usize {
        self.inner.borrow().events.len()
    }

    /// Number of events dropped after the buffer filled.
    pub fn events_dropped(&self) -> u64 {
        self.inner.borrow().dropped
    }
}

impl TracerInner {
    fn track_id(&mut self, track: &str) -> u32 {
        if let Some(&id) = self.track_ids.get(track) {
            return id;
        }
        let id = self.tracks.len() as u32;
        self.tracks.push(track.to_string());
        self.track_ids.insert(track.to_string(), id);
        id
    }

    fn next_seq(&mut self) -> u64 {
        let s = self.seq;
        self.seq += 1;
        s
    }

    fn push(&mut self, ev: TraceEvent) {
        if self.events.len() >= self.cap {
            self.dropped += 1;
            return;
        }
        self.events.push(ev);
    }
}

thread_local! {
    static CURRENT: RefCell<Option<Tracer>> = const { RefCell::new(None) };
    static ENABLED: Cell<bool> = const { Cell::new(false) };
}

/// Install `tracer` as the thread's active tracer and enable recording.
pub fn install(tracer: Tracer) {
    CURRENT.with(|c| *c.borrow_mut() = Some(tracer));
    ENABLED.with(|e| e.set(true));
}

/// Disable recording and return the active tracer, if any.
pub fn uninstall() -> Option<Tracer> {
    ENABLED.with(|e| e.set(false));
    CURRENT.with(|c| c.borrow_mut().take())
}

/// Cheap fast-path check: is a tracer installed and recording? Model code
/// gates every instrumentation site on this so the disabled path does no
/// formatting or allocation.
#[inline]
pub fn enabled() -> bool {
    ENABLED.with(|e| e.get())
}

fn with_tracer(f: impl FnOnce(&mut TracerInner)) {
    if !enabled() {
        return;
    }
    CURRENT.with(|c| {
        if let Some(tracer) = c.borrow().as_ref() {
            f(&mut tracer.inner.borrow_mut());
        }
    });
}

/// Record a point event at the current simulated time.
pub fn instant(en: &Engine, track: &str, name: &'static str, args: &[(&'static str, u64)]) {
    instant_at(en.now(), track, name, args);
}

/// Record a point event at an explicit simulated time. Used by spots that
/// know a completion time without scheduling an event for it (scheduling
/// from the tracer would perturb `events_executed` and break the
/// trace-off/trace-on equivalence).
pub fn instant_at(t: SimTime, track: &str, name: &'static str, args: &[(&'static str, u64)]) {
    with_tracer(|inner| {
        let track = inner.track_id(track);
        let seq = inner.next_seq();
        inner.push(TraceEvent::Mark {
            t,
            seq,
            track,
            name,
            args: args.to_vec(),
        });
    });
}

/// Open a span at the current simulated time. Returns [`SpanId::NONE`]
/// when tracing is disabled.
pub fn begin(en: &Engine, track: &str, name: &'static str, args: &[(&'static str, u64)]) -> SpanId {
    let mut id = SpanId::NONE;
    let t = en.now();
    with_tracer(|inner| {
        let track = inner.track_id(track);
        let span = inner.next_span;
        inner.next_span += 1;
        inner.open.insert(span, (track, name));
        let seq = inner.next_seq();
        inner.push(TraceEvent::Begin {
            t,
            seq,
            track,
            name,
            span,
            args: args.to_vec(),
        });
        id = SpanId(span);
    });
    id
}

/// Close a span at the current simulated time. No-op for
/// [`SpanId::NONE`] or unknown spans.
pub fn end(en: &Engine, span: SpanId) {
    end_at(en.now(), span);
}

/// Close a span at an explicit simulated time (see [`instant_at`] for why
/// explicit-time recording exists).
pub fn end_at(t: SimTime, span: SpanId) {
    if span.is_none() {
        return;
    }
    with_tracer(|inner| {
        if let Some((track, name)) = inner.open.remove(&span.0) {
            let seq = inner.next_seq();
            inner.push(TraceEvent::End {
                t,
                seq,
                track,
                name,
                span: span.0,
            });
        }
    });
}

/// Record a complete span between two known instants in one call —
/// the common shape for transfer-style activities whose completion time
/// is computed analytically (link serialisation, TLP bursts).
pub fn span_between(
    track: &str,
    name: &'static str,
    start: SimTime,
    finish: SimTime,
    args: &[(&'static str, u64)],
) {
    with_tracer(|inner| {
        let track = inner.track_id(track);
        let span = inner.next_span;
        inner.next_span += 1;
        let seq = inner.next_seq();
        inner.push(TraceEvent::Begin {
            t: start,
            seq,
            track,
            name,
            span,
            args: args.to_vec(),
        });
        let seq = inner.next_seq();
        inner.push(TraceEvent::End {
            t: finish,
            seq,
            track,
            name,
            span,
        });
    });
}

/// Record a counter sample at the current simulated time.
pub fn counter(en: &Engine, track: &str, name: &'static str, value: f64) {
    let t = en.now();
    with_tracer(|inner| {
        let track = inner.track_id(track);
        let seq = inner.next_seq();
        inner.push(TraceEvent::Counter {
            t,
            seq,
            track,
            name,
            value,
        });
    });
}

/// Dump an [`EngineError`] diagnosis into the trace: the pending-queue
/// head (time, seq) and count land on the `engine` track so a runaway
/// model's last state is visible in the exported timeline.
pub fn report_engine_error(err: &EngineError) {
    let EngineError::EventLimit {
        limit,
        now,
        pending,
        head,
    } = err;
    let mut args: Args = vec![("limit", *limit), ("pending", *pending as u64)];
    if let Some((t, seq)) = head {
        args.push(("head_t_ns", t.as_ns()));
        args.push(("head_seq", *seq));
    }
    instant_at(*now, "engine", "engine.event_limit", &args);
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacc_sim::SimDuration;

    #[test]
    fn disabled_tracer_is_inert() {
        assert!(!enabled());
        let en = Engine::new();
        let span = begin(&en, "t", "x", &[]);
        assert!(span.is_none());
        end(&en, span);
        instant(&en, "t", "y", &[("k", 1)]);
        // Nothing to assert beyond "did not panic": no tracer installed.
    }

    #[test]
    fn records_spans_and_instants() {
        let tracer = Tracer::new();
        install(tracer.clone());
        let mut en = Engine::new();
        let span = begin(&en, "dev", "cmd", &[("len", 4096)]);
        assert!(!span.is_none());
        en.schedule_in(SimDuration::from_ns(10), move |en| {
            end(en, span);
            instant(en, "dev", "done", &[]);
        });
        en.run();
        uninstall();
        assert!(!enabled());
        assert_eq!(tracer.events_recorded(), 3);
        assert_eq!(tracer.events_dropped(), 0);
    }

    #[test]
    fn capacity_drops_deterministically() {
        let tracer = Tracer::with_capacity(2);
        install(tracer.clone());
        let en = Engine::new();
        for _ in 0..5 {
            instant(&en, "t", "tick", &[]);
        }
        uninstall();
        assert_eq!(tracer.events_recorded(), 2);
        assert_eq!(tracer.events_dropped(), 3);
    }

    #[test]
    fn engine_error_report_lands_on_engine_track() {
        let tracer = Tracer::new();
        install(tracer.clone());
        let err = EngineError::EventLimit {
            limit: 100,
            now: SimTime::from_ns(7),
            pending: 3,
            head: Some((SimTime::from_ns(8), 42)),
        };
        report_engine_error(&err);
        uninstall();
        assert_eq!(tracer.events_recorded(), 1);
        let inner = tracer.inner.borrow();
        assert_eq!(inner.tracks, vec!["engine".to_string()]);
    }
}
