//! The metrics registry: named, hierarchically-scoped counters, meters
//! and histograms.
//!
//! Names use dotted scopes (`streamer.snacc.cmds_issued`,
//! `pcie.payload`); the registry hands out cheap `Rc`-backed handles so
//! hot paths update a `Cell` instead of doing a map lookup. Snapshots
//! iterate a `BTreeMap`, so exported JSON is key-sorted and byte-stable
//! across runs.
//!
//! A thread-local *current* registry is created lazily, which lets model
//! crates register metrics unconditionally — no setup required in tests —
//! while the bench harness can [`install_registry`] a fresh one per run
//! and snapshot it at the end.

use serde_json::{Map, Value};
use std::cell::{Cell, RefCell};
use std::collections::BTreeMap;
use std::rc::Rc;

/// A monotonically increasing event count.
#[derive(Clone)]
pub struct CounterHandle(Rc<Cell<u64>>);

impl CounterHandle {
    /// Add one.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Add `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        self.0.set(self.0.get() + n);
    }

    /// Current value.
    #[inline]
    pub fn get(&self) -> u64 {
        self.0.get()
    }
}

/// An operation/byte meter (one `record` = one operation of `bytes`).
#[derive(Clone)]
pub struct MeterHandle(Rc<Cell<(u64, u64)>>);

impl MeterHandle {
    /// Record one operation moving `bytes`.
    #[inline]
    pub fn record(&self, bytes: u64) {
        let (ops, total) = self.0.get();
        self.0.set((ops + 1, total + bytes));
    }

    /// Operations recorded.
    #[inline]
    pub fn ops(&self) -> u64 {
        self.0.get().0
    }

    /// Total bytes recorded.
    #[inline]
    pub fn bytes(&self) -> u64 {
        self.0.get().1
    }

    /// Zero the meter (e.g. after a warm-up phase, mirroring the models'
    /// own meter resets).
    #[inline]
    pub fn reset(&self) {
        self.0.set((0, 0));
    }
}

/// A value distribution with nearest-rank quantiles.
#[derive(Clone)]
pub struct HistogramHandle(Rc<RefCell<Vec<f64>>>);

impl HistogramHandle {
    /// Record one sample.
    #[inline]
    pub fn record(&self, v: f64) {
        self.0.borrow_mut().push(v);
    }

    /// Number of samples.
    pub fn len(&self) -> usize {
        self.0.borrow().len()
    }

    /// True when no samples have been recorded.
    pub fn is_empty(&self) -> bool {
        self.0.borrow().is_empty()
    }

    /// Nearest-rank quantile: for `n` samples the rank is
    /// `clamp(ceil(q·n), 1, n)` and the result is the sample at that rank
    /// in sorted order. `None` on an empty histogram. `q = 0` yields the
    /// minimum, `q = 1` the maximum, and a single sample is returned for
    /// every `q`.
    pub fn quantile(&self, q: f64) -> Option<f64> {
        let samples = self.0.borrow();
        if samples.is_empty() {
            return None;
        }
        let mut sorted = samples.clone();
        sorted.sort_by(|a, b| a.partial_cmp(b).expect("NaN sample in histogram"));
        let n = sorted.len();
        let rank = ((q * n as f64).ceil() as usize).clamp(1, n);
        Some(sorted[rank - 1])
    }

    /// Arithmetic mean, `None` when empty.
    pub fn mean(&self) -> Option<f64> {
        let samples = self.0.borrow();
        if samples.is_empty() {
            return None;
        }
        Some(samples.iter().sum::<f64>() / samples.len() as f64)
    }
}

#[derive(Default)]
struct RegistryInner {
    counters: BTreeMap<String, CounterHandle>,
    meters: BTreeMap<String, MeterHandle>,
    histograms: BTreeMap<String, HistogramHandle>,
}

/// A cloneable handle to one metrics namespace.
#[derive(Clone, Default)]
pub struct MetricsRegistry {
    inner: Rc<RefCell<RegistryInner>>,
}

impl MetricsRegistry {
    /// An empty registry.
    pub fn new() -> Self {
        Self::default()
    }

    /// Get-or-create the counter `name`.
    pub fn counter(&self, name: &str) -> CounterHandle {
        let mut inner = self.inner.borrow_mut();
        inner
            .counters
            .entry(name.to_string())
            .or_insert_with(|| CounterHandle(Rc::new(Cell::new(0))))
            .clone()
    }

    /// Get-or-create the meter `name`.
    pub fn meter(&self, name: &str) -> MeterHandle {
        let mut inner = self.inner.borrow_mut();
        inner
            .meters
            .entry(name.to_string())
            .or_insert_with(|| MeterHandle(Rc::new(Cell::new((0, 0)))))
            .clone()
    }

    /// Get-or-create the histogram `name`.
    pub fn histogram(&self, name: &str) -> HistogramHandle {
        let mut inner = self.inner.borrow_mut();
        inner
            .histograms
            .entry(name.to_string())
            .or_insert_with(|| HistogramHandle(Rc::new(RefCell::new(Vec::new()))))
            .clone()
    }

    /// Snapshot every metric into a key-sorted JSON value.
    pub fn snapshot(&self) -> Value {
        let inner = self.inner.borrow();
        let mut counters = Map::new();
        for (name, c) in &inner.counters {
            counters.insert(name.clone(), Value::from(c.get()));
        }
        let mut meters = Map::new();
        for (name, m) in &inner.meters {
            let mut entry = Map::new();
            entry.insert("ops", Value::from(m.ops()));
            entry.insert("bytes", Value::from(m.bytes()));
            meters.insert(name.clone(), Value::Object(entry));
        }
        let mut histograms = Map::new();
        for (name, h) in &inner.histograms {
            let mut entry = Map::new();
            entry.insert("count", Value::from(h.len()));
            if !h.is_empty() {
                entry.insert("min", Value::from(h.quantile(0.0).expect("non-empty")));
                entry.insert("p50", Value::from(h.quantile(0.5).expect("non-empty")));
                entry.insert("p99", Value::from(h.quantile(0.99).expect("non-empty")));
                entry.insert("max", Value::from(h.quantile(1.0).expect("non-empty")));
                entry.insert("mean", Value::from(h.mean().expect("non-empty")));
            }
            histograms.insert(name.clone(), Value::Object(entry));
        }
        let mut root = Map::new();
        root.insert("counters", Value::Object(counters));
        root.insert("meters", Value::Object(meters));
        root.insert("histograms", Value::Object(histograms));
        Value::Object(root)
    }

    /// Snapshot as a compact JSON string.
    pub fn snapshot_json(&self) -> String {
        serde_json::to_string_pretty(&self.snapshot())
    }
}

thread_local! {
    static REGISTRY: RefCell<Option<MetricsRegistry>> = const { RefCell::new(None) };
}

/// The thread's current registry (created lazily on first use).
pub fn registry() -> MetricsRegistry {
    REGISTRY.with(|r| {
        r.borrow_mut()
            .get_or_insert_with(MetricsRegistry::new)
            .clone()
    })
}

/// Replace the thread's current registry — the bench harness installs a
/// fresh one per run so snapshots cover exactly that run.
pub fn install_registry(reg: MetricsRegistry) {
    REGISTRY.with(|r| *r.borrow_mut() = Some(reg));
}

/// Get-or-create a counter in the thread's current registry.
pub fn counter(name: &str) -> CounterHandle {
    registry().counter(name)
}

/// Get-or-create a meter in the thread's current registry.
pub fn meter(name: &str) -> MeterHandle {
    registry().meter(name)
}

/// Get-or-create a histogram in the thread's current registry.
pub fn histogram(name: &str) -> HistogramHandle {
    registry().histogram(name)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_share_state_by_name() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x.hits");
        let b = reg.counter("x.hits");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
    }

    #[test]
    fn meters_accumulate_ops_and_bytes() {
        let reg = MetricsRegistry::new();
        let m = reg.meter("link.payload");
        m.record(4096);
        m.record(512);
        assert_eq!(m.ops(), 2);
        assert_eq!(m.bytes(), 4608);
    }

    #[test]
    fn histogram_empty_has_no_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        assert!(h.is_empty());
        assert_eq!(h.quantile(0.0), None);
        assert_eq!(h.quantile(0.5), None);
        assert_eq!(h.quantile(1.0), None);
        assert_eq!(h.mean(), None);
    }

    #[test]
    fn histogram_single_sample_is_every_quantile() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        h.record(7.5);
        for q in [0.0, 0.25, 0.5, 0.99, 1.0] {
            assert_eq!(h.quantile(q), Some(7.5), "q={q}");
        }
        assert_eq!(h.mean(), Some(7.5));
    }

    #[test]
    fn histogram_exact_boundary_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [10.0, 20.0, 30.0, 40.0] {
            h.record(v);
        }
        // Nearest-rank with n = 4: rank = clamp(ceil(4q), 1, 4).
        assert_eq!(h.quantile(0.0), Some(10.0)); // rank clamps to 1
        assert_eq!(h.quantile(0.25), Some(10.0)); // ceil(1.0) = 1
        assert_eq!(h.quantile(0.5), Some(20.0)); // ceil(2.0) = 2
        assert_eq!(h.quantile(0.51), Some(30.0)); // ceil(2.04) = 3
        assert_eq!(h.quantile(0.75), Some(30.0)); // ceil(3.0) = 3
        assert_eq!(h.quantile(1.0), Some(40.0)); // rank 4
        assert_eq!(h.mean(), Some(25.0));
    }

    #[test]
    fn histogram_unsorted_input_sorts_for_quantiles() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat");
        for v in [30.0, 10.0, 20.0] {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(10.0));
        assert_eq!(h.quantile(1.0), Some(30.0));
    }

    #[test]
    fn snapshot_is_key_sorted_json() {
        let reg = MetricsRegistry::new();
        reg.counter("z.late").add(5);
        reg.counter("a.early").add(1);
        reg.meter("link").record(100);
        reg.histogram("lat").record(2.0);
        let snap = reg.snapshot();
        let counters = snap.get("counters").and_then(|v| v.as_object()).unwrap();
        let keys: Vec<&String> = counters.iter().map(|(k, _)| k).collect();
        assert_eq!(keys, ["a.early", "z.late"]);
        // Round-trips through the parser (valid JSON).
        let text = reg.snapshot_json();
        assert!(serde_json::from_str(&text).is_ok());
    }
}
