//! Processing elements.
//!
//! A [`StagePe`] is a streaming kernel between two AXI4-Stream channels:
//! it pops input beats, transforms the bytes (really — the case-study
//! downscaler and classifier run actual arithmetic on the payload), takes
//! processing time proportional to a configured throughput, and pushes
//! results downstream, stalling on backpressure exactly like an RTL
//! kernel whose output `ready` deasserts.

use crate::axis::{self, AxisChannel, StreamBeat};
use crate::resources::ResourceUsage;
use snacc_sim::{Bandwidth, Engine};
use std::cell::RefCell;
use std::rc::Rc;

/// A transform applied per input beat; returns the output beats.
pub type BeatTransform = Box<dyn FnMut(StreamBeat) -> Vec<StreamBeat>>;

/// A rate-modelled streaming stage.
pub struct StagePe {
    name: String,
    input: Rc<RefCell<AxisChannel>>,
    output: Rc<RefCell<AxisChannel>>,
    /// Processing throughput with respect to *input* bytes.
    rate: Bandwidth,
    transform: BeatTransform,
    /// Outputs produced but not yet accepted downstream.
    pending: Vec<StreamBeat>,
    busy: bool,
    resources: ResourceUsage,
    beats_processed: u64,
    bytes_processed: u64,
}

impl StagePe {
    /// Build and arm a stage between `input` and `output`.
    pub fn start(
        name: impl Into<String>,
        en: &mut Engine,
        input: Rc<RefCell<AxisChannel>>,
        output: Rc<RefCell<AxisChannel>>,
        rate: Bandwidth,
        resources: ResourceUsage,
        transform: BeatTransform,
    ) -> Rc<RefCell<StagePe>> {
        let pe = Rc::new(RefCell::new(StagePe {
            name: name.into(),
            input: input.clone(),
            output: output.clone(),
            rate,
            transform,
            pending: Vec::new(),
            busy: false,
            resources,
            beats_processed: 0,
            bytes_processed: 0,
        }));
        let p1 = pe.clone();
        input
            .borrow_mut()
            .set_data_hook(move |en| StagePe::pump(&p1, en));
        let p2 = pe.clone();
        output
            .borrow_mut()
            .set_space_hook(move |en| StagePe::pump(&p2, en));
        StagePe::pump(&pe, en);
        pe
    }

    /// Stage name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Declared resource usage.
    pub fn resources(&self) -> ResourceUsage {
        self.resources
    }

    /// Input beats fully processed.
    pub fn beats_processed(&self) -> u64 {
        self.beats_processed
    }

    /// Input bytes fully processed.
    pub fn bytes_processed(&self) -> u64 {
        self.bytes_processed
    }

    /// Advance the stage: flush pending outputs, then start the next beat.
    pub fn pump(rc: &Rc<RefCell<StagePe>>, en: &mut Engine) {
        // Flush pending outputs first (they block the pipeline).
        {
            let output = rc.borrow().output.clone();
            loop {
                let next = {
                    let mut p = rc.borrow_mut();
                    if p.pending.is_empty() {
                        break;
                    }
                    p.pending.remove(0)
                };
                if !axis::push(&output, en, next.clone()) {
                    // Put it back; the output space hook re-pumps.
                    rc.borrow_mut().pending.insert(0, next);
                    return;
                }
            }
        }
        // Start processing the next input beat if idle.
        let (input, beat) = {
            let p = rc.borrow();
            if p.busy {
                return;
            }
            let input = p.input.clone();
            drop(p);
            let beat = match axis::pop(&input, en) {
                Some(b) => b,
                None => return,
            };
            rc.borrow_mut().busy = true;
            (input, beat)
        };
        let _ = input;
        let dt = rc.borrow().rate.time_for(beat.len() as u64);
        let rc2 = rc.clone();
        en.schedule_in(dt, move |en| {
            {
                let mut p = rc2.borrow_mut();
                p.busy = false;
                p.beats_processed += 1;
                p.bytes_processed += beat.len() as u64;
                let outs = (p.transform)(beat);
                p.pending.extend(outs);
            }
            StagePe::pump(&rc2, en);
        });
    }
}

/// Convenience: drive a channel from a byte buffer, chunked into beats of
/// `chunk` bytes, TLAST on the final beat. Returns the beats pushed (the
/// caller re-kicks on the space hook if it returns less than the total).
/// The buffer is shared once; the per-chunk beats are zero-copy windows.
pub fn feed_all(
    ch: &Rc<RefCell<AxisChannel>>,
    en: &mut Engine,
    data: impl Into<snacc_sim::Payload>,
    chunk: usize,
) -> bool {
    let data = data.into();
    let n = data.len();
    let mut off = 0;
    while off < n {
        let end = (off + chunk).min(n);
        let beat = StreamBeat {
            data: data.slice(off..end),
            last: end == n,
        };
        if !axis::push(ch, en, beat) {
            return false;
        }
        off = end;
    }
    true
}

/// Convenience: drain a channel into a byte vector until a TLAST beat.
/// Returns `None` if a complete transfer isn't available yet.
pub fn collect_transfer(ch: &Rc<RefCell<AxisChannel>>, en: &mut Engine) -> Option<Vec<u8>> {
    if !ch.borrow().has_complete_transfer() {
        return None;
    }
    let mut out = Vec::new();
    loop {
        let beat = axis::pop(ch, en).expect("transfer checked complete");
        out.extend_from_slice(&beat.data);
        if beat.last {
            return Some(out);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use snacc_sim::SimTime;

    #[test]
    fn transform_applies_and_times() {
        let mut en = Engine::new();
        let a = AxisChannel::new("in", 1 << 20);
        let b = AxisChannel::new("out", 1 << 20);
        // Invert every byte at 1 GB/s.
        let _pe = StagePe::start(
            "inv",
            &mut en,
            a.clone(),
            b.clone(),
            Bandwidth::gb_per_s(1.0),
            ResourceUsage::default(),
            Box::new(|beat| {
                let data: Vec<u8> = beat.data.iter().map(|x| !x).collect();
                vec![StreamBeat {
                    data: data.into(),
                    last: beat.last,
                }]
            }),
        );
        feed_all(&a, &mut en, [0x0f; 1000], 256);
        let end = en.run();
        let got = collect_transfer(&b, &mut en).expect("complete transfer");
        assert_eq!(got, vec![0xf0; 1000]);
        // 1000 B at 1 GB/s = 1 µs.
        assert_eq!(end.since(SimTime::ZERO).as_ns(), 1000);
    }

    #[test]
    fn backpressure_stalls_upstream() {
        let mut en = Engine::new();
        let a = AxisChannel::new("in", 1 << 20);
        let b = AxisChannel::new("out", 512); // tiny downstream buffer
        let _pe = StagePe::start(
            "copy",
            &mut en,
            a.clone(),
            b.clone(),
            Bandwidth::gb_per_s(100.0),
            ResourceUsage::default(),
            Box::new(|beat| vec![beat]),
        );
        feed_all(&a, &mut en, [7u8; 4096], 256);
        en.run();
        // Downstream is full; the PE must be stalled with input remaining.
        assert!(b.borrow().occupancy() <= 512);
        assert!(a.borrow().occupancy() > 0, "input should still hold beats");
        // Drain downstream; pipeline resumes.
        let mut total = 0;
        while total < 4096 {
            if let Some(beat) = axis::pop(&b, &mut en) {
                total += beat.len();
                en.run();
            } else {
                break;
            }
        }
        assert_eq!(total, 4096);
        assert!(a.borrow().is_empty());
    }

    #[test]
    fn fan_out_beats() {
        // One input beat → two output beats (e.g. header + payload).
        let mut en = Engine::new();
        let a = AxisChannel::new("in", 1 << 20);
        let b = AxisChannel::new("out", 1 << 20);
        let _pe = StagePe::start(
            "split",
            &mut en,
            a.clone(),
            b.clone(),
            Bandwidth::gb_per_s(10.0),
            ResourceUsage::default(),
            Box::new(|beat| {
                let (head, tail) = beat.data.split_at(beat.data.len() / 2);
                vec![
                    StreamBeat::mid(head),
                    StreamBeat {
                        data: tail,
                        last: beat.last,
                    },
                ]
            }),
        );
        feed_all(&a, &mut en, [1u8; 100], 100);
        en.run();
        assert_eq!(b.borrow().pending(), 2);
        let out = collect_transfer(&b, &mut en).unwrap();
        assert_eq!(out, vec![1u8; 100]);
    }

    #[test]
    fn throughput_counts() {
        let mut en = Engine::new();
        let a = AxisChannel::new("in", 1 << 20);
        let b = AxisChannel::new("out", 1 << 20);
        let pe = StagePe::start(
            "id",
            &mut en,
            a.clone(),
            b.clone(),
            Bandwidth::gb_per_s(1.0),
            ResourceUsage::default(),
            Box::new(|beat| vec![beat]),
        );
        feed_all(&a, &mut en, [0u8; 2048], 512);
        en.run();
        assert_eq!(pe.borrow().beats_processed(), 4);
        assert_eq!(pe.borrow().bytes_processed(), 2048);
    }
}
