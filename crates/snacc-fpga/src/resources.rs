//! FPGA resource accounting.
//!
//! Table 1 of the paper reports LUT/FF/BRAM/URAM of the three NVMe
//! Streamer variants on an Alveo U280. We model resource usage
//! *compositionally*: every block a variant instantiates (stream
//! interfaces, queue logic, PRP unit, AXI masters, burst combiners,
//! register files, buffers) carries a cost, and a variant's total is the
//! sum of its blocks. The block costs are calibrated against Table 1 and
//! documented next to each constructor.

use std::fmt;
use std::ops::{Add, AddAssign};

/// Resource usage of one block or design.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct ResourceUsage {
    /// Look-up tables.
    pub lut: u64,
    /// Flip-flops.
    pub ff: u64,
    /// Block RAM, in RAMB36 equivalents (halves appear as .5).
    pub bram36: f64,
    /// UltraRAM bytes.
    pub uram_bytes: u64,
    /// Off-chip DRAM bytes reserved.
    pub dram_bytes: u64,
    /// Pinned host-DRAM bytes reserved.
    pub host_dram_bytes: u64,
}

impl Add for ResourceUsage {
    type Output = ResourceUsage;
    fn add(self, o: ResourceUsage) -> ResourceUsage {
        ResourceUsage {
            lut: self.lut + o.lut,
            ff: self.ff + o.ff,
            bram36: self.bram36 + o.bram36,
            uram_bytes: self.uram_bytes + o.uram_bytes,
            dram_bytes: self.dram_bytes + o.dram_bytes,
            host_dram_bytes: self.host_dram_bytes + o.host_dram_bytes,
        }
    }
}

impl AddAssign for ResourceUsage {
    fn add_assign(&mut self, o: ResourceUsage) {
        *self = *self + o;
    }
}

impl fmt::Display for ResourceUsage {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "LUT {} / FF {} / BRAM {} / URAM {} B",
            self.lut, self.ff, self.bram36, self.uram_bytes
        )
    }
}

/// Device capacity (for utilisation percentages).
#[derive(Clone, Copy, Debug)]
pub struct DeviceResources {
    /// Device name.
    pub name: &'static str,
    /// Total LUTs.
    pub lut: u64,
    /// Total flip-flops.
    pub ff: u64,
    /// Total RAMB36 blocks.
    pub bram36: u64,
    /// Total URAM bytes.
    pub uram_bytes: u64,
}

impl DeviceResources {
    /// AMD Alveo U280 (XCU280).
    pub fn alveo_u280() -> Self {
        DeviceResources {
            name: "Alveo U280",
            lut: 1_303_680,
            ff: 2_607_360,
            bram36: 2_016,
            // 960 URAM blocks. The paper reports 4 MB as 13.3 % of URAM,
            // i.e. it counts 128 blocks (the streamer's 8 MB decode space
            // maps 4 MB of storage with ECC-padded depth).
            uram_bytes: 960 * 32 * 1024,
        }
    }

    /// LUT utilisation percentage for a usage.
    pub fn lut_pct(&self, u: &ResourceUsage) -> f64 {
        u.lut as f64 * 100.0 / self.lut as f64
    }

    /// FF utilisation percentage.
    pub fn ff_pct(&self, u: &ResourceUsage) -> f64 {
        u.ff as f64 * 100.0 / self.ff as f64
    }

    /// BRAM utilisation percentage.
    pub fn bram_pct(&self, u: &ResourceUsage) -> f64 {
        u.bram36 * 100.0 / self.bram36 as f64
    }

    /// URAM utilisation percentage.
    pub fn uram_pct(&self, u: &ResourceUsage) -> f64 {
        u.uram_bytes as f64 * 100.0 / self.uram_bytes as f64
    }
}

/// Costed building blocks. Calibration: summed per-variant, these land on
/// the paper's Table 1 within a few percent.
pub mod blocks {
    use super::ResourceUsage;

    /// One AXI4-Stream slave/master endpoint with its handshake/skid logic.
    pub fn axis_endpoint() -> ResourceUsage {
        ResourceUsage {
            lut: 310,
            ff: 420,
            ..Default::default()
        }
    }

    /// NVMe queue logic: SQ FIFO + doorbell + completion tracking.
    pub fn nvme_queue_logic(entries: u64) -> ResourceUsage {
        ResourceUsage {
            lut: 1650 + entries * 6,
            ff: 1900 + entries * 10,
            ..Default::default()
        }
    }

    /// In-order reorder buffer for `entries` outstanding commands.
    pub fn reorder_buffer(entries: u64) -> ResourceUsage {
        ResourceUsage {
            lut: 700 + entries * 9,
            ff: 850 + entries * 14,
            ..Default::default()
        }
    }

    /// On-the-fly PRP address calculator (URAM flavour: pure arithmetic,
    /// paper Fig 2).
    pub fn prp_calc_uram() -> ResourceUsage {
        ResourceUsage {
            lut: 520,
            ff: 610,
            ..Default::default()
        }
    }

    /// On-the-fly PRP calculator with a command-indexed register file
    /// (DRAM flavour, paper Fig 3).
    pub fn prp_calc_regfile(entries: u64) -> ResourceUsage {
        ResourceUsage {
            lut: 900 + entries * 22,
            ff: 1100 + entries * 30,
            ..Default::default()
        }
    }

    /// Command splitter (1 MB segmentation) + length bookkeeping.
    pub fn splitter() -> ResourceUsage {
        ResourceUsage {
            lut: 780,
            ff: 860,
            ..Default::default()
        }
    }

    /// URAM data buffer of `bytes` (stores data in URAM blocks).
    pub fn uram_buffer(bytes: u64) -> ResourceUsage {
        ResourceUsage {
            lut: 450,
            ff: 520,
            uram_bytes: bytes,
            ..Default::default()
        }
    }

    /// AXI4 full master interface towards a memory controller or PCIe
    /// bridge (address channels, data movers, response tracking).
    pub fn axi4_master() -> ResourceUsage {
        ResourceUsage {
            lut: 2100,
            ff: 2500,
            bram36: 4.0,
            ..Default::default()
        }
    }

    /// Burst combiner: joins NVMe-controller beats into 4 KiB DRAM bursts
    /// (paper Sec 4.3), with BRAM staging FIFOs.
    pub fn burst_combiner() -> ResourceUsage {
        ResourceUsage {
            lut: 1900,
            ff: 2200,
            bram36: 6.5,
            ..Default::default()
        }
    }

    /// Data-path BRAM FIFO staging (per direction).
    pub fn staging_fifo() -> ResourceUsage {
        ResourceUsage {
            lut: 350,
            ff: 400,
            bram36: 4.0,
            ..Default::default()
        }
    }

    /// Host segment-table walker for stitched 4 MB pinned buffers
    /// (paper Sec 4.3, host-DRAM variant).
    pub fn segment_table(entries: u64) -> ResourceUsage {
        ResourceUsage {
            lut: 400 + entries * 12,
            ff: 450 + entries * 16,
            ..Default::default()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn addition_composes() {
        let a = ResourceUsage {
            lut: 100,
            ff: 200,
            bram36: 1.5,
            ..Default::default()
        };
        let b = ResourceUsage {
            lut: 50,
            ff: 25,
            bram36: 0.5,
            uram_bytes: 4096,
            ..Default::default()
        };
        let c = a + b;
        assert_eq!(c.lut, 150);
        assert_eq!(c.ff, 225);
        assert!((c.bram36 - 2.0).abs() < 1e-12);
        assert_eq!(c.uram_bytes, 4096);
    }

    #[test]
    fn u280_percentages() {
        let dev = DeviceResources::alveo_u280();
        let u = ResourceUsage {
            lut: 13_036,
            ff: 26_073,
            bram36: 20.16,
            uram_bytes: dev.uram_bytes / 10,
            ..Default::default()
        };
        assert!((dev.lut_pct(&u) - 1.0).abs() < 0.01);
        assert!((dev.ff_pct(&u) - 1.0).abs() < 0.01);
        assert!((dev.bram_pct(&u) - 1.0).abs() < 0.01);
        assert!((dev.uram_pct(&u) - 10.0).abs() < 0.01);
    }

    #[test]
    fn blocks_scale_with_parameters() {
        let small = blocks::reorder_buffer(16);
        let big = blocks::reorder_buffer(64);
        assert!(big.lut > small.lut);
        assert!(big.ff > small.ff);
        let rf = blocks::prp_calc_regfile(64);
        assert!(rf.lut > blocks::prp_calc_uram().lut);
    }
}
