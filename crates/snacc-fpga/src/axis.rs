//! AXI4-Stream channels.
//!
//! SNAcc abstracts NVMe access behind standard AXI4-Stream interfaces
//! (paper Sec 4.1): commands and data are beats on ready/valid channels,
//! with TLAST delimiting transfers. We model a channel as a bounded queue
//! of byte-chunk beats: `ready` is "the queue has space", `valid` is "the
//! queue has data", and hooks wake producers/consumers on transitions —
//! the same event discipline an RTL handshake creates, at chunk rather
//! than cycle granularity.

use snacc_sim::{Engine, Payload};
use snacc_trace as trace;
use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

/// One stream beat: a chunk of bytes plus the TLAST marker. The bytes
/// are a shared [`Payload`] window, so beats clone/split without copying.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct StreamBeat {
    /// Payload bytes of this beat.
    pub data: Payload,
    /// TLAST: final beat of the current transfer.
    pub last: bool,
}

impl StreamBeat {
    /// A beat with TLAST clear.
    pub fn mid(data: impl Into<Payload>) -> Self {
        StreamBeat {
            data: data.into(),
            last: false,
        }
    }

    /// A beat with TLAST set.
    pub fn last(data: impl Into<Payload>) -> Self {
        StreamBeat {
            data: data.into(),
            last: true,
        }
    }

    /// Beat length in bytes.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Is the beat empty? (Zero-length TLAST-only beats are allowed.)
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }
}

type Hook = Rc<RefCell<dyn FnMut(&mut Engine)>>;

/// A bounded AXI4-Stream channel.
pub struct AxisChannel {
    name: String,
    capacity_bytes: u64,
    queue: VecDeque<StreamBeat>,
    queued_bytes: u64,
    data_hook: Option<Hook>,
    space_hook: Option<Hook>,
    total_beats: u64,
    total_bytes: u64,
    /// A producer was refused for lack of space and no pop has freed
    /// space since — the channel is exerting backpressure. Tracked so the
    /// tracer records stall *transitions* (two events per episode) rather
    /// than per-beat noise.
    stalled: bool,
}

impl AxisChannel {
    /// Create a channel holding up to `capacity_bytes` of queued beats.
    pub fn new(name: impl Into<String>, capacity_bytes: u64) -> Rc<RefCell<AxisChannel>> {
        assert!(capacity_bytes > 0);
        Rc::new(RefCell::new(AxisChannel {
            name: name.into(),
            capacity_bytes,
            queue: VecDeque::new(),
            queued_bytes: 0,
            data_hook: None,
            space_hook: None,
            total_beats: 0,
            total_bytes: 0,
            stalled: false,
        }))
    }

    /// Channel name (for traces).
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Bytes currently queued.
    pub fn occupancy(&self) -> u64 {
        self.queued_bytes
    }

    /// Beats currently queued.
    pub fn pending(&self) -> usize {
        self.queue.len()
    }

    /// Would a beat of `len` bytes fit right now? Zero-length beats always
    /// fit.
    pub fn has_space(&self, len: usize) -> bool {
        self.queued_bytes + len as u64 <= self.capacity_bytes
    }

    /// Is the channel empty?
    pub fn is_empty(&self) -> bool {
        self.queue.is_empty()
    }

    /// Total beats ever pushed.
    pub fn total_beats(&self) -> u64 {
        self.total_beats
    }

    /// Total bytes ever pushed.
    pub fn total_bytes(&self) -> u64 {
        self.total_bytes
    }

    /// Is at least one complete transfer (ending in TLAST) queued?
    pub fn has_complete_transfer(&self) -> bool {
        self.queue.iter().any(|b| b.last)
    }

    /// Install the data-available hook (consumer wake-up).
    pub fn set_data_hook(&mut self, hook: impl FnMut(&mut Engine) + 'static) {
        self.data_hook = Some(Rc::new(RefCell::new(hook)));
    }

    /// Install the space-available hook (producer wake-up).
    pub fn set_space_hook(&mut self, hook: impl FnMut(&mut Engine) + 'static) {
        self.space_hook = Some(Rc::new(RefCell::new(hook)));
    }
}

/// Push a beat; returns `false` (and leaves the beat with the caller) when
/// the channel is full — retry on the space hook.
pub fn push(rc: &Rc<RefCell<AxisChannel>>, en: &mut Engine, beat: StreamBeat) -> bool {
    let hook = {
        let mut c = rc.borrow_mut();
        if !c.has_space(beat.len()) {
            if !c.stalled {
                c.stalled = true;
                if trace::enabled() {
                    trace::instant(
                        en,
                        &format!("axis.{}", c.name),
                        "axis.stall",
                        &[
                            ("occupancy", c.queued_bytes),
                            ("refused_bytes", beat.len() as u64),
                        ],
                    );
                }
            }
            return false;
        }
        c.queued_bytes += beat.len() as u64;
        c.total_beats += 1;
        c.total_bytes += beat.len() as u64;
        c.queue.push_back(beat);
        c.data_hook.clone()
    };
    if let Some(h) = hook {
        (h.borrow_mut())(en);
    }
    true
}

/// Pop the next beat, waking the producer if space freed up.
pub fn pop(rc: &Rc<RefCell<AxisChannel>>, en: &mut Engine) -> Option<StreamBeat> {
    let (beat, hook) = {
        let mut c = rc.borrow_mut();
        let beat = c.queue.pop_front()?;
        c.queued_bytes -= beat.len() as u64;
        if c.stalled {
            c.stalled = false;
            if trace::enabled() {
                trace::instant(
                    en,
                    &format!("axis.{}", c.name),
                    "axis.resume",
                    &[("occupancy", c.queued_bytes)],
                );
            }
        }
        (beat, c.space_hook.clone())
    };
    if let Some(h) = hook {
        (h.borrow_mut())(en);
    }
    Some(beat)
}

/// Peek at the head beat's length and TLAST without consuming it.
pub fn peek(rc: &Rc<RefCell<AxisChannel>>) -> Option<(usize, bool)> {
    let c = rc.borrow();
    c.queue.front().map(|b| (b.len(), b.last))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fifo_order_and_tlast() {
        let mut en = Engine::new();
        let ch = AxisChannel::new("t", 1 << 20);
        assert!(push(&ch, &mut en, StreamBeat::mid(vec![1, 2])));
        assert!(push(&ch, &mut en, StreamBeat::last(vec![3])));
        assert_eq!(peek(&ch), Some((2, false)));
        let a = pop(&ch, &mut en).unwrap();
        assert_eq!(a.data, vec![1, 2]);
        assert!(!a.last);
        let b = pop(&ch, &mut en).unwrap();
        assert!(b.last);
        assert!(pop(&ch, &mut en).is_none());
    }

    #[test]
    fn capacity_enforced() {
        let mut en = Engine::new();
        let ch = AxisChannel::new("t", 10);
        assert!(push(&ch, &mut en, StreamBeat::mid(vec![0; 6])));
        assert!(!push(&ch, &mut en, StreamBeat::mid(vec![0; 6])));
        assert!(push(&ch, &mut en, StreamBeat::mid(vec![0; 4])));
        assert_eq!(ch.borrow().occupancy(), 10);
    }

    #[test]
    fn zero_length_tlast_beat_allowed() {
        let mut en = Engine::new();
        let ch = AxisChannel::new("t", 4);
        assert!(push(&ch, &mut en, StreamBeat::mid(vec![0; 4])));
        // Channel byte-full, but a 0-byte TLAST beat still fits.
        assert!(push(&ch, &mut en, StreamBeat::last(vec![])));
        assert_eq!(ch.borrow().pending(), 2);
    }

    #[test]
    fn hooks_fire() {
        let mut en = Engine::new();
        let ch = AxisChannel::new("t", 8);
        let data_hits = Rc::new(RefCell::new(0u32));
        let space_hits = Rc::new(RefCell::new(0u32));
        let d = data_hits.clone();
        let s = space_hits.clone();
        ch.borrow_mut().set_data_hook(move |_| *d.borrow_mut() += 1);
        ch.borrow_mut()
            .set_space_hook(move |_| *s.borrow_mut() += 1);
        push(&ch, &mut en, StreamBeat::mid(vec![0; 4]));
        assert_eq!(*data_hits.borrow(), 1);
        pop(&ch, &mut en);
        assert_eq!(*space_hits.borrow(), 1);
    }

    #[test]
    fn counters_accumulate() {
        let mut en = Engine::new();
        let ch = AxisChannel::new("t", 1 << 10);
        for _ in 0..5 {
            push(&ch, &mut en, StreamBeat::mid(vec![0; 100]));
        }
        assert_eq!(ch.borrow().total_beats(), 5);
        assert_eq!(ch.borrow().total_bytes(), 500);
    }
}
