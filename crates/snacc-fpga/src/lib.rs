//! # snacc-fpga — FPGA platform model (TaPaSCo-style shell)
//!
//! SNAcc ships as a plugin to the TaPaSCo open-source toolflow (paper
//! Sec 2.1 / 4.5). This crate models the platform side:
//!
//! * [`axis`] — AXI4-Stream channels: bounded ready/valid byte-beat
//!   queues with TLAST, the lingua franca between user PEs and the SNAcc
//!   streamer (Sec 4.1).
//! * [`pe`] — processing elements: a rate-modelled streaming stage
//!   (`StagePe`) that really transforms the bytes flowing through it, used
//!   to build the case-study pipeline.
//! * [`resources`] — FPGA resource accounting (LUT/FF/BRAM/URAM) with
//!   Alveo U280 device totals; the Table 1 reproduction composes streamer
//!   variants out of costed sub-blocks.
//! * [`tapasco`] — the shell: PCIe endpoint, BAR window allocation (one
//!   64 MB BAR plus an optional second BAR, Sec 4.5), PE registry, a
//!   plugin mechanism, and the host-side runtime used for initialisation
//!   (Sec 4.6).

pub mod axis;
pub mod pe;
pub mod resources;
pub mod tapasco;

pub use axis::{AxisChannel, StreamBeat};
pub use pe::StagePe;
pub use resources::{DeviceResources, ResourceUsage};
pub use tapasco::{ShellPlugin, TapascoShell};
