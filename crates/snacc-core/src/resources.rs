//! Per-variant resource composition (paper Table 1).
//!
//! Each streamer variant is composed from the costed blocks in
//! `snacc_fpga::resources::blocks`; the totals approximate Table 1 of the
//! paper (the `table1` benchmark prints model vs paper side by side).

use crate::config::{StreamerConfig, StreamerVariant};
use snacc_fpga::resources::{blocks, ResourceUsage};

/// Control/status registers + doorbell write master shared by all
/// variants.
fn control_and_doorbell() -> ResourceUsage {
    ResourceUsage {
        lut: 960,
        ff: 432,
        ..Default::default()
    }
}

/// Resource usage of a streamer configuration.
pub fn streamer_resources(cfg: &StreamerConfig) -> ResourceUsage {
    let qd = cfg.queue_depth as u64;
    // Common core: 4 user stream endpoints, queue logic, reorder buffer,
    // splitter, control.
    let mut total = ResourceUsage::default();
    for _ in 0..4 {
        total += blocks::axis_endpoint();
    }
    total += blocks::nvme_queue_logic(cfg.sq_entries as u64);
    total += blocks::reorder_buffer(qd);
    total += blocks::splitter();
    total += control_and_doorbell();
    match cfg.variant {
        StreamerVariant::Uram => {
            total += blocks::prp_calc_uram();
            total += blocks::uram_buffer(cfg.read_buffer_bytes());
        }
        StreamerVariant::OnboardDram => {
            total += blocks::prp_calc_regfile(qd);
            // Two AXI masters (data in, NVMe-facing out) + burst combining
            // + staging FIFOs, plus the reserved DRAM itself.
            total += blocks::axi4_master();
            total += blocks::axi4_master();
            total += blocks::burst_combiner();
            total += blocks::staging_fifo();
            total += blocks::staging_fifo();
            total += ResourceUsage {
                dram_bytes: cfg.read_buffer_bytes() + cfg.write_buffer_bytes(),
                ..Default::default()
            };
        }
        StreamerVariant::HostDram => {
            total += blocks::prp_calc_regfile(qd);
            total += blocks::segment_table(32);
            total += blocks::axi4_master();
            total += blocks::staging_fifo();
            total += blocks::staging_fifo();
            total += ResourceUsage {
                host_dram_bytes: cfg.read_buffer_bytes() + cfg.write_buffer_bytes(),
                ..Default::default()
            };
        }
    }
    total
}

/// Paper Table 1 reference values for comparison printing.
pub fn paper_table1(variant: StreamerVariant) -> ResourceUsage {
    match variant {
        StreamerVariant::Uram => ResourceUsage {
            lut: 7260,
            ff: 8388,
            bram36: 0.0,
            uram_bytes: 4 << 20,
            ..Default::default()
        },
        StreamerVariant::OnboardDram => ResourceUsage {
            lut: 14063,
            ff: 16487,
            bram36: 24.0,
            dram_bytes: 128 << 20,
            ..Default::default()
        },
        StreamerVariant::HostDram => ResourceUsage {
            lut: 12228,
            ff: 13373,
            bram36: 17.5,
            host_dram_bytes: 128 << 20,
            ..Default::default()
        },
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::StreamerConfig;

    fn rel_err(model: f64, paper: f64) -> f64 {
        (model - paper).abs() / paper
    }

    #[test]
    fn uram_variant_close_to_table1() {
        let m = streamer_resources(&StreamerConfig::snacc(StreamerVariant::Uram));
        let p = paper_table1(StreamerVariant::Uram);
        assert!(rel_err(m.lut as f64, p.lut as f64) < 0.15, "{m:?}");
        assert!(rel_err(m.ff as f64, p.ff as f64) < 0.15, "{m:?}");
        assert_eq!(m.uram_bytes, 4 << 20);
        assert_eq!(m.bram36, 0.0);
    }

    #[test]
    fn dram_variants_close_to_table1() {
        for v in [StreamerVariant::OnboardDram, StreamerVariant::HostDram] {
            let m = streamer_resources(&StreamerConfig::snacc(v));
            let p = paper_table1(v);
            assert!(rel_err(m.lut as f64, p.lut as f64) < 0.15, "{v:?} {m:?}");
            assert!(rel_err(m.ff as f64, p.ff as f64) < 0.15, "{v:?} {m:?}");
            assert!(m.bram36 > 0.0);
            assert_eq!(m.uram_bytes, 0);
        }
    }

    #[test]
    fn ordering_matches_paper() {
        // URAM variant is the leanest in LUT/FF; on-board DRAM the
        // heaviest (Table 1 discussion).
        let u = streamer_resources(&StreamerConfig::snacc(StreamerVariant::Uram));
        let d = streamer_resources(&StreamerConfig::snacc(StreamerVariant::OnboardDram));
        let h = streamer_resources(&StreamerConfig::snacc(StreamerVariant::HostDram));
        assert!(u.lut < h.lut && h.lut < d.lut);
        assert!(u.ff < h.ff && h.ff < d.ff);
    }

    #[test]
    fn dram_reservation_reported() {
        let d = streamer_resources(&StreamerConfig::snacc(StreamerVariant::OnboardDram));
        assert_eq!(d.dram_bytes, 128 << 20);
        let h = streamer_resources(&StreamerConfig::snacc(StreamerVariant::HostDram));
        assert_eq!(h.host_dram_bytes, 128 << 20);
    }
}
