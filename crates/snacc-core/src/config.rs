//! Streamer configuration.

use snacc_sim::SimDuration;

/// Where the NVMe payload data buffer lives (paper Sec 4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamerVariant {
    /// 4 MiB of on-die UltraRAM, shared between reads and writes.
    Uram,
    /// 64 MiB read + 64 MiB write buffers in FPGA on-board DRAM.
    OnboardDram,
    /// 64 MiB read + 64 MiB write buffers in pinned host DRAM.
    HostDram,
}

impl StreamerVariant {
    /// Short label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            StreamerVariant::Uram => "URAM",
            StreamerVariant::OnboardDram => "On-board DRAM",
            StreamerVariant::HostDram => "Host DRAM",
        }
    }

    /// All three variants, in the paper's presentation order.
    pub fn all() -> [StreamerVariant; 3] {
        [
            StreamerVariant::Uram,
            StreamerVariant::OnboardDram,
            StreamerVariant::HostDram,
        ]
    }
}

/// Command retirement policy (paper Sec 4.2 vs the Sec 7 extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetirementMode {
    /// The paper's shipped design: completions may arrive out of order,
    /// but commands retire (and new commands issue) strictly in order.
    InOrder,
    /// Sec 7 extension: issue slots are recycled as soon as a command
    /// completes; data is still delivered to the PE in order.
    OutOfOrder,
}

/// Full streamer configuration.
#[derive(Clone, Debug)]
pub struct StreamerConfig {
    /// Buffer placement variant.
    pub variant: StreamerVariant,
    /// Maximum commands in flight (the paper uses 64).
    pub queue_depth: u16,
    /// Submission-queue ring entries (≥ queue_depth; larger helps the
    /// out-of-order extension).
    pub sq_entries: u16,
    /// Commands are split at this boundary (the paper uses 1 MB; Sec 4.2).
    pub max_cmd_bytes: u64,
    /// Retirement policy.
    pub retirement: RetirementMode,
    /// Chunk size for streaming between buffer memory and the user PE.
    pub stream_chunk: u64,
    /// Per-command issue pipeline latency (at the 300 MHz shell clock).
    pub cmd_issue_latency: SimDuration,
    /// Completion-processing latency per CQE.
    pub completion_latency: SimDuration,
}

impl StreamerConfig {
    /// The paper's configuration for a given variant.
    pub fn snacc(variant: StreamerVariant) -> Self {
        StreamerConfig {
            variant,
            queue_depth: 64,
            sq_entries: 64,
            max_cmd_bytes: 1 << 20,
            retirement: RetirementMode::InOrder,
            stream_chunk: 64 << 10,
            cmd_issue_latency: SimDuration::from_ns(100),
            completion_latency: SimDuration::from_ns(50),
        }
    }

    /// Sec 7 out-of-order extension on top of a variant.
    pub fn snacc_ooo(variant: StreamerVariant) -> Self {
        StreamerConfig {
            retirement: RetirementMode::OutOfOrder,
            sq_entries: 256,
            ..Self::snacc(variant)
        }
    }

    /// Data-buffer capacity for reads (shared pool size for URAM).
    pub fn read_buffer_bytes(&self) -> u64 {
        match self.variant {
            StreamerVariant::Uram => 4 << 20,
            StreamerVariant::OnboardDram | StreamerVariant::HostDram => 64 << 20,
        }
    }

    /// Data-buffer capacity for writes (0 for URAM: shared with reads).
    pub fn write_buffer_bytes(&self) -> u64 {
        match self.variant {
            StreamerVariant::Uram => 0,
            StreamerVariant::OnboardDram | StreamerVariant::HostDram => 64 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = StreamerConfig::snacc(StreamerVariant::Uram);
        assert_eq!(c.queue_depth, 64);
        assert_eq!(c.max_cmd_bytes, 1 << 20);
        assert_eq!(c.retirement, RetirementMode::InOrder);
        assert_eq!(c.read_buffer_bytes(), 4 << 20);
        assert_eq!(c.write_buffer_bytes(), 0);
    }

    #[test]
    fn dram_variants_have_split_buffers() {
        for v in [StreamerVariant::OnboardDram, StreamerVariant::HostDram] {
            let c = StreamerConfig::snacc(v);
            assert_eq!(c.read_buffer_bytes(), 64 << 20);
            assert_eq!(c.write_buffer_bytes(), 64 << 20);
        }
    }

    #[test]
    fn ooo_extension_deepens_sq() {
        let c = StreamerConfig::snacc_ooo(StreamerVariant::Uram);
        assert_eq!(c.retirement, RetirementMode::OutOfOrder);
        assert!(c.sq_entries > c.queue_depth);
    }

    #[test]
    fn labels() {
        assert_eq!(StreamerVariant::Uram.label(), "URAM");
        assert_eq!(StreamerVariant::all().len(), 3);
    }
}
