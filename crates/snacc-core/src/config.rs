//! Streamer configuration.

use snacc_sim::SimDuration;

/// Where the NVMe payload data buffer lives (paper Sec 4.3).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum StreamerVariant {
    /// 4 MiB of on-die UltraRAM, shared between reads and writes.
    Uram,
    /// 64 MiB read + 64 MiB write buffers in FPGA on-board DRAM.
    OnboardDram,
    /// 64 MiB read + 64 MiB write buffers in pinned host DRAM.
    HostDram,
}

impl StreamerVariant {
    /// Short label used by the benchmark harness.
    pub fn label(self) -> &'static str {
        match self {
            StreamerVariant::Uram => "URAM",
            StreamerVariant::OnboardDram => "On-board DRAM",
            StreamerVariant::HostDram => "Host DRAM",
        }
    }

    /// All three variants, in the paper's presentation order.
    pub fn all() -> [StreamerVariant; 3] {
        [
            StreamerVariant::Uram,
            StreamerVariant::OnboardDram,
            StreamerVariant::HostDram,
        ]
    }
}

/// Command retirement policy (paper Sec 4.2 vs the Sec 7 extension).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum RetirementMode {
    /// The paper's shipped design: completions may arrive out of order,
    /// but commands retire (and new commands issue) strictly in order.
    InOrder,
    /// Sec 7 extension: issue slots are recycled as soon as a command
    /// completes; data is still delivered to the PE in order.
    OutOfOrder,
}

/// Bounded-retry policy for commands that complete with a *transient*
/// error status (see `snacc_nvme::spec::Status::is_transient`).
///
/// Disabled by default ([`RetryPolicy::disabled`]): a failed command is
/// then retired with its error status exactly as before this policy
/// existed, so happy-path runs are event-for-event identical. Fault
/// campaigns enable it to exercise the recovery path.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Re-issue a transiently failed command at most this many times
    /// before giving up (0 = retries off).
    pub max_retries: u32,
    /// Base backoff before the first retry; attempt `n` waits
    /// `backoff << n` of *simulated* time (exponential, deterministic).
    pub backoff: SimDuration,
    /// Declare a command lost if no CQE arrives within this window and
    /// retry it. `None` (the default) schedules no timeout events at all
    /// — pending timers would otherwise stretch `Engine::run` end times
    /// and skew bandwidth figures.
    pub cmd_timeout: Option<SimDuration>,
}

impl RetryPolicy {
    /// No retries, no timeouts — the pre-fault-injection behaviour.
    pub fn disabled() -> Self {
        RetryPolicy {
            max_retries: 0,
            backoff: SimDuration::from_ns(0),
            cmd_timeout: None,
        }
    }

    /// A sensible campaign default: 3 attempts, 10 µs base backoff.
    pub fn standard() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff: SimDuration::from_us(10),
            cmd_timeout: None,
        }
    }

    /// Is any retry behaviour enabled?
    pub fn enabled(&self) -> bool {
        self.max_retries > 0 || self.cmd_timeout.is_some()
    }

    /// Backoff before retry attempt `attempt` (1-based): `backoff <<
    /// (attempt - 1)`, with the doubling capped at 2^20× so pathological
    /// retry counts cannot overflow the picosecond clock.
    pub fn backoff_for(&self, attempt: u32) -> SimDuration {
        self.backoff * (1u64 << attempt.saturating_sub(1).min(20))
    }
}

/// Full streamer configuration.
#[derive(Clone, Debug)]
pub struct StreamerConfig {
    /// Buffer placement variant.
    pub variant: StreamerVariant,
    /// Maximum commands in flight (the paper uses 64).
    pub queue_depth: u16,
    /// Submission-queue ring entries (≥ queue_depth; larger helps the
    /// out-of-order extension).
    pub sq_entries: u16,
    /// Commands are split at this boundary (the paper uses 1 MB; Sec 4.2).
    pub max_cmd_bytes: u64,
    /// Retirement policy.
    pub retirement: RetirementMode,
    /// Chunk size for streaming between buffer memory and the user PE.
    pub stream_chunk: u64,
    /// Per-command issue pipeline latency (at the 300 MHz shell clock).
    pub cmd_issue_latency: SimDuration,
    /// Completion-processing latency per CQE.
    pub completion_latency: SimDuration,
    /// Retry/timeout policy for transiently failed commands (disabled by
    /// default — fault campaigns opt in).
    pub retry: RetryPolicy,
}

impl StreamerConfig {
    /// The paper's configuration for a given variant.
    pub fn snacc(variant: StreamerVariant) -> Self {
        StreamerConfig {
            variant,
            queue_depth: 64,
            sq_entries: 64,
            max_cmd_bytes: 1 << 20,
            retirement: RetirementMode::InOrder,
            stream_chunk: 64 << 10,
            cmd_issue_latency: SimDuration::from_ns(100),
            completion_latency: SimDuration::from_ns(50),
            retry: RetryPolicy::disabled(),
        }
    }

    /// Sec 7 out-of-order extension on top of a variant.
    pub fn snacc_ooo(variant: StreamerVariant) -> Self {
        StreamerConfig {
            retirement: RetirementMode::OutOfOrder,
            sq_entries: 256,
            ..Self::snacc(variant)
        }
    }

    /// Data-buffer capacity for reads (shared pool size for URAM).
    pub fn read_buffer_bytes(&self) -> u64 {
        match self.variant {
            StreamerVariant::Uram => 4 << 20,
            StreamerVariant::OnboardDram | StreamerVariant::HostDram => 64 << 20,
        }
    }

    /// Data-buffer capacity for writes (0 for URAM: shared with reads).
    pub fn write_buffer_bytes(&self) -> u64 {
        match self.variant {
            StreamerVariant::Uram => 0,
            StreamerVariant::OnboardDram | StreamerVariant::HostDram => 64 << 20,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_defaults() {
        let c = StreamerConfig::snacc(StreamerVariant::Uram);
        assert_eq!(c.queue_depth, 64);
        assert_eq!(c.max_cmd_bytes, 1 << 20);
        assert_eq!(c.retirement, RetirementMode::InOrder);
        assert_eq!(c.read_buffer_bytes(), 4 << 20);
        assert_eq!(c.write_buffer_bytes(), 0);
    }

    #[test]
    fn dram_variants_have_split_buffers() {
        for v in [StreamerVariant::OnboardDram, StreamerVariant::HostDram] {
            let c = StreamerConfig::snacc(v);
            assert_eq!(c.read_buffer_bytes(), 64 << 20);
            assert_eq!(c.write_buffer_bytes(), 64 << 20);
        }
    }

    #[test]
    fn ooo_extension_deepens_sq() {
        let c = StreamerConfig::snacc_ooo(StreamerVariant::Uram);
        assert_eq!(c.retirement, RetirementMode::OutOfOrder);
        assert!(c.sq_entries > c.queue_depth);
    }

    #[test]
    fn retry_policy_defaults_and_backoff() {
        let c = StreamerConfig::snacc(StreamerVariant::Uram);
        assert!(!c.retry.enabled(), "retries must default off");
        let p = RetryPolicy::standard();
        assert!(p.enabled());
        assert_eq!(p.backoff_for(1), SimDuration::from_us(10));
        assert_eq!(p.backoff_for(2), SimDuration::from_us(20));
        assert_eq!(p.backoff_for(3), SimDuration::from_us(40));
        // The doubling is capped, not overflowing.
        let _ = p.backoff_for(200);
    }

    #[test]
    fn labels() {
        assert_eq!(StreamerVariant::Uram.label(), "URAM");
        assert_eq!(StreamerVariant::all().len(), 3);
    }
}
