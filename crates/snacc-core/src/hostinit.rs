//! Host-side initialisation (paper Sec 4.6).
//!
//! SNAcc deliberately keeps NVMe *initialisation* on the host: it runs
//! once, is not performance-critical, and keeping the admin queue on the
//! host preserves debuggability. This driver performs the paper's
//! bring-up sequence over real simulated MMIO and admin commands:
//!
//! 1. configure the admin queue (in host memory) and enable the
//!    controller,
//! 2. Identify controller + namespace,
//! 3. create the I/O submission/completion queues **pointing into the
//!    FPGA BAR** (the streamer's SQ FIFO and CQ reorder buffer),
//! 4. program the streamer with the controller's doorbell addresses,
//! 5. allocate and install pinned host buffers (host-DRAM variant),
//! 6. grant the IOMMU permissions both directions need.
//!
//! Initialisation drives the engine to quiescence between steps — it is
//! the only active initiator at bring-up time.

use crate::config::StreamerVariant;
use crate::streamer::{NvmeStreamer, StreamerHandle};
use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::queue::{CqRing, SqRing};
use snacc_nvme::spec::{self, AdminOpcode, Cqe, Sqe, Status};
use snacc_nvme::NvmeDeviceHandle;
use snacc_pcie::{PcieFabric, HOST_NODE};
use snacc_sim::Engine;
use std::cell::RefCell;
use std::rc::Rc;

/// Driver errors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DriverError {
    /// Controller did not become ready.
    NotReady,
    /// An admin command failed.
    AdminFailed(Status),
}

/// Identify results the driver extracts.
#[derive(Debug, Clone, Copy)]
pub struct NamespaceInfo {
    /// Capacity in bytes.
    pub capacity_bytes: u64,
    /// Logical block size.
    pub lba_bytes: u64,
}

const ADMIN_QD: u16 = 32;

/// The SNAcc host driver.
pub struct SnaccHostDriver {
    fabric: Rc<RefCell<PcieFabric>>,
    hostmem: Rc<RefCell<HostMemory>>,
    nvme: NvmeDeviceHandle,
    admin_sq: SqRing,
    admin_cq: CqRing,
    ident_buf: u64,
}

impl SnaccHostDriver {
    /// Create the driver; allocates admin queue memory from the pinned
    /// pool. Host memory must already be mapped on the fabric at its
    /// physical addresses.
    pub fn new(
        fabric: Rc<RefCell<PcieFabric>>,
        hostmem: Rc<RefCell<HostMemory>>,
        nvme: NvmeDeviceHandle,
    ) -> Self {
        let (asq, acq, ident) = {
            let mut hm = hostmem.borrow_mut();
            let asq = hm.alloc_pinned(ADMIN_QD as u64 * spec::SQE_BYTES);
            let acq = hm.alloc_pinned(ADMIN_QD as u64 * spec::CQE_BYTES);
            let ident = hm.alloc_pinned(4096);
            (
                asq.segments()[0].base,
                acq.segments()[0].base,
                ident.segments()[0].base,
            )
        };
        SnaccHostDriver {
            fabric,
            hostmem,
            nvme,
            admin_sq: SqRing::new(asq, ADMIN_QD),
            admin_cq: CqRing::new(acq, ADMIN_QD),
            ident_buf: ident,
        }
    }

    /// The managed device.
    pub fn nvme(&self) -> &NvmeDeviceHandle {
        &self.nvme
    }

    fn reg_write32(&self, en: &mut Engine, off: u64, v: u32) {
        self.fabric
            .borrow_mut()
            .write_u32(en, HOST_NODE, self.nvme.bar0_base() + off, v)
            .expect("BAR0 reachable");
    }

    fn reg_write64(&self, en: &mut Engine, off: u64, v: u64) {
        self.fabric
            .borrow_mut()
            .write(en, HOST_NODE, self.nvme.bar0_base() + off, &v.to_le_bytes())
            .expect("BAR0 reachable");
    }

    fn reg_read32(&self, en: &mut Engine, off: u64) -> u32 {
        self.fabric
            .borrow_mut()
            .read_u32(en, HOST_NODE, self.nvme.bar0_base() + off)
            .expect("BAR0 reachable")
    }

    /// Step 1: admin queue + controller enable.
    pub fn init_controller(&mut self, en: &mut Engine) -> Result<(), DriverError> {
        let aqa = ((ADMIN_QD as u32 - 1) << 16) | (ADMIN_QD as u32 - 1);
        self.reg_write32(en, spec::regs::AQA, aqa);
        self.reg_write64(en, spec::regs::ASQ, self.admin_sq.base());
        self.reg_write64(en, spec::regs::ACQ, self.admin_cq.base());
        self.reg_write32(en, spec::regs::CC, spec::cc::EN);
        en.run();
        let csts = self.reg_read32(en, spec::regs::CSTS);
        if csts & spec::csts::RDY == 0 {
            return Err(DriverError::NotReady);
        }
        Ok(())
    }

    /// Submit one admin command and wait for its completion.
    pub fn run_admin(&mut self, en: &mut Engine, mut sqe: Sqe) -> Result<Cqe, DriverError> {
        sqe.cid = self.admin_sq.tail();
        {
            let mut hm = self.hostmem.borrow_mut();
            hm.store_mut()
                .write(self.admin_sq.tail_addr(), &sqe.encode());
        }
        let tail = self.admin_sq.advance_tail();
        self.reg_write32(en, spec::regs::sq_tail_doorbell(0), tail as u32);
        en.run();
        let raw = {
            let mut hm = self.hostmem.borrow_mut();
            hm.store_mut().read_vec(self.admin_cq.head_addr(), 16)
        };
        let Ok(cqe) = Cqe::decode(&raw) else {
            return Err(DriverError::NotReady);
        };
        if cqe.phase != self.admin_cq.expected_phase() {
            return Err(DriverError::NotReady);
        }
        self.admin_cq.consume();
        self.admin_sq.update_head(cqe.sq_head);
        if cqe.status != Status::Success {
            return Err(DriverError::AdminFailed(cqe.status));
        }
        Ok(cqe)
    }

    /// Step 2: Identify namespace (capacity / LBA size).
    pub fn identify(&mut self, en: &mut Engine) -> Result<NamespaceInfo, DriverError> {
        // Identify controller (sanity: model string present).
        let mut s = Sqe::new(AdminOpcode::Identify as u8, 0);
        s.prp1 = self.ident_buf;
        s.cdw[0] = 0x01;
        self.run_admin(en, s)?;
        // Identify namespace.
        let mut s = Sqe::new(AdminOpcode::Identify as u8, 0);
        s.prp1 = self.ident_buf;
        s.cdw[0] = 0x00;
        self.run_admin(en, s)?;
        let data = {
            let mut hm = self.hostmem.borrow_mut();
            hm.store_mut().read_vec(self.ident_buf, 256)
        };
        let nsze = u64::from_le_bytes(data[0..8].try_into().unwrap());
        let lbaf0 = u32::from_le_bytes(data[128..132].try_into().unwrap());
        let lbads = (lbaf0 >> 16) & 0xFF;
        Ok(NamespaceInfo {
            capacity_bytes: nsze << lbads,
            lba_bytes: 1 << lbads,
        })
    }

    /// Step 3: create an I/O queue pair at explicit (FPGA BAR) addresses.
    pub fn create_io_queues(
        &mut self,
        en: &mut Engine,
        qid: u16,
        sq: AddrRange,
        sq_entries: u16,
        cq: AddrRange,
        cq_entries: u16,
    ) -> Result<(), DriverError> {
        let mut c = Sqe::new(AdminOpcode::CreateIoCq as u8, 0);
        c.prp1 = cq.base;
        c.cdw[0] = (qid as u32) | (((cq_entries - 1) as u32) << 16);
        c.cdw[1] = 1; // physically contiguous
        self.run_admin(en, c)?;
        let mut s = Sqe::new(AdminOpcode::CreateIoSq as u8, 0);
        s.prp1 = sq.base;
        s.cdw[0] = (qid as u32) | (((sq_entries - 1) as u32) << 16);
        s.cdw[1] = 1 | ((qid as u32) << 16);
        self.run_admin(en, s)?;
        Ok(())
    }

    /// Steps 3–6 for a streamer instance: queues into the FPGA BAR, IOMMU
    /// grants, pinned buffers (host variant), doorbell programming over
    /// the control window, enable.
    pub fn setup_streamer(
        &mut self,
        en: &mut Engine,
        streamer: &StreamerHandle,
        qid: u16,
    ) -> Result<(), DriverError> {
        let w = streamer.windows();
        // Ring sizes come from the streamer's configuration — the BAR
        // windows are page-rounded and would overstate the depth.
        let sq_entries = streamer.sq_entries();
        let cq_entries = streamer.sq_entries();

        // IOMMU: the SSD must reach the streamer's windows; the FPGA must
        // reach the SSD's doorbells.
        {
            let mut fab = self.fabric.borrow_mut();
            let ssd = self.nvme.node();
            let fpga = {
                // The streamer's windows are owned by the FPGA node.
                fab.owner_of(w.sq.base).expect("sq window mapped")
            };
            for r in [w.sq, w.cq, w.prp, w.rd_data, w.wr_data] {
                fab.iommu_mut().grant(ssd, r);
            }
            fab.iommu_mut().grant(
                fpga,
                AddrRange::new(self.nvme.bar0_base(), snacc_nvme::device::BAR0_SIZE),
            );
        }

        // Host-DRAM variant: allocate + install pinned buffers and grant
        // both devices access to them.
        if streamer.variant() == StreamerVariant::HostDram {
            let (rd, wr) = {
                let mut hm = self.hostmem.borrow_mut();
                (hm.alloc_pinned(64 << 20), hm.alloc_pinned(64 << 20))
            };
            {
                let mut fab = self.fabric.borrow_mut();
                let ssd = self.nvme.node();
                let fpga = fab.owner_of(w.sq.base).expect("mapped");
                for seg in rd.segments().iter().chain(wr.segments()) {
                    fab.iommu_mut().grant(ssd, *seg);
                    fab.iommu_mut().grant(fpga, *seg);
                }
            }
            streamer.install_host_buffers(rd, wr);
        }

        self.create_io_queues(en, qid, w.sq, sq_entries, w.cq, cq_entries)?;

        // Program the streamer over its control window (real MMIO).
        let sq_db = self.nvme.sq_doorbell_addr(qid);
        let cq_db = self.nvme.cq_doorbell_addr(qid);
        {
            let mut fab = self.fabric.borrow_mut();
            fab.write(
                en,
                HOST_NODE,
                w.ctrl.base + NvmeStreamer::CTRL_SQ_DB,
                &sq_db.to_le_bytes(),
            )
            .expect("ctrl reachable");
            fab.write(
                en,
                HOST_NODE,
                w.ctrl.base + NvmeStreamer::CTRL_CQ_DB,
                &cq_db.to_le_bytes(),
            )
            .expect("ctrl reachable");
            fab.write(
                en,
                HOST_NODE,
                w.ctrl.base + NvmeStreamer::CTRL_ENABLE,
                &1u64.to_le_bytes(),
            )
            .expect("ctrl reachable");
        }
        en.run();
        Ok(())
    }

    /// Full bring-up: controller init, identify, streamer setup on `qid`.
    pub fn bring_up(
        &mut self,
        en: &mut Engine,
        streamer: &StreamerHandle,
        qid: u16,
    ) -> Result<NamespaceInfo, DriverError> {
        self.init_controller(en)?;
        let info = self.identify(en)?;
        // Request I/O queues (Set Features, Number of Queues).
        let mut s = Sqe::new(AdminOpcode::SetFeatures as u8, 0);
        s.cdw[0] = 0x07;
        s.cdw[1] = 0x0001_0001;
        self.run_admin(en, s)?;
        self.setup_streamer(en, streamer, qid)?;
        Ok(info)
    }
}
