//! On-the-fly PRP synthesis (paper Sec 4.4, Figures 2 and 3).
//!
//! The streamer never stores PRP lists: because each command's buffer is
//! contiguous and starts at a 4 KiB boundary, the n-th PRP entry is
//! `first_page + n × 4096`. When the NVMe controller reads a "PRP list
//! page", the streamer synthesises the entries combinationally from the
//! requested address:
//!
//! * **URAM scheme (Fig 2)** — the 4 MB data window is decode-doubled to
//!   8 MB; bit 22 of PRP2 selects the upper half, where a read at offset
//!   `o` returns entries `data_base + o + k × 4096`.
//! * **Register-file scheme (Fig 3)** — the DRAM variants keep PRP lists
//!   in a separate small window indexed by the low bits of the command
//!   id; a register file holds each active command's second-page address.
//!   The host-DRAM flavour additionally walks the pinned-buffer segment
//!   table, since a 64 MB buffer is stitched from 4 MB pieces (Sec 4.3).

use snacc_mem::hostmem::PinnedBuffer;
use snacc_pcie::MmioTarget;
use snacc_sim::{Engine, SimDuration, SimTime};
use std::cell::RefCell;
use std::rc::Rc;

/// Page size used throughout.
const PAGE: u64 = 4096;

/// The URAM scheme's upper-half window: synthesises PRP entries for the
/// data window starting at device address `data_dev_base`.
pub struct UramPrpWindow {
    data_dev_base: u64,
    latency: SimDuration,
    /// Synthesised list-page reads served (each would otherwise have been
    /// a stored-list memory fetch).
    pub reads_served: u64,
}

impl UramPrpWindow {
    /// Create the window for a data region mapped at `data_dev_base`.
    pub fn new(data_dev_base: u64) -> Self {
        UramPrpWindow {
            data_dev_base,
            latency: SimDuration::from_ns(20),
            reads_served: 0,
        }
    }

    /// PRP2 value for a command whose buffer starts at `region_offset`
    /// within the data window, given this PRP window is mapped at
    /// `prp_win_base` (= data base + 4 MB, i.e. bit 22 set).
    pub fn prp2_for(prp_win_base: u64, region_offset: u64) -> u64 {
        prp_win_base + region_offset + PAGE
    }
}

impl MmioTarget for UramPrpWindow {
    fn name(&self) -> &str {
        "uram-prp-window"
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        self.reads_served += 1;
        // Entry k of the synthesised page at `offset` is the device
        // address of data page (offset + k·4096).
        let base_entry = self.data_dev_base + (offset / PAGE) * PAGE;
        let first_index = (offset % PAGE) / 8;
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            let entry = base_entry + (first_index + i as u64) * PAGE;
            let bytes = entry.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        self.latency
    }

    fn write(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        _offset: u64,
        _data: &[u8],
    ) -> SimDuration {
        // The PRP window is read-only; writes are silently dropped, as a
        // BAR decode to a read-only region would be.
        self.latency
    }
}

/// Per-command register-file entry (Fig 3): how to compute the command's
/// PRP entries.
#[derive(Clone, Debug)]
pub enum PrpMapping {
    /// Contiguous device-visible buffer: entry k = `second_page + k·4096`.
    Contig {
        /// Device address of the command's second data page.
        second_page: u64,
    },
    /// Host pinned buffer stitched from ≤ 4 MB segments: entry k is the
    /// physical address of logical page `second_page_index + k`.
    Segmented {
        /// The pinned buffer's segment table.
        pinned: PinnedBuffer,
        /// Logical page index (within the pinned buffer) of the command's
        /// second data page.
        second_page_index: u64,
    },
}

/// The register file shared between the streamer (writes at issue) and
/// the PRP window target (reads on NVMe-controller fetches).
pub struct PrpRegFile {
    entries: Vec<Option<PrpMapping>>,
}

impl PrpRegFile {
    /// A register file with one slot per low-cid value.
    pub fn new(slots: usize) -> Rc<RefCell<PrpRegFile>> {
        Rc::new(RefCell::new(PrpRegFile {
            entries: vec![None; slots],
        }))
    }

    /// Number of slots.
    pub fn slots(&self) -> usize {
        self.entries.len()
    }

    /// Install the mapping for `cid` (indexed by its low bits).
    pub fn set(&mut self, cid: u16, mapping: PrpMapping) {
        let idx = cid as usize % self.entries.len();
        self.entries[idx] = Some(mapping);
    }

    /// Clear the mapping for `cid`.
    pub fn clear(&mut self, cid: u16) {
        let idx = cid as usize % self.entries.len();
        self.entries[idx] = None;
    }

    /// Compute entry `k` for slot `idx`; `None` if the slot is idle or the
    /// page is out of range.
    pub fn entry(&self, idx: usize, k: u64) -> Option<u64> {
        match self.entries.get(idx)?.as_ref()? {
            PrpMapping::Contig { second_page } => Some(second_page + k * PAGE),
            PrpMapping::Segmented {
                pinned,
                second_page_index,
            } => {
                let page = second_page_index + k;
                (page < pinned.pages()).then(|| pinned.page_addr(page))
            }
        }
    }
}

/// The register-file scheme's PRP window target: slot `i` occupies page
/// `i` of the window.
pub struct RegFilePrpWindow {
    regfile: Rc<RefCell<PrpRegFile>>,
    latency: SimDuration,
    /// Synthesised list-page reads served.
    pub reads_served: u64,
}

impl RegFilePrpWindow {
    /// Wrap a shared register file.
    pub fn new(regfile: Rc<RefCell<PrpRegFile>>) -> Self {
        RegFilePrpWindow {
            regfile,
            latency: SimDuration::from_ns(25),
            reads_served: 0,
        }
    }

    /// PRP2 value for `cid` given the window is mapped at `prp_win_base`.
    pub fn prp2_for(prp_win_base: u64, cid: u16, slots: usize) -> u64 {
        prp_win_base + (cid as u64 % slots as u64) * PAGE
    }
}

impl MmioTarget for RegFilePrpWindow {
    fn name(&self) -> &str {
        "regfile-prp-window"
    }

    fn read(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        offset: u64,
        out: &mut [u8],
    ) -> SimDuration {
        self.reads_served += 1;
        let idx = (offset / PAGE) as usize;
        let first_index = (offset % PAGE) / 8;
        let rf = self.regfile.borrow();
        for (i, chunk) in out.chunks_mut(8).enumerate() {
            let entry = rf.entry(idx, first_index + i as u64).unwrap_or(0);
            let bytes = entry.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        self.latency
    }

    fn write(
        &mut self,
        _en: &mut Engine,
        _arrival: SimTime,
        _offset: u64,
        _data: &[u8],
    ) -> SimDuration {
        self.latency
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;
    use snacc_mem::HostMemory;
    use snacc_nvme::prp::walk_prps;

    fn read_window(t: &mut dyn MmioTarget, addr: u64) -> [u8; 4096] {
        let mut en = Engine::new();
        let mut page = [0u8; 4096];
        t.read(&mut en, SimTime::ZERO, addr, &mut page);
        page
    }

    #[test]
    fn uram_scheme_entries_are_consecutive() {
        let data_base = 0x8000_0000u64;
        let prp_base = data_base + (4 << 20);
        let mut w = UramPrpWindow::new(data_base);
        let region_offset = 0x30_0000u64; // command buffer at 3 MB
        let prp2 = UramPrpWindow::prp2_for(prp_base, region_offset);
        assert_eq!(prp2, prp_base + region_offset + 4096);
        // Window target offset of the synthesised page.
        let off = prp2 - prp_base;
        let page = read_window(&mut w, off);
        for k in 0..256u64 {
            let e = u64::from_le_bytes(page[(k as usize) * 8..][..8].try_into().unwrap());
            assert_eq!(e, data_base + region_offset + 4096 + k * 4096);
        }
        assert_eq!(w.reads_served, 1);
    }

    #[test]
    fn uram_scheme_matches_walker_reference() {
        // Walking (prp1, prp2) through the synthesised window must produce
        // the same page list a stored PRP list would.
        let data_base = 0x8000_0000u64;
        let prp_base = data_base + (4 << 20);
        let w = Rc::new(RefCell::new(UramPrpWindow::new(data_base)));
        let region_offset = 0x10_0000u64;
        let len = 1u64 << 20; // 256 pages
        let prp1 = data_base + region_offset;
        let prp2 = UramPrpWindow::prp2_for(prp_base, region_offset);
        let segs = walk_prps(prp1, prp2, len, |list_addr| {
            assert!(list_addr >= prp_base);
            let mut en = Engine::new();
            let mut page = [0u8; 4096];
            w.borrow_mut()
                .read(&mut en, SimTime::ZERO, list_addr - prp_base, &mut page);
            Ok(page)
        })
        .unwrap();
        assert_eq!(segs.len(), 256);
        for (k, s) in segs.iter().enumerate() {
            assert_eq!(s.addr, data_base + region_offset + k as u64 * 4096);
            assert_eq!(s.len, 4096);
        }
    }

    #[test]
    fn regfile_contig_scheme() {
        let rf = PrpRegFile::new(64);
        let data_base = 0x9000_0000u64;
        rf.borrow_mut().set(
            70, // low bits → slot 6
            PrpMapping::Contig {
                second_page: data_base + 4096,
            },
        );
        let mut w = RegFilePrpWindow::new(rf);
        let page = read_window(&mut w, 6 * 4096);
        for k in 0..255u64 {
            let e = u64::from_le_bytes(page[(k as usize) * 8..][..8].try_into().unwrap());
            assert_eq!(e, data_base + 4096 + k * 4096);
        }
    }

    #[test]
    fn regfile_idle_slot_reads_zero() {
        let rf = PrpRegFile::new(64);
        let mut w = RegFilePrpWindow::new(rf);
        let page = read_window(&mut w, 0);
        assert!(page.iter().all(|&b| b == 0));
    }

    #[test]
    fn segmented_scheme_crosses_pinned_segments() {
        // A 9 MB pinned buffer has 3 physical segments; a command whose
        // pages straddle the 4 MB boundary must get non-contiguous
        // entries that follow the segment table.
        let mut host = HostMemory::default();
        let pinned = host.alloc_pinned(9 << 20);
        assert_eq!(pinned.segments().len(), 3);
        let rf = PrpRegFile::new(64);
        // Command buffer at logical page 1022 (4 KiB before the 4 MB
        // boundary at page 1024), second page = 1023.
        rf.borrow_mut().set(
            0,
            PrpMapping::Segmented {
                pinned: pinned.clone(),
                second_page_index: 1023,
            },
        );
        let mut w = RegFilePrpWindow::new(rf);
        let page = read_window(&mut w, 0);
        let e0 = u64::from_le_bytes(page[0..8].try_into().unwrap());
        let e1 = u64::from_le_bytes(page[8..16].try_into().unwrap());
        assert_eq!(e0, pinned.page_addr(1023)); // last page of segment 0
        assert_eq!(e1, pinned.page_addr(1024)); // first page of segment 1
        assert_eq!(e1, pinned.segments()[1].base);
    }

    proptest! {
        /// URAM synthesis is exactly arithmetic: for arbitrary region
        /// offsets and entry indices, entry k = data_base + off + 4096(k+1).
        #[test]
        fn uram_entries_arithmetic(region_page in 0u64..1023, k in 0u64..510) {
            let data_base = 0x4000_0000u64;
            let prp_base = data_base + (4 << 20);
            let mut w = UramPrpWindow::new(data_base);
            let off = region_page * 4096;
            let prp2 = UramPrpWindow::prp2_for(prp_base, off);
            let page = read_window(&mut w, prp2 - prp_base);
            let e = u64::from_le_bytes(page[(k as usize)*8..][..8].try_into().unwrap());
            prop_assert_eq!(e, data_base + off + 4096 * (k + 1));
        }

        /// The segmented mapping always agrees with the pinned buffer's
        /// own page table.
        #[test]
        fn segmented_matches_pinned_table(
            second in 0u64..4000,
            k in 0u64..256,
        ) {
            let mut host = HostMemory::default();
            let pinned = host.alloc_pinned(17 << 20); // 4352 pages
            let rf = PrpRegFile::new(8);
            rf.borrow_mut().set(3, PrpMapping::Segmented {
                pinned: pinned.clone(),
                second_page_index: second,
            });
            let got = rf.borrow().entry(3, k);
            let page = second + k;
            if page < pinned.pages() {
                prop_assert_eq!(got, Some(pinned.page_addr(page)));
            } else {
                prop_assert_eq!(got, None);
            }
        }
    }
}
