//! Multi-SSD extension (paper Sec 7).
//!
//! "Our design can easily be extended to access multiple SSDs
//! concurrently ... establish separate submission and completion queues
//! for each SSD, either consolidating them into a single address space or
//! providing distinct stream interfaces." This module implements the
//! distinct-stream-interfaces flavour: one streamer instance per SSD plus
//! a striping layer that fans a single logical write stream out over the
//! instances, hiding each SSD's latency behind the others.

use crate::streamer::{encode_read_cmd, StreamerHandle};
use snacc_fpga::axis::{self, StreamBeat};
use snacc_sim::Engine;

/// A stripe-set over multiple streamers (one per SSD).
pub struct MultiSsd {
    streamers: Vec<StreamerHandle>,
    stripe_bytes: u64,
}

impl MultiSsd {
    /// Build a stripe-set. `stripe_bytes` is the per-SSD chunk (a multiple
    /// of 4 KiB keeps commands page-aligned).
    pub fn new(streamers: Vec<StreamerHandle>, stripe_bytes: u64) -> Self {
        assert!(!streamers.is_empty());
        assert!(stripe_bytes > 0 && stripe_bytes.is_multiple_of(4096));
        MultiSsd {
            streamers,
            stripe_bytes,
        }
    }

    /// Number of member SSDs.
    pub fn width(&self) -> usize {
        self.streamers.len()
    }

    /// Member streamer `i`.
    pub fn member(&self, i: usize) -> &StreamerHandle {
        &self.streamers[i]
    }

    /// Split a logical `(addr, len)` extent into per-member extents under
    /// round-robin striping. Returns `(member, member_addr, len)` pieces
    /// in logical order.
    pub fn stripe_extent(&self, addr: u64, len: u64) -> Vec<(usize, u64, u64)> {
        assert!(
            addr.is_multiple_of(self.stripe_bytes),
            "extent must be stripe-aligned"
        );
        let n = self.streamers.len() as u64;
        let mut out = Vec::new();
        let mut off = 0u64;
        while off < len {
            let stripe_idx = (addr + off) / self.stripe_bytes;
            let member = (stripe_idx % n) as usize;
            // Address within the member: contiguous packing of its stripes.
            let member_stripe = stripe_idx / n;
            let member_addr = member_stripe * self.stripe_bytes;
            let take = self.stripe_bytes.min(len - off);
            out.push((member, member_addr, take));
            off += take;
        }
        out
    }

    /// Fan a write of `data` at logical address `addr` across the members
    /// (one write transfer per stripe piece), respecting each member's
    /// stream backpressure by stepping the engine while a channel is full.
    pub fn write_striped(&self, en: &mut Engine, addr: u64, data: &[u8]) {
        let mut logical_off = 0u64;
        for (member, member_addr, take_len) in self.stripe_extent(addr, data.len() as u64) {
            let ports = self.streamers[member].ports();
            let header = StreamBeat::mid(member_addr.to_le_bytes().to_vec());
            while !axis::push(&ports.wr_in, en, header.clone()) {
                assert!(en.step(), "multi-SSD writer stalled on header");
            }
            // Share the stripe piece once; per-chunk beats are zero-copy
            // windows into it.
            let payload = snacc_sim::Payload::from(
                &data[logical_off as usize..(logical_off + take_len) as usize],
            );
            let plen = payload.len();
            let mut coff = 0usize;
            while coff < plen {
                let cend = (coff + (64 << 10)).min(plen);
                let beat = StreamBeat {
                    data: payload.slice(coff..cend),
                    last: cend == plen,
                };
                coff = cend;
                let mut pending = Some(beat);
                while let Some(b) = pending.take() {
                    if !axis::push(&ports.wr_in, en, b.clone()) {
                        pending = Some(b);
                        assert!(en.step(), "multi-SSD writer stalled on data");
                    }
                }
            }
            logical_off += take_len;
        }
    }

    /// Issue a striped read for `(addr, len)`; data arrives on each
    /// member's `rd_data` port in stripe order per member.
    pub fn read_striped(&self, en: &mut Engine, addr: u64, len: u64) {
        for (member, member_addr, take) in self.stripe_extent(addr, len) {
            let ports = self.streamers[member].ports();
            let ok = axis::push(&ports.rd_cmd, en, encode_read_cmd(member_addr, take));
            assert!(ok, "multi-SSD reader assumes headroom");
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StreamerConfig, StreamerVariant};
    use snacc_fpga::tapasco::TapascoShell;
    use snacc_pcie::PcieFabric;
    use std::cell::RefCell;
    use std::rc::Rc;

    fn mk_streamers(n: usize) -> Vec<StreamerHandle> {
        let fabric = Rc::new(RefCell::new(PcieFabric::new()));
        let mut en = Engine::new();
        let mut shell = TapascoShell::new(fabric, 0x4_0000_0000);
        (0..n)
            .map(|_| {
                StreamerHandle::instantiate(
                    &mut shell,
                    &mut en,
                    StreamerConfig::snacc(StreamerVariant::Uram),
                )
            })
            .collect()
    }

    #[test]
    fn stripe_extent_round_robins() {
        let m = MultiSsd::new(mk_streamers(2), 4096);
        let pieces = m.stripe_extent(0, 16384);
        assert_eq!(
            pieces,
            vec![(0, 0, 4096), (1, 0, 4096), (0, 4096, 4096), (1, 4096, 4096),]
        );
    }

    #[test]
    fn stripe_extent_with_offset() {
        let m = MultiSsd::new(mk_streamers(4), 8192);
        let pieces = m.stripe_extent(8192 * 4, 8192 * 2);
        // Stripe indices 4, 5 → members 0, 1, each at their stripe 1.
        assert_eq!(pieces, vec![(0, 8192, 8192), (1, 8192, 8192)]);
    }

    #[test]
    fn stripe_covers_length_exactly() {
        let m = MultiSsd::new(mk_streamers(3), 4096);
        let pieces = m.stripe_extent(0, 4096 * 7 + 1024);
        let total: u64 = pieces.iter().map(|p| p.2).sum();
        assert_eq!(total, 4096 * 7 + 1024);
        assert_eq!(pieces.len(), 8);
    }
}
