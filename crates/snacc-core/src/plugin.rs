//! The TaPaSCo plugin wrapper (paper Sec 4.5).
//!
//! SNAcc is shipped as a plugin to TaPaSCo's toolflow: "we utilize the
//! toolflow's plugin system to incorporate an additional NVMe subsystem
//! into the block design". [`NvmeSubsystem`] is that plugin: applying it
//! to a shell instantiates the NVMe Streamer with all its BAR windows and
//! connections.

use crate::config::StreamerConfig;
use crate::streamer::StreamerHandle;
use snacc_fpga::tapasco::{ShellPlugin, TapascoShell};
use snacc_sim::Engine;

/// The SNAcc NVMe subsystem plugin.
pub struct NvmeSubsystem {
    cfg: StreamerConfig,
    handle: Option<StreamerHandle>,
}

impl NvmeSubsystem {
    /// A plugin that will instantiate a streamer with `cfg`.
    pub fn new(cfg: StreamerConfig) -> Self {
        NvmeSubsystem { cfg, handle: None }
    }

    /// The instantiated streamer (after integration).
    pub fn streamer(&self) -> StreamerHandle {
        self.handle.clone().expect("plugin not integrated yet")
    }
}

impl ShellPlugin for NvmeSubsystem {
    fn name(&self) -> &'static str {
        "snacc-nvme"
    }

    fn integrate(&mut self, shell: &mut TapascoShell, en: &mut Engine) {
        self.handle = Some(StreamerHandle::instantiate(shell, en, self.cfg.clone()));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::config::{StreamerConfig, StreamerVariant};
    use snacc_pcie::PcieFabric;
    use std::cell::RefCell;
    use std::rc::Rc;

    #[test]
    fn plugin_instantiates_streamer() {
        let fabric = Rc::new(RefCell::new(PcieFabric::new()));
        let mut en = Engine::new();
        let mut shell = TapascoShell::new(fabric, 0x4_0000_0000);
        let mut plugin = NvmeSubsystem::new(StreamerConfig::snacc(StreamerVariant::Uram));
        shell.apply_plugin(&mut en, &mut plugin);
        assert_eq!(shell.plugins(), &["snacc-nvme"]);
        let s = plugin.streamer();
        let w = s.windows();
        // 8 MB URAM window fits the existing BAR0 map (Sec 4.5).
        assert!(shell.bar0().contains_span(w.rd_data.base, w.rd_data.size));
        assert_eq!(w.rd_data.size, 4 << 20);
        assert_eq!(w.prp.size, 4 << 20);
    }

    #[test]
    fn onboard_variant_requires_second_bar() {
        let fabric = Rc::new(RefCell::new(PcieFabric::new()));
        let mut en = Engine::new();
        let mut shell = TapascoShell::new(fabric, 0x4_0000_0000);
        let mut plugin = NvmeSubsystem::new(StreamerConfig::snacc(StreamerVariant::OnboardDram));
        shell.apply_plugin(&mut en, &mut plugin);
        let w = plugin.streamer().windows();
        // The 64 MB data windows cannot live in the 64 MB BAR0.
        assert!(!shell.bar0().contains(w.rd_data.base));
        assert_eq!(w.rd_data.size, 64 << 20);
        assert_eq!(w.wr_data.size, 64 << 20);
    }
}
