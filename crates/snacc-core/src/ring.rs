//! Circular data-buffer allocator.
//!
//! The streamer's payload buffers are circular: each command's data
//! occupies a contiguous, 4 KiB-aligned region (paper Sec 4.3: "each new
//! read and write command starts at a 4 kB boundary"), and regions are
//! released in allocation order because retirement is in-order (Sec 4.2).
//! A region that would straddle the wrap point is placed at offset 0 and
//! the skipped tail is accounted to that region so frees stay consistent.
//!
//! Write transfers whose length is unknown until TLAST reserve the
//! 1 MB maximum and [`shrink_last`](RingAllocator::shrink_last) returns
//! the unused tail once the actual length is known — this is what lets
//! 4 KiB random writes keep all 64 queue slots busy inside the 4 MB URAM
//! buffer.

use std::collections::VecDeque;

/// 4 KiB alignment for command regions.
pub const REGION_ALIGN: u64 = 4096;

/// An allocated region (offsets are logical buffer offsets).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct Region {
    /// Start offset within the buffer.
    pub offset: u64,
    /// Usable (aligned) length.
    pub len: u64,
}

#[derive(Clone, Copy, Debug)]
struct Entry {
    offset: u64,
    len: u64,
    /// Bytes skipped before this region to wrap to offset 0.
    pre_skip: u64,
}

/// FIFO-ordered ring allocator.
pub struct RingAllocator {
    capacity: u64,
    head: u64,
    /// Bytes currently allocated (including wrap skips).
    used: u64,
    live: VecDeque<Entry>,
}

impl RingAllocator {
    /// An allocator over `capacity` bytes (must be 4 KiB aligned).
    pub fn new(capacity: u64) -> Self {
        assert!(capacity >= REGION_ALIGN && capacity.is_multiple_of(REGION_ALIGN));
        RingAllocator {
            capacity,
            head: 0,
            used: 0,
            live: VecDeque::new(),
        }
    }

    /// Total capacity.
    pub fn capacity(&self) -> u64 {
        self.capacity
    }

    /// Bytes currently reserved (including wrap waste).
    pub fn used(&self) -> u64 {
        self.used
    }

    /// Live allocations.
    pub fn live_regions(&self) -> usize {
        self.live.len()
    }

    /// Allocate a region of at least `len` bytes (rounded up to 4 KiB).
    /// Returns `None` when the ring cannot currently fit it.
    pub fn alloc(&mut self, len: u64) -> Option<Region> {
        assert!(len > 0);
        let len = len.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        if len > self.capacity {
            return None;
        }
        let head_pos = self.head % self.capacity;
        let to_end = self.capacity - head_pos;
        let (pre_skip, offset) = if len <= to_end {
            (0, head_pos)
        } else {
            // Wrap: skip the tail and start at 0.
            (to_end, 0)
        };
        if self.used + pre_skip + len > self.capacity {
            return None;
        }
        self.used += pre_skip + len;
        self.head += pre_skip + len;
        let e = Entry {
            offset,
            len,
            pre_skip,
        };
        self.live.push_back(e);
        Some(Region { offset, len })
    }

    /// Shrink the most recent allocation to `new_len` (rounded up to
    /// 4 KiB), returning the adjusted region. Only legal while it is still
    /// the newest allocation; otherwise the full reservation is kept and
    /// the original region is returned.
    pub fn shrink_last(&mut self, region: Region, new_len: u64) -> Region {
        let new_len = new_len.div_ceil(REGION_ALIGN) * REGION_ALIGN;
        let Some(last) = self.live.back_mut() else {
            return region;
        };
        if last.offset != region.offset || last.len != region.len || new_len >= region.len {
            return region;
        }
        let give_back = region.len - new_len;
        last.len = new_len;
        self.used -= give_back;
        self.head -= give_back;
        Region {
            offset: region.offset,
            len: new_len,
        }
    }

    /// Free the **oldest** allocation; `region` must match it (frees are
    /// in allocation order by design).
    pub fn free_oldest(&mut self, region: Region) {
        let e = self.live.pop_front().expect("free with no live regions");
        assert_eq!(
            (e.offset, e.len),
            (region.offset, region.len),
            "out-of-order or mismatched free"
        );
        self.used -= e.pre_skip + e.len;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn alloc_aligns_and_frees() {
        let mut r = RingAllocator::new(1 << 20);
        let a = r.alloc(5000).unwrap();
        assert_eq!(a.offset, 0);
        assert_eq!(a.len, 8192);
        let b = r.alloc(4096).unwrap();
        assert_eq!(b.offset, 8192);
        r.free_oldest(a);
        r.free_oldest(b);
        assert_eq!(r.used(), 0);
    }

    #[test]
    fn full_ring_rejects() {
        let mut r = RingAllocator::new(16 << 10);
        let a = r.alloc(16 << 10).unwrap();
        assert!(r.alloc(4096).is_none());
        r.free_oldest(a);
        assert!(r.alloc(4096).is_some());
    }

    #[test]
    fn wrap_skips_tail() {
        let mut r = RingAllocator::new(16 << 10);
        let a = r.alloc(12 << 10).unwrap(); // [0, 12k)
        r.free_oldest(a);
        let b = r.alloc(4 << 10).unwrap(); // [12k, 16k)
        assert_eq!(b.offset, 12 << 10);
        // 8 KiB doesn't fit in the 0-byte tail: wraps to 0.
        let c = r.alloc(8 << 10).unwrap();
        assert_eq!(c.offset, 0);
        r.free_oldest(b);
        r.free_oldest(c);
        assert_eq!(r.used(), 0);
    }

    #[test]
    fn wrap_waste_blocks_then_releases() {
        let mut r = RingAllocator::new(16 << 10);
        let a = r.alloc(8 << 10).unwrap(); // [0, 8k)
        r.free_oldest(a);
        let b = r.alloc(4 << 10).unwrap(); // [8k, 12k)
                                           // 8 KiB: tail is 4 KiB → wrap, skipping 4 KiB. used = 4k + skip4k + 8k = 16k.
        let c = r.alloc(8 << 10).unwrap();
        assert_eq!(c.offset, 0);
        assert_eq!(r.used(), 16 << 10);
        assert!(r.alloc(4096).is_none());
        r.free_oldest(b); // releases its 4 KiB (no skip)
        assert_eq!(r.used(), 12 << 10); // c + its skip
        r.free_oldest(c);
        assert_eq!(r.used(), 0);
    }

    #[test]
    fn shrink_last_returns_tail() {
        let mut r = RingAllocator::new(4 << 20);
        let a = r.alloc(1 << 20).unwrap();
        let a2 = r.shrink_last(a, 4096);
        assert_eq!(a2.len, 4096);
        assert_eq!(r.used(), 4096);
        // Next alloc starts right after the shrunk region.
        let b = r.alloc(4096).unwrap();
        assert_eq!(b.offset, 4096);
        r.free_oldest(a2);
        r.free_oldest(b);
    }

    #[test]
    fn shrink_not_last_keeps_reservation() {
        let mut r = RingAllocator::new(4 << 20);
        let a = r.alloc(1 << 20).unwrap();
        let _b = r.alloc(4096).unwrap();
        let a2 = r.shrink_last(a, 4096);
        assert_eq!(a2.len, 1 << 20, "shrink after newer alloc is a no-op");
    }

    #[test]
    #[should_panic(expected = "out-of-order")]
    fn out_of_order_free_detected() {
        let mut r = RingAllocator::new(1 << 20);
        let _a = r.alloc(4096).unwrap();
        let b = r.alloc(4096).unwrap();
        r.free_oldest(b);
    }

    proptest! {
        /// Invariants under arbitrary alloc/free sequences: no two live
        /// regions overlap, used ≤ capacity, and draining all frees
        /// returns to empty.
        #[test]
        fn ring_invariants(ops in proptest::collection::vec(1u64..2_000_000, 1..200)) {
            let mut r = RingAllocator::new(4 << 20);
            let mut live: VecDeque<Region> = VecDeque::new();
            for len in ops {
                match r.alloc(len) {
                    Some(reg) => {
                        // Overlap check against all live regions.
                        for other in &live {
                            let a0 = reg.offset;
                            let a1 = reg.offset + reg.len;
                            let b0 = other.offset;
                            let b1 = other.offset + other.len;
                            prop_assert!(a1 <= b0 || b1 <= a0,
                                "overlap {reg:?} vs {other:?}");
                        }
                        live.push_back(reg);
                    }
                    None => {
                        // Must be able to make progress by freeing.
                        if let Some(reg) = live.pop_front() {
                            r.free_oldest(reg);
                        }
                    }
                }
                prop_assert!(r.used() <= r.capacity());
            }
            while let Some(reg) = live.pop_front() {
                r.free_oldest(reg);
            }
            prop_assert_eq!(r.used(), 0);
        }
    }
}
