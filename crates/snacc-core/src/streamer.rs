//! The NVMe Streamer IP (paper Sec 4.1–4.4, Fig 1).
//!
//! User PEs see four AXI4-Stream interfaces:
//!
//! * **read command** (①a): one 16-byte beat = `(nvme byte address, length)`;
//! * **read data** (⑥a): the data, TLAST on the final beat of the request;
//! * **write** (①b): an 8-byte address beat followed by data beats, length
//!   implied by TLAST;
//! * **write response** (⑥b): one 8-byte token (bytes written) per
//!   completed write transfer.
//!
//! Internally the streamer splits requests at 1 MB (Sec 4.2), allocates
//! contiguous 4 KiB-aligned buffer regions, writes real SQEs into its SQ
//! FIFO (a BAR window the SSD fetches from, ②), synthesises PRP lists
//! on-the-fly when the controller reads them (③, Sec 4.4), lets the SSD
//! move payload data directly to/from the buffer memory (④), receives
//! CQEs into its reorder buffer (⑤), and retires commands in order,
//! streaming read data to the PE and recycling buffer space (⑥).

use crate::config::{StreamerConfig, StreamerVariant};
use crate::prpgen::{PrpMapping, PrpRegFile, RegFilePrpWindow, UramPrpWindow};
use crate::ring::{Region, RingAllocator};
use crate::rob::CommandRob;
use snacc_fpga::axis::{self, AxisChannel, StreamBeat};
use snacc_fpga::tapasco::TapascoShell;
use snacc_mem::hostmem::PinnedBuffer;
use snacc_mem::{AddrRange, DramController, UramConfig, UramModel};
use snacc_nvme::queue::{CqRing, SqRing};
use snacc_nvme::spec::{self, Cqe, IoOpcode, Sqe};
use snacc_pcie::target::{NotifyTarget, ScratchTarget};
use snacc_pcie::{NodeId, PcieFabric};
use snacc_sim::bytes::Payload;
use snacc_sim::{Engine, SimDuration, SimTime};
use snacc_trace::{self as trace, CounterHandle, HistogramHandle};
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::rc::Rc;

const PAGE: u64 = 4096;
const LBA: u64 = 512;

/// The four user-side AXI4-Stream interfaces (Sec 4.1).
#[derive(Clone)]
pub struct UserPorts {
    /// ①a — read commands: 16-byte beats `(address: u64, length: u64)` LE.
    pub rd_cmd: Rc<RefCell<AxisChannel>>,
    /// ⑥a — read data, TLAST per completed read request.
    pub rd_data: Rc<RefCell<AxisChannel>>,
    /// ①b — write stream: 8-byte address beat, then data, TLAST ends.
    pub wr_in: Rc<RefCell<AxisChannel>>,
    /// ⑥b — write responses: 8-byte token (bytes written).
    pub wr_resp: Rc<RefCell<AxisChannel>>,
}

/// Encode a read command beat.
pub fn encode_read_cmd(addr: u64, len: u64) -> StreamBeat {
    let mut d = Vec::with_capacity(16);
    d.extend_from_slice(&addr.to_le_bytes());
    d.extend_from_slice(&len.to_le_bytes());
    StreamBeat::last(d)
}

/// Which buffer pool a command draws from.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum BufKind {
    Read,
    Write,
}

/// Buffer placement backend.
enum BufferBackend {
    Uram {
        mem: Rc<RefCell<UramModel>>,
        /// Device-visible base of the 4 MB data window.
        dev_base: u64,
    },
    Dram {
        mem: Rc<RefCell<DramController>>,
        rd_local: u64,
        wr_local: u64,
        rd_dev: u64,
        wr_dev: u64,
    },
    Host {
        /// Installed by the host driver (Sec 4.6).
        rd_buf: Option<PinnedBuffer>,
        wr_buf: Option<PinnedBuffer>,
    },
}

/// Per-command ROB payload.
#[derive(Clone, Debug)]
enum CmdInfo {
    Read {
        region: Region,
        /// NVMe byte address, kept so a retry can rebuild the SQE.
        nvme_addr: u64,
        /// Bytes the user asked for in this segment.
        len: u64,
        /// This segment ends the user transfer (emit TLAST).
        last_of_xfer: bool,
        /// Open trace span (inert when tracing is off).
        span: trace::SpanId,
        /// First-issue time, for the retirement-latency histogram.
        issued_at: SimTime,
        /// Completed retry attempts (0 = the first issue is in flight).
        attempts: u32,
    },
    Write {
        region: Region,
        /// NVMe byte address, kept so a retry can rebuild the SQE.
        nvme_addr: u64,
        /// LBA-padded command length, kept so a retry can rebuild the SQE.
        len: u64,
        xfer_id: u64,
        /// Open trace span (inert when tracing is off).
        span: trace::SpanId,
        /// First-issue time, for the retirement-latency histogram.
        issued_at: SimTime,
        /// Completed retry attempts (0 = the first issue is in flight).
        attempts: u32,
    },
}

impl CmdInfo {
    fn attempts(&self) -> u32 {
        match self {
            CmdInfo::Read { attempts, .. } | CmdInfo::Write { attempts, .. } => *attempts,
        }
    }

    fn bump_attempts(&mut self) {
        match self {
            CmdInfo::Read { attempts, .. } | CmdInfo::Write { attempts, .. } => *attempts += 1,
        }
    }

    fn issued_at(&self) -> SimTime {
        match self {
            CmdInfo::Read { issued_at, .. } | CmdInfo::Write { issued_at, .. } => *issued_at,
        }
    }

    /// `(opcode, nvme_addr, len, kind, region)` for rebuilding the SQE at
    /// replay time. The buffer region (and, for writes, its data) is
    /// untouched by the failed attempt, so this is all a retry needs.
    fn reissue_parts(&self) -> (IoOpcode, u64, u64, BufKind, Region) {
        match *self {
            CmdInfo::Read {
                region,
                nvme_addr,
                len,
                ..
            } => (IoOpcode::Read, nvme_addr, len, BufKind::Read, region),
            CmdInfo::Write {
                region,
                nvme_addr,
                len,
                ..
            } => (IoOpcode::Write, nvme_addr, len, BufKind::Write, region),
        }
    }
}

/// A command waiting for a ROB slot / SQ slot / buffer region.
#[derive(Debug)]
enum PendingCmd {
    Read {
        nvme_addr: u64,
        len: u64,
        last_of_xfer: bool,
    },
    Write {
        nvme_addr: u64,
        len: u64,
        region: Region,
        xfer_id: u64,
    },
}

/// Write-stream accumulation state.
struct WriteAccum {
    next_addr: u64,
    region: Option<(Region, u64)>,
    xfer_id: u64,
    carry: Option<StreamBeat>,
}

/// State of an in-progress read-data stream-out. Buffer reads are
/// pipelined (a hardware streamer prefetches ahead of the AXIS output),
/// so several chunks can be in flight while beats are pushed in order.
struct ReadStream {
    region: Region,
    len: u64,
    /// Bytes whose buffer reads have been issued.
    issued: u64,
    /// Bytes delivered to the PE.
    delivered: u64,
    last_of_xfer: bool,
    waiting_space: bool,
    /// Outstanding buffer reads.
    inflight: u32,
}

/// Stream-out prefetch depth.
const STREAM_PREFETCH: u32 = 4;

/// Per-write-transfer bookkeeping for response tokens.
#[derive(Default)]
struct XferState {
    outstanding_segments: u64,
    sealed: bool,
    bytes: u64,
}

/// Streamer telemetry, backed by the metrics registry under the scope
/// `streamer.n<node>.*`. Handles are cheap `Rc` clones shared with the
/// registry, so values read here (`handle.get()`) are live, and the same
/// numbers appear in `--metrics-json` snapshots.
#[derive(Clone)]
pub struct StreamerMetrics {
    /// NVMe commands issued.
    pub cmds_issued: CounterHandle,
    /// Read commands issued.
    pub read_cmds: CounterHandle,
    /// Write commands issued.
    pub write_cmds: CounterHandle,
    /// Payload bytes streamed to the PE.
    pub bytes_to_pe: CounterHandle,
    /// Payload bytes accepted from the PE.
    pub bytes_from_pe: CounterHandle,
    /// Commands completed with error status.
    pub errors: CounterHandle,
    /// Doorbell writes issued over PCIe.
    pub doorbells: CounterHandle,
    /// Write-response tokens emitted.
    pub responses: CounterHandle,
    /// process_cq invocations (diagnostic).
    pub cq_events: CounterHandle,
    /// CQEs consumed (diagnostic).
    pub cqes_consumed: CounterHandle,
    /// Per-command issue→retire latency in microseconds.
    pub cmd_latency_us: HistogramHandle,
    /// Retries scheduled for transiently failed commands.
    pub retries: CounterHandle,
    /// Commands that completed successfully after at least one retry.
    pub recovered: CounterHandle,
    /// Commands abandoned with an error status (fatal status, retries
    /// exhausted, or retries disabled) — the reported-loss counter.
    pub gave_up: CounterHandle,
    /// Command timeouts detected (only when `RetryPolicy::cmd_timeout`
    /// is configured).
    pub timeouts: CounterHandle,
    /// First-issue → successful-completion latency (µs) of commands that
    /// needed at least one retry.
    pub retry_latency_us: HistogramHandle,
}

impl StreamerMetrics {
    fn new(scope: &str) -> Self {
        let c = |leaf: &str| trace::metric_counter(&format!("{scope}.{leaf}"));
        StreamerMetrics {
            cmds_issued: c("cmds_issued"),
            read_cmds: c("read_cmds"),
            write_cmds: c("write_cmds"),
            bytes_to_pe: c("bytes_to_pe"),
            bytes_from_pe: c("bytes_from_pe"),
            errors: c("errors"),
            doorbells: c("doorbells"),
            responses: c("responses"),
            cq_events: c("cq_events"),
            cqes_consumed: c("cqes_consumed"),
            cmd_latency_us: trace::metric_histogram(&format!("{scope}.cmd_latency_us")),
            retries: c("retries"),
            recovered: c("recovered"),
            gave_up: c("gave_up"),
            timeouts: c("timeouts"),
            retry_latency_us: trace::metric_histogram(&format!("{scope}.retry_latency_us")),
        }
    }
}

/// Device-visible window addresses of an instantiated streamer.
#[derive(Clone, Copy, Debug)]
pub struct WindowMap {
    /// Control register window.
    pub ctrl: AddrRange,
    /// SQ FIFO window (the SSD fetches SQEs here).
    pub sq: AddrRange,
    /// CQ window (the SSD writes CQEs here).
    pub cq: AddrRange,
    /// Data window for reads (0-sized for the host variant).
    pub rd_data: AddrRange,
    /// Data window for writes (URAM: same as `rd_data`).
    pub wr_data: AddrRange,
    /// PRP synthesis window.
    pub prp: AddrRange,
}

/// The streamer state. Use through [`StreamerHandle`].
pub struct NvmeStreamer {
    cfg: StreamerConfig,
    fabric: Rc<RefCell<PcieFabric>>,
    node: NodeId,
    ports: UserPorts,
    backend: BufferBackend,
    rd_ring: RingAllocator,
    wr_ring: Option<RingAllocator>,
    rob: CommandRob<CmdInfo>,
    sq: SqRing,
    sq_mem: Rc<RefCell<ScratchTarget>>,
    cq_mem: Rc<RefCell<NotifyTarget>>,
    cq_ring: CqRing,
    regfile: Option<Rc<RefCell<PrpRegFile>>>,
    windows: WindowMap,
    /// SSD SQ-tail doorbell address (programmed by the host driver).
    ssd_sq_doorbell: u64,
    /// SSD CQ-head doorbell address.
    ssd_cq_doorbell: u64,
    enabled: bool,
    pending: VecDeque<PendingCmd>,
    /// Replayed commands whose re-issue found the SQ full; drained when
    /// completions free slots.
    retry_q: VecDeque<u16>,
    accum: Option<WriteAccum>,
    next_xfer_id: u64,
    xfers: HashMap<u64, XferState>,
    active_stream: Option<ReadStream>,
    issuing: bool,
    wr_busy: bool,
    cq_busy: bool,
    metrics: StreamerMetrics,
    /// Trace track name (`streamer.n<node>`), shared with the metrics scope.
    track: String,
}

/// Shared handle to an instantiated streamer.
#[derive(Clone)]
pub struct StreamerHandle {
    inner: Rc<RefCell<NvmeStreamer>>,
}

impl StreamerHandle {
    /// Instantiate the streamer inside a TaPaSCo shell: allocates BAR
    /// windows, maps the SQ/CQ/PRP/data targets, creates the user-side
    /// channels and arms all pumps. The host driver must still configure
    /// doorbell addresses and (for the host-DRAM variant) install pinned
    /// buffers, then enable the IP.
    pub fn instantiate(shell: &mut TapascoShell, _en: &mut Engine, cfg: StreamerConfig) -> Self {
        let fabric = shell.fabric();
        let node = shell.node();

        let ctrl_w = shell.alloc_window(4096).expect("ctrl window");
        let sq_w = shell
            .alloc_window(cfg.sq_entries as u64 * spec::SQE_BYTES)
            .expect("sq window");
        let cq_w = shell
            .alloc_window(cfg.sq_entries as u64 * spec::CQE_BYTES)
            .expect("cq window");

        // Buffer windows + PRP window, per variant.
        let (backend, rd_data_w, wr_data_w, prp_w, regfile) = match cfg.variant {
            StreamerVariant::Uram => {
                // 8 MB window: 4 MB data + 4 MB PRP upper half (Fig 2).
                let win = shell.alloc_window(8 << 20).expect("uram window");
                let data_w = AddrRange::new(win.base, 4 << 20);
                let prp_w = AddrRange::new(win.base + (4 << 20), 4 << 20);
                let mem = Rc::new(RefCell::new(UramModel::new(
                    "snacc-uram",
                    UramConfig::snacc_default(),
                )));
                shell.map_target(
                    data_w,
                    Rc::new(RefCell::new(snacc_pcie::target::UramTarget::new(
                        mem.clone(),
                    ))),
                );
                shell.map_target(
                    prp_w,
                    Rc::new(RefCell::new(UramPrpWindow::new(data_w.base))),
                );
                (
                    BufferBackend::Uram {
                        mem,
                        dev_base: data_w.base,
                    },
                    data_w,
                    data_w,
                    prp_w,
                    None,
                )
            }
            StreamerVariant::OnboardDram => {
                // Two 64 MB DRAM windows need the second BAR (Sec 4.5).
                let bar2_base = shell.bar0().base + (1 << 30);
                shell.add_second_bar(bar2_base, 256 << 20);
                let mem = shell
                    .dram()
                    .unwrap_or_else(|| shell.attach_dram(snacc_mem::DramConfig::ddr4_u280()));
                let rd_w = shell.map_dram_window(0, 64 << 20).expect("rd window");
                let wr_w = shell
                    .map_dram_window(64 << 20, 64 << 20)
                    .expect("wr window");
                let prp_w = shell
                    .alloc_window(cfg.sq_entries as u64 * PAGE)
                    .expect("prp window");
                let rf = PrpRegFile::new(cfg.sq_entries as usize);
                shell.map_target(
                    prp_w,
                    Rc::new(RefCell::new(RegFilePrpWindow::new(rf.clone()))),
                );
                (
                    BufferBackend::Dram {
                        mem,
                        rd_local: 0,
                        wr_local: 64 << 20,
                        rd_dev: rd_w.base,
                        wr_dev: wr_w.base,
                    },
                    rd_w,
                    wr_w,
                    prp_w,
                    Some(rf),
                )
            }
            StreamerVariant::HostDram => {
                let prp_w = shell
                    .alloc_window(cfg.sq_entries as u64 * PAGE)
                    .expect("prp window");
                let rf = PrpRegFile::new(cfg.sq_entries as usize);
                shell.map_target(
                    prp_w,
                    Rc::new(RefCell::new(RegFilePrpWindow::new(rf.clone()))),
                );
                // Data windows live in host memory; zero-sized placeholders.
                let dummy = AddrRange::new(prp_w.base, 1);
                (
                    BufferBackend::Host {
                        rd_buf: None,
                        wr_buf: None,
                    },
                    dummy,
                    dummy,
                    prp_w,
                    Some(rf),
                )
            }
        };

        let sq_mem = Rc::new(RefCell::new(ScratchTarget::new(
            "snacc-sq-fifo",
            snacc_sim::SimDuration::from_ns(60),
        )));
        shell.map_target(sq_w, sq_mem.clone());
        let cq_mem = Rc::new(RefCell::new(NotifyTarget::new(
            "snacc-cq-rob",
            snacc_sim::SimDuration::from_ns(60),
        )));
        shell.map_target(cq_w, cq_mem.clone());

        let windows = WindowMap {
            ctrl: ctrl_w,
            sq: sq_w,
            cq: cq_w,
            rd_data: rd_data_w,
            wr_data: wr_data_w,
            prp: prp_w,
        };

        let ports = UserPorts {
            rd_cmd: AxisChannel::new("snacc.rd_cmd", 4096),
            rd_data: AxisChannel::new("snacc.rd_data", 4 * cfg.stream_chunk),
            wr_in: AxisChannel::new("snacc.wr_in", 4 * cfg.stream_chunk),
            wr_resp: AxisChannel::new("snacc.wr_resp", 4096),
        };

        let wr_ring =
            (cfg.write_buffer_bytes() > 0).then(|| RingAllocator::new(cfg.write_buffer_bytes()));
        let scope = format!("streamer.n{}", node.0);
        let metrics = StreamerMetrics::new(&scope);
        let streamer = Rc::new(RefCell::new(NvmeStreamer {
            rd_ring: RingAllocator::new(cfg.read_buffer_bytes()),
            wr_ring,
            rob: CommandRob::new(cfg.queue_depth, cfg.retirement),
            sq: SqRing::new(sq_w.base, cfg.sq_entries),
            cq_ring: CqRing::new(cq_w.base, cfg.sq_entries),
            sq_mem,
            cq_mem: cq_mem.clone(),
            regfile,
            windows,
            ssd_sq_doorbell: 0,
            ssd_cq_doorbell: 0,
            enabled: false,
            pending: VecDeque::new(),
            retry_q: VecDeque::new(),
            accum: None,
            next_xfer_id: 0,
            xfers: HashMap::new(),
            active_stream: None,
            issuing: false,
            wr_busy: false,
            cq_busy: false,
            metrics,
            track: scope,
            cfg,
            fabric,
            node,
            ports: ports.clone(),
            backend,
        }));

        // CQ write hook → completion processing (⑤).
        {
            let rc = streamer.clone();
            cq_mem
                .borrow_mut()
                .set_hook(Box::new(move |en, _off, _data, arrival| {
                    let rc2 = rc.clone();
                    let t = arrival.max(en.now()) + rc.borrow().cfg.completion_latency;
                    en.schedule_at(t, move |en| process_cq(&rc2, en));
                }));
        }
        // Control window: the host driver programs doorbell addresses and
        // the enable bit over MMIO (Sec 4.6).
        {
            let ctrl = Rc::new(RefCell::new(NotifyTarget::new(
                "snacc-ctrl",
                snacc_sim::SimDuration::from_ns(50),
            )));
            let rc = streamer.clone();
            ctrl.borrow_mut()
                .set_hook(Box::new(move |en, off, data, _arr| {
                    let mut v = [0u8; 8];
                    let n = data.len().min(8);
                    v[..n].copy_from_slice(&data[..n]);
                    ctrl_write(&rc, en, off, u64::from_le_bytes(v));
                }));
            shell.map_target(ctrl_w, ctrl);
        }
        // User-side hooks.
        {
            let rc = streamer.clone();
            ports
                .rd_cmd
                .borrow_mut()
                .set_data_hook(move |en| accept_read_cmds(&rc, en));
            let rc = streamer.clone();
            ports
                .wr_in
                .borrow_mut()
                .set_data_hook(move |en| pump_write_in(&rc, en));
            let rc = streamer.clone();
            ports
                .rd_data
                .borrow_mut()
                .set_space_hook(move |en| resume_stream_out(&rc, en));
            let rc = streamer.clone();
            ports
                .wr_resp
                .borrow_mut()
                .set_space_hook(move |en| try_retire(&rc, en));
        }
        StreamerHandle { inner: streamer }
    }

    /// The user-side stream interfaces.
    pub fn ports(&self) -> UserPorts {
        self.inner.borrow().ports.clone()
    }

    /// Device-visible window map.
    pub fn windows(&self) -> WindowMap {
        self.inner.borrow().windows
    }

    /// The configured variant.
    pub fn variant(&self) -> StreamerVariant {
        self.inner.borrow().cfg.variant
    }

    /// Submission-queue ring entries (also the CQ depth).
    pub fn sq_entries(&self) -> u16 {
        self.inner.borrow().cfg.sq_entries
    }

    /// Telemetry handles (live registry-backed counters — read with
    /// `handle.get()`).
    pub fn metrics(&self) -> StreamerMetrics {
        self.inner.borrow().metrics.clone()
    }

    /// Install the pinned host buffers (host-DRAM variant; the TaPaSCo
    /// kernel driver allocates them and programs the segment table,
    /// Sec 4.3/4.6).
    pub fn install_host_buffers(&self, rd: PinnedBuffer, wr: PinnedBuffer) {
        let mut s = self.inner.borrow_mut();
        match &mut s.backend {
            BufferBackend::Host { rd_buf, wr_buf } => {
                *rd_buf = Some(rd);
                *wr_buf = Some(wr);
            }
            _ => panic!("install_host_buffers on a non-host variant"),
        }
    }

    /// Program doorbell addresses directly (tests; the normal path is the
    /// control window via [`crate::hostinit`]).
    pub fn set_doorbells(&self, sq: u64, cq: u64) {
        let mut s = self.inner.borrow_mut();
        s.ssd_sq_doorbell = sq;
        s.ssd_cq_doorbell = cq;
    }

    /// Enable the IP (tests; normal path is the control window).
    pub fn enable(&self, en: &mut Engine) {
        self.inner.borrow_mut().enabled = true;
        let rc = self.inner.clone();
        en.schedule_now(move |en| {
            accept_read_cmds(&rc, en);
            pump_write_in(&rc, en);
            try_issue(&rc, en);
        });
    }

    /// Diagnostic snapshot of internal occupancy (for debugging stalls).
    pub fn debug_state(&self) -> String {
        let s = self.inner.borrow();
        format!(
            "pending={} rob_len={} rob_inflight={} sq_occ={} rd_ring={}/{} wr_ring={:?} accum={} stream={} xfers={} wr_busy={} issuing={}",
            s.pending.len(),
            s.rob.len(),
            s.rob.inflight_device(),
            s.sq.occupancy(),
            s.rd_ring.used(),
            s.rd_ring.capacity(),
            s.wr_ring.as_ref().map(|r| (r.used(), r.capacity())),
            s.accum.is_some(),
            s.active_stream.is_some(),
            s.xfers.len(),
            s.wr_busy,
            s.issuing,
        ) + &{
            let off = s.cq_ring.head_addr() - s.windows.cq.base;
            let raw = {
                let mut mem = s.cq_mem.borrow_mut();
                mem.mem_mut().read_vec(off, 16)
            };
            match Cqe::decode(&raw) {
                Ok(cqe) => format!(
                    " | cq_head={} cq_phase={} slot_cqe={{cid:{} phase:{} sqhead:{}}}",
                    s.cq_ring.head(),
                    s.cq_ring.expected_phase(),
                    cqe.cid,
                    cqe.phase,
                    cqe.sq_head
                ),
                Err(e) => format!(
                    " | cq_head={} cq_phase={} slot_cqe=<{e}>",
                    s.cq_ring.head(),
                    s.cq_ring.expected_phase()
                ),
            }
        }
    }

    /// True when no work is queued or in flight.
    pub fn is_idle(&self) -> bool {
        let s = self.inner.borrow();
        s.pending.is_empty()
            && s.rob.is_empty()
            && s.accum.is_none()
            && s.active_stream.is_none()
            && s.xfers.is_empty()
    }
}

impl NvmeStreamer {
    /// Control-register offset: enable/start.
    pub const CTRL_ENABLE: u64 = 0x00;
    /// Control-register offset: SSD SQ-tail doorbell address.
    pub const CTRL_SQ_DB: u64 = 0x08;
    /// Control-register offset: SSD CQ-head doorbell address.
    pub const CTRL_CQ_DB: u64 = 0x10;

    fn page_dev_addr(&self, kind: BufKind, offset: u64) -> u64 {
        match &self.backend {
            BufferBackend::Uram { dev_base, .. } => dev_base + offset,
            BufferBackend::Dram { rd_dev, wr_dev, .. } => match kind {
                BufKind::Read => rd_dev + offset,
                BufKind::Write => wr_dev + offset,
            },
            BufferBackend::Host { rd_buf, wr_buf } => {
                let b = match kind {
                    BufKind::Read => rd_buf,
                    BufKind::Write => wr_buf,
                };
                b.as_ref()
                    .expect("host buffers installed")
                    .phys_addr(offset)
            }
        }
    }

    fn shared_ring(&self) -> bool {
        self.wr_ring.is_none()
    }

    fn ring_mut(&mut self, kind: BufKind) -> &mut RingAllocator {
        match kind {
            BufKind::Read => &mut self.rd_ring,
            BufKind::Write => self.wr_ring.as_mut().unwrap_or(&mut self.rd_ring),
        }
    }

    /// ② (shared by first issue and replay re-issue): assign `cid`, set
    /// up PRPs per variant (Sec 4.4), write the SQE into the SQ FIFO slot
    /// and advance the tail. The caller must have checked
    /// `!self.sq.is_full()` and rings the doorbell with the returned tail.
    fn push_sqe(
        &mut self,
        en: &mut Engine,
        mut sqe: Sqe,
        cid: u16,
        kind: BufKind,
        region: Region,
        len: u64,
    ) -> u16 {
        sqe.cid = cid;
        // PRPs: on-the-fly schemes (Sec 4.4).
        let pages = snacc_sim::ceil_div(len, PAGE);
        sqe.prp1 = self.page_dev_addr(kind, region.offset);
        if pages == 2 {
            sqe.prp2 = self.page_dev_addr(kind, region.offset + PAGE);
        } else if pages > 2 {
            match self.cfg.variant {
                StreamerVariant::Uram => {
                    sqe.prp2 = UramPrpWindow::prp2_for(self.windows.prp.base, region.offset);
                }
                StreamerVariant::OnboardDram => {
                    let second = self.page_dev_addr(kind, region.offset + PAGE);
                    let slots = self.cfg.sq_entries as usize;
                    self.regfile.as_ref().unwrap().borrow_mut().set(
                        cid,
                        PrpMapping::Contig {
                            second_page: second,
                        },
                    );
                    sqe.prp2 = RegFilePrpWindow::prp2_for(self.windows.prp.base, cid, slots);
                }
                StreamerVariant::HostDram => {
                    let pinned = match (&self.backend, kind) {
                        (BufferBackend::Host { rd_buf, .. }, BufKind::Read) => {
                            rd_buf.as_ref().unwrap().clone()
                        }
                        (BufferBackend::Host { wr_buf, .. }, BufKind::Write) => {
                            wr_buf.as_ref().unwrap().clone()
                        }
                        _ => unreachable!(),
                    };
                    let slots = self.cfg.sq_entries as usize;
                    self.regfile.as_ref().unwrap().borrow_mut().set(
                        cid,
                        PrpMapping::Segmented {
                            pinned,
                            second_page_index: region.offset / PAGE + 1,
                        },
                    );
                    sqe.prp2 = RegFilePrpWindow::prp2_for(self.windows.prp.base, cid, slots);
                }
            }
        }
        // Write the SQE into the SQ FIFO (local IP memory).
        let slot_addr = self.sq.tail_addr() - self.windows.sq.base;
        self.sq_mem
            .borrow_mut()
            .mem_mut()
            .write(slot_addr, &sqe.encode());
        if pages > 2 && trace::enabled() {
            trace::instant(
                en,
                &self.track,
                "prp.setup",
                &[("cid", u64::from(cid)), ("pages", pages)],
            );
        }
        self.sq.advance_tail()
    }
}

/// Handle a control-register write (`value` already extracted from the
/// write data). Runs inside the fabric borrow — anything that re-enters
/// the fabric is deferred.
fn ctrl_write(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine, off: u64, value: u64) {
    match off {
        NvmeStreamer::CTRL_SQ_DB => {
            rc.borrow_mut().ssd_sq_doorbell = value;
        }
        NvmeStreamer::CTRL_CQ_DB => {
            rc.borrow_mut().ssd_cq_doorbell = value;
        }
        NvmeStreamer::CTRL_ENABLE => {
            rc.borrow_mut().enabled = value & 1 != 0;
            if value & 1 != 0 {
                let rc2 = rc.clone();
                en.schedule_now(move |en| {
                    accept_read_cmds(&rc2, en);
                    pump_write_in(&rc2, en);
                    try_issue(&rc2, en);
                });
            }
        }
        _ => {}
    }
}

/// Timed + functional buffer write (local datapath or host DMA). The
/// backing store retains the payload window zero-copy.
fn buf_write(
    rc: &Rc<RefCell<NvmeStreamer>>,
    en: &mut Engine,
    start: SimTime,
    kind: BufKind,
    offset: u64,
    data: Payload,
) -> SimTime {
    enum Op {
        Uram(Rc<RefCell<UramModel>>),
        Dram(Rc<RefCell<DramController>>, u64),
        Host(PinnedBuffer, Rc<RefCell<PcieFabric>>, NodeId),
    }
    let op = {
        let s = rc.borrow();
        match &s.backend {
            BufferBackend::Uram { mem, .. } => Op::Uram(mem.clone()),
            BufferBackend::Dram {
                mem,
                rd_local,
                wr_local,
                ..
            } => {
                let base = match kind {
                    BufKind::Read => *rd_local,
                    BufKind::Write => *wr_local,
                };
                Op::Dram(mem.clone(), base)
            }
            BufferBackend::Host { rd_buf, wr_buf } => {
                let b = match kind {
                    BufKind::Read => rd_buf,
                    BufKind::Write => wr_buf,
                };
                Op::Host(
                    b.as_ref().expect("host buffers installed").clone(),
                    s.fabric.clone(),
                    s.node,
                )
            }
        }
    };
    match op {
        Op::Uram(mem) => mem.borrow_mut().write_payload(start, offset, data),
        Op::Dram(mem, base) => mem.borrow_mut().write_payload(start, base + offset, data),
        Op::Host(pinned, fabric, node) => {
            // Cross pinned segments as needed.
            let mut t = start;
            let mut off = 0usize;
            while off < data.len() {
                let logical = offset + off as u64;
                let phys = pinned.phys_addr(logical);
                let seg_end = pinned
                    .segments()
                    .iter()
                    .find(|s| s.contains(phys))
                    .expect("phys in a segment")
                    .end();
                let n = ((seg_end - phys) as usize).min(data.len() - off);
                let done = fabric
                    .borrow_mut()
                    .write_payload_at(en, t.max(en.now()), node, phys, data.slice(off..off + n))
                    .expect("host buffer reachable");
                t = done;
                off += n;
            }
            t
        }
    }
}

/// Timed + functional buffer read: returns the buffered bytes as a
/// zero-copy payload view plus the completion time.
fn buf_read_payload(
    rc: &Rc<RefCell<NvmeStreamer>>,
    en: &mut Engine,
    start: SimTime,
    kind: BufKind,
    offset: u64,
    len: usize,
) -> (Payload, SimTime) {
    enum Op {
        Uram(Rc<RefCell<UramModel>>),
        Dram(Rc<RefCell<DramController>>, u64),
        Host(PinnedBuffer, Rc<RefCell<PcieFabric>>, NodeId),
    }
    let op = {
        let s = rc.borrow();
        match &s.backend {
            BufferBackend::Uram { mem, .. } => Op::Uram(mem.clone()),
            BufferBackend::Dram {
                mem,
                rd_local,
                wr_local,
                ..
            } => {
                let base = match kind {
                    BufKind::Read => *rd_local,
                    BufKind::Write => *wr_local,
                };
                Op::Dram(mem.clone(), base)
            }
            BufferBackend::Host { rd_buf, wr_buf } => {
                let b = match kind {
                    BufKind::Read => rd_buf,
                    BufKind::Write => wr_buf,
                };
                Op::Host(
                    b.as_ref().expect("host buffers installed").clone(),
                    s.fabric.clone(),
                    s.node,
                )
            }
        }
    };
    match op {
        Op::Uram(mem) => mem.borrow_mut().read_payload(start, offset, len),
        Op::Dram(mem, base) => mem.borrow_mut().read_payload(start, base + offset, len),
        Op::Host(pinned, fabric, node) => {
            let mut t = start;
            let mut off = 0usize;
            let mut parts: Vec<Payload> = Vec::new();
            while off < len {
                let logical = offset + off as u64;
                let phys = pinned.phys_addr(logical);
                let seg_end = pinned
                    .segments()
                    .iter()
                    .find(|s| s.contains(phys))
                    .expect("phys in a segment")
                    .end();
                let n = ((seg_end - phys) as usize).min(len - off);
                let (chunk, done) = fabric
                    .borrow_mut()
                    .read_payload_at(en, t.max(en.now()), node, phys, n as u64)
                    .expect("host buffer reachable");
                parts.push(chunk);
                t = done;
                off += n;
            }
            (Payload::concat(&parts), t)
        }
    }
}

/// ①a — accept and split user read commands.
fn accept_read_cmds(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    loop {
        if !rc.borrow().enabled {
            return;
        }
        let ch = rc.borrow().ports.rd_cmd.clone();
        let Some(beat) = axis::pop(&ch, en) else {
            return;
        };
        assert!(beat.len() >= 16, "read command beat must be 16 bytes");
        let addr = u64::from_le_bytes(beat.data[0..8].try_into().unwrap());
        let len = u64::from_le_bytes(beat.data[8..16].try_into().unwrap());
        assert!(len > 0, "zero-length read");
        assert!(
            addr % LBA == 0 && len % LBA == 0,
            "reads must be LBA-aligned"
        );
        // Split at the 1 MB boundary (Sec 4.2).
        let mut s = rc.borrow_mut();
        let max = s.cfg.max_cmd_bytes;
        let mut off = 0;
        while off < len {
            let n = max.min(len - off);
            s.pending.push_back(PendingCmd::Read {
                nvme_addr: addr + off,
                len: n,
                last_of_xfer: off + n == len,
            });
            off += n;
        }
        drop(s);
        try_issue(rc, en);
    }
}

/// ①b — accumulate the write stream into buffer memory; issue at 1 MB
/// boundaries and on TLAST.
fn pump_write_in(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    {
        let s = rc.borrow();
        if !s.enabled || s.wr_busy {
            return;
        }
    }
    // Take the next unit of work: a carried partial beat, or a fresh one.
    let beat = {
        let mut s = rc.borrow_mut();
        if let Some(acc) = &mut s.accum {
            acc.carry.take()
        } else {
            None
        }
    };
    let beat = match beat {
        Some(b) => b,
        None => {
            let ch = rc.borrow().ports.wr_in.clone();
            match axis::pop(&ch, en) {
                Some(b) => b,
                None => return,
            }
        }
    };

    // Header beat?
    {
        let mut s = rc.borrow_mut();
        if s.accum.is_none() {
            assert!(beat.len() >= 8, "write header beat must carry the address");
            let addr = u64::from_le_bytes(beat.data[0..8].try_into().unwrap());
            assert!(addr % LBA == 0, "write address must be LBA-aligned");
            let xfer_id = s.next_xfer_id;
            s.next_xfer_id += 1;
            s.xfers.insert(xfer_id, XferState::default());
            s.accum = Some(WriteAccum {
                next_addr: addr,
                region: None,
                xfer_id,
                carry: None,
            });
            if beat.last {
                // Empty write: respond immediately.
                let xid = xfer_id;
                s.accum = None;
                s.xfers.get_mut(&xid).unwrap().sealed = true;
                drop(s);
                finish_xfers(rc, en);
                pump_write_in(rc, en);
                return;
            }
            drop(s);
            pump_write_in(rc, en);
            return;
        }
    }

    // Data beat: ensure a region exists.
    let need_alloc = rc.borrow().accum.as_ref().unwrap().region.is_none();
    if need_alloc {
        let mut s = rc.borrow_mut();
        let max = s.cfg.max_cmd_bytes;
        let region = s.ring_mut(BufKind::Write).alloc(max);
        match region {
            Some(r) => {
                s.accum.as_mut().unwrap().region = Some((r, 0));
            }
            None => {
                // Buffer full: stash the beat; retirement will re-pump.
                s.accum.as_mut().unwrap().carry = Some(beat);
                return;
            }
        }
    }

    // How much of this beat fits in the current segment?
    let (region, filled) = {
        let s = rc.borrow();
        let acc = s.accum.as_ref().unwrap();
        let (r, f) = acc.region.unwrap();
        (r, f)
    };
    let space = region.len - filled;
    let take = (beat.len() as u64).min(space) as usize;
    let (chunk, leftover) = if take < beat.len() {
        let (head, tail) = beat.data.split_at(take);
        let rest = StreamBeat {
            data: tail,
            last: beat.last,
        };
        (head, Some(rest))
    } else {
        (beat.data, None)
    };
    let chunk_is_final = leftover.is_none() && beat.last;

    rc.borrow_mut().wr_busy = true;
    let chunk_len = chunk.len() as u64;
    let t_done = buf_write(
        rc,
        en,
        en.now(),
        BufKind::Write,
        region.offset + filled,
        chunk,
    );
    let rc2 = rc.clone();
    en.schedule_at(t_done.max(en.now()), move |en| {
        let mut issue_needed = false;
        {
            let mut s = rc2.borrow_mut();
            s.wr_busy = false;
            s.metrics.bytes_from_pe.add(chunk_len);
            let acc = s.accum.as_mut().unwrap();
            let (r, f) = acc.region.unwrap();
            let new_fill = f + chunk_len;
            acc.region = Some((r, new_fill));
            acc.carry = leftover;
            let seal = chunk_is_final || new_fill == r.len;
            if seal {
                let acc = s.accum.as_mut().unwrap();
                let nvme_addr = acc.next_addr;
                acc.next_addr += new_fill;
                let xfer_id = acc.xfer_id;
                acc.region = None;
                let final_now = chunk_is_final;
                // Shrink the 1 MB reservation to the actual fill.
                let padded = new_fill.div_ceil(PAGE) * PAGE;
                let shrunk = if padded < r.len {
                    let shared = s.shared_ring();
                    let _ = shared;
                    s.ring_mut(BufKind::Write).shrink_last(r, padded)
                } else {
                    r
                };
                // Pad the command length to whole LBAs.
                let cmd_len = new_fill.div_ceil(LBA) * LBA;
                s.xfers.get_mut(&xfer_id).unwrap().outstanding_segments += 1;
                s.xfers.get_mut(&xfer_id).unwrap().bytes += new_fill;
                s.pending.push_back(PendingCmd::Write {
                    nvme_addr,
                    len: cmd_len,
                    region: shrunk,
                    xfer_id,
                });
                if final_now {
                    s.xfers.get_mut(&xfer_id).unwrap().sealed = true;
                    s.accum = None;
                }
                issue_needed = true;
            }
        }
        if issue_needed {
            try_issue(&rc2, en);
        }
        pump_write_in(&rc2, en);
    });
}

/// ② — issue pending commands: ROB slot + SQ slot (+ read buffer region),
/// write the SQE into the SQ FIFO, ring the SSD doorbell.
fn try_issue(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    {
        let s = rc.borrow();
        if !s.enabled || s.issuing || s.ssd_sq_doorbell == 0 {
            return;
        }
    }
    // One command per issue-pipeline slot.
    let issue = {
        let mut s = rc.borrow_mut();
        if s.pending.is_empty() || !s.rob.can_issue() || s.sq.is_full() {
            None
        } else {
            // Reads allocate their buffer region at issue time.
            let front_ok = match s.pending.front().unwrap() {
                PendingCmd::Read { len, .. } => {
                    let padded = len.div_ceil(PAGE) * PAGE;
                    let region = s.rd_ring.alloc(padded);
                    region.map(Some)
                }
                PendingCmd::Write { .. } => Some(None),
            };
            match front_ok {
                None => None,
                Some(read_region) => {
                    let cmd = s.pending.pop_front().unwrap();
                    Some((cmd, read_region))
                }
            }
        }
    };
    let Some((cmd, read_region)) = issue else {
        return;
    };

    // Build the SQE.
    let (sqe_no_cid, info, kind, region, len) = {
        let issued_at = en.now();
        match cmd {
            PendingCmd::Read {
                nvme_addr,
                len,
                last_of_xfer,
            } => {
                let region = read_region.expect("read region allocated");
                let span = if trace::enabled() {
                    trace::begin(
                        en,
                        &rc.borrow().track,
                        "cmd.read",
                        &[("nvme_addr", nvme_addr), ("len", len)],
                    )
                } else {
                    trace::SpanId::NONE
                };
                let sqe = Sqe::io(IoOpcode::Read, 0, nvme_addr / LBA, (len / LBA - 1) as u16);
                (
                    sqe,
                    CmdInfo::Read {
                        region,
                        nvme_addr,
                        len,
                        last_of_xfer,
                        span,
                        issued_at,
                        attempts: 0,
                    },
                    BufKind::Read,
                    region,
                    len,
                )
            }
            PendingCmd::Write {
                nvme_addr,
                len,
                region,
                xfer_id,
            } => {
                let span = if trace::enabled() {
                    trace::begin(
                        en,
                        &rc.borrow().track,
                        "cmd.write",
                        &[("nvme_addr", nvme_addr), ("len", len)],
                    )
                } else {
                    trace::SpanId::NONE
                };
                let sqe = Sqe::io(IoOpcode::Write, 0, nvme_addr / LBA, (len / LBA - 1) as u16);
                (
                    sqe,
                    CmdInfo::Write {
                        region,
                        nvme_addr,
                        len,
                        xfer_id,
                        span,
                        issued_at,
                        attempts: 0,
                    },
                    BufKind::Write,
                    region,
                    len,
                )
            }
        }
    };

    let (tail, doorbell, fabric, node, delay, cid, timeout) = {
        let mut s = rc.borrow_mut();
        let cid = s.rob.issue(info);
        let tail = s.push_sqe(en, sqe_no_cid, cid, kind, region, len);
        s.metrics.cmds_issued.inc();
        match kind {
            BufKind::Read => s.metrics.read_cmds.inc(),
            BufKind::Write => s.metrics.write_cmds.inc(),
        }
        s.metrics.doorbells.inc();
        s.issuing = true;
        (
            tail,
            s.ssd_sq_doorbell,
            s.fabric.clone(),
            s.node,
            s.cfg.cmd_issue_latency,
            cid,
            s.cfg.retry.cmd_timeout,
        )
    };

    if trace::enabled() {
        let track = rc.borrow().track.clone();
        trace::instant(en, &track, "db.sq", &[("tail", u64::from(tail))]);
    }
    // Ring the SSD doorbell (P2P posted write).
    let _ = fabric
        .borrow_mut()
        .write_u32(en, node, doorbell, tail as u32);
    if let Some(after) = timeout {
        arm_cmd_timeout(rc, en, cid, 0, after);
    }

    // Issue pipeline: next command after the issue latency.
    let rc2 = rc.clone();
    en.schedule_in(delay, move |en| {
        rc2.borrow_mut().issuing = false;
        try_issue(&rc2, en);
    });
}

/// ⑤ — drain new CQEs out of the CQ window memory.
fn process_cq(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    {
        let s = rc.borrow();
        if s.cq_busy {
            return;
        }
    }
    rc.borrow_mut().cq_busy = true;
    rc.borrow().metrics.cq_events.inc();
    let mut reaped = 0u32;
    loop {
        let cqe = {
            let mut s = rc.borrow_mut();
            let off = s.cq_ring.head_addr() - s.windows.cq.base;
            let raw = {
                let mut mem = s.cq_mem.borrow_mut();
                mem.mem_mut().read_vec(off, 16)
            };
            match Cqe::decode(&raw) {
                Ok(cqe) if cqe.phase == s.cq_ring.expected_phase() => {
                    s.cq_ring.consume();
                    Some(cqe)
                }
                // Wrong phase (nothing new) or malformed slot: stop reaping.
                _ => None,
            }
        };
        let Some(cqe) = cqe else {
            break;
        };
        reaped += 1;
        if trace::enabled() {
            let track = rc.borrow().track.clone();
            trace::instant(en, &track, "cqe", &[("cid", u64::from(cqe.cid))]);
        }
        let retry = {
            let mut s = rc.borrow_mut();
            s.metrics.cqes_consumed.inc();
            let head = cqe.sq_head % s.sq.entries();
            s.sq.update_head(head);
            handle_completion(&mut s, en, cqe.cid, cqe.status)
        };
        if let Some((new_cid, delay)) = retry {
            let rc2 = rc.clone();
            en.schedule_in(delay, move |en| reissue_cmd(&rc2, en, new_cid));
        }
    }
    rc.borrow_mut().cq_busy = false;
    if reaped > 0 {
        drain_retry_q(rc, en);
        // Update the SSD's CQ head doorbell (accounting traffic).
        let (fabric, node, db, head) = {
            let s = rc.borrow();
            (
                s.fabric.clone(),
                s.node,
                s.ssd_cq_doorbell,
                s.cq_ring.head(),
            )
        };
        if db != 0 {
            if trace::enabled() {
                let track = rc.borrow().track.clone();
                trace::instant(en, &track, "db.cq", &[("head", u64::from(head))]);
            }
            let _ = fabric.borrow_mut().write_u32(en, node, db, head as u32);
        }
        try_retire(rc, en);
        try_issue(rc, en);
        pump_write_in(rc, en);
    }
}

/// ⑤ — resolve one completion against the ROB and the retry policy.
///
/// Success: mark complete (counting a recovery if the command had been
/// retried). Transient error with attempts left: re-arm the command under
/// a fresh cid via [`CommandRob::replay`] — it keeps its slot in the
/// retirement order, so in-order delivery survives — and return
/// `Some((new_cid, backoff))` for the caller to schedule the re-issue.
/// Otherwise: give up and retire with the error (reads stream zeros,
/// writes still answer the PE), counting the loss in `gave_up`.
///
/// Runs with the streamer borrow held; must not schedule (SL006).
fn handle_completion(
    s: &mut NvmeStreamer,
    en: &mut Engine,
    cid: u16,
    status: spec::Status,
) -> Option<(u16, SimDuration)> {
    if status == spec::Status::Success {
        if let Some(info) = s.rob.payload(cid) {
            if info.attempts() > 0 {
                s.metrics.recovered.inc();
                s.metrics
                    .retry_latency_us
                    .record(en.now().since(info.issued_at()).as_us_f64());
                if trace::enabled() {
                    trace::instant(en, &s.track, "retry.recovered", &[("cid", u64::from(cid))]);
                }
            }
        }
        s.rob.complete(cid, true);
        return None;
    }
    s.metrics.errors.inc();
    let policy = s.cfg.retry;
    let attempts = match s.rob.payload(cid) {
        Some(i) => i.attempts(),
        // Stale cid: a late CQE for a command already replayed or retired.
        None => return None,
    };
    if status.is_transient() && attempts < policy.max_retries {
        if let Some(rf) = &s.regfile {
            rf.borrow_mut().clear(cid);
        }
        let new_cid = s.rob.replay(cid).expect("payload checked above");
        let info = s.rob.payload_mut(new_cid).expect("just replayed");
        info.bump_attempts();
        let attempt = info.attempts();
        s.metrics.retries.inc();
        if trace::enabled() {
            trace::instant(
                en,
                &s.track,
                "retry.scheduled",
                &[
                    ("old_cid", u64::from(cid)),
                    ("cid", u64::from(new_cid)),
                    ("attempt", u64::from(attempt)),
                ],
            );
        }
        Some((new_cid, policy.backoff_for(attempt)))
    } else {
        s.metrics.gave_up.inc();
        if trace::enabled() {
            trace::instant(en, &s.track, "retry.gave_up", &[("cid", u64::from(cid))]);
        }
        s.rob.complete(cid, false);
        None
    }
}

/// Re-issue a replayed command once its backoff elapsed. The fresh cid
/// was assigned by [`CommandRob::replay`] at failure time; only the SQE
/// is rebuilt. Replays bypass the issue pipeline (`issuing`) — the model
/// gives recovery a dedicated slot, like the replay port of a hardware
/// ROB — but still need a free SQ slot; if the SQ is full the command
/// parks in `retry_q` until completions free space.
fn reissue_cmd(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine, cid: u16) {
    let out = {
        let mut s = rc.borrow_mut();
        let Some(info) = s.rob.payload(cid) else {
            return; // already given up on (e.g. a timeout raced the backoff)
        };
        let (op, nvme_addr, len, kind, region) = info.reissue_parts();
        let attempts = info.attempts();
        if s.sq.is_full() {
            s.retry_q.push_back(cid);
            return;
        }
        let sqe = Sqe::io(op, 0, nvme_addr / LBA, (len / LBA - 1) as u16);
        let tail = s.push_sqe(en, sqe, cid, kind, region, len);
        s.metrics.doorbells.inc();
        if trace::enabled() {
            trace::instant(
                en,
                &s.track,
                "retry.reissue",
                &[("cid", u64::from(cid)), ("attempt", u64::from(attempts))],
            );
        }
        (
            tail,
            s.ssd_sq_doorbell,
            s.fabric.clone(),
            s.node,
            s.cfg.retry.cmd_timeout,
            attempts,
        )
    };
    let (tail, doorbell, fabric, node, timeout, attempts) = out;
    let _ = fabric
        .borrow_mut()
        .write_u32(en, node, doorbell, tail as u32);
    if let Some(after) = timeout {
        arm_cmd_timeout(rc, en, cid, attempts, after);
    }
}

/// Drain parked replays once completions freed SQ slots.
fn drain_retry_q(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    loop {
        let cid = {
            let mut s = rc.borrow_mut();
            if s.sq.is_full() {
                return;
            }
            match s.retry_q.pop_front() {
                Some(c) => c,
                None => return,
            }
        };
        reissue_cmd(rc, en, cid);
    }
}

/// Arm a completion timeout for `(cid, attempts)`. A timer is stale — and
/// does nothing — if the command completed, retired, or was replayed
/// under a new cid in the meantime (the attempt count disambiguates cid
/// reuse). A live expiry is treated exactly like a transient-error CQE:
/// retry if the policy allows, give up otherwise.
fn arm_cmd_timeout(
    rc: &Rc<RefCell<NvmeStreamer>>,
    en: &mut Engine,
    cid: u16,
    attempts: u32,
    after: SimDuration,
) {
    let rc2 = rc.clone();
    en.schedule_in(after, move |en| {
        let retry = {
            let mut s = rc2.borrow_mut();
            let live = s.rob.payload(cid).is_some_and(|i| i.attempts() == attempts)
                && s.rob.is_complete(cid) == Some(false);
            if !live {
                return;
            }
            s.metrics.timeouts.inc();
            if trace::enabled() {
                trace::instant(en, &s.track, "cmd.timeout", &[("cid", u64::from(cid))]);
            }
            // A lost command is indistinguishable from a transient
            // transport failure — run the same retry decision.
            handle_completion(&mut s, en, cid, spec::Status::DataTransferError)
        };
        match retry {
            Some((new_cid, delay)) => {
                let rc3 = rc2.clone();
                en.schedule_in(delay, move |en| reissue_cmd(&rc3, en, new_cid));
            }
            None => {
                // Gave up: the head may now be retirable.
                try_retire(&rc2, en);
                try_issue(&rc2, en);
                pump_write_in(&rc2, en);
            }
        }
    });
}

/// ⑥ — in-order retirement: writes free buffer + emit responses; reads
/// stream their data to the PE before freeing.
fn try_retire(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    loop {
        if rc.borrow().active_stream.is_some() {
            return; // a read is mid-stream; its completion resumes us
        }
        enum Next {
            Write,
            Read,
            None,
        }
        let next = {
            let s = rc.borrow();
            match s.rob.front_ready() {
                Some((_, _, CmdInfo::Write { .. })) => {
                    // Need response space before committing (tokens are
                    // emitted from retirement).
                    Next::Write
                }
                Some((_, _, CmdInfo::Read { .. })) => Next::Read,
                None => Next::None,
            }
        };
        match next {
            Next::None => return,
            Next::Write => {
                {
                    let mut s = rc.borrow_mut();
                    let (cid, _ok, info) = s.rob.retire_front();
                    if let Some(rf) = &s.regfile {
                        rf.borrow_mut().clear(cid);
                    }
                    let CmdInfo::Write {
                        region,
                        xfer_id,
                        span,
                        issued_at,
                        ..
                    } = info
                    else {
                        unreachable!()
                    };
                    trace::end(en, span);
                    s.metrics
                        .cmd_latency_us
                        .record(en.now().since(issued_at).as_us_f64());
                    s.ring_mut(BufKind::Write).free_oldest(region);
                    let x = s.xfers.get_mut(&xfer_id).expect("xfer tracked");
                    x.outstanding_segments -= 1;
                }
                finish_xfers(rc, en);
                try_issue(rc, en);
                pump_write_in(rc, en);
            }
            Next::Read => {
                // Begin streaming the head read's data (retire when done).
                {
                    let mut s = rc.borrow_mut();
                    let (_cid, _ok, info) = s
                        .rob
                        .front_ready()
                        .map(|(c, o, i)| (c, o, i.clone()))
                        .expect("front ready");
                    let CmdInfo::Read {
                        region,
                        len,
                        last_of_xfer,
                        ..
                    } = info
                    else {
                        unreachable!()
                    };
                    s.active_stream = Some(ReadStream {
                        region,
                        len,
                        issued: 0,
                        delivered: 0,
                        last_of_xfer,
                        waiting_space: false,
                        inflight: 0,
                    });
                }
                stream_out_step(rc, en);
                if rc.borrow().active_stream.is_some() {
                    return; // still streaming asynchronously
                }
            }
        }
    }
}

/// Emit response tokens for write transfers whose segments all retired.
fn finish_xfers(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    loop {
        let (done_id, bytes) = {
            let s = rc.borrow();
            match s
                .xfers
                .iter()
                .find(|(_, x)| x.sealed && x.outstanding_segments == 0)
            {
                Some((&id, x)) => (id, x.bytes),
                None => return,
            }
        };
        let ch = rc.borrow().ports.wr_resp.clone();
        let token = StreamBeat::last(bytes.to_le_bytes().to_vec());
        if !axis::push(&ch, en, token) {
            return; // response channel full; its space hook retries
        }
        let mut s = rc.borrow_mut();
        s.xfers.remove(&done_id);
        s.metrics.responses.inc();
    }
}

/// Continue the active read stream-out: keep up to [`STREAM_PREFETCH`]
/// buffer reads in flight; beats are pushed in order as reads complete
/// (buffer resources serve FIFO, so completion order matches issue
/// order).
fn stream_out_step(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    loop {
        enum Next {
            Done,
            Wait,
            Issue(Region, u64, u64, bool, u64),
        }
        let next = {
            let mut s = rc.borrow_mut();
            let stream_chunk = s.cfg.stream_chunk;
            let rd_data = s.ports.rd_data.clone();
            let Some(st) = &mut s.active_stream else {
                return;
            };
            if st.delivered >= st.len {
                // Finished: retire the head read, free its buffer.
                let (cid, _ok, info) = s.rob.retire_front();
                if let Some(rf) = &s.regfile {
                    rf.borrow_mut().clear(cid);
                }
                let CmdInfo::Read {
                    region,
                    span,
                    issued_at,
                    ..
                } = info
                else {
                    unreachable!()
                };
                trace::end(en, span);
                s.metrics
                    .cmd_latency_us
                    .record(en.now().since(issued_at).as_us_f64());
                s.rd_ring.free_oldest(region);
                s.active_stream = None;
                Next::Done
            } else if st.issued < st.len && st.inflight < STREAM_PREFETCH {
                let chunk = stream_chunk.min(st.len - st.issued);
                // Reserve output space for everything in flight plus this
                // chunk so completed reads can always push their beat.
                let reserve = (st.inflight as u64 + 1) * stream_chunk;
                if !rd_data.borrow().has_space(reserve as usize) {
                    st.waiting_space = true;
                    Next::Wait
                } else {
                    st.waiting_space = false;
                    st.inflight += 1;
                    let pos = st.issued;
                    st.issued += chunk;
                    let out = Next::Issue(st.region, pos, chunk, st.last_of_xfer, st.len);
                    s.metrics.bytes_to_pe.add(chunk);
                    out
                }
            } else {
                // Pipeline full (or all issued): completions drive progress.
                Next::Wait
            }
        };
        match next {
            Next::Done => {
                // Head retired; continue the retire loop and re-arm issue.
                try_retire(rc, en);
                try_issue(rc, en);
                return;
            }
            Next::Wait => return,
            Next::Issue(region, pos, chunk, last_of_xfer, total) => {
                let (data, t) = buf_read_payload(
                    rc,
                    en,
                    en.now(),
                    BufKind::Read,
                    region.offset + pos,
                    chunk as usize,
                );
                let is_last_beat = last_of_xfer && pos + chunk == total;
                let rc2 = rc.clone();
                en.schedule_at(t.max(en.now()), move |en| {
                    let ch = rc2.borrow().ports.rd_data.clone();
                    let beat = StreamBeat {
                        data,
                        last: is_last_beat,
                    };
                    let ok = axis::push(&ch, en, beat);
                    debug_assert!(ok, "space was reserved at issue");
                    {
                        let mut s = rc2.borrow_mut();
                        if let Some(st) = &mut s.active_stream {
                            st.inflight -= 1;
                            st.delivered += chunk;
                        }
                    }
                    stream_out_step(&rc2, en);
                });
                // Loop: try to issue more prefetches right away.
            }
        }
    }
}

/// Resume a stream-out stalled on PE backpressure.
fn resume_stream_out(rc: &Rc<RefCell<NvmeStreamer>>, en: &mut Engine) {
    let waiting = rc
        .borrow()
        .active_stream
        .as_ref()
        .map(|s| s.waiting_space)
        .unwrap_or(false);
    if waiting {
        stream_out_step(rc, en);
    }
}
