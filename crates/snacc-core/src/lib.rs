//! # snacc-core — the SNAcc NVMe Streamer
//!
//! The paper's primary contribution (Sec 4): an FPGA IP that gives
//! user-defined streaming accelerators autonomous access to an NVMe SSD
//! over PCIe peer-to-peer, with no host involvement after initialisation.
//!
//! * [`config`] — the three buffer variants (URAM / on-board DRAM / host
//!   DRAM, Sec 4.3), queue depth, command splitting size, and the
//!   out-of-order retirement extension (Sec 7).
//! * [`ring`] — the circular 4 KiB-aligned data-buffer allocator.
//! * [`rob`] — completion tracking: out-of-order completion bits,
//!   in-order retirement (Sec 4.2), plus the Sec 7 OoO-issue extension.
//! * [`prpgen`] — on-the-fly PRP synthesis: the URAM bit-22 address-space
//!   doubling scheme (Fig 2) and the command-indexed register-file scheme
//!   used by the DRAM variants (Fig 3), including the host-DRAM segment
//!   table for stitched 4 MB pinned buffers.
//! * [`streamer`] — the NVMe Streamer IP: the four AXI4-Stream user
//!   interfaces (Sec 4.1), SQ FIFO + CQ reorder buffer exposed to the SSD,
//!   1 MB command splitting, doorbell rings, data movement between the
//!   buffer memory and the user PE.
//! * [`hostinit`] — the host-side initialisation driver (Sec 4.6): NVMe
//!   admin bring-up, I/O queue creation pointing *into the FPGA BAR*,
//!   streamer configuration, IOMMU grants, pinned-buffer allocation.
//! * [`plugin`] — the TaPaSCo plugin that instantiates the subsystem
//!   (Sec 4.5).
//! * [`resources`] — per-variant FPGA resource composition (Table 1).
//! * [`multi`] — the multi-SSD extension (Sec 7).

#![deny(missing_docs)]

pub mod config;
pub mod hostinit;
pub mod multi;
pub mod plugin;
pub mod prpgen;
pub mod resources;
pub mod ring;
pub mod rob;
pub mod streamer;

pub use config::{RetirementMode, StreamerConfig, StreamerVariant};
pub use hostinit::SnaccHostDriver;
pub use plugin::NvmeSubsystem;
pub use streamer::{StreamerHandle, UserPorts};
