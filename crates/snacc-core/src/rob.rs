//! Completion tracking and retirement ordering.
//!
//! The streamer's completion queue is "a reorder buffer containing the
//! necessary information to finalize processing for each command, along
//! with one bit indicating its completion status. While the completion
//! bits may be set out-of-order, the NVMe Streamer processes them
//! in-order" (paper Sec 4.2). This module is that structure, generic over
//! the per-command payload, with the Sec 7 out-of-order issue extension
//! as a mode switch.

use crate::config::RetirementMode;
use std::collections::{HashMap, VecDeque};

/// One tracked command.
#[derive(Debug)]
struct RobEntry<T> {
    payload: T,
    complete: bool,
    ok: bool,
}

/// The reorder buffer.
pub struct CommandRob<T> {
    depth: u16,
    mode: RetirementMode,
    next_cid: u16,
    entries: HashMap<u16, RobEntry<T>>,
    /// Issue order (front = oldest).
    order: VecDeque<u16>,
    /// Commands issued to the device and not yet completed.
    inflight_device: u16,
}

impl<T> CommandRob<T> {
    /// A ROB for `depth` in-flight commands under the given policy.
    pub fn new(depth: u16, mode: RetirementMode) -> Self {
        assert!(depth > 0);
        CommandRob {
            depth,
            mode,
            next_cid: 0,
            entries: HashMap::new(),
            order: VecDeque::new(),
            inflight_device: 0,
        }
    }

    /// Retirement policy.
    pub fn mode(&self) -> RetirementMode {
        self.mode
    }

    /// May a new command be issued right now?
    ///
    /// * In-order: the window counts every unretired command — this is the
    ///   paper's "issues new commands only after the first previous
    ///   command is completed" head-of-line constraint.
    /// * Out-of-order: only device-inflight commands count.
    pub fn can_issue(&self) -> bool {
        match self.mode {
            RetirementMode::InOrder => (self.order.len() as u16) < self.depth,
            RetirementMode::OutOfOrder => self.inflight_device < self.depth,
        }
    }

    /// Track a newly issued command; returns its command id.
    pub fn issue(&mut self, payload: T) -> u16 {
        assert!(self.can_issue(), "issue() without can_issue()");
        let cid = self.next_cid;
        self.next_cid = (self.next_cid + 1) % 4096;
        let prev = self.entries.insert(
            cid,
            RobEntry {
                payload,
                complete: false,
                ok: false,
            },
        );
        assert!(prev.is_none(), "cid collision — window exceeds cid space");
        self.order.push_back(cid);
        self.inflight_device += 1;
        cid
    }

    /// Mark a command complete (a CQE arrived). Unknown cids are ignored
    /// (a spurious/duplicate completion).
    pub fn complete(&mut self, cid: u16, ok: bool) {
        if let Some(e) = self.entries.get_mut(&cid) {
            if !e.complete {
                e.complete = true;
                e.ok = ok;
                self.inflight_device -= 1;
            }
        }
    }

    /// Commands tracked (issued, unretired).
    pub fn len(&self) -> usize {
        self.order.len()
    }

    /// Is the ROB empty?
    pub fn is_empty(&self) -> bool {
        self.order.is_empty()
    }

    /// Commands at the device (issued, not yet completed).
    pub fn inflight_device(&self) -> u16 {
        self.inflight_device
    }

    /// Re-arm an in-flight command for replay under a fresh cid, keeping
    /// its slot in the retirement order — in-order delivery survives the
    /// retry because the command never leaves the queue. Returns the new
    /// cid, or `None` if `cid` is unknown or already completed. The entry
    /// stays incomplete and device-inflight, so a late CQE still carrying
    /// the old cid becomes a harmless no-op in [`CommandRob::complete`].
    pub fn replay(&mut self, cid: u16) -> Option<u16> {
        if self.entries.get(&cid).is_none_or(|e| e.complete) {
            return None;
        }
        let mut new_cid = self.next_cid;
        // Skip cids still tracked (reachable when replays lap the
        // monotonic counter inside the 4096-cid space).
        while self.entries.contains_key(&new_cid) {
            new_cid = (new_cid + 1) % 4096;
        }
        self.next_cid = (new_cid + 1) % 4096;
        let entry = self.entries.remove(&cid).expect("checked above");
        self.entries.insert(new_cid, entry);
        let slot = self
            .order
            .iter()
            .position(|&c| c == cid)
            .expect("tracked cid is ordered");
        self.order[slot] = new_cid;
        Some(new_cid)
    }

    /// Completion flag of a tracked command (`None` if untracked).
    pub fn is_complete(&self, cid: u16) -> Option<bool> {
        self.entries.get(&cid).map(|e| e.complete)
    }

    /// Payload of a tracked command.
    pub fn payload(&self, cid: u16) -> Option<&T> {
        self.entries.get(&cid).map(|e| &e.payload)
    }

    /// Mutable payload of a tracked command.
    pub fn payload_mut(&mut self, cid: u16) -> Option<&mut T> {
        self.entries.get_mut(&cid).map(|e| &mut e.payload)
    }

    /// The oldest command, if it has completed: `(cid, ok, &payload)`.
    pub fn front_ready(&self) -> Option<(u16, bool, &T)> {
        let cid = *self.order.front()?;
        let e = &self.entries[&cid];
        e.complete.then_some((cid, e.ok, &e.payload))
    }

    /// Retire the oldest command (must be complete). Returns its payload.
    pub fn retire_front(&mut self) -> (u16, bool, T) {
        let cid = *self.order.front().expect("retire on empty ROB");
        let e = self.entries.get(&cid).expect("entry exists");
        assert!(e.complete, "retiring an incomplete command");
        self.order.pop_front();
        let e = self.entries.remove(&cid).expect("entry exists");
        (cid, e.ok, e.payload)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use proptest::prelude::*;

    #[test]
    fn in_order_retirement_despite_ooo_completion() {
        let mut rob = CommandRob::new(4, RetirementMode::InOrder);
        let a = rob.issue("a");
        let b = rob.issue("b");
        let c = rob.issue("c");
        rob.complete(c, true);
        rob.complete(b, true);
        assert!(rob.front_ready().is_none(), "head incomplete");
        rob.complete(a, true);
        assert_eq!(rob.retire_front().2, "a");
        assert_eq!(rob.retire_front().2, "b");
        assert_eq!(rob.retire_front().2, "c");
        assert!(rob.is_empty());
    }

    #[test]
    fn in_order_issue_window_blocks_on_head() {
        let mut rob = CommandRob::new(2, RetirementMode::InOrder);
        let a = rob.issue(0);
        let b = rob.issue(1);
        assert!(!rob.can_issue());
        // Completing the *younger* command does not open the window.
        rob.complete(b, true);
        assert!(!rob.can_issue());
        // Completing and retiring the head does.
        rob.complete(a, true);
        rob.retire_front();
        assert!(rob.can_issue());
    }

    #[test]
    fn ooo_issue_window_opens_on_any_completion() {
        let mut rob = CommandRob::new(2, RetirementMode::OutOfOrder);
        let _a = rob.issue(0);
        let b = rob.issue(1);
        assert!(!rob.can_issue());
        rob.complete(b, true);
        assert!(rob.can_issue(), "OoO frees the slot at completion");
        // Retirement (data delivery) is still in-order.
        assert!(rob.front_ready().is_none());
    }

    #[test]
    fn error_status_propagates() {
        let mut rob = CommandRob::new(2, RetirementMode::InOrder);
        let a = rob.issue("x");
        rob.complete(a, false);
        let (cid, ok, _) = rob.retire_front();
        assert_eq!(cid, a);
        assert!(!ok);
    }

    #[test]
    fn replay_preserves_retirement_order() {
        let mut rob = CommandRob::new(4, RetirementMode::InOrder);
        let a = rob.issue("a");
        let b = rob.issue("b");
        let c = rob.issue("c");
        // The middle command failed transiently and is replayed.
        let b2 = rob.replay(b).expect("b is replayable");
        assert_ne!(b2, b);
        // A late CQE for the old cid is ignored.
        rob.complete(b, false);
        assert_eq!(rob.inflight_device(), 3);
        rob.complete(a, true);
        rob.complete(c, true);
        rob.complete(b2, true);
        assert_eq!(rob.retire_front().2, "a");
        let (cid, ok, p) = rob.retire_front();
        assert_eq!((cid, ok, p), (b2, true, "b"));
        assert_eq!(rob.retire_front().2, "c");
    }

    #[test]
    fn replay_of_unknown_or_complete_cid_refused() {
        let mut rob = CommandRob::new(2, RetirementMode::InOrder);
        assert_eq!(rob.replay(9), None);
        let a = rob.issue(());
        rob.complete(a, true);
        assert_eq!(rob.replay(a), None);
    }

    #[test]
    fn duplicate_completion_ignored() {
        let mut rob = CommandRob::new(2, RetirementMode::InOrder);
        let a = rob.issue(());
        rob.complete(a, true);
        rob.complete(a, true);
        assert_eq!(rob.inflight_device(), 0);
    }

    proptest! {
        /// For any completion permutation, retirement yields payloads in
        /// exact issue order.
        #[test]
        fn retires_in_issue_order(n in 1usize..64, perm_seed in any::<u64>()) {
            let mut rob = CommandRob::new(64, RetirementMode::InOrder);
            let cids: Vec<u16> = (0..n).map(|i| rob.issue(i)).collect();
            // Deterministic shuffle of completion order.
            let mut order: Vec<usize> = (0..n).collect();
            let mut s = perm_seed;
            for i in (1..n).rev() {
                s = s.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
                let j = (s >> 33) as usize % (i + 1);
                order.swap(i, j);
            }
            let mut retired = Vec::new();
            for &i in &order {
                rob.complete(cids[i], true);
                while rob.front_ready().is_some() {
                    retired.push(rob.retire_front().2);
                }
            }
            prop_assert_eq!(retired, (0..n).collect::<Vec<_>>());
        }

        /// OoO mode: inflight_device never exceeds depth, and every issued
        /// command eventually retires exactly once.
        #[test]
        fn ooo_conserves_commands(total in 1usize..300) {
            let depth = 8u16;
            let mut rob = CommandRob::new(depth, RetirementMode::OutOfOrder);
            let mut issued = 0usize;
            let mut pending: Vec<u16> = Vec::new();
            let mut retired = 0usize;
            let mut s = 12345u64;
            while retired < total {
                if issued < total && rob.can_issue() {
                    pending.push(rob.issue(issued));
                    issued += 1;
                } else if !pending.is_empty() {
                    s = s.wrapping_mul(6364136223846793005).wrapping_add(7);
                    let i = (s >> 33) as usize % pending.len();
                    let cid = pending.swap_remove(i);
                    rob.complete(cid, true);
                }
                while rob.front_ready().is_some() {
                    rob.retire_front();
                    retired += 1;
                }
                prop_assert!(rob.inflight_device() <= depth);
            }
            prop_assert_eq!(retired, total);
            prop_assert!(rob.is_empty());
        }
    }
}
