//! Streamer retry/recovery under deterministic NVMe fault injection:
//! in-order delivery survives replays, the retry budget is honoured, and
//! the accounting never loses a fault
//! (`injected == retries + gave_up` for command-error campaigns).

use snacc_core::config::{RetryPolicy, StreamerConfig, StreamerVariant};
use snacc_core::hostinit::SnaccHostDriver;
use snacc_core::plugin::NvmeSubsystem;
use snacc_core::streamer::{encode_read_cmd, StreamerHandle};
use snacc_fpga::axis;
use snacc_fpga::tapasco::TapascoShell;
use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::{IoFaultConfig, NvmeDeviceHandle, NvmeProfile};
use snacc_pcie::target::HostMemTarget;
use snacc_pcie::{Iommu, PcieFabric, HOST_NODE};
use snacc_sim::{Engine, SimDuration};
use std::cell::RefCell;
use std::rc::Rc;

const SHELL_BAR: u64 = 0x4_0000_0000;
const NVME_BAR: u64 = 0x8_0000_0000;

fn build(
    variant: StreamerVariant,
    retry: RetryPolicy,
) -> (Engine, StreamerHandle, NvmeDeviceHandle) {
    let mut en = Engine::new();
    let mut fabric = PcieFabric::new();
    fabric.set_iommu(Iommu::new());
    let hostmem = Rc::new(RefCell::new(HostMemory::default()));
    let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
    fabric.map_region(HOST_NODE, AddrRange::new(0, 8 << 30), t);
    let fabric = Rc::new(RefCell::new(fabric));
    let mut shell = TapascoShell::new(fabric.clone(), SHELL_BAR);
    let mut cfg = StreamerConfig::snacc(variant);
    cfg.retry = retry;
    let mut plugin = NvmeSubsystem::new(cfg);
    shell.apply_plugin(&mut en, &mut plugin);
    let streamer = plugin.streamer();
    let nvme = NvmeDeviceHandle::attach(fabric.clone(), NVME_BAR, NvmeProfile::samsung_990pro(), 3);
    fabric
        .borrow_mut()
        .iommu_mut()
        .grant(nvme.node(), AddrRange::new(0x1_0000_0000, 1 << 20));
    let mut driver = SnaccHostDriver::new(fabric.clone(), hostmem, nvme.clone());
    driver.bring_up(&mut en, &streamer, 1).expect("bring-up");
    (en, streamer, nvme)
}

fn policy(max_retries: u32) -> RetryPolicy {
    RetryPolicy {
        max_retries,
        backoff: SimDuration::from_us(10),
        cmd_timeout: None,
    }
}

/// Drive `count` sequential reads of `len` bytes and return the delivered
/// bytes per read (delivery order == issue order by construction of the
/// single data stream).
fn read_all(en: &mut Engine, streamer: &StreamerHandle, count: u64, len: u64) -> Vec<Vec<u8>> {
    let ports = streamer.ports();
    let mut out = Vec::new();
    for i in 0..count {
        let cmd = encode_read_cmd(i * len, len);
        while !axis::push(&ports.rd_cmd, en, cmd.clone()) {
            assert!(en.step(), "stalled pushing read cmd");
        }
    }
    for _ in 0..count {
        let mut data = Vec::new();
        loop {
            match axis::pop(&ports.rd_data, en) {
                Some(beat) => {
                    let last = beat.last;
                    data.extend_from_slice(&beat.data);
                    if last {
                        break;
                    }
                }
                None => assert!(en.step(), "read stream stalled"),
            }
        }
        out.push(data);
    }
    en.run();
    out
}

/// Baseline deltas: the metric counters are process-wide and accumulate
/// across systems within a test thread.
struct MetricBase {
    errors: u64,
    retries: u64,
    recovered: u64,
    gave_up: u64,
    timeouts: u64,
}

fn snap(streamer: &StreamerHandle) -> MetricBase {
    let m = streamer.metrics();
    MetricBase {
        errors: m.errors.get(),
        retries: m.retries.get(),
        recovered: m.recovered.get(),
        gave_up: m.gave_up.get(),
        timeouts: m.timeouts.get(),
    }
}

#[test]
fn transient_errors_recover_with_exact_data() {
    let (mut en, streamer, nvme) = build(StreamerVariant::Uram, policy(3));
    let (count, len) = (24u64, 128u64 * 1024);
    nvme.with(|d| d.nand_mut().prewarm(0, count * len, 0xC3));
    nvme.install_faults(IoFaultConfig::error_only(0.2, 77));
    let base = snap(&streamer);
    let reads = read_all(&mut en, &streamer, count, len);
    let m = streamer.metrics();
    let injected = nvme.fault_stats().errors;
    assert!(injected > 0, "campaign must inject at this rate");
    assert!(
        m.recovered.get() - base.recovered > 0,
        "retries must recover"
    );
    assert_eq!(
        m.gave_up.get() - base.gave_up,
        0,
        "budget covers 20% errors"
    );
    // Recovery is invisible to the consumer: every read delivers its
    // exact media bytes, in issue order.
    for (i, data) in reads.iter().enumerate() {
        assert_eq!(data.len() as u64, len, "read {i} length");
        assert!(
            data.iter().all(|&b| b == 0xC3),
            "read {i} must carry media bytes, not zeros"
        );
    }
}

#[test]
fn fault_accounting_is_conserved() {
    for variant in StreamerVariant::all() {
        let (mut en, streamer, nvme) = build(variant, policy(2));
        let (count, len) = (16u64, 64u64 * 1024);
        nvme.with(|d| d.nand_mut().prewarm(0, count * len, 0x11));
        nvme.install_faults(IoFaultConfig::error_only(0.25, 5));
        let base = snap(&streamer);
        let _ = read_all(&mut en, &streamer, count, len);
        let m = streamer.metrics();
        let injected = nvme.fault_stats().errors;
        let errors = m.errors.get() - base.errors;
        let retries = m.retries.get() - base.retries;
        let gave_up = m.gave_up.get() - base.gave_up;
        assert!(injected > 0, "{variant:?}: campaign must inject");
        assert_eq!(errors, injected, "{variant:?}: every fault surfaces");
        assert_eq!(
            injected,
            retries + gave_up,
            "{variant:?}: every fault is retried or given up"
        );
    }
}

#[test]
fn exhausted_budget_gives_up_without_wedging() {
    // Rate 1.0: every attempt fails, so each command burns its full
    // budget (2 retries) and then gives up; reads still deliver a full
    // (zeroed) stream so the PE protocol never stalls.
    let (mut en, streamer, nvme) = build(StreamerVariant::Uram, policy(2));
    let (count, len) = (4u64, 64u64 * 1024);
    nvme.install_faults(IoFaultConfig::error_only(1.0, 1));
    let base = snap(&streamer);
    let reads = read_all(&mut en, &streamer, count, len);
    let m = streamer.metrics();
    let gave_up = m.gave_up.get() - base.gave_up;
    let retries = m.retries.get() - base.retries;
    assert!(gave_up > 0, "nothing can survive rate 1.0");
    assert_eq!(retries, 2 * gave_up, "full budget spent before giving up");
    assert_eq!(m.recovered.get() - base.recovered, 0);
    for data in &reads {
        assert_eq!(data.len() as u64, len, "stream stays live");
        assert!(data.iter().all(|&b| b == 0), "given-up reads stream zeros");
    }
}

#[test]
fn retries_disabled_fail_fast() {
    // The default policy pre-dates the fault subsystem: transient errors
    // are terminal, counted as gave_up, and cost no retry traffic.
    let (mut en, streamer, nvme) = build(StreamerVariant::Uram, RetryPolicy::disabled());
    nvme.install_faults(IoFaultConfig::error_only(0.5, 3));
    let base = snap(&streamer);
    let _ = read_all(&mut en, &streamer, 8, 64 * 1024);
    let m = streamer.metrics();
    let injected = nvme.fault_stats().errors;
    assert!(injected > 0);
    assert_eq!(m.retries.get() - base.retries, 0);
    assert_eq!(m.gave_up.get() - base.gave_up, injected);
}

#[test]
fn latency_spikes_trigger_timeout_replay() {
    // A spike stalls the command past the timeout; the streamer declares
    // it lost and replays it. The spiked original eventually completes
    // under its stale cid and must be ignored (no double retirement).
    let mut cfg = policy(3);
    cfg.cmd_timeout = Some(SimDuration::from_us(900));
    let (mut en, streamer, nvme) = build(StreamerVariant::Uram, cfg);
    let (count, len) = (8u64, 64u64 * 1024);
    nvme.with(|d| d.nand_mut().prewarm(0, count * len, 0x3C));
    nvme.install_faults(IoFaultConfig {
        error_rate: 0.0,
        error_status: snacc_nvme::spec::Status::DataTransferError,
        latency_spike_rate: 0.3,
        latency_spike: SimDuration::from_us(5_000),
        window: None,
        seed: 21,
    });
    let base = snap(&streamer);
    let reads = read_all(&mut en, &streamer, count, len);
    let m = streamer.metrics();
    assert!(nvme.fault_stats().spikes > 0, "campaign must spike");
    assert!(m.timeouts.get() - base.timeouts > 0, "spikes must time out");
    assert!(m.recovered.get() - base.recovered > 0, "replays recover");
    assert_eq!(m.gave_up.get() - base.gave_up, 0);
    for (i, data) in reads.iter().enumerate() {
        assert_eq!(data.len() as u64, len);
        assert!(data.iter().all(|&b| b == 0x3C), "read {i} intact");
    }
}
