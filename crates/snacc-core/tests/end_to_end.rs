//! End-to-end streamer tests: full system bring-up (shell + SSD + host
//! driver) and data roundtrips through the user-PE stream interfaces for
//! all three buffer variants.

use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_core::hostinit::SnaccHostDriver;
use snacc_core::plugin::NvmeSubsystem;
use snacc_core::streamer::{encode_read_cmd, StreamerHandle};
use snacc_fpga::axis::{self, StreamBeat};
use snacc_fpga::tapasco::TapascoShell;
use snacc_mem::{fnv1a, AddrRange, HostMemory};
use snacc_nvme::{NvmeDeviceHandle, NvmeProfile};
use snacc_pcie::target::HostMemTarget;
use snacc_pcie::{Iommu, PcieFabric, HOST_NODE};
use snacc_sim::{Engine, SimRng};
use std::cell::RefCell;
use std::rc::Rc;

const SHELL_BAR: u64 = 0x4_0000_0000;
const NVME_BAR: u64 = 0x8_0000_0000;

pub struct System {
    pub en: Engine,
    pub fabric: Rc<RefCell<PcieFabric>>,
    pub hostmem: Rc<RefCell<HostMemory>>,
    pub streamer: StreamerHandle,
    pub nvme: NvmeDeviceHandle,
}

/// Build the full simulated node: host memory on the fabric, TaPaSCo
/// shell with the SNAcc plugin, NVMe SSD, enforcing IOMMU, host bring-up.
pub fn build_system(variant: StreamerVariant, enforce_iommu: bool) -> System {
    let mut en = Engine::new();
    let mut fabric = PcieFabric::new();
    if enforce_iommu {
        fabric.set_iommu(Iommu::new());
    }
    let hostmem = Rc::new(RefCell::new(HostMemory::default()));
    // Map host physical memory, covering the pinned region at 4 GiB.
    let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
    fabric.map_region(HOST_NODE, AddrRange::new(0, 8 << 30), t);
    let fabric = Rc::new(RefCell::new(fabric));

    let mut shell = TapascoShell::new(fabric.clone(), SHELL_BAR);
    let mut plugin = NvmeSubsystem::new(StreamerConfig::snacc(variant));
    shell.apply_plugin(&mut en, &mut plugin);
    let streamer = plugin.streamer();

    let nvme =
        NvmeDeviceHandle::attach(fabric.clone(), NVME_BAR, NvmeProfile::samsung_990pro(), 42);

    let mut driver = SnaccHostDriver::new(fabric.clone(), hostmem.clone(), nvme.clone());
    // Grant the SSD access to the driver's admin structures (the driver
    // grants data-path permissions during bring-up).
    if enforce_iommu {
        let mut fab = fabric.borrow_mut();
        // Admin SQ/CQ + identify buffer live in the first pinned pages.
        fab.iommu_mut()
            .grant(nvme.node(), AddrRange::new(0x1_0000_0000, 1 << 20));
    }
    let info = driver
        .bring_up(&mut en, &streamer, 1)
        .expect("bring-up succeeds");
    assert_eq!(info.capacity_bytes, 2_000_000_000_000);
    assert_eq!(info.lba_bytes, 512);

    System {
        en,
        fabric,
        hostmem,
        streamer,
        nvme,
    }
}

/// Feed a write transfer (header + data) through `wr_in`, respecting
/// backpressure, then run until the response token arrives.
pub fn do_write(sys: &mut System, addr: u64, data: &[u8]) {
    let ports = sys.streamer.ports();
    let header = StreamBeat::mid(addr.to_le_bytes().to_vec());
    assert!(axis::push(&ports.wr_in, &mut sys.en, header));
    let chunk = 8192;
    let mut off = 0;
    while off < data.len() {
        let end = (off + chunk).min(data.len());
        let beat = if end == data.len() {
            StreamBeat::last(data[off..end].to_vec())
        } else {
            StreamBeat::mid(data[off..end].to_vec())
        };
        if axis::push(&ports.wr_in, &mut sys.en, beat) {
            off = end;
        } else {
            // Backpressure: let the simulation drain a step.
            assert!(sys.en.step(), "deadlock while feeding write data");
        }
    }
    // Run until the response token shows up.
    while ports.wr_resp.borrow().is_empty() {
        assert!(sys.en.step(), "no write response arrived");
    }
    let tok = axis::pop(&ports.wr_resp, &mut sys.en).unwrap();
    let bytes = u64::from_le_bytes(tok.data[..8].try_into().unwrap());
    assert_eq!(bytes, data.len() as u64);
    sys.en.run();
}

/// Issue a read and collect the full transfer from `rd_data`.
pub fn do_read(sys: &mut System, addr: u64, len: u64) -> Vec<u8> {
    let ports = sys.streamer.ports();
    assert!(axis::push(
        &ports.rd_cmd,
        &mut sys.en,
        encode_read_cmd(addr, len)
    ));
    let mut out = Vec::with_capacity(len as usize);
    loop {
        if let Some(beat) = axis::pop(&ports.rd_data, &mut sys.en) {
            out.extend_from_slice(&beat.data);
            if beat.last {
                break;
            }
        } else {
            assert!(sys.en.step(), "read data never completed");
        }
    }
    sys.en.run();
    out
}

fn patterned(len: usize, seed: u64) -> Vec<u8> {
    let mut rng = SimRng::new(seed);
    let mut v = vec![0u8; len];
    rng.fill_bytes(&mut v);
    v
}

fn roundtrip(variant: StreamerVariant, len: usize, addr: u64) {
    let mut sys = build_system(variant, true);
    let data = patterned(len, 0xABCD ^ len as u64);
    do_write(&mut sys, addr, &data);
    // The data must really be on the SSD's media.
    let media = sys
        .nvme
        .with(|d| d.nand_mut().media_mut().read_vec(addr, len));
    assert_eq!(fnv1a(&media), fnv1a(&data), "media contents differ");
    // And read back through the streamer.
    let back = do_read(&mut sys, addr, len as u64);
    assert_eq!(back.len(), len);
    assert_eq!(fnv1a(&back), fnv1a(&data), "readback differs");
}

#[test]
fn uram_small_roundtrip() {
    roundtrip(StreamerVariant::Uram, 4096, 0);
}

#[test]
fn uram_multi_megabyte_roundtrip() {
    // 3 MB: splits into 3 commands, exercises PRP-list synthesis.
    roundtrip(StreamerVariant::Uram, 3 << 20, 1 << 30);
}

#[test]
fn uram_unaligned_length_roundtrip() {
    // 6000 B pads to 12 LBAs on the wire; readback covers the request.
    let mut sys = build_system(StreamerVariant::Uram, true);
    let data = patterned(6144, 99);
    do_write(&mut sys, 8192, &data);
    let back = do_read(&mut sys, 8192, 6144);
    assert_eq!(back, data);
}

#[test]
fn onboard_dram_roundtrip() {
    roundtrip(StreamerVariant::OnboardDram, 2 << 20, 4096);
}

#[test]
fn host_dram_roundtrip() {
    roundtrip(StreamerVariant::HostDram, 2 << 20, 1 << 20);
}

#[test]
fn host_dram_large_crosses_pinned_segments() {
    // 6 MB spans two 4 MB pinned segments in the stitched host buffer.
    roundtrip(StreamerVariant::HostDram, 6 << 20, 0);
}

#[test]
fn multiple_sequential_writes_reuse_buffers() {
    let mut sys = build_system(StreamerVariant::Uram, true);
    // 10 × 1 MB writes cycle the 4 MB URAM buffer multiple times.
    for i in 0..10u64 {
        let data = patterned(1 << 20, i);
        do_write(&mut sys, i << 20, &data);
    }
    let m = sys.streamer.metrics();
    assert_eq!(m.write_cmds.get(), 10);
    assert_eq!(m.responses.get(), 10);
    assert_eq!(m.errors.get(), 0);
    // Verify a couple of extents on media.
    for i in [0u64, 7] {
        let expect = patterned(1 << 20, i);
        let got = sys
            .nvme
            .with(|d| d.nand_mut().media_mut().read_vec(i << 20, 1 << 20));
        assert_eq!(fnv1a(&got), fnv1a(&expect), "extent {i}");
    }
}

#[test]
fn interleaved_reads_and_writes() {
    let mut sys = build_system(StreamerVariant::Uram, true);
    let a = patterned(512 << 10, 1);
    let b = patterned(256 << 10, 2);
    do_write(&mut sys, 0, &a);
    do_write(&mut sys, 1 << 20, &b);
    let ra = do_read(&mut sys, 0, a.len() as u64);
    let rb = do_read(&mut sys, 1 << 20, b.len() as u64);
    assert_eq!(fnv1a(&ra), fnv1a(&a));
    assert_eq!(fnv1a(&rb), fnv1a(&b));
}

#[test]
fn read_of_unwritten_extent_returns_zeroes() {
    let mut sys = build_system(StreamerVariant::Uram, true);
    let back = do_read(&mut sys, 500 << 20, 8192);
    assert_eq!(back, vec![0u8; 8192]);
}

#[test]
fn write_latency_shape_under_9us() {
    // Fig 4c: a single 4 KiB write completes in < 9 µs end to end.
    let mut sys = build_system(StreamerVariant::Uram, true);
    let data = patterned(4096, 3);
    let start = sys.en.now();
    do_write(&mut sys, 0, &data);
    let us = sys.en.now().since(start).as_us_f64();
    assert!(us < 9.0, "4 KiB PE write took {us} µs");
}

#[test]
fn read_latency_shape_tens_of_us() {
    // Fig 4c: a single 4 KiB read is tR-bound (tens of µs).
    let mut sys = build_system(StreamerVariant::Uram, true);
    let data = patterned(4096, 4);
    do_write(&mut sys, 0, &data);
    let start = sys.en.now();
    let _ = do_read(&mut sys, 0, 4096);
    let us = sys.en.now().since(start).as_us_f64();
    assert!(us > 25.0 && us < 45.0, "4 KiB PE read took {us} µs");
}

#[test]
fn autonomy_no_host_traffic_during_steady_state() {
    // After bring-up, data movement must not involve the host: for the
    // URAM variant the host-facing byte counters stay flat while 2 MB
    // flows PE → SSD (the paper's headline autonomy property).
    let mut sys = build_system(StreamerVariant::Uram, true);
    let before = sys.hostmem.borrow().bytes_transferred();
    let data = patterned(2 << 20, 5);
    do_write(&mut sys, 0, &data);
    let after = sys.hostmem.borrow().bytes_transferred();
    assert_eq!(before, after, "URAM variant must not touch host memory");
}

#[test]
fn sim_time_advances_realistically() {
    // 8 MB sequential write at ~6 GB/s should take ~1.3 ms of simulated
    // time — sanity that timing is wired through (not functional-only).
    let mut sys = build_system(StreamerVariant::HostDram, true);
    let data = patterned(8 << 20, 6);
    let start = sys.en.now();
    do_write(&mut sys, 0, &data);
    let secs = sys.en.now().since(start).as_secs_f64();
    let gbps = data.len() as f64 / 1e9 / secs;
    assert!(gbps > 2.0 && gbps < 8.0, "write bandwidth {gbps} GB/s");
}
