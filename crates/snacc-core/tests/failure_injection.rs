//! Failure injection: IOMMU revocation, bad commands, error completions.

use snacc_core::config::{StreamerConfig, StreamerVariant};
use snacc_core::hostinit::SnaccHostDriver;
use snacc_core::plugin::NvmeSubsystem;
use snacc_core::streamer::encode_read_cmd;
use snacc_fpga::axis::{self, StreamBeat};
use snacc_fpga::tapasco::TapascoShell;
use snacc_mem::{AddrRange, HostMemory};
use snacc_nvme::spec::{IoOpcode, Sqe, Status};
use snacc_nvme::{NvmeDeviceHandle, NvmeProfile};
use snacc_pcie::target::HostMemTarget;
use snacc_pcie::{Iommu, PcieFabric, HOST_NODE};
use snacc_sim::Engine;
use std::cell::RefCell;
use std::rc::Rc;

const SHELL_BAR: u64 = 0x4_0000_0000;
const NVME_BAR: u64 = 0x8_0000_0000;

fn build(
    variant: StreamerVariant,
) -> (
    Engine,
    Rc<RefCell<PcieFabric>>,
    snacc_core::streamer::StreamerHandle,
    NvmeDeviceHandle,
) {
    let mut en = Engine::new();
    let mut fabric = PcieFabric::new();
    fabric.set_iommu(Iommu::new());
    let hostmem = Rc::new(RefCell::new(HostMemory::default()));
    let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
    fabric.map_region(HOST_NODE, AddrRange::new(0, 8 << 30), t);
    let fabric = Rc::new(RefCell::new(fabric));
    let mut shell = TapascoShell::new(fabric.clone(), SHELL_BAR);
    let mut plugin = NvmeSubsystem::new(StreamerConfig::snacc(variant));
    shell.apply_plugin(&mut en, &mut plugin);
    let streamer = plugin.streamer();
    let nvme = NvmeDeviceHandle::attach(fabric.clone(), NVME_BAR, NvmeProfile::samsung_990pro(), 3);
    fabric
        .borrow_mut()
        .iommu_mut()
        .grant(nvme.node(), AddrRange::new(0x1_0000_0000, 1 << 20));
    let mut driver = SnaccHostDriver::new(fabric.clone(), hostmem, nvme.clone());
    driver.bring_up(&mut en, &streamer, 1).expect("bring-up");
    (en, fabric, streamer, nvme)
}

#[test]
fn iommu_revocation_produces_error_completions() {
    let (mut en, fabric, streamer, nvme) = build(StreamerVariant::Uram);
    // Revoke the SSD's *data-window* grants mid-flight (queues stay
    // reachable, as in a real IOMMU misconfiguration of one mapping):
    // data fetches fault and the device reports Data Transfer Error —
    // but the streamer still retires the command and answers the PE.
    let w = streamer.windows();
    {
        let mut fab = fabric.borrow_mut();
        fab.iommu_mut().revoke_all(nvme.node());
        for r in [w.sq, w.cq, w.prp] {
            fab.iommu_mut().grant(nvme.node(), r);
        }
        fab.iommu_mut()
            .grant(nvme.node(), AddrRange::new(0x1_0000_0000, 1 << 20));
    }
    let ports = streamer.ports();
    axis::push(
        &ports.wr_in,
        &mut en,
        StreamBeat::mid(0u64.to_le_bytes().to_vec()),
    );
    axis::push(&ports.wr_in, &mut en, StreamBeat::last(vec![1u8; 8192]));
    en.run();
    // Response token still arrives (protocol liveness under errors).
    assert!(axis::pop(&ports.wr_resp, &mut en).is_some());
    assert!(
        streamer.metrics().errors.get() > 0,
        "error must be surfaced"
    );
    assert!(fabric.borrow_mut().iommu_mut().faults() > 0);
}

#[test]
fn read_after_revocation_still_streams() {
    // Read path: the SSD cannot deliver data (posted writes fault), the
    // CQE carries an error, and the streamer streams buffer contents
    // (zeros) so the PE protocol never wedges.
    let (mut en, fabric, streamer, nvme) = build(StreamerVariant::Uram);
    let w = streamer.windows();
    {
        let mut fab = fabric.borrow_mut();
        fab.iommu_mut().revoke_all(nvme.node());
        for r in [w.sq, w.cq, w.prp] {
            fab.iommu_mut().grant(nvme.node(), r);
        }
    }
    let ports = streamer.ports();
    axis::push(&ports.rd_cmd, &mut en, encode_read_cmd(0, 8192));
    let mut got = 0;
    loop {
        match axis::pop(&ports.rd_data, &mut en) {
            Some(b) => {
                got += b.len();
                if b.last {
                    break;
                }
            }
            None => {
                if !en.step() {
                    break;
                }
            }
        }
    }
    assert_eq!(got, 8192, "full (zeroed) stream despite the fault");
    assert!(streamer.metrics().errors.get() > 0);
}

#[test]
fn device_rejects_misaligned_prp_list_entries() {
    // Speak to the controller directly with a corrupt PRP2 (unaligned):
    // the command completes with Invalid Field, not a hang.
    let mut en = Engine::new();
    let fabric = Rc::new(RefCell::new(PcieFabric::new()));
    let hostmem = Rc::new(RefCell::new(HostMemory::default()));
    let t = Rc::new(RefCell::new(HostMemTarget::new(hostmem.clone(), 0)));
    fabric
        .borrow_mut()
        .map_region(HOST_NODE, AddrRange::new(0, 8 << 30), t);
    let _nvme =
        NvmeDeviceHandle::attach(fabric.clone(), NVME_BAR, NvmeProfile::samsung_990pro(), 9);
    // Minimal admin bring-up through raw registers.
    use snacc_nvme::spec::{cc, regs};
    let asq = 0x10_0000u64;
    let acq = 0x11_0000u64;
    {
        let mut fab = fabric.borrow_mut();
        fab.write_u32(&mut en, HOST_NODE, NVME_BAR + regs::AQA, (31 << 16) | 31)
            .unwrap();
        fab.write(&mut en, HOST_NODE, NVME_BAR + regs::ASQ, &asq.to_le_bytes())
            .unwrap();
        fab.write(&mut en, HOST_NODE, NVME_BAR + regs::ACQ, &acq.to_le_bytes())
            .unwrap();
        fab.write_u32(&mut en, HOST_NODE, NVME_BAR + regs::CC, cc::EN)
            .unwrap();
    }
    en.run();
    // Create an I/O queue pair in host memory.
    let io_sq = 0x20_0000u64;
    let io_cq = 0x21_0000u64;
    let submit_admin = |en: &mut Engine, sqe: Sqe, slot: u16| {
        hostmem
            .borrow_mut()
            .store_mut()
            .write(asq + slot as u64 * 64, &sqe.encode());
        fabric
            .borrow_mut()
            .write_u32(
                en,
                HOST_NODE,
                NVME_BAR + regs::sq_tail_doorbell(0),
                slot as u32 + 1,
            )
            .unwrap();
        en.run();
    };
    let mut c = Sqe::new(snacc_nvme::spec::AdminOpcode::CreateIoCq as u8, 0);
    c.prp1 = io_cq;
    c.cdw[0] = 1 | (63 << 16);
    c.cdw[1] = 1;
    submit_admin(&mut en, c, 0);
    let mut s = Sqe::new(snacc_nvme::spec::AdminOpcode::CreateIoSq as u8, 1);
    s.prp1 = io_sq;
    s.cdw[0] = 1 | (63 << 16);
    s.cdw[1] = 1 | (1 << 16);
    submit_admin(&mut en, s, 1);

    // A 12 KiB write whose PRP2 (list pointer) is misaligned.
    let mut w = Sqe::io(IoOpcode::Write, 7, 0, 23);
    w.prp1 = 0x40_0000;
    w.prp2 = 0x40_1003; // not 8-byte aligned
    hostmem.borrow_mut().store_mut().write(io_sq, &w.encode());
    fabric
        .borrow_mut()
        .write_u32(&mut en, HOST_NODE, NVME_BAR + regs::sq_tail_doorbell(1), 1)
        .unwrap();
    en.run();
    let raw = hostmem.borrow_mut().store_mut().read_vec(io_cq, 16);
    let cqe = snacc_nvme::spec::Cqe::decode(&raw).expect("CQE decodes");
    assert_eq!(cqe.cid, 7);
    assert_eq!(cqe.status, Status::InvalidField);
}

#[test]
fn out_of_bounds_read_reports_lba_range_error() {
    let (mut en, _fabric, streamer, nvme) = build(StreamerVariant::Uram);
    let cap = nvme.with(|d| d.nand_mut().capacity_bytes());
    let ports = streamer.ports();
    axis::push(&ports.rd_cmd, &mut en, encode_read_cmd(cap, 4096));
    let mut done = false;
    while !done {
        match axis::pop(&ports.rd_data, &mut en) {
            Some(b) => done = b.last,
            None => {
                if !en.step() {
                    break;
                }
            }
        }
    }
    assert!(done, "stream must terminate even on an OOB command");
    assert!(streamer.metrics().errors.get() > 0);
    assert_eq!(nvme.stats().errors, 1);
}
