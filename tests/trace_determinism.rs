//! Trace determinism: the same seed and configuration must produce a
//! byte-identical exported trace across independent runs. This is the
//! contract that makes traces diffable — a perf regression shows up as a
//! trace diff, not as noise.

use snacc::prelude::*;
use snacc::trace::{export_chrome_trace, install, uninstall, Tracer};

/// One small full-system workload (URAM variant): an 8 KiB write followed
/// by a 64 KiB read, recorded under a fresh tracer.
fn traced_run() -> String {
    install(Tracer::new());
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
    let ports = sys.streamer.ports();
    axis::push(
        &ports.wr_in,
        &mut sys.en,
        StreamBeat::mid(0u64.to_le_bytes().to_vec()),
    );
    axis::push(
        &ports.wr_in,
        &mut sys.en,
        StreamBeat::last(vec![0x5a; 8192]),
    );
    sys.en.run();
    assert!(axis::pop(&ports.wr_resp, &mut sys.en).is_some());
    axis::push(&ports.rd_cmd, &mut sys.en, encode_read_cmd(0, 64 << 10));
    let mut got = 0u64;
    while got < 64 << 10 {
        match axis::pop(&ports.rd_data, &mut sys.en) {
            Some(b) => got += b.len() as u64,
            None => assert!(sys.en.step(), "read stalled"),
        }
    }
    sys.en.run();
    let tracer = uninstall().expect("tracer was installed");
    export_chrome_trace(&tracer)
}

#[test]
fn identical_runs_export_byte_identical_traces() {
    let a = traced_run();
    let b = traced_run();
    assert!(!a.is_empty());
    assert_eq!(a, b, "same seed + config must yield identical traces");
}

#[test]
fn trace_covers_the_whole_datapath() {
    let json = traced_run();
    // Spans from at least four model crates must appear: streamer
    // (snacc-core), TLPs (snacc-pcie), NVMe command + NAND (snacc-nvme).
    for needle in [
        "cmd.read",
        "cmd.write",
        "tlp.write",
        "nvme.read",
        "nand.read",
    ] {
        assert!(json.contains(needle), "trace missing {needle}");
    }
    // And it parses as Chrome trace_event JSON.
    let doc = serde_json::from_str(&json).expect("valid JSON");
    let events = doc
        .get("traceEvents")
        .and_then(|v| v.as_array())
        .expect("traceEvents array");
    assert!(!events.is_empty());
}
