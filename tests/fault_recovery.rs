//! Full-system fault campaigns: the recovery contract and trace
//! determinism.
//!
//! The contract under test (ISSUE 4 acceptance): for *any* seeded
//! [`FaultPlan`], every injected failure is either retried to recovery or
//! reported in `gave_up` — never silently absorbed — and when nothing
//! gave up, the delivered data is byte-exact. Separately, two runs of the
//! same seeded campaign must export byte-identical traces.

use proptest::prelude::*;
use snacc::prelude::*;
use snacc::trace::{export_chrome_trace, install, uninstall, Tracer};

const FILL: u8 = 0x77;

struct CampaignOutcome {
    injected: u64,
    retries: u64,
    recovered: u64,
    gave_up: u64,
    /// Delivered bytes per PE read.
    reads: Vec<Vec<u8>>,
}

/// Bring up a faulted system and drive `count` sequential PE reads of
/// `len` bytes over pre-warmed media, returning the delta accounting.
fn run_campaign(plan: &FaultPlan, count: u64, len: u64) -> CampaignOutcome {
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc_faulted(StreamerVariant::Uram, plan));
    sys.nvme
        .with(|d| d.nand_mut().prewarm(0, count * len, FILL));
    sys.inject_faults(plan);
    let m = sys.streamer.metrics();
    // Metric counters are process-wide; diff against the post-bring-up
    // snapshot.
    let (r0, v0, g0) = (m.retries.get(), m.recovered.get(), m.gave_up.get());
    let ports = sys.streamer.ports();
    let mut reads = Vec::new();
    for i in 0..count {
        let cmd = encode_read_cmd(i * len, len);
        while !axis::push(&ports.rd_cmd, &mut sys.en, cmd.clone()) {
            assert!(sys.en.step(), "stalled pushing read cmd");
        }
        let mut data = Vec::new();
        loop {
            match axis::pop(&ports.rd_data, &mut sys.en) {
                Some(beat) => {
                    let last = beat.last;
                    data.extend_from_slice(&beat.data);
                    if last {
                        break;
                    }
                }
                None => assert!(sys.en.step(), "read stream stalled"),
            }
        }
        reads.push(data);
    }
    sys.en.run();
    CampaignOutcome {
        injected: sys.nvme.fault_stats().errors,
        retries: m.retries.get() - r0,
        recovered: m.recovered.get() - v0,
        gave_up: m.gave_up.get() - g0,
        reads,
    }
}

proptest! {
    /// Any seeded NVMe-error campaign with any retry budget: the
    /// accounting conserves faults, and data loss is impossible without
    /// a matching `gave_up` report.
    #[test]
    fn seeded_campaigns_never_lose_data_silently(
        seed in 1u64..1_000_000,
        rate_pct in 0u32..=40,
        max_retries in 0u32..=3,
    ) {
        let mut toml = format!("seed = {seed}\n");
        if max_retries > 0 {
            toml += &format!("[retry]\nmax_retries = {max_retries}\nbackoff_us = 10\n");
        }
        toml += &format!("[nvme]\nerror_rate = 0.{rate_pct:02}\n");
        let plan = FaultPlan::parse(&toml).expect("generated plan");
        let (count, len) = (8u64, 64u64 * 1024);
        let out = run_campaign(&plan, count, len);

        // Conservation: every injected fault is retried or given up.
        prop_assert_eq!(out.injected, out.retries + out.gave_up);
        prop_assert!(out.recovered <= out.retries);

        // Liveness: the stream always delivers the full byte count.
        for data in &out.reads {
            prop_assert_eq!(data.len() as u64, len);
        }
        // No silent loss: a read not carrying its media bytes must be
        // covered by a gave_up report (given-up reads stream zeros).
        let lossy = out
            .reads
            .iter()
            .filter(|d| !d.iter().all(|&b| b == FILL))
            .count() as u64;
        prop_assert!(
            lossy <= out.gave_up,
            "{} lossy reads but only {} gave_up reports", lossy, out.gave_up
        );
        if out.gave_up == 0 {
            prop_assert_eq!(lossy, 0);
        }
    }
}

/// One faulted case-study-sized run under a fresh tracer.
fn faulted_traced_run() -> String {
    install(Tracer::new());
    let plan = FaultPlan::parse(
        "seed = 1234\n\
         [retry]\nmax_retries = 3\nbackoff_us = 10\n\
         [nvme]\nerror_rate = 0.15\nlatency_spike_rate = 0.05\nlatency_spike_us = 200\n\
         [pcie]\ndegrade_start_us = 0\ndegrade_end_us = 10000\ndegrade_extra_us = 2\n",
    )
    .expect("static plan");
    let out = run_campaign(&plan, 6, 64 * 1024);
    assert!(out.injected > 0, "campaign must inject");
    assert!(out.recovered > 0, "campaign must exercise recovery");
    let tracer = uninstall().expect("tracer was installed");
    export_chrome_trace(&tracer)
}

#[test]
fn same_seed_fault_campaigns_export_identical_traces() {
    let a = faulted_traced_run();
    let b = faulted_traced_run();
    assert!(!a.is_empty());
    // The trace must show the fault story: injections, retries,
    // recoveries, and the degradation window span.
    for needle in [
        "fault.cmd_error",
        "retry.scheduled",
        "retry.reissue",
        "retry.recovered",
        "window.pcie_degrade",
    ] {
        assert!(a.contains(needle), "trace missing {needle}");
    }
    assert_eq!(a, b, "same-seed campaigns must trace identically");
}
