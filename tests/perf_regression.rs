//! Perf-refactor regression guard: the zero-copy payload datapath and the
//! engine fast path are *wall-clock* optimisations — they must not change
//! anything observable inside the simulation. A fig4a-style workload
//! (sequential streamer writes and reads of pattern data) is run twice;
//! both runs must produce identical `StreamerMetrics` totals, identical
//! simulated end times, and byte-identical exported traces.

use snacc::prelude::*;
use snacc::sim::Payload;
use snacc::trace::{
    export_chrome_trace, install, install_registry, uninstall, MetricsRegistry, Tracer,
};

const CHUNK: u64 = 64 << 10;
const TOTAL: u64 = 1 << 20; // 1 MiB, fig4a shape at test scale

/// Sequential pattern writes through the streamer ports, then a read of
/// the same extent — the shape of `snacc_seq_bandwidth` (Fig 4a) at a
/// size a unit test can afford. Payloads are lazily generated
/// [`Payload::pattern`] segments, exercising the zero-copy path the
/// PR 3 refactor introduced.
fn fig4a_style_run() -> (String, Vec<(&'static str, u64)>, u64) {
    install(Tracer::new());
    install_registry(MetricsRegistry::new());
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
    let ports = sys.streamer.ports();

    // Write TOTAL bytes in CHUNK beats.
    axis::push(
        &ports.wr_in,
        &mut sys.en,
        StreamBeat::mid(0u64.to_le_bytes().to_vec()),
    );
    let mut off = 0u64;
    while off < TOTAL {
        let n = CHUNK.min(TOTAL - off);
        let beat = StreamBeat {
            data: Payload::pattern(off, n as usize),
            last: off + n == TOTAL,
        };
        let mut pending = Some(beat);
        while let Some(b) = pending.take() {
            if !axis::push(&ports.wr_in, &mut sys.en, b.clone()) {
                pending = Some(b);
                assert!(sys.en.step(), "write stalled");
            }
        }
        off += n;
    }
    sys.en.run();
    assert!(axis::pop(&ports.wr_resp, &mut sys.en).is_some());

    // Read the extent back, discarding data.
    axis::push(&ports.rd_cmd, &mut sys.en, encode_read_cmd(0, TOTAL));
    let mut got = 0u64;
    while got < TOTAL {
        match axis::pop(&ports.rd_data, &mut sys.en) {
            Some(b) => got += b.len() as u64,
            None => assert!(sys.en.step(), "read stalled"),
        }
    }
    sys.en.run();

    let m = sys.streamer.metrics();
    let totals = vec![
        ("cmds_issued", m.cmds_issued.get()),
        ("read_cmds", m.read_cmds.get()),
        ("write_cmds", m.write_cmds.get()),
        ("bytes_to_pe", m.bytes_to_pe.get()),
        ("bytes_from_pe", m.bytes_from_pe.get()),
        ("errors", m.errors.get()),
        ("doorbells", m.doorbells.get()),
        ("responses", m.responses.get()),
    ];
    let end_ps = sys.en.now().as_ps();
    let tracer = uninstall().expect("tracer was installed");
    (export_chrome_trace(&tracer), totals, end_ps)
}

#[test]
fn fig4a_style_totals_and_trace_are_reproducible() {
    let (trace_a, totals_a, end_a) = fig4a_style_run();
    let (trace_b, totals_b, end_b) = fig4a_style_run();

    assert_eq!(totals_a, totals_b, "StreamerMetrics totals must not drift");
    assert_eq!(end_a, end_b, "simulated end time must not drift");
    assert!(!trace_a.is_empty());
    assert_eq!(
        trace_a, trace_b,
        "same seed + config must yield byte-identical traces"
    );

    // Sanity: the workload really moved the bytes it claims.
    let by_name: std::collections::HashMap<_, _> = totals_a.into_iter().collect();
    assert_eq!(by_name["bytes_from_pe"], TOTAL);
    assert_eq!(by_name["bytes_to_pe"], TOTAL);
    assert!(by_name["write_cmds"] >= 1);
    assert!(by_name["read_cmds"] >= 1);
    assert_eq!(by_name["errors"], 0);
}
