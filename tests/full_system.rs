//! Workspace-level integration tests: full-system flows spanning every
//! crate through the `snacc` facade.

use snacc::mem::fnv1a;
use snacc::nvme::NvmeProfile;
use snacc::prelude::*;
use snacc::sim::SimRng;

fn write_and_verify(variant: StreamerVariant, len: usize, addr: u64) {
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(variant));
    let ports = sys.streamer.ports();
    let mut rng = SimRng::new(addr ^ len as u64);
    let mut data = vec![0u8; len];
    rng.fill_bytes(&mut data);
    axis::push(
        &ports.wr_in,
        &mut sys.en,
        StreamBeat::mid(addr.to_le_bytes().to_vec()),
    );
    for (i, chunk) in data.chunks(64 << 10).enumerate() {
        let last = (i + 1) * (64 << 10) >= len;
        while !axis::push(
            &ports.wr_in,
            &mut sys.en,
            StreamBeat {
                data: chunk.into(),
                last,
            },
        ) {
            assert!(sys.en.step());
        }
    }
    sys.en.run();
    assert!(axis::pop(&ports.wr_resp, &mut sys.en).is_some());
    let media = sys
        .nvme
        .with(|d| d.nand_mut().media_mut().read_vec(addr, len));
    assert_eq!(fnv1a(&media), fnv1a(&data));
    // Read back through the other direction.
    axis::push(
        &ports.rd_cmd,
        &mut sys.en,
        encode_read_cmd(addr, len as u64),
    );
    let mut back = Vec::new();
    loop {
        match axis::pop(&ports.rd_data, &mut sys.en) {
            Some(b) => {
                let done = b.last;
                back.extend_from_slice(&b.data);
                if done {
                    break;
                }
            }
            None => assert!(sys.en.step()),
        }
    }
    assert_eq!(fnv1a(&back), fnv1a(&data));
}

#[test]
fn facade_roundtrip_all_variants() {
    for v in StreamerVariant::all() {
        write_and_verify(v, 2 << 20, 1 << 20);
    }
}

#[test]
fn ooo_extension_roundtrip() {
    let cfg = SystemConfig {
        streamer: StreamerConfig::snacc_ooo(StreamerVariant::Uram),
        nvme: NvmeProfile::samsung_990pro(),
        enforce_iommu: true,
        seed: 5,
    };
    let mut sys = SnaccSystem::bring_up(cfg);
    let ports = sys.streamer.ports();
    // 32 scattered 4 KiB writes then scattered reads, all must verify.
    let mut rng = SimRng::new(8);
    let addrs: Vec<u64> = (0..32).map(|_| rng.gen_range(1 << 16) * 4096).collect();
    for (i, &a) in addrs.iter().enumerate() {
        let payload = vec![i as u8 + 1; 4096];
        axis::push(
            &ports.wr_in,
            &mut sys.en,
            StreamBeat::mid(a.to_le_bytes().to_vec()),
        );
        while !axis::push(&ports.wr_in, &mut sys.en, StreamBeat::last(payload.clone())) {
            assert!(sys.en.step());
        }
        sys.en.run();
    }
    while axis::pop(&ports.wr_resp, &mut sys.en).is_some() {}
    for (i, &a) in addrs.iter().enumerate() {
        // Last write to a colliding address wins; recompute expectation
        // from the address order.
        let expect = addrs.iter().rposition(|&x| x == a).unwrap() as u8 + 1;
        let _ = i;
        axis::push(&ports.rd_cmd, &mut sys.en, encode_read_cmd(a, 4096));
        let mut page = Vec::new();
        loop {
            match axis::pop(&ports.rd_data, &mut sys.en) {
                Some(b) => {
                    let done = b.last;
                    page.extend_from_slice(&b.data);
                    if done {
                        break;
                    }
                }
                None => assert!(sys.en.step()),
            }
        }
        assert!(page.iter().all(|&b| b == expect), "addr {a:#x}");
    }
}

#[test]
fn case_study_small_run_via_facade() {
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::HostDram));
    let report = run_snacc_case_study(
        &mut sys,
        CaseStudyConfig {
            images: 6,
            ..Default::default()
        },
    );
    assert_eq!(report.images, 6);
    assert!(report.bandwidth_gbps > 0.5);
    assert!(report.correct >= 4, "{report:?}");
}

#[test]
fn spdk_and_streamer_agree_on_media_state() {
    // Write via the streamer, read via SPDK: both drivers speak the same
    // spec to the same device model.
    use snacc::apps::system::layout;
    use snacc::spdk::{SpdkConfig, SpdkNvme};
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
    let ports = sys.streamer.ports();
    let data = vec![0xEEu8; 64 << 10];
    axis::push(
        &ports.wr_in,
        &mut sys.en,
        StreamBeat::mid(8192u64.to_le_bytes().to_vec()),
    );
    while !axis::push(&ports.wr_in, &mut sys.en, StreamBeat::last(data.clone())) {
        assert!(sys.en.step());
    }
    sys.en.run();

    let spdk = SpdkNvme::new(
        sys.fabric.clone(),
        sys.hostmem.clone(),
        sys.nvme.clone(),
        SpdkConfig::default(),
    );
    // The streamer owns qid 1; SPDK would normally own the controller —
    // here it attaches alongside for verification reads. Grant its pinned
    // buffers to the SSD.
    sys.fabric.borrow_mut().iommu_mut().grant(
        sys.nvme.node(),
        snacc::mem::AddrRange::new(0x1_0000_0000, 1 << 30),
    );
    // Reset the controller first (the streamer's session ends — this is
    // a destructive handover, acceptable in the test), then re-init.
    sys.fabric
        .borrow_mut()
        .write_u32(
            &mut sys.en,
            snacc::pcie::HOST_NODE,
            sys.nvme.bar0_base() + 0x14,
            0,
        )
        .unwrap();
    sys.en.run();
    spdk.init(&mut sys.en, layout::SPDK_CQ).expect("init");
    sys.en.run();
    let cid = spdk.submit_read(&mut sys.en, 8192, 64 << 10).unwrap();
    let slot = spdk.slot_of(cid).unwrap();
    sys.en.run();
    let back = spdk.take_read_data(slot, 64 << 10);
    assert_eq!(back, data);
}

#[test]
fn ethernet_to_storage_is_lossless_under_backpressure() {
    use snacc::net::frame::MacAddr;
    use snacc::net::mac::{self, EthMac, MacConfig};
    use snacc::net::traffic::{pattern_byte, StreamSender};
    let mut sys = SnaccSystem::bring_up(SystemConfig::snacc(StreamerVariant::Uram));
    let ports = sys.streamer.ports();
    let tx = EthMac::new("src", MacAddr::from_index(1), MacConfig::eth_100g(), 31);
    let rx = EthMac::new("dst", MacAddr::from_index(2), MacConfig::eth_100g(), 32);
    mac::connect(&tx, &rx);
    let total: u64 = 32 << 20;
    let _sender = StreamSender::start(tx.clone(), &mut sys.en, MacAddr::from_index(2), 8192, total);
    // Forward the byte stream into one big storage append.
    let hdr = StreamBeat::mid(0u64.to_le_bytes().to_vec());
    axis::push(&ports.wr_in, &mut sys.en, hdr);
    let mut moved = 0u64;
    while moved < total {
        if let Some(f) = mac::pop_frame(&rx, &mut sys.en) {
            let n = f.payload.len() as u64;
            let last = moved + n >= total;
            let mut beat = Some(StreamBeat {
                data: f.payload,
                last,
            });
            while let Some(b) = beat.take() {
                if !axis::push(&ports.wr_in, &mut sys.en, b.clone()) {
                    beat = Some(b);
                    assert!(sys.en.step());
                }
            }
            moved += n;
        } else {
            assert!(sys.en.step(), "stream stalled");
        }
    }
    sys.en.run();
    assert_eq!(rx.borrow().stats().rx_drops, 0, "flow control must hold");
    // Verify a slice of the stored stream against the source pattern.
    let probe = 11u64 << 20;
    let media = sys
        .nvme
        .with(|d| d.nand_mut().media_mut().read_vec(probe, 8192));
    for (i, &b) in media.iter().enumerate() {
        assert_eq!(b, pattern_byte(probe + i as u64));
    }
}
